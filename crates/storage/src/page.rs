//! Fixed-size disk pages and page identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of every disk page in bytes.
///
/// 4 KiB matches the typical filesystem block size used by the storage scheme
/// of Yiu & Mamoulis (SIGMOD'04) that the paper adopts (its Figure 2).
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a disk page (zero-based position within the database file).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId(pub u32);

impl PageId {
    /// Creates a page identifier from a raw index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Returns the raw index.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the identifier as a `usize`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page{}", self.0)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page{}", self.0)
    }
}

/// A fixed-size page of bytes.
///
/// Pages are heap-allocated (`Box<[u8; PAGE_SIZE]>`) so that moving a `Page`
/// value around never copies 4 KiB on the stack.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// Creates a zero-filled page.
    pub fn zeroed() -> Self {
        Self {
            data: Box::new([0u8; PAGE_SIZE]),
        }
    }

    /// Read-only view of the page contents.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.data[..]
    }

    /// Mutable view of the page contents.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data[..]
    }

    /// Copies the contents of `src` into this page.
    ///
    /// # Panics
    /// Panics if `src` is not exactly [`PAGE_SIZE`] bytes long.
    pub fn copy_from(&mut self, src: &[u8]) {
        assert_eq!(
            src.len(),
            PAGE_SIZE,
            "page copy source must be {PAGE_SIZE} bytes"
        );
        self.data.copy_from_slice(src);
    }
}

impl Default for Page {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nonzero = self.data.iter().filter(|&&b| b != 0).count();
        write!(f, "Page {{ {nonzero}/{PAGE_SIZE} non-zero bytes }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_ids_are_ordered_and_displayable() {
        assert!(PageId::new(1) < PageId::new(2));
        assert_eq!(PageId::new(7).to_string(), "page7");
        assert_eq!(PageId::new(7).index(), 7);
    }

    #[test]
    fn pages_start_zeroed_and_are_copyable() {
        let mut p = Page::zeroed();
        assert!(p.bytes().iter().all(|&b| b == 0));
        p.bytes_mut()[0] = 0xAB;
        p.bytes_mut()[PAGE_SIZE - 1] = 0xCD;
        let q = p.clone();
        assert_eq!(q.bytes()[0], 0xAB);
        assert_eq!(q.bytes()[PAGE_SIZE - 1], 0xCD);

        let src = vec![0x11u8; PAGE_SIZE];
        let mut r = Page::zeroed();
        r.copy_from(&src);
        assert!(r.bytes().iter().all(|&b| b == 0x11));
    }

    #[test]
    #[should_panic]
    fn copy_from_wrong_size_panics() {
        let mut p = Page::zeroed();
        p.copy_from(&[0u8; 10]);
    }

    #[test]
    fn debug_reports_occupancy() {
        let mut p = Page::zeroed();
        p.bytes_mut()[3] = 1;
        assert!(format!("{p:?}").contains("1/4096"));
    }
}
