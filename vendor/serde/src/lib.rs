//! Offline, minimal—but real—implementation of the slice of serde this
//! workspace uses.
//!
//! Unlike the original shim (whose traits were empty markers and whose
//! derives expanded to nothing), this crate implements a genuine
//! serialization data model:
//!
//! * [`Serialize`] / [`Deserialize`] drive values through the
//!   [`Serializer`] / [`Deserializer`] traits field by field;
//! * the derives (re-exported from the vendored `serde_derive`) emit real
//!   per-field implementations for named structs, tuple structs and enums
//!   with unit, tuple and struct variants;
//! * [`json`] provides the single in-tree backend: a hand-rolled JSON
//!   writer/parser with [`json::to_string`], [`json::to_string_pretty`] and
//!   [`json::from_str`].
//!
//! The data model is a simplification of real serde's: serializers are
//! driven through `&mut self` methods with explicit `begin`/`end` calls
//! instead of by-value compound sub-serializers, and deserialization is
//! direct (no visitors). The surface is exactly what the workspace needs:
//! numeric primitives, `bool`, `String`, `Option`, `Vec`, slices, fixed
//! arrays, tuples and `std::time::Duration`. Swap in the real serde when
//! the build environment gains registry access.

use std::fmt::Display;
use std::time::Duration;

pub mod json;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Errors produced by serializers and deserializers.
///
/// Mirrors serde's `ser::Error`/`de::Error`: the derive-generated code only
/// needs a way to construct an error from a message.
pub trait Error: Sized + std::fmt::Debug + Display {
    /// Creates an error with an arbitrary message.
    fn custom(msg: impl Display) -> Self;

    /// A required struct field was absent from the input.
    fn missing_field(ty: &'static str, field: &'static str) -> Self {
        Self::custom(format!("missing field `{field}` of `{ty}`"))
    }

    /// An enum tag did not name any known variant.
    fn unknown_variant(ty: &'static str, variant: &str) -> Self {
        Self::custom(format!("unknown variant `{variant}` of enum `{ty}`"))
    }

    /// A variant payload was present/absent contrary to the definition.
    fn invalid_variant_shape(ty: &'static str, variant: &str) -> Self {
        Self::custom(format!(
            "variant `{variant}` of enum `{ty}` has the wrong payload shape"
        ))
    }
}

/// A data format that can serialize the data model.
///
/// Compound values are driven through explicit `begin`/`end` calls: a
/// sequence is `seq_begin`, then `seq_element` before each element, then
/// `seq_end`; a struct is `struct_begin`, then `struct_field` before each
/// field value, then `struct_end`; an enum variant with a payload wraps the
/// payload in `variant_begin`/`variant_end`.
pub trait Serializer {
    /// Error type of the format.
    type Error: Error;

    /// Serializes a `null` / unit value.
    fn write_null(&mut self) -> Result<(), Self::Error>;
    /// Serializes a boolean.
    fn write_bool(&mut self, v: bool) -> Result<(), Self::Error>;
    /// Serializes an unsigned integer (all unsigned widths funnel here).
    fn write_u64(&mut self, v: u64) -> Result<(), Self::Error>;
    /// Serializes a signed integer (all signed widths funnel here).
    fn write_i64(&mut self, v: i64) -> Result<(), Self::Error>;
    /// Serializes a floating-point number (`f32` widens losslessly).
    fn write_f64(&mut self, v: f64) -> Result<(), Self::Error>;
    /// Serializes a string.
    fn write_str(&mut self, v: &str) -> Result<(), Self::Error>;

    /// Begins a sequence of `len` elements (`None` if unknown upfront).
    fn seq_begin(&mut self, len: Option<usize>) -> Result<(), Self::Error>;
    /// Announces the next sequence element (called before its value).
    fn seq_element(&mut self) -> Result<(), Self::Error>;
    /// Ends the current sequence.
    fn seq_end(&mut self) -> Result<(), Self::Error>;

    /// Begins a struct with the given type name.
    fn struct_begin(&mut self, name: &'static str) -> Result<(), Self::Error>;
    /// Announces the next struct field (called before its value).
    fn struct_field(&mut self, key: &'static str) -> Result<(), Self::Error>;
    /// Ends the current struct.
    fn struct_end(&mut self) -> Result<(), Self::Error>;

    /// Serializes a data-less enum variant.
    fn unit_variant(
        &mut self,
        name: &'static str,
        variant: &'static str,
    ) -> Result<(), Self::Error>;
    /// Begins an enum variant carrying a payload; the payload value follows.
    fn variant_begin(
        &mut self,
        name: &'static str,
        variant: &'static str,
    ) -> Result<(), Self::Error>;
    /// Ends the current payload-carrying variant.
    fn variant_end(&mut self) -> Result<(), Self::Error>;
}

/// A data structure that can be serialized into any [`Serializer`].
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S: Serializer + ?Sized>(&self, serializer: &mut S) -> Result<(), S::Error>;
}

/// A data format that can deserialize the data model.
///
/// The counterpart of [`Serializer`]: direct (visitor-free) pull-style
/// decoding. Sequences are `seq_begin` followed by `seq_next` (which
/// reports whether another element is available and consumes the sequence
/// terminator when not); structs are `struct_begin` followed by
/// `field_key` until it returns `None`.
pub trait Deserializer<'de> {
    /// Error type of the format.
    type Error: Error;

    /// Deserializes a boolean.
    fn read_bool(&mut self) -> Result<bool, Self::Error>;
    /// Deserializes an unsigned integer.
    fn read_u64(&mut self) -> Result<u64, Self::Error>;
    /// Deserializes a signed integer.
    fn read_i64(&mut self) -> Result<i64, Self::Error>;
    /// Deserializes a floating-point number.
    fn read_f64(&mut self) -> Result<f64, Self::Error>;
    /// Deserializes a string.
    fn read_string(&mut self) -> Result<String, Self::Error>;
    /// Consumes a `null` value if one is next; returns whether it did.
    fn read_null(&mut self) -> Result<bool, Self::Error>;

    /// Begins a sequence.
    fn seq_begin(&mut self) -> Result<(), Self::Error>;
    /// Returns true if another element follows (and positions the reader on
    /// it); consumes the end of the sequence and returns false otherwise.
    fn seq_next(&mut self) -> Result<bool, Self::Error>;

    /// Begins a struct with the given type name.
    fn struct_begin(&mut self, name: &'static str) -> Result<(), Self::Error>;
    /// Returns the next field key, or `None` at the end of the struct.
    fn field_key(&mut self) -> Result<Option<String>, Self::Error>;
    /// Skips one complete value (used for unknown fields).
    fn skip_value(&mut self) -> Result<(), Self::Error>;

    /// Begins an enum value: returns the variant tag and whether a payload
    /// follows. `variants` lists the legal tags for error reporting.
    fn variant_begin(
        &mut self,
        name: &'static str,
        variants: &'static [&'static str],
    ) -> Result<(String, bool), Self::Error>;
    /// Ends an enum value started by [`Deserializer::variant_begin`].
    fn variant_end(&mut self, had_payload: bool) -> Result<(), Self::Error>;
}

/// A data structure that can be deserialized from any [`Deserializer`].
///
/// The `'de` lifetime is kept for signature compatibility with real serde
/// (`for<'de> Deserialize<'de>` bounds); this minimal implementation never
/// borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value of `Self` from `deserializer`.
    fn deserialize<D: Deserializer<'de> + ?Sized>(deserializer: &mut D) -> Result<Self, D::Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
                s.write_u64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de> + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
                let v = d.read_u64()?;
                <$t>::try_from(v).map_err(|_| {
                    <D::Error as Error>::custom(format!(
                        "integer {v} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
                s.write_i64(*self as i64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de> + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
                let v = d.read_i64()?;
                <$t>::try_from(v).map_err(|_| {
                    <D::Error as Error>::custom(format!(
                        "integer {v} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        s.write_bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de> + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
        d.read_bool()
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        s.write_f64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de> + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
        d.read_f64()
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        s.write_f64(*self as f64)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de> + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
        Ok(d.read_f64()? as f32)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        s.write_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        s.write_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de> + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
        d.read_string()
    }
}

impl Serialize for char {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        let mut buf = [0u8; 4];
        s.write_str(self.encode_utf8(&mut buf))
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de> + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
        let s = d.read_string()?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(<D::Error as Error>::custom(
                "expected a single-character string",
            )),
        }
    }
}

impl Serialize for () {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        s.write_null()
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de> + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
        if d.read_null()? {
            Ok(())
        } else {
            Err(<D::Error as Error>::custom("expected null"))
        }
    }
}

// ---------------------------------------------------------------------------
// Forwarding impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        (**self).serialize(s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de> + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
        Ok(Box::new(T::deserialize(d)?))
    }
}

// ---------------------------------------------------------------------------
// Option / sequences / tuples
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        match self {
            None => s.write_null(),
            Some(v) => v.serialize(s),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de> + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
        if d.read_null()? {
            Ok(None)
        } else {
            Ok(Some(T::deserialize(d)?))
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        s.seq_begin(Some(self.len()))?;
        for item in self {
            s.seq_element()?;
            item.serialize(s)?;
        }
        s.seq_end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de> + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
        let mut out = Vec::new();
        d.seq_begin()?;
        while d.seq_next()? {
            out.push(T::deserialize(d)?);
        }
        Ok(out)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de> + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
        let mut out = Vec::with_capacity(N);
        d.seq_begin()?;
        while d.seq_next()? {
            if out.len() == N {
                return Err(<D::Error as Error>::custom(format!(
                    "array of {N} elements has extra elements"
                )));
            }
            out.push(T::deserialize(d)?);
        }
        out.try_into().map_err(|v: Vec<T>| {
            <D::Error as Error>::custom(format!("expected {N} elements, got {}", v.len()))
        })
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
                let len = [$(stringify!($idx)),+].len();
                s.seq_begin(Some(len))?;
                $(
                    s.seq_element()?;
                    self.$idx.serialize(s)?;
                )+
                s.seq_end()
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de> + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
                d.seq_begin()?;
                let value = ($(
                    {
                        if !d.seq_next()? {
                            return Err(<D::Error as Error>::custom(
                                concat!("tuple is missing element ", stringify!($idx)),
                            ));
                        }
                        $t::deserialize(d)?
                    },
                )+);
                if d.seq_next()? {
                    return Err(<D::Error as Error>::custom("tuple has extra elements"));
                }
                Ok(value)
            }
        }
    )*};
}

impl_tuple! {
    (T0.0),
    (T0.0, T1.1),
    (T0.0, T1.1, T2.2),
    (T0.0, T1.1, T2.2, T3.3),
}

// ---------------------------------------------------------------------------
// std types
// ---------------------------------------------------------------------------

impl Serialize for Duration {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        s.struct_begin("Duration")?;
        s.struct_field("secs")?;
        s.write_u64(self.as_secs())?;
        s.struct_field("nanos")?;
        s.write_u64(self.subsec_nanos() as u64)?;
        s.struct_end()
    }
}

impl<'de> Deserialize<'de> for Duration {
    fn deserialize<D: Deserializer<'de> + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
        let mut secs: Option<u64> = None;
        let mut nanos: Option<u32> = None;
        d.struct_begin("Duration")?;
        while let Some(key) = d.field_key()? {
            match key.as_str() {
                "secs" => secs = Some(u64::deserialize(d)?),
                "nanos" => nanos = Some(u32::deserialize(d)?),
                _ => d.skip_value()?,
            }
        }
        match (secs, nanos) {
            // The serializer always writes sub-second nanos; a larger value
            // could make `Duration::new` carry into (and overflow) `secs`,
            // which panics — reject it as malformed input instead.
            (Some(_), Some(n)) if n >= 1_000_000_000 => Err(<D::Error as Error>::custom(format!(
                "Duration nanos {n} exceed one second"
            ))),
            (Some(s), Some(n)) => Ok(Duration::new(s, n)),
            (None, _) => Err(<D::Error as Error>::missing_field("Duration", "secs")),
            (_, None) => Err(<D::Error as Error>::missing_field("Duration", "nanos")),
        }
    }
}
