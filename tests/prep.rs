//! ParetoPrep equivalence: the pruned path-skyline pipeline must produce
//! **byte-identical** results to the exhaustive label-correcting baseline —
//! per dimension, under the concurrent engine, and across cold/warm prep
//! caches — while the prep lower bounds stay admissible against the true
//! per-cost shortest distances.
//!
//! Fingerprints ([`QueryOutput::fingerprint`]) encode the raw IEEE-754 bits
//! of every path cost plus the full edge sequences, so equality here is
//! bit-exact result equality, not approximate agreement.

use mcn::alpha::{scalarized_path, scalarized_path_astar, Preference};
use mcn::engine::{PathContext, QueryEngine, QueryOutput, QueryRequest};
use mcn::gen::{generate_workload, WorkloadSpec};
use mcn::graph::{CostVec, GraphBuilder, MultiCostGraph, NodeId};
use mcn::mcpp::{
    componentwise_minimum, pareto_paths_exhaustive, pareto_paths_prepped, pareto_paths_with_stats,
};
use mcn::prep::PrepTable;
use mcn::storage::{BufferConfig, MCNStore};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// A seeded workload graph small enough for the exhaustive baseline to
/// stay fast in debug builds (anti-correlated Pareto sets grow steeply
/// with d and network diameter).
fn path_workload(d: usize, seed: u64) -> MultiCostGraph {
    let nodes = if d >= 4 { 120 } else { 190 };
    generate_workload(&WorkloadSpec {
        nodes,
        facilities: 30,
        cost_types: d,
        queries: 3,
        ..WorkloadSpec::tiny(seed)
    })
    .graph
}

fn seeded_pairs(graph: &MultiCostGraph, pairs: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = graph.num_nodes();
    (0..pairs)
        .map(|_| {
            let s = NodeId::from(rng.gen_range(0..n));
            let mut t = NodeId::from(rng.gen_range(0..n));
            if t == s {
                t = NodeId::from((t.raw() as usize + 1) % n);
            }
            (s, t)
        })
        .collect()
}

fn paths_fingerprint(paths: Vec<mcn::mcpp::ParetoLabel>) -> String {
    QueryOutput::Paths(paths).fingerprint()
}

#[test]
fn pruned_path_skylines_match_exhaustive_at_every_dimension() {
    for d in [2usize, 3, 4] {
        let graph = path_workload(d, 40 + d as u64);
        for (s, t) in seeded_pairs(&graph, 3, 400 + d as u64) {
            let exhaustive = pareto_paths_exhaustive(&graph, s, t);
            let early = pareto_paths_with_stats(&graph, s, t);
            let prep = PrepTable::build(&graph, t);
            let prepped = pareto_paths_prepped(&graph, s, t, &prep);
            let reference = paths_fingerprint(exhaustive.paths);
            assert_eq!(
                reference,
                paths_fingerprint(early.paths),
                "d = {d}: early termination diverged at {s} → {t}"
            );
            assert_eq!(
                reference,
                paths_fingerprint(prepped.paths),
                "d = {d}: prep pruning diverged at {s} → {t}"
            );
            // Both optimisations strictly reduce work on these workloads.
            assert!(early.stats.labels_created < exhaustive.stats.labels_created);
            assert!(prepped.stats.labels_created <= early.stats.labels_created);
        }
    }
}

/// The engine fixture: a store + path context over one seeded graph, and a
/// batch mixing path-skyline requests with classic store-bound queries.
fn engine_fixture() -> (Arc<MCNStore>, Arc<PathContext>, Vec<QueryRequest>) {
    let graph = Arc::new(path_workload(3, 77));
    let store = Arc::new(MCNStore::build_in_memory(&graph, BufferConfig::Pages(32)).unwrap());
    let ctx = Arc::new(PathContext::new(graph.clone(), 8));
    let mut rng = ChaCha8Rng::seed_from_u64(7700);
    let n = graph.num_nodes();
    let targets: Vec<NodeId> = (0..4).map(|_| NodeId::from(rng.gen_range(0..n))).collect();
    let requests: Vec<QueryRequest> = (0..16)
        .map(|i| {
            if i % 4 == 3 {
                // Interleave a store-bound skyline query: path and facility
                // requests must coexist in one batch.
                QueryRequest::Skyline {
                    location: mcn::graph::NetworkLocation::Node(NodeId::from(rng.gen_range(0..n))),
                    algorithm: mcn::core::Algorithm::Cea,
                }
            } else {
                QueryRequest::PathSkyline {
                    source: NodeId::from(rng.gen_range(0..n)),
                    target: targets[i % targets.len()],
                }
            }
        })
        .collect();
    (store, ctx, requests)
}

fn fingerprints(result: &mcn::engine::BatchResult) -> Vec<String> {
    result
        .outcomes
        .iter()
        .map(|o| o.output.fingerprint())
        .collect()
}

#[test]
fn engine_path_batches_are_byte_identical_serial_vs_four_workers() {
    let (store, ctx, requests) = engine_fixture();
    let serial = QueryEngine::new(store.clone(), 1)
        .with_path_context(ctx.clone())
        .run_batch(&requests);
    ctx.clear_cache();
    let concurrent = QueryEngine::new(store, 4)
        .with_path_context(ctx)
        .run_batch(&requests);
    assert_eq!(fingerprints(&serial), fingerprints(&concurrent));
    assert!(serial
        .outcomes
        .iter()
        .any(|o| matches!(o.output, QueryOutput::Paths(_))));
    assert!(serial
        .outcomes
        .iter()
        .any(|o| matches!(o.output, QueryOutput::Skyline(_))));
}

#[test]
fn warm_cache_batches_are_fingerprint_equal_to_cold() {
    let (store, ctx, requests) = engine_fixture();
    let engine = QueryEngine::new(store, 2).with_path_context(ctx.clone());
    ctx.clear_cache();
    let cold = engine.run_batch(&requests);
    let cold_misses = ctx.cache_stats().misses;
    let warm = engine.run_batch(&requests);
    assert_eq!(fingerprints(&cold), fingerprints(&warm));
    // The warm batch rebuilt nothing.
    assert_eq!(ctx.cache_stats().misses, cold_misses);
    assert!(ctx.cache_stats().hits > 0);
    // Repeat-run determinism: a third run still agrees.
    assert_eq!(
        fingerprints(&warm),
        fingerprints(&engine.run_batch(&requests))
    );
}

/// Builds a small connected network for the admissibility property.
fn property_network(d: usize, nodes: usize, extra: &[(u16, u16)], seed: u64) -> MultiCostGraph {
    let mut lcg = seed | 1;
    let mut next_cost = move || {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((lcg >> 33) % 1000) as f64 / 100.0 + 0.1
    };
    let mut b = GraphBuilder::new(d);
    let ids: Vec<NodeId> = (0..nodes).map(|i| b.add_node(i as f64, 0.0)).collect();
    for w in ids.windows(2) {
        let costs: Vec<f64> = (0..d).map(|_| next_cost()).collect();
        b.add_edge(w[0], w[1], CostVec::from_slice(&costs)).unwrap();
    }
    for &(a, c) in extra {
        let a = ids[a as usize % nodes];
        let c = ids[c as usize % nodes];
        if a == c {
            continue;
        }
        let costs: Vec<f64> = (0..d).map(|_| next_cost()).collect();
        b.add_edge(a, c, CostVec::from_slice(&costs)).unwrap();
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Admissibility, cross-checked against ground truth: the prep bound of
    /// every node equals the component-wise minimum over the exhaustive
    /// Pareto path set — i.e. the vector of true per-cost shortest distances
    /// — up to float summation order (1e-9 relative, the same margin the
    /// pruned search deflates by).
    #[test]
    fn prep_bounds_match_componentwise_minima(
        d in 2usize..=4,
        nodes in 3usize..=16,
        extra in proptest::collection::vec((0u16..64, 0u16..64), 0..8),
        target_sel in 0u16..64,
        seed in any::<u64>(),
    ) {
        let graph = property_network(d, nodes, &extra, seed);
        let target = NodeId::from(target_sel as usize % nodes);
        let prep = PrepTable::build(&graph, target);
        for source in (0..nodes).map(NodeId::from) {
            let paths = pareto_paths_exhaustive(&graph, source, target).paths;
            prop_assert!(!paths.is_empty(), "backbone keeps the network connected");
            let minima = componentwise_minimum(&paths).expect("non-empty set");
            let bound = prep.bound(source);
            for i in 0..d {
                let tolerance = minima[i].abs() * 1e-9 + 1e-12;
                // Admissible: never above the true shortest distance …
                prop_assert!(
                    bound[i] <= minima[i] + tolerance,
                    "bound {} exceeds true distance {} (cost {i}, {source} → {target})",
                    bound[i],
                    minima[i]
                );
                // … and tight: it *is* that distance.
                prop_assert!(
                    bound[i] >= minima[i] - tolerance,
                    "bound {} below true distance {} (cost {i}, {source} → {target})",
                    bound[i],
                    minima[i]
                );
            }
        }
    }

    /// The scalarized serving tier inherits the same guarantees: prep-backed
    /// A* returns the **byte-identical** route and total as heuristic-free
    /// Dijkstra from every source (while never settling more nodes), and the
    /// scalarized heuristic α·L(v) never overestimates the true α-shortest
    /// distance v → target (admissibility of the collapsed bound).
    #[test]
    fn scalarized_astar_matches_dijkstra_and_alpha_bounds_are_admissible(
        d in 2usize..=4,
        nodes in 3usize..=16,
        extra in proptest::collection::vec((0u16..64, 0u16..64), 0..8),
        target_sel in 0u16..64,
        raw_alpha in proptest::collection::vec(0.01f64..1.0, 4),
        seed in any::<u64>(),
    ) {
        let graph = property_network(d, nodes, &extra, seed);
        let target = NodeId::from(target_sel as usize % nodes);
        let alpha = Preference::new(&raw_alpha[..d]).expect("positive weights are valid");
        let prep = PrepTable::build(&graph, target);
        for source in (0..nodes).map(NodeId::from) {
            let plain = scalarized_path(&graph, source, target, &alpha);
            let fast = scalarized_path_astar(&graph, source, target, &alpha, &prep);
            prop_assert!(
                fast.stats.settled <= plain.stats.settled,
                "the heuristic made A* settle more nodes ({} vs {}) at {source} → {target}",
                fast.stats.settled,
                plain.stats.settled
            );
            match (plain.path, fast.path) {
                (Some(p), Some(a)) => {
                    prop_assert_eq!(
                        &p.edges,
                        &a.edges,
                        "A* route diverged from Dijkstra at {} → {}",
                        source,
                        target
                    );
                    prop_assert_eq!(
                        p.total.to_bits(),
                        a.total.to_bits(),
                        "A* total diverged from Dijkstra at {} → {}",
                        source,
                        target
                    );
                    // Admissible: the α-collapsed prep bound never exceeds
                    // the true scalar distance (up to summation-order ulps,
                    // the margin the search deflates by).
                    let h = alpha.cost_of(&prep.bound(source));
                    prop_assert!(
                        h <= p.total * (1.0 + 1e-9) + 1e-12,
                        "α·L({source}) = {h} overestimates the true distance {}",
                        p.total
                    );
                }
                (None, None) => {}
                other => prop_assert!(
                    false,
                    "A* and Dijkstra disagree on reachability at {source} → {target}: {other:?}"
                ),
            }
        }
    }
}
