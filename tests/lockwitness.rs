//! Runtime lock-order witness: every guard overlap *observed* while a real
//! concurrent workload runs must be an edge the static analysis already
//! *predicted* (observed ⊆ static).
//!
//! The static side is the checked-in `crates/analyze/lock-order.json` (kept
//! current by `mcn-analyze check`); the dynamic side is `mcn-witness`, whose
//! tracker every lock site in storage/expansion/prep/engine registers with.
//! A witness edge missing from the static list means the analyzer's model of
//! the workspace drifted from the code — exactly the bug class this test
//! exists to catch.
//!
//! The witness compiles to a no-op unless `debug_assertions` are on, so the
//! containment assertions are gated on [`mcn_witness::is_active`]; CI also
//! runs this in release with `CARGO_PROFILE_RELEASE_DEBUG_ASSERTIONS=true`
//! so production-like timing is covered too.

use mcn::engine::{PathContext, QueryEngine, QueryRequest};
use mcn::gen::{generate_workload, WorkloadSpec};
use mcn::graph::{NetworkLocation, NodeId};
use mcn::storage::{BufferConfig, MCNStore};
use mcn_analyze::locks::LockOrderFile;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;

/// The witness registry is process-global, and both tests `reset()` it;
/// serialize them so one test's reset never races the other's assertions.
static WITNESS: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Loads the checked-in static edge list as a set of (from, to) pairs.
fn static_edges() -> BTreeSet<(String, String)> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/analyze/lock-order.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let file = LockOrderFile::from_json(&text).expect("lock-order.json parses");
    assert!(
        !file.edges.is_empty(),
        "the static lock-order graph should not be empty"
    );
    file.edges
        .into_iter()
        .map(|edge| (edge.from, edge.to))
        .collect()
}

/// A mixed 4-worker batch exercising every instrumented lock family: CEA
/// skylines (SharedAccess + buffer pool), LSA skylines (buffer pool + disk),
/// and path skylines (PrepCache), all over one shared store.
fn run_mixed_batch() {
    let workload = generate_workload(&WorkloadSpec::tiny(61));
    let graph = Arc::new(workload.graph);
    // A small pool fraction forces evictions, so the buffer pool's
    // shard/set/disk lock chains are all exercised, not just hits.
    let store = Arc::new(MCNStore::build_in_memory(&graph, BufferConfig::Fraction(0.01)).unwrap());
    let ctx = Arc::new(PathContext::new(graph.clone(), 4));
    let mut rng = ChaCha8Rng::seed_from_u64(6100);
    let n = graph.num_nodes();
    let requests: Vec<QueryRequest> = (0..16)
        .map(|i| match i % 4 {
            0 => QueryRequest::Skyline {
                location: NetworkLocation::Node(NodeId::from(rng.gen_range(0..n))),
                algorithm: mcn::Algorithm::Cea,
            },
            1 => QueryRequest::Skyline {
                location: NetworkLocation::Node(NodeId::from(rng.gen_range(0..n))),
                algorithm: mcn::Algorithm::Lsa,
            },
            2 => QueryRequest::PathSkyline {
                source: NodeId::from(rng.gen_range(0..n)),
                target: NodeId::from(rng.gen_range(0..n)),
            },
            _ => QueryRequest::TopK {
                location: NetworkLocation::Node(NodeId::from(rng.gen_range(0..n))),
                weights: vec![0.5, 0.3, 0.2],
                k: 3,
                algorithm: mcn::Algorithm::Cea,
            },
        })
        .collect();
    let result = QueryEngine::new(store, 4)
        .with_path_context(ctx)
        .run_batch(&requests);
    assert_eq!(result.outcomes.len(), requests.len());
}

#[test]
fn observed_lock_edges_are_a_subset_of_the_static_graph() {
    let _serial = WITNESS.lock().unwrap_or_else(|e| e.into_inner());
    mcn_witness::reset();
    run_mixed_batch();

    if !mcn_witness::is_active() {
        // Release build without debug assertions: the witness is compiled
        // out and there is nothing to cross-check.
        assert!(mcn_witness::observed_edges().is_empty());
        return;
    }

    let observed: BTreeSet<(String, String)> = mcn_witness::observed_edges().into_iter().collect();
    assert!(
        !observed.is_empty(),
        "a 4-worker mixed batch should overlap at least one pair of locks"
    );

    let predicted = static_edges();
    let unpredicted: Vec<_> = observed.difference(&predicted).collect();
    assert!(
        unpredicted.is_empty(),
        "witnessed lock edges missing from the static lock-order graph \
         (run `cargo run -p mcn-analyze -- check --update` after auditing): \
         {unpredicted:?}"
    );
}

/// The shape of one entry in [`mcn_witness::dump_json`]'s output.
#[derive(serde::Deserialize)]
struct WitnessEdge {
    from: String,
    to: String,
}

#[test]
fn witness_dump_json_round_trips_the_observed_edges() {
    let _serial = WITNESS.lock().unwrap_or_else(|e| e.into_inner());
    mcn_witness::reset();
    run_mixed_batch();
    let dump = mcn_witness::dump_json();
    let parsed: Vec<WitnessEdge> =
        serde::json::from_str(&dump).expect("witness dump is valid JSON");
    let expected: BTreeSet<(String, String)> = mcn_witness::observed_edges().into_iter().collect();
    let dumped: BTreeSet<(String, String)> = parsed
        .into_iter()
        .map(|edge| (edge.from, edge.to))
        .collect();
    assert_eq!(dumped, expected);
    if mcn_witness::is_active() {
        assert!(!dumped.is_empty());
    }
}
