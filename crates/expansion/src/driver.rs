//! Drivers: how a query's `d` per-cost-type expansions are advanced.
//!
//! The paper's LSA/CEA coordinators probe their `d` expansions round-robin
//! and never inspect expansion internals beyond "give me your next nearest
//! facility". That boundary is captured by [`ExpansionDriver`], with two
//! implementations:
//!
//! * [`SerialDriver`] — the classic single-threaded behaviour: each probe
//!   calls [`Expansion::next_nearest`] inline.
//! * [`ParallelDriver`] — one worker thread per expansion, pipelined through
//!   a small bounded channel: while the coordinator processes expansion `i`'s
//!   emission, expansions `j ≠ i` are already computing their next one.
//!
//! # Determinism
//!
//! The parallel driver delivers, for every expansion, *exactly* the emission
//! sequence the serial driver would deliver. An expansion is a self-contained
//! Dijkstra state machine: its emissions depend only on its own progress and
//! on the facility-mode switch broadcast when a query enters its shrinking
//! stage. The mode switch reaches workers asynchronously (they may run a few
//! emissions ahead under the old mode), but that can only add *non-candidate*
//! facilities to a worker's frontier — never change the key or relative order
//! of candidate facilities, because candidate en-heap events carry the same
//! `(distance, position)` data under either mode and pops happen in global
//! key order. Coordinators that filter non-candidates at consumption time
//! (as `SkylineSearch` does in its shrinking stage) therefore observe
//! identical streams from both drivers, and parallel results are
//! byte-identical to serial ones.

use crate::access::NetworkAccess;
use crate::expansion::{Expansion, ExpansionStats, FacilityMode};
use mcn_graph::FacilityId;
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, TryRecvError};
use std::thread::JoinHandle;

/// How many emissions a parallel worker may run ahead of the coordinator.
/// Small on purpose: deep pipelines buy no extra parallelism (the coordinator
/// consumes round-robin) but delay the facility-mode switch, wasting I/O on
/// facilities the shrinking stage no longer needs.
const PIPELINE_DEPTH: usize = 1;

/// Advances the `d` expansions of one query, hiding whether they run inline
/// or on worker threads.
pub trait ExpansionDriver {
    /// Number of expansions driven.
    fn d(&self) -> usize;

    /// The next nearest facility of expansion `i`, or `None` once that
    /// expansion is exhausted.
    fn next_nearest(&mut self, i: usize) -> Option<(FacilityId, f64)>;

    /// Broadcasts a facility-mode change to every expansion (the growing →
    /// shrinking transition).
    fn set_facility_mode(&mut self, mode: FacilityMode);

    /// Declares that expansion `i` will never be probed again (early-stop),
    /// letting the driver release its resources.
    fn retire(&mut self, i: usize);

    /// Aggregate work counters over all expansions. Exact for the serial
    /// driver; for the parallel driver it reflects work *reported* so far
    /// (retired/exhausted workers are exact, live workers may have unreported
    /// in-flight work).
    fn stats_total(&self) -> ExpansionStats;
}

fn sum_stats(iter: impl Iterator<Item = ExpansionStats>) -> ExpansionStats {
    let mut total = ExpansionStats::default();
    for s in iter {
        total.nodes_settled += s.nodes_settled;
        total.heap_pushes += s.heap_pushes;
        total.heap_pops += s.heap_pops;
        total.facilities_emitted += s.facilities_emitted;
    }
    total
}

/// Inline driver: probes call straight into the owned expansions.
pub struct SerialDriver<A: NetworkAccess> {
    expansions: Vec<Expansion<A>>,
}

impl<A: NetworkAccess> SerialDriver<A> {
    /// Wraps the given expansions.
    pub fn new(expansions: Vec<Expansion<A>>) -> Self {
        Self { expansions }
    }
}

impl<A: NetworkAccess> ExpansionDriver for SerialDriver<A> {
    fn d(&self) -> usize {
        self.expansions.len()
    }

    fn next_nearest(&mut self, i: usize) -> Option<(FacilityId, f64)> {
        self.expansions[i].next_nearest()
    }

    fn set_facility_mode(&mut self, mode: FacilityMode) {
        for ex in &mut self.expansions {
            ex.set_facility_mode(mode.clone());
        }
    }

    fn retire(&mut self, _i: usize) {}

    fn stats_total(&self) -> ExpansionStats {
        sum_stats(self.expansions.iter().map(|ex| ex.stats()))
    }
}

/// Control messages sent from the coordinator to a worker.
enum Ctrl {
    SetMode(FacilityMode),
    Stop,
}

/// One emission from a worker: the facility hit (`None` = exhausted) plus the
/// worker's counters as of this emission, so the coordinator always has
/// fresh statistics without extra synchronisation.
struct Emission {
    hit: Option<(FacilityId, f64)>,
    stats: ExpansionStats,
}

struct Worker {
    data: Option<Receiver<Emission>>,
    ctrl: Sender<Ctrl>,
    handle: Option<JoinHandle<ExpansionStats>>,
    stats: ExpansionStats,
    exhausted: bool,
}

impl Worker {
    /// Signals the worker to stop, unblocks it and collects its final
    /// counters. Idempotent. A panic on the worker thread is re-raised here
    /// (matching serial behaviour, where the same panic would reach the
    /// caller directly) — unless this thread is already unwinding, in which
    /// case the payload is dropped to avoid a double-panic abort.
    fn shut_down(&mut self) {
        let _ = self.ctrl.send(Ctrl::Stop);
        // Dropping the receiver wakes a worker blocked on its bounded send.
        self.data = None;
        if let Some(handle) = self.handle.take() {
            match handle.join() {
                Ok(final_stats) => self.stats = final_stats,
                Err(payload) => {
                    if !std::thread::panicking() {
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    }
}

/// Threaded driver: each expansion runs on its own worker thread and streams
/// emissions through a bounded channel (pipeline depth [`PIPELINE_DEPTH`]).
///
/// Dropping the driver stops and joins every worker; no threads outlive it.
pub struct ParallelDriver {
    workers: Vec<Worker>,
}

impl ParallelDriver {
    /// Moves each expansion onto its own worker thread.
    pub fn spawn<A>(expansions: Vec<Expansion<A>>) -> Self
    where
        A: NetworkAccess + Send + Sync + 'static,
    {
        let workers = expansions
            .into_iter()
            .map(|mut ex| {
                let (data_tx, data_rx) = sync_channel::<Emission>(PIPELINE_DEPTH);
                let (ctrl_tx, ctrl_rx) = channel::<Ctrl>();
                let handle = std::thread::spawn(move || {
                    loop {
                        // Apply every pending control message before
                        // computing the next emission.
                        loop {
                            match ctrl_rx.try_recv() {
                                Ok(Ctrl::SetMode(mode)) => ex.set_facility_mode(mode),
                                Ok(Ctrl::Stop) | Err(TryRecvError::Disconnected) => {
                                    return ex.stats()
                                }
                                Err(TryRecvError::Empty) => break,
                            }
                        }
                        let hit = ex.next_nearest();
                        let last = hit.is_none();
                        let emission = Emission {
                            hit,
                            stats: ex.stats(),
                        };
                        // A send error means the coordinator retired us.
                        if data_tx.send(emission).is_err() || last {
                            return ex.stats();
                        }
                    }
                });
                Worker {
                    data: Some(data_rx),
                    ctrl: ctrl_tx,
                    handle: Some(handle),
                    stats: ExpansionStats::default(),
                    exhausted: false,
                }
            })
            .collect();
        Self { workers }
    }
}

impl ExpansionDriver for ParallelDriver {
    fn d(&self) -> usize {
        self.workers.len()
    }

    fn next_nearest(&mut self, i: usize) -> Option<(FacilityId, f64)> {
        let worker = &mut self.workers[i];
        if worker.exhausted {
            return None;
        }
        let Some(data) = worker.data.as_ref() else {
            return None;
        };
        match data.recv() {
            Ok(Emission { hit, stats }) => {
                worker.stats = stats;
                if hit.is_none() {
                    worker.exhausted = true;
                    worker.shut_down();
                }
                hit
            }
            Err(_) => {
                // The worker panicked or exited; treat it as exhausted.
                worker.exhausted = true;
                worker.shut_down();
                None
            }
        }
    }

    fn set_facility_mode(&mut self, mode: FacilityMode) {
        for worker in &mut self.workers {
            if !worker.exhausted {
                let _ = worker.ctrl.send(Ctrl::SetMode(mode.clone()));
            }
        }
    }

    fn retire(&mut self, i: usize) {
        let worker = &mut self.workers[i];
        // Drain anything the worker already computed so its last reported
        // counters are as fresh as possible, then stop and join it.
        if let Some(data) = worker.data.as_ref() {
            while let Ok(emission) = data.try_recv() {
                worker.stats = emission.stats;
            }
        }
        worker.exhausted = true;
        worker.shut_down();
    }

    fn stats_total(&self) -> ExpansionStats {
        sum_stats(self.workers.iter().map(|w| w.stats))
    }
}

impl Drop for ParallelDriver {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            worker.shut_down();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::DirectAccess;
    use crate::seeds::seeds_for_location;
    use mcn_graph::{CostVec, GraphBuilder, NetworkLocation, NodeId};
    use mcn_storage::{BufferConfig, MCNStore};
    use std::sync::Arc;

    /// Compile-time thread-safety contract: expansions must be movable onto
    /// worker threads, and both drivers must be `Send` so searches embedding
    /// them are too.
    const fn assert_send<T: Send>() {}
    const _: () = assert_send::<Expansion<DirectAccess>>();
    const _: () = assert_send::<Expansion<crate::access::SharedAccess>>();
    const _: () = assert_send::<SerialDriver<DirectAccess>>();
    const _: () = assert_send::<ParallelDriver>();

    /// Grid-ish line network with facilities on every other edge.
    fn store(d: usize) -> Arc<MCNStore> {
        let mut b = GraphBuilder::new(d);
        let n: Vec<_> = (0..20).map(|i| b.add_node(i as f64, 0.0)).collect();
        for (i, w) in n.windows(2).enumerate() {
            let costs: Vec<f64> = (0..d).map(|j| 1.0 + ((i + j) % 5) as f64).collect();
            let e = b.add_edge(w[0], w[1], CostVec::from_slice(&costs)).unwrap();
            if i % 2 == 0 {
                b.add_facility(e, 0.25).unwrap();
            }
        }
        let g = b.build().unwrap();
        Arc::new(MCNStore::build_in_memory(&g, BufferConfig::Pages(16)).unwrap())
    }

    fn make_expansions(store: &Arc<MCNStore>, d: usize) -> Vec<Expansion<DirectAccess>> {
        let access = Arc::new(DirectAccess::new(store.clone()));
        let seeds = seeds_for_location(access.as_ref(), NetworkLocation::Node(NodeId::new(0)));
        (0..d)
            .map(|i| Expansion::new(access.clone(), i, &seeds, FacilityMode::All))
            .collect()
    }

    fn drain<D: ExpansionDriver>(driver: &mut D, i: usize) -> Vec<(FacilityId, u64)> {
        let mut out = Vec::new();
        while let Some((f, c)) = driver.next_nearest(i) {
            out.push((f, c.to_bits()));
        }
        out
    }

    #[test]
    fn parallel_driver_streams_match_serial() {
        let d = 3;
        let store = store(d);
        let mut serial = SerialDriver::new(make_expansions(&store, d));
        let mut parallel = ParallelDriver::spawn(make_expansions(&store, d));
        assert_eq!(serial.d(), d);
        assert_eq!(parallel.d(), d);
        for i in 0..d {
            assert_eq!(drain(&mut serial, i), drain(&mut parallel, i), "cost {i}");
        }
        // Exhausted expansions keep returning None.
        assert_eq!(parallel.next_nearest(0), None);
        assert_eq!(serial.next_nearest(0), None);
    }

    #[test]
    fn retire_stops_workers_without_deadlock() {
        let d = 2;
        let store = store(d);
        let mut parallel = ParallelDriver::spawn(make_expansions(&store, d));
        let first = parallel.next_nearest(0);
        assert!(first.is_some());
        parallel.retire(0);
        assert_eq!(parallel.next_nearest(0), None);
        // The other worker is unaffected.
        assert!(parallel.next_nearest(1).is_some());
        // Dropping with a live worker joins it cleanly (no hang = pass).
    }

    #[test]
    fn stats_totals_are_reported() {
        let d = 2;
        let store = store(d);
        let mut serial = SerialDriver::new(make_expansions(&store, d));
        let mut parallel = ParallelDriver::spawn(make_expansions(&store, d));
        for i in 0..d {
            drain(&mut serial, i);
            drain(&mut parallel, i);
        }
        let s = serial.stats_total();
        let p = parallel.stats_total();
        // Both drivers ran their expansions to exhaustion, so the totals
        // agree exactly.
        assert_eq!(s.facilities_emitted, p.facilities_emitted);
        assert_eq!(s.nodes_settled, p.nodes_settled);
        assert!(s.facilities_emitted > 0);
    }

    /// Access layer that panics after a fixed number of adjacency reads,
    /// standing in for a storage failure on a worker thread.
    struct PanickyAccess {
        inner: DirectAccess,
        reads_left: std::sync::atomic::AtomicUsize,
    }

    impl crate::access::NetworkAccess for PanickyAccess {
        fn num_cost_types(&self) -> usize {
            self.inner.num_cost_types()
        }
        fn adjacency(&self, node: NodeId) -> std::sync::Arc<mcn_storage::AdjacencyList> {
            if self
                .reads_left
                .fetch_sub(1, std::sync::atomic::Ordering::Relaxed)
                == 0
            {
                panic!("simulated storage failure");
            }
            self.inner.adjacency(node)
        }
        fn facilities_in_run(
            &self,
            run: &mcn_storage::FacilityRun,
        ) -> std::sync::Arc<Vec<(FacilityId, f64)>> {
            self.inner.facilities_in_run(run)
        }
        fn facility_info(&self, f: FacilityId) -> Option<mcn_storage::store::FacilityInfo> {
            self.inner.facility_info(f)
        }
        fn edge_endpoints(
            &self,
            e: mcn_graph::EdgeId,
        ) -> Option<mcn_storage::store::EdgeEndpoints> {
            self.inner.edge_endpoints(e)
        }
        fn io_stats(&self) -> mcn_storage::IoStats {
            self.inner.io_stats()
        }
    }

    #[test]
    #[should_panic(expected = "simulated storage failure")]
    fn worker_panics_propagate_to_the_coordinator() {
        let store = store(2);
        let access = Arc::new(PanickyAccess {
            inner: DirectAccess::new(store),
            reads_left: std::sync::atomic::AtomicUsize::new(5),
        });
        let seeds = seeds_for_location(access.as_ref(), NetworkLocation::Node(NodeId::new(0)));
        let expansions = vec![
            Expansion::new(access.clone(), 0, &seeds, FacilityMode::All),
            Expansion::new(access, 1, &seeds, FacilityMode::All),
        ];
        let mut parallel = ParallelDriver::spawn(expansions);
        // Draining must surface the worker's panic instead of reporting a
        // silently truncated stream.
        for i in 0..2 {
            while parallel.next_nearest(i).is_some() {}
        }
    }

    #[test]
    fn mode_change_reaches_workers() {
        let d = 2;
        let store = store(d);
        let total = drain(&mut SerialDriver::new(make_expansions(&store, d)), 0).len();
        assert!(total >= 5, "fixture must have several facilities");
        let mut parallel = ParallelDriver::spawn(make_expansions(&store, d));
        // Switching to Ignore mid-stream stops *new* facilities from being
        // en-heaped. The worker may deliver a few stragglers — emissions
        // pipelined before the switch was applied, plus facilities already
        // in its frontier — but the bounded pipeline keeps it from running
        // far ahead, so it can never produce the full facility set.
        let first = parallel.next_nearest(0);
        assert!(first.is_some());
        parallel.set_facility_mode(FacilityMode::Ignore);
        let mut after = 0;
        while parallel.next_nearest(0).is_some() {
            after += 1;
        }
        assert!(
            after + 1 < total,
            "mode switch was never applied: all {total} facilities emitted"
        );
    }
}
