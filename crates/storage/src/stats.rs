//! I/O accounting.
//!
//! The paper's evaluation is dominated by I/O cost (84–95 % of total running
//! time). Because this reproduction runs on a simulated disk, raw wall-clock
//! time would understate the difference between LSA and CEA; we therefore
//! track logical reads, buffer hits/misses and physical page transfers
//! explicitly, and let the benchmark harness *charge* a configurable latency
//! per physical read to recover the paper's time axis.

use serde::{Deserialize, Serialize};
use std::ops::Sub;

/// Counters describing the I/O activity of a store (or the delta between two
/// snapshots of it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoStats {
    /// Page requests issued by callers (through the buffer pool).
    pub logical_reads: u64,
    /// Logical reads satisfied from the buffer pool.
    pub buffer_hits: u64,
    /// Logical reads that had to go to the disk manager.
    pub buffer_misses: u64,
    /// Pages physically read from the underlying disk manager.
    pub physical_reads: u64,
    /// Pages physically written to the underlying disk manager.
    pub physical_writes: u64,
}

impl IoStats {
    /// Buffer hit ratio in `[0, 1]`; zero when no logical reads happened.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            0.0
        } else {
            self.buffer_hits as f64 / self.logical_reads as f64
        }
    }

    /// Charged I/O time in seconds assuming `latency` seconds per physical read.
    ///
    /// This is the model used by the experiment harness to reproduce the
    /// paper's time axis: total time ≈ physical reads × random-read latency
    /// (+ CPU, which the harness measures separately).
    pub fn charged_read_time(&self, latency: f64) -> f64 {
        self.physical_reads as f64 * latency
    }

    /// Publish this snapshot into a metrics registry under the given
    /// labels (absolute values, so re-publishing is idempotent).
    ///
    /// Because the counters come from one consistent [`IoStats`] snapshot
    /// (see `BufferPool::stats`), the published metrics reconcile exactly:
    /// `storage.logical_reads == storage.buffer_hits + storage.buffer_misses`
    /// and `storage.physical_reads ≤ storage.buffer_misses`. The five
    /// counter stores are not atomic as a group, though — when several
    /// threads publish under the same labels concurrently, a reader may
    /// observe a mix of two snapshots. Keep one publisher per label set
    /// (the engine publishes once per batch) when byte-exact reconciliation
    /// matters.
    pub fn publish(&self, registry: &mcn_obs::MetricsRegistry, labels: &[(&str, &str)]) {
        registry
            .counter("storage.logical_reads", labels)
            .set(self.logical_reads);
        registry
            .counter("storage.buffer_hits", labels)
            .set(self.buffer_hits);
        registry
            .counter("storage.buffer_misses", labels)
            .set(self.buffer_misses);
        registry
            .counter("storage.physical_reads", labels)
            .set(self.physical_reads);
        registry
            .counter("storage.physical_writes", labels)
            .set(self.physical_writes);
        registry
            .gauge("storage.hit_ratio", labels)
            .set(self.hit_ratio());
    }

    /// Adds another snapshot's counters to this one.
    pub fn accumulate(&mut self, other: &IoStats) {
        self.logical_reads += other.logical_reads;
        self.buffer_hits += other.buffer_hits;
        self.buffer_misses += other.buffer_misses;
        self.physical_reads += other.physical_reads;
        self.physical_writes += other.physical_writes;
    }
}

impl Sub for IoStats {
    type Output = IoStats;

    /// Computes `self - rhs` counter-wise (saturating); used to obtain the
    /// activity between two snapshots.
    fn sub(self, rhs: IoStats) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads.saturating_sub(rhs.logical_reads),
            buffer_hits: self.buffer_hits.saturating_sub(rhs.buffer_hits),
            buffer_misses: self.buffer_misses.saturating_sub(rhs.buffer_misses),
            physical_reads: self.physical_reads.saturating_sub(rhs.physical_reads),
            physical_writes: self.physical_writes.saturating_sub(rhs.physical_writes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_handles_zero_reads() {
        assert_eq!(IoStats::default().hit_ratio(), 0.0);
        let s = IoStats {
            logical_reads: 10,
            buffer_hits: 7,
            buffer_misses: 3,
            physical_reads: 3,
            physical_writes: 0,
        };
        assert!((s.hit_ratio() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn charged_time_scales_with_physical_reads() {
        let s = IoStats {
            physical_reads: 200,
            ..Default::default()
        };
        assert!((s.charged_read_time(0.01) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn subtraction_and_accumulation() {
        let a = IoStats {
            logical_reads: 10,
            buffer_hits: 4,
            buffer_misses: 6,
            physical_reads: 6,
            physical_writes: 1,
        };
        let b = IoStats {
            logical_reads: 3,
            buffer_hits: 1,
            buffer_misses: 2,
            physical_reads: 2,
            physical_writes: 0,
        };
        let d = a - b;
        assert_eq!(d.logical_reads, 7);
        assert_eq!(d.physical_reads, 4);
        let mut acc = b;
        acc.accumulate(&d);
        assert_eq!(acc, a);
        // Saturation instead of underflow.
        assert_eq!((b - a).logical_reads, 0);
    }

    #[test]
    fn publish_mirrors_counters_into_registry() {
        let s = IoStats {
            logical_reads: 10,
            buffer_hits: 7,
            buffer_misses: 3,
            physical_reads: 2,
            physical_writes: 1,
        };
        let registry = mcn_obs::MetricsRegistry::new();
        s.publish(&registry, &[("region", "r0")]);
        let snap = registry.snapshot();
        let labels = [("region", "r0")];
        assert_eq!(
            snap.counter_value("storage.logical_reads", &labels),
            Some(10)
        );
        assert_eq!(snap.counter_value("storage.buffer_hits", &labels), Some(7));
        assert_eq!(
            snap.counter_value("storage.buffer_misses", &labels),
            Some(3)
        );
        assert_eq!(
            snap.counter_value("storage.physical_reads", &labels),
            Some(2)
        );
        assert_eq!(
            snap.counter_value("storage.physical_writes", &labels),
            Some(1)
        );
        assert!((snap.gauge_value("storage.hit_ratio", &labels).unwrap() - 0.7).abs() < 1e-12);
        // Republishing is idempotent (absolute values, not increments).
        s.publish(&registry, &[("region", "r0")]);
        assert_eq!(
            registry
                .snapshot()
                .counter_value("storage.logical_reads", &labels),
            Some(10)
        );
    }
}
