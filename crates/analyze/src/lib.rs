//! `mcn-analyze`: static enforcement of the invariants this reproduction
//! lives by — byte-identical skylines and strict lock discipline.
//!
//! The regression gates (`logical_reads.json`, `labels.json`) catch
//! determinism bugs *after* they ship; this pass catches the bug classes
//! at their source, mechanically, before review: locks held across
//! physical reads (the PR 3 incident), hash-order iteration feeding
//! fingerprints or baselines, exact float comparison on deflated bounds
//! (the PR 5 incident), panicking workers, ad-hoc threads, and
//! concurrency-facing types without compile-time `Send`/`Sync` proof.
//!
//! The analysis is dependency-free: a hand-rolled lexer (no syn/quote —
//! the build environment is offline) plus token-pattern rules in
//! [`rules`]. Findings diff against the checked-in
//! `analyze-baseline.json` exactly like the bench gates; suppression is a
//! reasoned comment:
//!
//! ```text
//! // mcn-lint: allow(lock-across-io, reason = "file handle is the lock")
//! ```
//!
//! Run it with `cargo run -p mcn-analyze -- check`.

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

use std::fmt;
use std::fs;
use std::path::Path;

use baseline::{Baseline, Diff};
use workspace::Workspace;

/// One lint finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// Rule name (see [`rules::ALL_RULES`]).
    pub rule: String,
    /// 1-based line.
    pub line: u32,
    /// Trimmed source line, for the report and baseline matching.
    pub excerpt: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )?;
        write!(f, "    | {}", self.excerpt)
    }
}

/// The outcome of a full `check` run.
#[derive(Clone, Debug)]
pub struct CheckOutcome {
    /// Every finding that survived allow-suppression, baseline included.
    pub findings: Vec<Finding>,
    /// The diff against the baseline; clean iff both sides are empty.
    pub diff: Diff,
    /// Files analyzed, for the report.
    pub files: usize,
}

impl CheckOutcome {
    /// True when there is nothing new and nothing stale.
    pub fn is_clean(&self) -> bool {
        self.diff.new.is_empty() && self.diff.stale.is_empty()
    }
}

/// Runs the full pass: load the workspace at `root`, run every rule, diff
/// against the baseline at `baseline_path` (a missing file is an empty
/// baseline). With `update`, rewrites the baseline to accept exactly the
/// current findings instead of diffing.
pub fn check(root: &Path, baseline_path: &Path, update: bool) -> Result<CheckOutcome, String> {
    let ws = Workspace::load(root).map_err(|e| format!("loading workspace: {e}"))?;
    let findings = rules::run_all(&ws);
    let files = ws.files.len();
    if update {
        let b = Baseline::from_findings(&findings);
        fs::write(baseline_path, b.to_json() + "\n")
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        return Ok(CheckOutcome {
            diff: Diff::default(),
            findings,
            files,
        });
    }
    let baseline = match fs::read_to_string(baseline_path) {
        Ok(text) => Baseline::from_json(&text)
            .map_err(|e| format!("parsing {}: {e}", baseline_path.display()))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("reading {}: {e}", baseline_path.display())),
    };
    let diff = baseline.diff(&findings);
    Ok(CheckOutcome {
        findings,
        diff,
        files,
    })
}
