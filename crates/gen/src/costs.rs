//! Edge-cost assignment: independent, correlated and anti-correlated
//! distributions.
//!
//! These are the standard distributions of skyline evaluation (Börzsönyi et
//! al.) that the paper uses for its Section VI experiments:
//!
//! * **independent** — each of the `d` costs of an edge is drawn
//!   independently;
//! * **correlated** — when one cost of an edge is low the others tend to be
//!   low too (e.g. a short edge is also quick and cheap);
//! * **anti-correlated** — when one cost is low the others tend to be high
//!   (e.g. the fast highway is the expensive tolled one). This is the paper's
//!   default and the hardest case (largest skylines).
//!
//! All costs are strictly positive and proportional to the edge's Euclidean
//! length, so they behave like plausible travel metrics.

use crate::network::Topology;
use mcn_graph::CostVec;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The joint distribution of the `d` costs of an edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CostDistribution {
    /// Costs are drawn independently of each other.
    Independent,
    /// Costs are positively correlated.
    Correlated,
    /// Costs are negatively correlated (the paper's default).
    AntiCorrelated,
}

impl CostDistribution {
    /// Short label used in experiment tables ("IND", "CORR", "ANTI").
    pub fn label(&self) -> &'static str {
        match self {
            CostDistribution::Independent => "IND",
            CostDistribution::Correlated => "CORR",
            CostDistribution::AntiCorrelated => "ANTI",
        }
    }
}

/// Assigns a `d`-dimensional cost vector to every edge of `topology` following
/// `distribution`. Deterministic in `seed`.
pub fn assign_costs(
    topology: &Topology,
    d: usize,
    distribution: CostDistribution,
    seed: u64,
) -> Vec<CostVec> {
    assert!(d >= 1, "at least one cost type required");
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    topology
        .edges
        .iter()
        .map(|&(_, _, length)| {
            let factors = cost_factors(&mut rng, d, distribution);
            let mut cv = CostVec::zeros(d);
            for i in 0..d {
                cv[i] = (length * factors[i]).max(1e-9);
            }
            cv
        })
        .collect()
}

/// Draws `d` multiplicative factors (centred around 1) with the requested
/// joint distribution.
fn cost_factors(rng: &mut ChaCha8Rng, d: usize, distribution: CostDistribution) -> Vec<f64> {
    match distribution {
        CostDistribution::Independent => (0..d).map(|_| rng.gen_range(0.2..1.8)).collect(),
        CostDistribution::Correlated => {
            let base: f64 = rng.gen_range(0.2..1.8);
            (0..d)
                .map(|_| (base + rng.gen_range(-0.1f64..0.1)).clamp(0.05, 2.0))
                .collect()
        }
        CostDistribution::AntiCorrelated => {
            // Draw a point near the simplex Σ factors = d: components compete,
            // so a small value in one dimension forces large values elsewhere.
            let mut raw: Vec<f64> = (0..d).map(|_| rng.gen_range(0.05f64..1.0)).collect();
            let sum: f64 = raw.iter().sum();
            let target = d as f64;
            for f in &mut raw {
                *f = (*f / sum * target + rng.gen_range(-0.05..0.05)).clamp(0.05, 2.0 * target);
            }
            raw
        }
    }
}

/// Empirical Pearson correlation between cost dimension `a` and `b` over a set
/// of cost vectors — used by tests and sanity checks of generated workloads.
pub fn empirical_correlation(costs: &[CostVec], a: usize, b: usize) -> f64 {
    let n = costs.len() as f64;
    if costs.is_empty() {
        return 0.0;
    }
    let mean = |i: usize| costs.iter().map(|c| c[i]).sum::<f64>() / n;
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for c in costs {
        cov += (c[a] - ma) * (c[b] - mb);
        va += (c[a] - ma).powi(2);
        vb += (c[b] - mb).powi(2);
    }
    // mcn-lint: allow(float-eq, reason = "exact zero-variance guard before division; an epsilon would misclassify legitimately tiny variances")
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{generate_topology, NetworkSpec};

    fn sample(distribution: CostDistribution) -> Vec<CostVec> {
        let topo = generate_topology(&NetworkSpec::with_target_nodes(2000, 5));
        assign_costs(&topo, 4, distribution, 11)
    }

    #[test]
    fn costs_are_positive_and_dimensioned() {
        for dist in [
            CostDistribution::Independent,
            CostDistribution::Correlated,
            CostDistribution::AntiCorrelated,
        ] {
            let costs = sample(dist);
            assert!(!costs.is_empty());
            for cv in &costs {
                assert_eq!(cv.len(), 4);
                assert!(
                    cv.iter().all(|c| c > 0.0),
                    "{dist:?} produced non-positive cost"
                );
            }
        }
    }

    #[test]
    fn correlation_signs_match_distribution() {
        // Normalise by edge length influence by looking at factor ratios: the
        // raw costs share the length factor, so compare the correlation ranks
        // relative to the independent baseline instead of absolute signs.
        let corr = empirical_correlation(&sample(CostDistribution::Correlated), 0, 1);
        let anti = empirical_correlation(&sample(CostDistribution::AntiCorrelated), 0, 1);
        let ind = empirical_correlation(&sample(CostDistribution::Independent), 0, 1);
        assert!(
            corr > ind,
            "correlated ({corr}) should exceed independent ({ind})"
        );
        assert!(
            anti < ind,
            "anti-correlated ({anti}) should fall below independent ({ind})"
        );
        assert!(corr > 0.8, "correlated correlation too weak: {corr}");
    }

    #[test]
    fn assignment_is_deterministic() {
        let topo = generate_topology(&NetworkSpec::with_target_nodes(400, 1));
        let a = assign_costs(&topo, 3, CostDistribution::AntiCorrelated, 7);
        let b = assign_costs(&topo, 3, CostDistribution::AntiCorrelated, 7);
        assert_eq!(a, b);
        let c = assign_costs(&topo, 3, CostDistribution::AntiCorrelated, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(CostDistribution::Independent.label(), "IND");
        assert_eq!(CostDistribution::Correlated.label(), "CORR");
        assert_eq!(CostDistribution::AntiCorrelated.label(), "ANTI");
    }
}
