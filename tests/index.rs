//! Route-index equivalence: answers served from the hierarchical
//! partial-path index must be **byte-identical** to the direct algorithms —
//! `scalarized_path` for α queries and `pareto_paths_prepped` for path
//! skylines — over random graphs at every dimension, and engine batches
//! mixing index-served and prep-backed contexts must stay fingerprint-equal
//! serial vs concurrent.

use mcn::alpha::{scalarized_path, Preference};
use mcn::engine::{PathContext, QueryEngine, QueryOutput, QueryRequest};
use mcn::gen::{generate_workload, WorkloadSpec};
use mcn::graph::{CostVec, GraphBuilder, MultiCostGraph, NodeId};
use mcn::index::{IndexConfig, RouteIndex};
use mcn::mcpp::pareto_paths_prepped;
use mcn::prep::PrepTable;
use mcn::storage::{BufferConfig, MCNStore};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Builds a small connected network: a backbone line plus random extra
/// edges, with deterministic LCG-drawn positive costs.
fn property_network(d: usize, nodes: usize, extra: &[(u16, u16)], seed: u64) -> MultiCostGraph {
    let mut lcg = seed | 1;
    let mut next_cost = move || {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((lcg >> 33) % 1000) as f64 / 100.0 + 0.1
    };
    let mut b = GraphBuilder::new(d);
    let ids: Vec<NodeId> = (0..nodes).map(|i| b.add_node(i as f64, 0.0)).collect();
    for w in ids.windows(2) {
        let costs: Vec<f64> = (0..d).map(|_| next_cost()).collect();
        b.add_edge(w[0], w[1], CostVec::from_slice(&costs)).unwrap();
    }
    for &(a, c) in extra {
        let a = ids[a as usize % nodes];
        let c = ids[c as usize % nodes];
        if a == c {
            continue;
        }
        let costs: Vec<f64> = (0..d).map(|_| next_cost()).collect();
        b.add_edge(a, c, CostVec::from_slice(&costs)).unwrap();
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Index-served α routes and path skylines are byte-identical to the
    /// direct algorithms from every source, at d = 2..4, over random
    /// topologies — edges, IEEE-754 total bits and full Pareto sets alike.
    #[test]
    fn index_answers_match_direct_algorithms(
        d in 2usize..=4,
        nodes in 3usize..=14,
        extra in proptest::collection::vec((0u16..64, 0u16..64), 0..8),
        target_sel in 0u16..64,
        raw_alpha in proptest::collection::vec(0.01f64..1.0, 4),
        seed in any::<u64>(),
    ) {
        let graph = property_network(d, nodes, &extra, seed);
        let index = RouteIndex::build(&graph, &IndexConfig::default());
        prop_assert!(index.exact(), "small builds must stay exact");
        prop_assert!(index.serves(&graph));
        let target = NodeId::from(target_sel as usize % nodes);
        let alpha = Preference::new(&raw_alpha[..d]).expect("positive weights are valid");
        let prep = PrepTable::build(&graph, target);
        for source in (0..nodes).map(NodeId::from) {
            let direct = scalarized_path(&graph, source, target, &alpha);
            let via = index.alpha_path(&graph, source, target, &alpha);
            match (direct.path, via.path) {
                (Some(p), Some(v)) => {
                    prop_assert_eq!(
                        &p.edges, &v.edges,
                        "index route diverged at {} → {}", source, target
                    );
                    prop_assert_eq!(
                        p.total.to_bits(), v.total.to_bits(),
                        "index total diverged at {} → {}", source, target
                    );
                }
                (None, None) => {}
                other => prop_assert!(
                    false,
                    "index and Dijkstra disagree on reachability at {source} → {target}: {other:?}"
                ),
            }
            let direct_sky = pareto_paths_prepped(&graph, source, target, &prep);
            let via_sky = index.skyline_paths(&graph, source, target);
            prop_assert_eq!(
                &direct_sky.paths, &via_sky.paths,
                "index skyline diverged at {} → {}", source, target
            );
        }
    }
}

/// The engine fixture: one seeded workload graph with a batch mixing
/// α-path and path-skyline requests over a handful of shared targets.
fn engine_fixture() -> (Arc<MCNStore>, Arc<MultiCostGraph>, Vec<QueryRequest>) {
    let graph = Arc::new(
        generate_workload(&WorkloadSpec {
            nodes: 160,
            facilities: 30,
            cost_types: 3,
            queries: 0,
            ..WorkloadSpec::tiny(91)
        })
        .graph,
    );
    let store = Arc::new(MCNStore::build_in_memory(&graph, BufferConfig::Pages(32)).unwrap());
    let mut rng = ChaCha8Rng::seed_from_u64(9100);
    let n = graph.num_nodes();
    let targets: Vec<NodeId> = (0..4).map(|_| NodeId::from(rng.gen_range(0..n))).collect();
    let requests: Vec<QueryRequest> = (0..16)
        .map(|i| {
            let source = NodeId::from(rng.gen_range(0..n));
            let target = targets[i % targets.len()];
            if i % 2 == 0 {
                let w: Vec<f64> = (0..3).map(|_| rng.gen_range(0.05..1.0)).collect();
                QueryRequest::AlphaPath {
                    source,
                    target,
                    alpha: Preference::new(&w).unwrap(),
                }
            } else {
                QueryRequest::PathSkyline { source, target }
            }
        })
        .collect();
    (store, graph, requests)
}

fn fingerprints(result: &mcn::engine::BatchResult) -> Vec<String> {
    result
        .outcomes
        .iter()
        .map(|o| o.output.fingerprint())
        .collect()
}

/// Index-backed and prep-backed engines answer the same mixed batch with
/// byte-identical outputs, serial and with four workers — and the indexed
/// run actually serves from the index (no prep-cache traffic).
#[test]
fn mixed_engine_batches_agree_across_index_and_worker_counts() {
    let (store, graph, requests) = engine_fixture();
    let index = Arc::new(RouteIndex::build(&graph, &IndexConfig::with_regions(3)));
    assert!(index.serves(&graph), "fixture build must stay exact");

    let prep_ctx = Arc::new(PathContext::new(graph.clone(), 8));
    let baseline = QueryEngine::new(store.clone(), 1)
        .with_path_context(prep_ctx)
        .run_batch(&requests);
    let reference = fingerprints(&baseline);
    assert!(baseline
        .outcomes
        .iter()
        .any(|o| matches!(o.output, QueryOutput::Paths(_))));

    for workers in [1usize, 4] {
        let indexed_ctx =
            Arc::new(PathContext::new(graph.clone(), 8).with_route_index(index.clone()));
        let indexed = QueryEngine::new(store.clone(), workers)
            .with_path_context(indexed_ctx.clone())
            .run_batch(&requests);
        assert_eq!(
            reference,
            fingerprints(&indexed),
            "indexed batch diverged at {workers} worker(s)"
        );
        for outcome in &indexed.outcomes {
            assert!(
                outcome.stats.algorithm.ends_with("-index"),
                "request served by {} instead of the index",
                outcome.stats.algorithm
            );
        }
        // The index answered everything: the prep-table cache saw no traffic.
        let cache = indexed_ctx.cache_stats();
        assert_eq!(cache.hits + cache.misses, 0);
    }
}
