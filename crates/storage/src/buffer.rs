//! A lock-striped LRU buffer pool over a [`DiskManager`].
//!
//! The paper's experiments vary the buffer size between 0 % and 2 % of the
//! pages occupied by the MCN (1 % by default) and show that LSA — which may
//! request the same adjacency or facility page up to `d` times — benefits from
//! the buffer much more than CEA, which touches each page at most once. The
//! pool therefore keeps precise hit/miss counters (see [`IoStats`]).
//!
//! # Striping
//!
//! The pool is divided into `N` independent **shards**, each a fixed-capacity
//! LRU protected by its own mutex; a page is assigned to the shard
//! `page_id % N`. Concurrent queries touching different graph regions (and
//! therefore different pages) proceed without contending on a single global
//! lock, which is what makes the multi-query engine (`mcn-engine`) scale.
//! `N` is chosen from the capacity (one shard per [`MIN_PAGES_PER_SHARD`]
//! cached pages, at most [`MAX_SHARDS`]); [`BufferPool::with_shards`] pins an
//! explicit count — `with_shards(disk, cap, 1)` recovers the exact global-LRU
//! eviction order of the unsharded pool.
//!
//! # Counter consistency
//!
//! The hit/miss/logical counters live **inside** the shard they describe and
//! are updated under the shard lock, in the same critical section as the
//! lookup they count. A snapshot ([`BufferPool::stats`]) therefore always
//! satisfies `logical_reads == buffer_hits + buffer_misses` exactly, even
//! while other threads are reading through the pool — every shard contributes
//! an internally consistent triple, and a sum of consistent triples is
//! consistent. The *physical* counters come from the disk manager's atomics
//! and are only monotonic with respect to the pool counters: a concurrent
//! snapshot may observe a miss whose physical read has not been issued yet
//! (so `physical_reads` can briefly trail `buffer_misses` by the number of
//! in-flight misses). Both facts are asserted by
//! `concurrent_snapshots_are_consistent` below.

use crate::disk::DiskManager;
use crate::page::{Page, PageId};
use crate::stats::IoStats;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// Witness lock-class ids — the exact strings `mcn-analyze` derives
/// (`crate::Type.field`), so observed edges diff against the static graph.
const W_POOL: &str = "storage::BufferPool.shards";
const W_SHARD: &str = "storage::ShardSet.shards";

/// Upper bound on the number of LRU shards.
pub const MAX_SHARDS: usize = 8;

/// Minimum cached pages per shard before another shard is added; keeps tiny
/// buffers (the paper's 0.5 %–2 % settings on small stores) from fragmenting
/// into single-page segments.
pub const MIN_PAGES_PER_SHARD: usize = 4;

/// A fixed-capacity page cache with least-recently-used eviction, striped
/// across independently locked shards.
///
/// * `capacity == 0` models the paper's "no buffer" configuration: every
///   logical read becomes a physical read.
/// * The pool is read-oriented (the MCN store is write-once/read-many);
///   [`BufferPool::write_through`] updates both the cache and the disk.
pub struct BufferPool {
    disk: Arc<dyn DiskManager>,
    /// The shard set is only rebuilt by [`BufferPool::set_capacity`]; reads
    /// take the shared lock, so the common path is one shared acquisition
    /// plus one shard mutex.
    shards: RwLock<ShardSet>,
    /// Shard count pinned by [`BufferPool::with_shards`], honoured across
    /// [`BufferPool::set_capacity`] calls; `None` = derive from capacity.
    pinned_shards: Option<usize>,
}

const _: () = crate::assert_send_sync::<BufferPool>();

/// The striped cache: per-shard LRUs plus the total configured capacity.
struct ShardSet {
    capacity: usize,
    shards: Vec<Mutex<Shard>>,
}

/// One stripe: an LRU segment plus the I/O counters for the pages it owns.
/// Counters are mutated under the shard lock so any snapshot of the triple is
/// consistent (`logical == hits + misses`).
struct Shard {
    lru: Lru,
    logical_reads: u64,
    hits: u64,
    misses: u64,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Self {
            lru: Lru::new(capacity),
            logical_reads: 0,
            hits: 0,
            misses: 0,
        }
    }
}

impl ShardSet {
    /// Builds `count` shards sharing `capacity` pages as evenly as possible
    /// (the first `capacity % count` shards hold one extra page).
    fn new(capacity: usize, count: usize) -> Self {
        assert!(count >= 1, "a buffer pool needs at least one shard");
        let base = capacity / count;
        let extra = capacity % count;
        let shards = (0..count)
            .map(|i| Mutex::new(Shard::new(base + usize::from(i < extra))))
            .collect();
        Self { capacity, shards }
    }

    /// The shard owning `id`.
    fn shard_of(&self, id: PageId) -> &Mutex<Shard> {
        &self.shards[id.raw() as usize % self.shards.len()]
    }
}

/// Default shard count for a pool of `capacity` pages.
fn default_shard_count(capacity: usize) -> usize {
    (capacity / MIN_PAGES_PER_SHARD).clamp(1, MAX_SHARDS)
}

/// Doubly-linked-list LRU over page frames. `usize::MAX` acts as the null link.
struct Lru {
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    free: Vec<usize>,
}

struct Frame {
    id: PageId,
    page: Page,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl Lru {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            frames: Vec::with_capacity(capacity.min(1024)),
            map: HashMap::with_capacity(capacity.min(1024)),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.frames[idx].prev, self.frames[idx].next);
        if prev != NIL {
            self.frames[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.frames[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.frames[idx].prev = NIL;
        self.frames[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.frames[idx].prev = NIL;
        self.frames[idx].next = self.head;
        if self.head != NIL {
            self.frames[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.detach(idx);
        self.push_front(idx);
    }

    /// Looks up a page, marking it most recently used.
    fn get(&mut self, id: PageId) -> Option<usize> {
        let idx = *self.map.get(&id)?;
        self.touch(idx);
        Some(idx)
    }

    /// Inserts a page, evicting the LRU entry if at capacity. Returns the frame
    /// index, or `None` if the capacity is zero.
    fn insert(&mut self, id: PageId, page: Page) -> Option<usize> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&idx) = self.map.get(&id) {
            self.frames[idx].page = page;
            self.touch(idx);
            return Some(idx);
        }
        let idx = if self.map.len() < self.capacity {
            if let Some(idx) = self.free.pop() {
                idx
            } else {
                self.frames.push(Frame {
                    id,
                    page: Page::zeroed(),
                    prev: NIL,
                    next: NIL,
                });
                self.frames.len() - 1
            }
        } else {
            // Evict the least recently used frame.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "capacity > 0 but no victim");
            self.detach(victim);
            let old_id = self.frames[victim].id;
            self.map.remove(&old_id);
            victim
        };
        self.frames[idx].id = id;
        self.frames[idx].page = page;
        self.map.insert(id, idx);
        self.push_front(idx);
        Some(idx)
    }

    fn clear(&mut self) {
        self.map.clear();
        self.frames.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

impl BufferPool {
    /// Creates a pool over `disk` holding at most `capacity` pages, striped
    /// over the default shard count for that capacity.
    pub fn new(disk: Arc<dyn DiskManager>, capacity: usize) -> Self {
        Self {
            disk,
            shards: RwLock::new(ShardSet::new(capacity, default_shard_count(capacity))),
            pinned_shards: None,
        }
    }

    /// Creates a pool with an explicit shard count, which is also honoured
    /// by later [`BufferPool::set_capacity`] calls. `with_shards(d, c, 1)`
    /// reproduces the strict global LRU eviction order of an unsharded pool.
    ///
    /// The effective count is capped at the capacity so every shard can hold
    /// at least one page (a zero-capacity pool uses a single shard) —
    /// otherwise the starved shards would silently behave as the "no buffer"
    /// configuration for their slice of the page space.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn with_shards(disk: Arc<dyn DiskManager>, capacity: usize, shards: usize) -> Self {
        assert!(shards >= 1, "a buffer pool needs at least one shard");
        Self {
            disk,
            shards: RwLock::new(ShardSet::new(capacity, shards.min(capacity.max(1)))),
            pinned_shards: Some(shards),
        }
    }

    /// The underlying disk manager.
    pub fn disk(&self) -> &Arc<dyn DiskManager> {
        &self.disk
    }

    /// Maximum number of cached pages (summed over the shards).
    pub fn capacity(&self) -> usize {
        self.shards.read().capacity
    }

    /// Number of LRU shards the capacity is striped over.
    pub fn shard_count(&self) -> usize {
        self.shards.read().shards.len()
    }

    /// Number of pages currently cached.
    pub fn cached_pages(&self) -> usize {
        let set = self.shards.read();
        let _set_w = mcn_witness::acquire(W_POOL);
        set.shards.iter().map(|s| s.lock().lru.len()).sum()
    }

    /// Empties the cache and resets the hit/miss counters (the underlying
    /// disk's physical counters are not touched).
    pub fn clear(&self) {
        let set = self.shards.read();
        let _set_w = mcn_witness::acquire(W_POOL);
        for shard in &set.shards {
            let mut shard = shard.lock();
            let _shard_w = mcn_witness::acquire(W_SHARD);
            shard.lru.clear();
            shard.logical_reads = 0;
            shard.hits = 0;
            shard.misses = 0;
        }
    }

    /// Changes the capacity, clearing the cache and re-striping (the hit/miss
    /// counters carry over, as they always have). A shard count pinned via
    /// [`BufferPool::with_shards`] is kept (still capped at the capacity);
    /// otherwise the default policy re-derives it from the new capacity.
    pub fn set_capacity(&self, capacity: usize) {
        let count = self
            .pinned_shards
            .map(|pinned| pinned.min(capacity.max(1)))
            .unwrap_or_else(|| default_shard_count(capacity));
        let mut set = self.shards.write();
        let _set_w = mcn_witness::acquire(W_POOL);
        // Carry the counters across the rebuild: each old triple is consistent
        // and they are all folded into the first new shard, so totals (and the
        // hits + misses == logical invariant) are preserved.
        let (mut logical, mut hits, mut misses) = (0u64, 0u64, 0u64);
        for shard in &set.shards {
            let shard = shard.lock();
            let _shard_w = mcn_witness::acquire(W_SHARD);
            logical += shard.logical_reads;
            hits += shard.hits;
            misses += shard.misses;
        }
        *set = ShardSet::new(capacity, count);
        let mut first = set.shards[0].lock();
        let _first_w = mcn_witness::acquire(W_SHARD);
        first.logical_reads = logical;
        first.hits = hits;
        first.misses = misses;
    }

    /// Reads page `id` (from the cache if possible) and passes its bytes to
    /// `f`, returning `f`'s result.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> R {
        let set = self.shards.read();
        let set_w = mcn_witness::acquire(W_POOL);
        let mut shard = set.shard_of(id).lock();
        let shard_w = mcn_witness::acquire(W_SHARD);
        shard.logical_reads += 1;
        if let Some(idx) = shard.lru.get(id) {
            shard.hits += 1;
            return f(shard.lru.frames[idx].page.bytes());
        }
        shard.misses += 1;
        let zero_capacity = shard.lru.capacity == 0;
        // Never hold the shard lock across the physical read: striping gives
        // cross-shard parallelism, and releasing here lets same-shard misses
        // overlap their disk latency too. Two threads racing to fetch the
        // same page both count a miss and both read it — the second insert
        // just refreshes the frame, mirroring a real pool without an
        // in-flight pin table. Single-threaded accounting is unchanged.
        drop(shard_w);
        drop(shard);
        let mut page = Page::zeroed();
        // mcn-lint: allow(lock-across-io, reason = "only the shard-set read guard spans the read: it blocks set resizing, never other page accesses; the per-shard mutex was dropped above")
        self.disk.read_page(id, &mut page);
        if zero_capacity {
            // The paper's "no buffer" setting: serve the closure from the
            // transient copy without caching it.
            drop(set_w);
            drop(set);
            return f(page.bytes());
        }
        let mut shard = set.shard_of(id).lock();
        let _shard_w = mcn_witness::acquire(W_SHARD);
        let idx = shard
            .lru
            .insert(id, page)
            .expect("insert cannot fail with non-zero capacity");
        f(shard.lru.frames[idx].page.bytes())
    }

    /// Writes `page` to the disk and refreshes any cached copy.
    pub fn write_through(&self, id: PageId, page: &Page) {
        self.disk.write_page(id, page);
        let set = self.shards.read();
        let _set_w = mcn_witness::acquire(W_POOL);
        let mut shard = set.shard_of(id).lock();
        let _shard_w = mcn_witness::acquire(W_SHARD);
        if shard.lru.map.contains_key(&id) {
            shard.lru.insert(id, page.clone());
        }
    }

    /// Snapshot of the I/O counters (pool + underlying disk).
    ///
    /// The pool triple is exactly consistent (`logical_reads == buffer_hits +
    /// buffer_misses` always holds, even under concurrent readers); the
    /// physical counters are monotonic but may trail in-flight misses — see
    /// the module docs.
    pub fn stats(&self) -> IoStats {
        // Read the physical counters *before* the pool counters: every
        // physical read is preceded by its miss being counted under the shard
        // lock, so sampling in this order keeps `physical_reads <=
        // buffer_misses` in every snapshot (the reverse order could observe a
        // read whose miss had not been summed yet).
        let physical_reads = self.disk.physical_reads();
        let physical_writes = self.disk.physical_writes();
        let set = self.shards.read();
        let _set_w = mcn_witness::acquire(W_POOL);
        let (mut logical, mut hits, mut misses) = (0u64, 0u64, 0u64);
        for shard in &set.shards {
            let shard = shard.lock();
            let _shard_w = mcn_witness::acquire(W_SHARD);
            logical += shard.logical_reads;
            hits += shard.hits;
            misses += shard.misses;
        }
        IoStats {
            logical_reads: logical,
            buffer_hits: hits,
            buffer_misses: misses,
            physical_reads,
            physical_writes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;

    fn make_disk(pages: usize) -> Arc<InMemoryDisk> {
        let disk = Arc::new(InMemoryDisk::new());
        for i in 0..pages {
            let id = disk.allocate_page();
            let mut p = Page::zeroed();
            p.bytes_mut()[0] = i as u8;
            disk.write_page(id, &p);
        }
        disk
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let disk = make_disk(4);
        let pool = BufferPool::new(disk, 2);
        assert_eq!(pool.with_page(PageId::new(0), |b| b[0]), 0);
        assert_eq!(pool.with_page(PageId::new(0), |b| b[0]), 0);
        assert_eq!(pool.with_page(PageId::new(1), |b| b[0]), 1);
        let s = pool.stats();
        assert_eq!(s.logical_reads, 3);
        assert_eq!(s.buffer_hits, 1);
        assert_eq!(s.buffer_misses, 2);
        assert_eq!(s.physical_reads, 2); // the writes in make_disk are not reads
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Strict global LRU order requires a single shard.
        let disk = make_disk(3);
        let pool = BufferPool::with_shards(disk, 2, 1);
        pool.with_page(PageId::new(0), |_| ());
        pool.with_page(PageId::new(1), |_| ());
        // Touch page 0 so page 1 becomes the LRU victim.
        pool.with_page(PageId::new(0), |_| ());
        pool.with_page(PageId::new(2), |_| ()); // evicts page 1
        let before = pool.stats();
        pool.with_page(PageId::new(0), |_| ()); // still cached → hit
        let after = pool.stats();
        assert_eq!(after.buffer_hits, before.buffer_hits + 1);
        pool.with_page(PageId::new(1), |_| ()); // evicted → miss
        assert_eq!(pool.stats().buffer_misses, after.buffer_misses + 1);
        assert_eq!(pool.cached_pages(), 2);
    }

    #[test]
    fn write_through_updates_cache_and_disk() {
        let disk = make_disk(1);
        let pool = BufferPool::new(disk.clone(), 2);
        pool.with_page(PageId::new(0), |_| ());
        let mut p = Page::zeroed();
        p.bytes_mut()[0] = 200;
        pool.write_through(PageId::new(0), &p);
        // Cached copy refreshed → read returns the new value without a miss.
        let misses_before = pool.stats().buffer_misses;
        assert_eq!(pool.with_page(PageId::new(0), |b| b[0]), 200);
        assert_eq!(pool.stats().buffer_misses, misses_before);
        // Disk also has the new value.
        let mut out = Page::zeroed();
        disk.read_page(PageId::new(0), &mut out);
        assert_eq!(out.bytes()[0], 200);
    }

    #[test]
    fn zero_capacity_pool_never_caches() {
        let disk = make_disk(2);
        let pool = BufferPool::new(disk, 0);
        for _ in 0..3 {
            assert_eq!(pool.with_page(PageId::new(1), |b| b[0]), 1);
        }
        let s = pool.stats();
        assert_eq!(s.buffer_hits, 0);
        assert_eq!(s.buffer_misses, 3);
        assert_eq!(pool.cached_pages(), 0);
        assert_eq!(pool.shard_count(), 1);
    }

    #[test]
    fn capacity_can_be_reconfigured() {
        let disk = make_disk(2);
        let pool = BufferPool::new(disk, 1);
        pool.with_page(PageId::new(0), |_| ());
        assert_eq!(pool.cached_pages(), 1);
        let logical_before = pool.stats().logical_reads;
        pool.set_capacity(0);
        assert_eq!(pool.cached_pages(), 0);
        assert_eq!(pool.capacity(), 0);
        // Reconfiguration clears the cache but carries the counters over.
        assert_eq!(pool.stats().logical_reads, logical_before);
    }

    #[test]
    fn many_pages_cycle_through_small_pool() {
        let disk = make_disk(64);
        let pool = BufferPool::new(disk, 8);
        for round in 0..3 {
            for i in 0..64u32 {
                let v = pool.with_page(PageId::new(i), |b| b[0]);
                assert_eq!(v, i as u8, "round {round}");
            }
        }
        assert_eq!(pool.cached_pages(), 8);
        let s = pool.stats();
        assert_eq!(s.logical_reads, 3 * 64);
        // Sequential scans over 64 pages with an 8-page pool never hit, with
        // any striping: each shard sees a strided scan longer than itself.
        assert_eq!(s.buffer_hits, 0);
    }

    #[test]
    fn default_shard_count_scales_with_capacity() {
        assert_eq!(default_shard_count(0), 1);
        assert_eq!(default_shard_count(3), 1);
        assert_eq!(default_shard_count(8), 2);
        assert_eq!(default_shard_count(32), 8);
        assert_eq!(default_shard_count(10_000), MAX_SHARDS);
    }

    #[test]
    fn striping_distributes_pages_and_splits_capacity() {
        let disk = make_disk(32);
        let pool = BufferPool::with_shards(disk, 7, 4); // 2+2+2+1 pages
        assert_eq!(pool.shard_count(), 4);
        assert_eq!(pool.capacity(), 7);
        for i in 0..32u32 {
            pool.with_page(PageId::new(i), |_| ());
        }
        // Every shard is full, so the pool holds exactly its capacity.
        assert_eq!(pool.cached_pages(), 7);
        // The most recently used page of each shard is resident: the last
        // four accesses (28..32) map to the four distinct shards.
        let hits_before = pool.stats().buffer_hits;
        for i in 28..32u32 {
            pool.with_page(PageId::new(i), |_| ());
        }
        assert_eq!(pool.stats().buffer_hits, hits_before + 4);
    }

    #[test]
    fn pinned_shard_count_survives_set_capacity() {
        let disk = make_disk(8);
        let pool = BufferPool::with_shards(disk, 8, 1);
        assert_eq!(pool.shard_count(), 1);
        // Re-sizing must not silently re-stripe a pool pinned to strict
        // global-LRU order (the default policy would pick 2 shards here).
        pool.set_capacity(8);
        assert_eq!(pool.shard_count(), 1);
        pool.set_capacity(64);
        assert_eq!(pool.shard_count(), 1);
        // An unpinned pool re-derives its count from the new capacity.
        let disk = make_disk(8);
        let pool = BufferPool::new(disk, 4);
        assert_eq!(pool.shard_count(), 1);
        pool.set_capacity(64);
        assert_eq!(pool.shard_count(), MAX_SHARDS);
    }

    #[test]
    fn shard_count_is_capped_at_capacity() {
        // Requesting more shards than cached pages must not create starved
        // zero-capacity shards that never cache their slice of the pages.
        let disk = make_disk(8);
        let pool = BufferPool::with_shards(disk, 2, 4);
        assert_eq!(pool.shard_count(), 2);
        pool.with_page(PageId::new(0), |_| ());
        pool.with_page(PageId::new(1), |_| ());
        assert_eq!(pool.cached_pages(), 2);
        let hits_before = pool.stats().buffer_hits;
        pool.with_page(PageId::new(0), |_| ());
        pool.with_page(PageId::new(1), |_| ());
        assert_eq!(pool.stats().buffer_hits, hits_before + 2);
        // Zero capacity always resolves to a single (uncaching) shard.
        let disk = make_disk(2);
        let pool = BufferPool::with_shards(disk, 0, 4);
        assert_eq!(pool.shard_count(), 1);
        assert_eq!(pool.capacity(), 0);
    }

    #[test]
    fn sharded_accounting_stays_exact() {
        let disk = make_disk(16);
        let pool = BufferPool::with_shards(disk, 8, 4);
        for round in 0..5 {
            for i in 0..16u32 {
                pool.with_page(PageId::new(i), |_| ());
            }
            let s = pool.stats();
            assert_eq!(
                s.logical_reads,
                s.buffer_hits + s.buffer_misses,
                "round {round}"
            );
        }
        assert_eq!(pool.stats().logical_reads, 5 * 16);
    }

    #[test]
    fn concurrent_snapshots_are_consistent() {
        // Hammer the pool from several threads while a reader thread takes
        // snapshots; every snapshot must satisfy logical == hits + misses
        // exactly (the satellite guarantee the throughput bench relies on),
        // and physical reads may only trail misses, never exceed them.
        let disk = make_disk(64);
        let pool = Arc::new(BufferPool::new(disk, 16));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let pool = Arc::clone(&pool);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut i = t;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        pool.with_page(PageId::new(i % 64), |_| ());
                        i = i.wrapping_add(7);
                    }
                });
            }
            for _ in 0..200 {
                let s = pool.stats();
                assert_eq!(s.logical_reads, s.buffer_hits + s.buffer_misses);
                assert!(s.physical_reads <= s.buffer_misses);
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        let s = pool.stats();
        assert_eq!(s.logical_reads, s.buffer_hits + s.buffer_misses);
    }

    #[test]
    fn concurrent_reads_return_correct_bytes() {
        let disk = make_disk(64);
        let pool = Arc::new(BufferPool::new(disk, 16));
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for round in 0..50u32 {
                        let id = (t * 13 + round * 5) % 64;
                        let v = pool.with_page(PageId::new(id), |b| b[0]);
                        assert_eq!(v, id as u8);
                    }
                });
            }
        });
        let s = pool.stats();
        assert_eq!(s.logical_reads, 8 * 50);
        assert_eq!(s.logical_reads, s.buffer_hits + s.buffer_misses);
    }
}
