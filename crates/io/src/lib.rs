//! # mcn-io
//!
//! Road-network file formats: loading real datasets and persisting generated
//! workloads.
//!
//! The paper evaluates on the San Francisco road network distributed with the
//! Brinkhoff generator as plain-text node/edge files. This crate loads that
//! family of formats so that, when the real data is available, the experiments
//! can be run on it unchanged; it also round-trips full multi-cost workloads
//! (including facilities) through CSV so generated datasets can be shared.
//!
//! * [`formats::load_node_edge_files`] — Brinkhoff-style `id x y` /
//!   `id source target length` text files (single cost = length).
//! * [`formats::load_dimacs_gr`] — DIMACS shortest-path challenge `.gr` files
//!   (directed arcs, single integer weight).
//! * [`formats::write_csv`] / [`formats::load_csv`] — multi-cost CSV
//!   round-trip of nodes, edges (with `d` costs) and facilities.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod formats;

pub use formats::{load_csv, load_dimacs_gr, load_node_edge_files, write_csv, IoFormatError};
