//! Property-based integration tests: on arbitrary small random networks the
//! disk-based LSA/CEA pipeline must agree with the in-memory brute-force
//! oracle for both query types, and the structural invariants of the paper
//! must hold.

use mcn::core::prelude::*;
use mcn::expansion::oracle;
use mcn::graph::{CostVec, FacilityId, GraphBuilder, MultiCostGraph, NetworkLocation, NodeId};
use mcn::storage::{BufferConfig, MCNStore};
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: a connected undirected network with d cost types, its facility
/// placements, and a query node.
fn network_strategy() -> impl Strategy<Value = (MultiCostGraph, NetworkLocation)> {
    (
        2usize..=4,                                                   // d
        5usize..=40,                                                  // nodes
        proptest::collection::vec((0u16..1000, 0u16..1000), 0..60),   // extra edge endpoints
        proptest::collection::vec((0u16..1000, 0.0f64..=1.0), 1..40), // facilities
        0u16..1000,                                                   // query selector
        any::<u64>(),                                                 // cost seed
    )
        .prop_map(|(d, nodes, extra, facilities, query_sel, seed)| {
            let mut lcg = seed;
            let mut next_cost = move || {
                // Small deterministic LCG so the strategy itself stays simple.
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((lcg >> 33) % 1000) as f64 / 100.0 + 0.1
            };
            let mut b = GraphBuilder::new(d);
            let ids: Vec<NodeId> = (0..nodes).map(|i| b.add_node(i as f64, 0.0)).collect();
            let mut edges = Vec::new();
            for w in ids.windows(2) {
                let costs: Vec<f64> = (0..d).map(|_| next_cost()).collect();
                edges.push(b.add_edge(w[0], w[1], CostVec::from_slice(&costs)).unwrap());
            }
            for (a, c) in extra {
                let a = ids[a as usize % nodes];
                let c = ids[c as usize % nodes];
                if a == c {
                    continue;
                }
                let costs: Vec<f64> = (0..d).map(|_| next_cost()).collect();
                edges.push(b.add_edge(a, c, CostVec::from_slice(&costs)).unwrap());
            }
            for (e, pos) in facilities {
                let e = edges[e as usize % edges.len()];
                b.add_facility(e, pos).unwrap();
            }
            let graph = b.build().unwrap();
            let q = NetworkLocation::Node(ids[query_sel as usize % nodes]);
            (graph, q)
        })
}

fn oracle_skyline(graph: &MultiCostGraph, q: NetworkLocation) -> Vec<FacilityId> {
    let costs = oracle::facility_cost_vectors(graph, q);
    let items: Vec<(FacilityId, CostVec)> = costs
        .iter()
        .enumerate()
        .map(|(i, c)| (FacilityId::from(i), *c))
        .collect();
    let mut ids: Vec<FacilityId> = mcn::skyline::naive_skyline(&items)
        .into_iter()
        .map(|i| items[i].0)
        .collect();
    ids.sort();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_lsa_and_cea_match_the_oracle_skyline((graph, q) in network_strategy()) {
        let store = Arc::new(MCNStore::build_in_memory(&graph, BufferConfig::Pages(16)).unwrap());
        let expected = oracle_skyline(&graph, q);
        for algo in [Algorithm::Lsa, Algorithm::Cea] {
            let mut got: Vec<FacilityId> = skyline_query(&store, q, algo)
                .facilities
                .iter()
                .map(|f| f.facility)
                .collect();
            got.sort();
            prop_assert_eq!(&got, &expected, "{} disagrees with the oracle", algo.name());
        }
    }

    #[test]
    fn prop_topk_scores_match_brute_force((graph, q) in network_strategy(), k in 1usize..10) {
        let d = graph.num_cost_types();
        let store = Arc::new(MCNStore::build_in_memory(&graph, BufferConfig::Pages(16)).unwrap());
        let f = WeightedSum::uniform(d);
        let costs = oracle::facility_cost_vectors(&graph, q);
        let mut brute: Vec<f64> = costs.iter().map(|c| f.score(c)).collect();
        brute.sort_by(|a, b| a.total_cmp(b));
        brute.truncate(k);

        let got = topk_query(&store, q, f, k, Algorithm::Cea);
        prop_assert_eq!(got.entries.len(), brute.len());
        for (entry, expected) in got.entries.iter().zip(&brute) {
            prop_assert!((entry.score - expected).abs() < 1e-9,
                "score {} differs from brute force {}", entry.score, expected);
        }
    }

    #[test]
    fn prop_skyline_members_are_non_dominated_and_complete((graph, q) in network_strategy()) {
        let store = Arc::new(MCNStore::build_in_memory(&graph, BufferConfig::Pages(16)).unwrap());
        let result = skyline_query(&store, q, Algorithm::Cea);
        // Mutual non-domination.
        for a in &result.facilities {
            for b in &result.facilities {
                if a.facility != b.facility {
                    prop_assert!(!mcn::graph::dominates(&a.costs, &b.costs));
                }
            }
        }
        // Reported cost vectors are the true shortest-path vectors.
        let oracle = oracle::facility_cost_vectors(&graph, q);
        for member in &result.facilities {
            let truth = &oracle[member.facility.index()];
            for i in 0..graph.num_cost_types() {
                prop_assert!((member.costs[i] - truth[i]).abs() < 1e-6,
                    "cost {i} of {} is {} but the oracle says {}",
                    member.facility, member.costs[i], truth[i]);
            }
        }
    }
}
