//! The bounded worker pool scheduling a batch of queries.

use crate::request::{QueryOutcome, QueryRequest};
use mcn_storage::{IoStats, MCNStore};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Aggregate statistics of one executed batch.
#[derive(Clone, Debug)]
pub struct BatchStats {
    /// Number of queries executed.
    pub queries: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time from submission to the last completion.
    pub wall: Duration,
    /// Queries per second of wall-clock time.
    pub qps: f64,
    /// Store-wide I/O delta over the whole batch, taken from consistent
    /// before/after snapshots of the striped buffer pool (so
    /// `logical_reads == buffer_hits + buffer_misses` holds exactly).
    pub io: IoStats,
}

/// A batch of outcomes plus its aggregate statistics. `outcomes[i]` belongs
/// to `requests[i]` regardless of which worker executed it.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Per-query outcomes, in request order.
    pub outcomes: Vec<QueryOutcome>,
    /// Aggregate statistics.
    pub stats: BatchStats,
}

/// A multi-query scheduler: a fixed-size pool of worker threads draining a
/// batch of [`QueryRequest`]s against one shared [`MCNStore`].
///
/// Workers claim requests FIFO through an atomic cursor; each query runs the
/// ordinary single-query algorithm on the claiming worker's thread, so
/// results are identical to serial execution (`workers == 1`) at any pool
/// size — only throughput changes.
pub struct QueryEngine {
    store: Arc<MCNStore>,
    workers: usize,
}

impl QueryEngine {
    /// Creates an engine over `store` with `workers` threads (clamped to at
    /// least one).
    pub fn new(store: Arc<MCNStore>, workers: usize) -> Self {
        Self {
            store,
            workers: workers.max(1),
        }
    }

    /// The shared store.
    pub fn store(&self) -> &Arc<MCNStore> {
        &self.store
    }

    /// Size of the worker pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes one request on the calling thread (no pool involved).
    pub fn run_one(&self, request: &QueryRequest) -> QueryOutcome {
        request.execute(&self.store)
    }

    /// Executes `requests` across the worker pool and returns the outcomes
    /// in request order together with aggregate throughput statistics.
    ///
    /// Blocks until the whole batch has completed. With `workers == 1` this
    /// is plain serial execution on one spawned thread; larger pools only
    /// change scheduling, never results.
    pub fn run_batch(&self, requests: &[QueryRequest]) -> BatchResult {
        let n = requests.len();
        let io_before = self.store.io_stats();
        let started = Instant::now();
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<QueryOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            // Never spawn more workers than there are queries.
            for _ in 0..self.workers.min(n.max(1)) {
                let cursor = &cursor;
                let slots = &slots;
                let store = &self.store;
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let outcome = requests[i].execute(store);
                    *slots[i].lock() = Some(outcome);
                });
            }
        });

        let wall = started.elapsed();
        let io = self.store.io_stats() - io_before;
        let outcomes: Vec<QueryOutcome> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("every request slot is filled before the scope ends")
            })
            .collect();
        let qps = if wall.as_secs_f64() > 0.0 {
            n as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        BatchResult {
            outcomes,
            stats: BatchStats {
                queries: n,
                workers: self.workers,
                wall,
                qps,
                io,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::QueryOutput;
    use mcn_core::Algorithm;
    use mcn_gen::{generate_workload, WorkloadSpec};
    use mcn_storage::BufferConfig;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn fixture() -> (Arc<MCNStore>, Vec<QueryRequest>) {
        let workload = generate_workload(&WorkloadSpec::tiny(11));
        let d = workload.spec.cost_types;
        let store = Arc::new(
            MCNStore::build_in_memory(&workload.graph, BufferConfig::Fraction(0.01)).unwrap(),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let requests: Vec<QueryRequest> = workload
            .queries
            .iter()
            .cycle()
            .take(12)
            .enumerate()
            .map(|(i, &location)| {
                let weights: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
                let algorithm = if i % 2 == 0 {
                    Algorithm::Cea
                } else {
                    Algorithm::Lsa
                };
                match i % 3 {
                    0 => QueryRequest::Skyline {
                        location,
                        algorithm,
                    },
                    1 => QueryRequest::TopK {
                        location,
                        weights,
                        k: 4,
                        algorithm,
                    },
                    _ => QueryRequest::TopKIncremental {
                        location,
                        weights,
                        take: 3,
                        algorithm,
                    },
                }
            })
            .collect();
        (store, requests)
    }

    fn fingerprints(result: &BatchResult) -> Vec<String> {
        result
            .outcomes
            .iter()
            .map(|o| o.output.fingerprint())
            .collect()
    }

    #[test]
    fn four_workers_match_serial_byte_for_byte() {
        let (store, requests) = fixture();
        let serial = QueryEngine::new(store.clone(), 1).run_batch(&requests);
        let concurrent = QueryEngine::new(store.clone(), 4).run_batch(&requests);
        assert_eq!(fingerprints(&serial), fingerprints(&concurrent));
        // Logical reads are a pure function of the queries, independent of
        // scheduling and buffer state.
        assert_eq!(
            serial.stats.io.logical_reads,
            concurrent.stats.io.logical_reads
        );
    }

    #[test]
    fn batch_stats_are_populated_and_consistent() {
        let (store, requests) = fixture();
        let result = QueryEngine::new(store, 3).run_batch(&requests);
        assert_eq!(result.stats.queries, requests.len());
        assert_eq!(result.stats.workers, 3);
        assert!(result.stats.qps > 0.0);
        assert!(result.stats.io.logical_reads > 0);
        assert_eq!(
            result.stats.io.logical_reads,
            result.stats.io.buffer_hits + result.stats.io.buffer_misses
        );
        for outcome in &result.outcomes {
            assert!(!outcome.output.is_empty());
            assert!(outcome.stats.nodes_settled > 0);
        }
    }

    #[test]
    fn outcomes_follow_request_order() {
        let (store, requests) = fixture();
        let result = QueryEngine::new(store.clone(), 4).run_batch(&requests);
        for (req, outcome) in requests.iter().zip(&result.outcomes) {
            match (req, &outcome.output) {
                (QueryRequest::Skyline { .. }, QueryOutput::Skyline(_)) => {}
                (QueryRequest::TopK { k, .. }, QueryOutput::TopK(entries)) => {
                    assert!(entries.len() <= *k);
                }
                (QueryRequest::TopKIncremental { take, .. }, QueryOutput::TopK(entries)) => {
                    assert!(entries.len() <= *take);
                }
                other => panic!("request/outcome kind mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn incremental_topk_matches_batch_topk_prefix() {
        let (store, _) = fixture();
        let location = mcn_graph::NetworkLocation::Node(mcn_graph::NodeId::new(5));
        let weights = vec![0.5, 0.3, 0.2];
        let engine = QueryEngine::new(store, 2);
        let batch = engine.run_one(&QueryRequest::TopK {
            location,
            weights: weights.clone(),
            k: 5,
            algorithm: Algorithm::Cea,
        });
        let incremental = engine.run_one(&QueryRequest::TopKIncremental {
            location,
            weights,
            take: 5,
            algorithm: Algorithm::Cea,
        });
        assert_eq!(batch.output.fingerprint(), incremental.output.fingerprint());
    }

    #[test]
    fn zero_workers_clamps_to_one_and_empty_batch_is_fine() {
        let (store, _) = fixture();
        let engine = QueryEngine::new(store, 0);
        assert_eq!(engine.workers(), 1);
        let result = engine.run_batch(&[]);
        assert!(result.outcomes.is_empty());
        assert_eq!(result.stats.queries, 0);
    }

    #[test]
    fn engine_is_send_and_sync() {
        const fn assert_send_sync<T: Send + Sync>() {}
        const _: () = assert_send_sync::<QueryEngine>();
    }
}
