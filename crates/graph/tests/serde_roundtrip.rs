//! JSON round-trip properties for every `mcn-graph` type that derives
//! `Serialize`/`Deserialize`: `from_str(to_string(x))` must reproduce `x`,
//! including float edge cases (zero, negative zero, very large values) and
//! the `NaN` coordinates of position-less nodes.

use mcn_graph::{
    CostVec, Edge, EdgeId, Facility, FacilityId, GraphBuilder, MultiCostGraph, NetworkLocation,
    Node, NodeId, Path, MAX_COST_TYPES,
};
use proptest::prelude::*;
use serde::json::{from_str, to_string, to_string_pretty};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    from_str(&to_string(value)).expect("round-trip parse")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ids_roundtrip(raw in 0u32..u32::MAX) {
        prop_assert_eq!(roundtrip(&NodeId::new(raw)), NodeId::new(raw));
        prop_assert_eq!(roundtrip(&EdgeId::new(raw)), EdgeId::new(raw));
        prop_assert_eq!(roundtrip(&FacilityId::new(raw)), FacilityId::new(raw));
    }

    #[test]
    fn cost_vec_roundtrips(
        costs in proptest::collection::vec(-1e300f64..1e300, 1..=MAX_COST_TYPES),
    ) {
        let v = CostVec::from_slice(&costs);
        prop_assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn node_roundtrips(x in -1e9f64..1e9, y in -1e9f64..1e9, raw in 0u32..1_000_000) {
        let n = Node::new(NodeId::new(raw), x, y);
        prop_assert_eq!(roundtrip(&n), n);
    }

    #[test]
    fn edge_roundtrips(
        costs in proptest::collection::vec(0.0f64..1e6, 1..=MAX_COST_TYPES),
        directed in any::<bool>(),
        raw in 0u32..1_000_000,
    ) {
        let w = CostVec::from_slice(&costs);
        let e = if directed {
            Edge::new_directed(EdgeId::new(raw), NodeId::new(raw + 1), NodeId::new(raw + 2), w)
        } else {
            Edge::new(EdgeId::new(raw), NodeId::new(raw + 1), NodeId::new(raw + 2), w)
        };
        prop_assert_eq!(roundtrip(&e), e);
    }

    #[test]
    fn facility_roundtrips(position in 0.0f64..=1.0, raw in 0u32..1_000_000) {
        let f = Facility::new(FacilityId::new(raw), EdgeId::new(raw), position);
        prop_assert_eq!(roundtrip(&f), f);
    }

    #[test]
    fn network_location_roundtrips(
        raw in 0u32..1_000_000,
        position in 0.0f64..=1.0,
        at_node in any::<bool>(),
    ) {
        let loc = if at_node {
            NetworkLocation::at_node(NodeId::new(raw))
        } else {
            NetworkLocation::on_edge(EdgeId::new(raw), position)
        };
        prop_assert_eq!(roundtrip(&loc), loc);
    }

    #[test]
    fn path_roundtrips(
        hops in 0usize..6,
        costs in proptest::collection::vec(0.0f64..1e6, 1..=4),
    ) {
        let path = Path {
            nodes: (0..=hops as u32).map(NodeId::new).collect(),
            edges: (0..hops as u32).map(EdgeId::new).collect(),
            costs: CostVec::from_slice(&costs),
        };
        prop_assert_eq!(roundtrip(&path), path);
    }
}

#[test]
fn float_edge_cases_roundtrip_exactly() {
    for value in [
        0.0,
        -0.0,
        1.0,
        -1.0,
        f64::MIN,
        f64::MAX,
        f64::MIN_POSITIVE,
        1e-300,
        -1e300,
        0.1 + 0.2, // classic non-representable sum
    ] {
        let v = CostVec::from_slice(&[value]);
        let back = roundtrip(&v);
        assert_eq!(
            back[0].to_bits(),
            v[0].to_bits(),
            "bits changed for {value}"
        );
    }
    // Non-finite components are not valid costs but must still survive the
    // text format (they serialize as tagged strings, not invalid JSON).
    let inf = CostVec::from_slice(&[f64::INFINITY, f64::NEG_INFINITY]);
    assert_eq!(roundtrip(&inf), inf);
}

#[test]
fn positionless_node_keeps_its_nan_coordinates() {
    let n = Node::without_position(NodeId::new(7));
    let back: Node = roundtrip(&n);
    assert_eq!(back.id, n.id);
    assert!(back.x.is_nan() && back.y.is_nan());
    assert!(!back.has_position());
}

#[test]
fn whole_graph_roundtrips_structurally() {
    let mut b = GraphBuilder::new(2);
    let v0 = b.add_node(0.0, 0.0);
    let v1 = b.add_node(1.0, 0.0);
    let v2 = b.add_node(1.0, 1.0);
    let e0 = b
        .add_edge(v0, v1, CostVec::from_slice(&[1.0, 2.0]))
        .unwrap();
    let e1 = b
        .add_directed_edge(v1, v2, CostVec::from_slice(&[3.0, 4.0]))
        .unwrap();
    b.add_facility(e0, 0.5).unwrap();
    b.add_facility(e1, 0.25).unwrap();
    let g = b.build().unwrap();

    let json = to_string(&g);
    let back: MultiCostGraph = from_str(&json).unwrap();
    // MultiCostGraph has no PartialEq; compare observable structure and the
    // canonical serialized form (the serializer is deterministic).
    assert_eq!(back.num_cost_types(), g.num_cost_types());
    assert_eq!(back.num_nodes(), g.num_nodes());
    assert_eq!(back.num_edges(), g.num_edges());
    assert_eq!(back.num_facilities(), g.num_facilities());
    assert_eq!(back.edge(e1).directed, true);
    assert_eq!(to_string(&back), json);
    // Pretty output parses to the same value as compact output.
    let pretty: MultiCostGraph = from_str(&to_string_pretty(&g)).unwrap();
    assert_eq!(to_string(&pretty), json);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `PartitionMap` round-trips losslessly: partition a `width × height`
    /// grid (side lengths and seed drawn by proptest), serialize, parse
    /// back and re-validate, with every invariant intact along the way.
    #[test]
    fn partition_map_roundtrips(
        width in 2usize..14,
        height in 2usize..10,
        seed in any::<u64>(),
    ) {
        let regions = 1 + (seed % 8) as usize;
        let mut b = GraphBuilder::new(1);
        let ids: Vec<_> = (0..width * height)
            .map(|i| b.add_node((i % width) as f64, (i / width) as f64))
            .collect();
        for y in 0..height {
            for x in 0..width {
                if x + 1 < width {
                    b.add_edge(
                        ids[y * width + x],
                        ids[y * width + x + 1],
                        CostVec::from_slice(&[1.0]),
                    )
                    .unwrap();
                }
                if y + 1 < height {
                    b.add_edge(
                        ids[y * width + x],
                        ids[(y + 1) * width + x],
                        CostVec::from_slice(&[1.0]),
                    )
                    .unwrap();
                }
            }
        }
        let g = b.build().unwrap();
        let map = mcn_graph::partition_graph(&g, &mcn_graph::PartitionSpec { regions, seed });
        map.validate().expect("fresh map is consistent");
        let parsed = roundtrip(&map);
        prop_assert_eq!(&parsed, &map);
        parsed.validate().expect("parsed map is consistent");
        // The public JSON helpers agree with the raw serializer path.
        let via_helper = mcn_graph::PartitionMap::from_json(&map.to_json()).unwrap();
        prop_assert_eq!(via_helper, map);
    }

    /// Region identifiers survive serialization over the whole raw range.
    #[test]
    fn region_ids_roundtrip(raw in 0u32..u32::MAX) {
        prop_assert_eq!(roundtrip(&mcn_graph::RegionId::new(raw)), mcn_graph::RegionId::new(raw));
    }
}
