//! Label-correcting multi-criteria Pareto path search.

use mcn_graph::{dominates, dominates_weak, CostVec, EdgeId, MultiCostGraph, NodeId};
use std::collections::VecDeque;

/// One Pareto-optimal label: a non-dominated way of reaching a node.
#[derive(Clone, Debug, PartialEq)]
pub struct ParetoLabel {
    /// The node the label belongs to.
    pub node: NodeId,
    /// Accumulated cost vector from the source.
    pub costs: CostVec,
    /// The edges of the path from the source, in order.
    pub edges: Vec<EdgeId>,
}

/// Computes the Pareto-optimal (skyline) paths from `source` to `target` with
/// a label-correcting algorithm (Section II-D of the paper).
///
/// Every node keeps a set of mutually non-dominated labels; labels are
/// propagated over outgoing edges and inserted only if not (weakly) dominated
/// by an existing label at the head node, evicting labels they dominate. The
/// returned labels at `target` are sorted lexicographically by cost vector.
///
/// Complexity is output-sensitive and exponential in the worst case (the
/// Pareto set itself can be exponential); it is intended for moderate-size
/// networks and for validating the per-cost shortest paths of `mcn-expansion`.
pub fn pareto_paths(graph: &MultiCostGraph, source: NodeId, target: NodeId) -> Vec<ParetoLabel> {
    let d = graph.num_cost_types();
    let mut labels: Vec<Vec<ParetoLabel>> = vec![Vec::new(); graph.num_nodes()];
    labels[source.index()].push(ParetoLabel {
        node: source,
        costs: CostVec::zeros(d),
        edges: Vec::new(),
    });

    let mut queue: VecDeque<NodeId> = VecDeque::new();
    let mut queued = vec![false; graph.num_nodes()];
    queue.push_back(source);
    queued[source.index()] = true;

    while let Some(node) = queue.pop_front() {
        queued[node.index()] = false;
        let current: Vec<ParetoLabel> = labels[node.index()].clone();
        for neighbor in graph.neighbors(node) {
            for label in &current {
                let mut costs = label.costs;
                costs += neighbor.costs;
                // Discard if weakly dominated by an existing label at the head.
                let existing = &mut labels[neighbor.node.index()];
                if existing.iter().any(|l| dominates_weak(&l.costs, &costs)) {
                    continue;
                }
                existing.retain(|l| !dominates(&costs, &l.costs));
                let mut edges = label.edges.clone();
                edges.push(neighbor.edge);
                existing.push(ParetoLabel {
                    node: neighbor.node,
                    costs,
                    edges,
                });
                if !queued[neighbor.node.index()] {
                    queued[neighbor.node.index()] = true;
                    queue.push_back(neighbor.node);
                }
            }
        }
    }

    let mut result = labels[target.index()].clone();
    result.sort_by(|a, b| a.costs.lex_cmp(&b.costs));
    result
}

/// The component-wise minimum over the Pareto path set, i.e. the vector of
/// single-criterion shortest-path distances from `source` to `target`.
/// Returns `None` if the target is unreachable.
pub fn componentwise_minimum(paths: &[ParetoLabel]) -> Option<CostVec> {
    let first = paths.first()?;
    Some(
        paths
            .iter()
            .skip(1)
            .fold(first.costs, |acc, l| acc.element_min(&l.costs)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcn_graph::GraphBuilder;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Diamond network with a cheap-slow and an expensive-fast side.
    fn diamond() -> (MultiCostGraph, NodeId, NodeId) {
        let mut b = GraphBuilder::new(2);
        let s = b.add_node(0.0, 0.0);
        let up = b.add_node(1.0, 1.0);
        let down = b.add_node(1.0, -1.0);
        let t = b.add_node(2.0, 0.0);
        b.add_edge(s, up, CostVec::from_slice(&[1.0, 10.0]))
            .unwrap();
        b.add_edge(up, t, CostVec::from_slice(&[1.0, 10.0]))
            .unwrap();
        b.add_edge(s, down, CostVec::from_slice(&[10.0, 1.0]))
            .unwrap();
        b.add_edge(down, t, CostVec::from_slice(&[10.0, 1.0]))
            .unwrap();
        (b.build().unwrap(), s, t)
    }

    #[test]
    fn diamond_has_two_pareto_paths() {
        let (g, s, t) = diamond();
        let paths = pareto_paths(&g, s, t);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].costs.as_slice(), &[2.0, 20.0]);
        assert_eq!(paths[1].costs.as_slice(), &[20.0, 2.0]);
        assert_eq!(paths[0].edges.len(), 2);
        assert_eq!(
            componentwise_minimum(&paths).unwrap().as_slice(),
            &[2.0, 2.0]
        );
    }

    #[test]
    fn source_equals_target_gives_trivial_label() {
        let (g, s, _) = diamond();
        let paths = pareto_paths(&g, s, s);
        assert_eq!(paths.len(), 1);
        assert!(paths[0].edges.is_empty());
        assert_eq!(paths[0].costs.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn unreachable_target_has_no_paths() {
        let mut b = GraphBuilder::new(1);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        b.add_node(5.0, 5.0); // isolated
        b.add_edge(a, c, CostVec::from_slice(&[1.0])).unwrap();
        let g = b.build().unwrap();
        let paths = pareto_paths(&g, a, NodeId::new(2));
        assert!(paths.is_empty());
        assert!(componentwise_minimum(&paths).is_none());
    }

    #[test]
    fn labels_are_mutually_non_dominated() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        // Random small network.
        let mut b = GraphBuilder::new(3);
        let nodes: Vec<NodeId> = (0..30).map(|i| b.add_node(i as f64, 0.0)).collect();
        for w in nodes.windows(2) {
            let c: Vec<f64> = (0..3).map(|_| rng.gen_range(1.0..5.0)).collect();
            b.add_edge(w[0], w[1], CostVec::from_slice(&c)).unwrap();
        }
        for _ in 0..30 {
            let a = nodes[rng.gen_range(0..30)];
            let c = nodes[rng.gen_range(0..30)];
            if a == c {
                continue;
            }
            let cv: Vec<f64> = (0..3).map(|_| rng.gen_range(1.0..5.0)).collect();
            b.add_edge(a, c, CostVec::from_slice(&cv)).unwrap();
        }
        let g = b.build().unwrap();
        let paths = pareto_paths(&g, nodes[0], nodes[29]);
        assert!(!paths.is_empty());
        for a in &paths {
            assert!(a.costs.len() == 3);
            for b2 in &paths {
                if a.edges != b2.edges {
                    assert!(!dominates(&a.costs, &b2.costs) || !dominates(&b2.costs, &a.costs));
                }
            }
        }
    }

    #[test]
    fn componentwise_minimum_matches_single_cost_dijkstra() {
        let (g, s, t) = diamond();
        let paths = pareto_paths(&g, s, t);
        let mins = componentwise_minimum(&paths).unwrap();
        // Single-criterion shortest paths: cost0 via the upper branch = 2,
        // cost1 via the lower branch = 2.
        assert_eq!(mins.as_slice(), &[2.0, 2.0]);
    }
}
