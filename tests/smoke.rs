//! Workspace smoke test: drives the `mcn` facade end-to-end on a tiny
//! hand-built network so that manifest or re-export regressions (a crate
//! dropped from the workspace, a `pub use` removed from the prelude) fail
//! fast with an obvious signal, independent of the heavier generated-workload
//! integration tests.

use mcn::core::prelude::*;
use mcn::graph::{CostVec, GraphBuilder, NetworkLocation};
use mcn::storage::{BufferConfig, MCNStore};
use std::sync::Arc;

/// A diamond network q → {a, b} → t with two cost types (time, toll) and one
/// facility per edge out of q. Facility on q→a is cheap in time, facility on
/// q→b is cheap in toll, and a third facility behind t is dominated.
fn diamond() -> (mcn::graph::MultiCostGraph, NetworkLocation) {
    let mut b = GraphBuilder::new(2);
    let q = b.add_node(0.0, 0.0);
    let a = b.add_node(1.0, 1.0);
    let bb = b.add_node(1.0, -1.0);
    let t = b.add_node(2.0, 0.0);
    let qa = b.add_edge(q, a, CostVec::from_slice(&[1.0, 8.0])).unwrap();
    let qb = b.add_edge(q, bb, CostVec::from_slice(&[8.0, 1.0])).unwrap();
    let at = b.add_edge(a, t, CostVec::from_slice(&[4.0, 4.0])).unwrap();
    b.add_edge(bb, t, CostVec::from_slice(&[4.0, 4.0])).unwrap();
    b.add_facility(qa, 0.5).unwrap(); // ~ (0.5, 4.0) from q
    b.add_facility(qb, 0.5).unwrap(); // ~ (4.0, 0.5) from q
    b.add_facility(at, 0.5).unwrap(); // dominated by the first facility
    let graph = b.build().unwrap();
    (graph, NetworkLocation::Node(q))
}

#[test]
fn facade_smoke_skyline_and_topk() {
    let (graph, q) = diamond();
    let store = Arc::new(MCNStore::build_in_memory(&graph, BufferConfig::Pages(8)).unwrap());

    for algo in [Algorithm::Lsa, Algorithm::Cea] {
        let skyline = skyline_query(&store, q, algo);
        assert_eq!(
            skyline.facilities.len(),
            2,
            "{}: expected the two extreme facilities, got {:?}",
            algo.name(),
            skyline.facilities
        );
        // Mutual non-domination via the facade's graph re-export.
        for x in &skyline.facilities {
            for y in &skyline.facilities {
                if x.facility != y.facility {
                    assert!(!mcn::graph::dominates(&x.costs, &y.costs));
                }
            }
        }
    }

    let top = topk_query(&store, q, WeightedSum::uniform(2), 2, Algorithm::Cea);
    assert_eq!(top.entries.len(), 2);
    assert!(top.entries[0].score <= top.entries[1].score);
    // Uniform weights score both extreme facilities at (0.5 + 4.0) / 2.
    assert!((top.entries[0].score - 2.25).abs() < 1e-9);
}

#[test]
fn facade_reexports_cover_every_crate() {
    // One cheap touch per re-exported crate, so `cargo test` fails to compile
    // if a workspace member silently falls out of the facade.
    let (graph, q) = diamond();

    // graph + skyline
    let items = vec![
        (
            mcn::graph::FacilityId::from(0usize),
            CostVec::from_slice(&[1.0, 2.0]),
        ),
        (
            mcn::graph::FacilityId::from(1usize),
            CostVec::from_slice(&[2.0, 1.0]),
        ),
    ];
    assert_eq!(mcn::skyline::naive_skyline(&items).len(), 2);

    // storage + expansion
    let store = Arc::new(MCNStore::build_in_memory(&graph, BufferConfig::Pages(8)).unwrap());
    assert!(store.num_facilities() > 0);
    let oracle_costs = mcn::expansion::oracle::facility_cost_vectors(&graph, q);
    assert_eq!(oracle_costs.len(), graph.num_facilities());

    // topk
    let matrix = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
    let lists = mcn::topk::SortedLists::from_matrix(&matrix);
    let (entries, _) =
        mcn::topk::no_random_access(&lists, &mcn::topk::WeightedSum::new(vec![0.5, 0.5]), 1);
    assert_eq!(entries.len(), 1);

    // mcpp
    let q_node = match q {
        NetworkLocation::Node(n) => n,
        _ => unreachable!(),
    };
    let paths = mcn::mcpp::pareto_paths(&graph, q_node, q_node);
    assert!(!paths.is_empty());

    // gen
    let spec = mcn::gen::WorkloadSpec {
        nodes: 64,
        facilities: 16,
        cost_types: 2,
        distribution: mcn::gen::CostDistribution::Independent,
        clusters: 2,
        queries: 1,
        seed: 7,
    };
    let workload = mcn::gen::generate_workload(&spec);
    assert!(workload.graph.num_nodes() > 0);

    // io: write then reload the diamond through the CSV round-trip.
    let mut buf: Vec<u8> = Vec::new();
    mcn::io::write_csv(&graph, &mut buf).unwrap();
    let reloaded = mcn::io::load_csv(std::io::BufReader::new(buf.as_slice())).unwrap();
    assert_eq!(reloaded.num_nodes(), graph.num_nodes());
    assert_eq!(reloaded.num_edges(), graph.num_edges());
}
