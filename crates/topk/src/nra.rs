//! The no-random-access (NRA) variant of the threshold algorithm.

use crate::ta::AccessStats;
use crate::{Aggregate, SortedLists};
use std::collections::HashMap;

/// Runs the no-random-access algorithm (NRA) over `lists` and returns the `k`
/// objects with the smallest aggregate score.
///
/// NRA performs only sorted accesses. For every object seen in at least one
/// list it maintains the set of known costs; the unknown costs are bounded
/// below by the corresponding list frontiers, which yields a **lower bound**
/// on the object's score, and bounded above only trivially (we use the exact
/// score once all costs are known). The algorithm stops when `k` objects have
/// fully known scores and no other object's lower bound beats the current k-th
/// best score.
///
/// This mirrors the structure of the MCN top-k algorithms in `mcn-core`, where
/// the sorted lists are incremental network expansions and random accesses are
/// unavailable; candidate elimination there uses exactly the same
/// frontier-based lower bound (paper Section V).
///
/// Results are `(object, score)` pairs in ascending score order, ties broken by
/// object id.
pub fn no_random_access<A: Aggregate>(
    lists: &SortedLists,
    aggregate: &A,
    k: usize,
) -> (Vec<(usize, f64)>, AccessStats) {
    let d = lists.num_attributes();
    let n = lists.num_objects();
    let k = k.min(n);
    let mut stats = AccessStats::default();
    if k == 0 {
        return (Vec::new(), stats);
    }

    // Partial cost vectors of every object seen so far.
    let mut partial: HashMap<usize, Vec<Option<f64>>> = HashMap::new();
    // Fully known objects with their exact score.
    let mut complete: Vec<(usize, f64)> = Vec::new();
    let mut frontier = vec![0.0f64; d];
    let mut depth = 0usize;

    loop {
        let mut any_access = false;
        for i in 0..d {
            let list = lists.list(i);
            if depth >= list.len() {
                continue;
            }
            any_access = true;
            stats.sorted_accesses += 1;
            let (obj, cost) = list[depth];
            frontier[i] = cost;
            let entry = partial.entry(obj).or_insert_with(|| vec![None; d]);
            entry[i] = Some(cost);
            if entry.iter().all(Option::is_some) {
                let row: Vec<f64> = entry.iter().map(|c| c.unwrap()).collect();
                complete.push((obj, aggregate.combine(&row)));
                partial.remove(&obj);
            }
        }
        depth += 1;

        complete.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        if complete.len() >= k {
            let kth = complete[k - 1].1;
            // Lower bound of every incomplete object: unknown costs replaced by
            // the list frontiers.
            // mcn-lint: allow(nondet-iteration, reason = "any() over the partial map is order-independent; only the existence of a possible winner matters")
            let incomplete_can_win = partial.values().any(|costs| {
                let row: Vec<f64> = costs
                    .iter()
                    .enumerate()
                    .map(|(i, c)| c.unwrap_or(frontier[i]))
                    .collect();
                aggregate.combine(&row) < kth
            });
            // Any completely unseen object has lower bound f(frontier).
            let unseen_exists = partial.len() + complete.len() < n;
            let unseen_can_win = unseen_exists && aggregate.combine(&frontier) < kth;
            if !incomplete_can_win && !unseen_can_win {
                break;
            }
        }
        if !any_access {
            break;
        }
    }

    complete.truncate(k);
    (complete, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{naive_topk, threshold_algorithm, WeightedSum};
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn small_example() {
        let costs = vec![
            vec![1.0, 9.0],
            vec![2.0, 2.0],
            vec![9.0, 1.0],
            vec![5.0, 5.0],
        ];
        let lists = SortedLists::from_matrix(&costs);
        let f = WeightedSum::new(vec![1.0, 1.0]);
        let (top, stats) = no_random_access(&lists, &f, 2);
        assert_eq!(top[0].0, 1);
        assert_eq!(top.len(), 2);
        assert_eq!(stats.random_accesses, 0);
    }

    #[test]
    fn agrees_with_ta_scores() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..15 {
            let n = rng.gen_range(1..150);
            let d = rng.gen_range(2..=4);
            let costs: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..d).map(|_| rng.gen_range(0.0..50.0)).collect())
                .collect();
            let k = rng.gen_range(1..=8.min(n));
            let f = WeightedSum::uniform(d);
            let lists = SortedLists::from_matrix(&costs);
            let (nra, _) = no_random_access(&lists, &f, k);
            let (ta, _) = threshold_algorithm(&lists, &f, k, |o| costs[o].clone());
            assert_eq!(nra.len(), ta.len());
            for (a, b) in nra.iter().zip(&ta) {
                assert!((a.1 - b.1).abs() < 1e-9, "NRA/TA score mismatch");
            }
        }
    }

    #[test]
    fn never_uses_random_accesses() {
        let costs = vec![vec![1.0, 2.0, 3.0]; 50];
        let lists = SortedLists::from_matrix(&costs);
        let f = WeightedSum::uniform(3);
        let (_, stats) = no_random_access(&lists, &f, 5);
        assert_eq!(stats.random_accesses, 0);
    }

    #[test]
    fn k_zero_and_oversized_k() {
        let costs = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let lists = SortedLists::from_matrix(&costs);
        let f = WeightedSum::uniform(2);
        assert!(no_random_access(&lists, &f, 0).0.is_empty());
        assert_eq!(no_random_access(&lists, &f, 99).0.len(), 2);
    }

    proptest! {
        #[test]
        fn prop_nra_scores_match_naive(
            rows in proptest::collection::vec(
                proptest::collection::vec(0.0f64..50.0, 2), 1..80),
            k in 1usize..10,
        ) {
            let f = WeightedSum::uniform(2);
            let lists = SortedLists::from_matrix(&rows);
            let (top, _) = no_random_access(&lists, &f, k);
            let expected = naive_topk(&rows, &f, k);
            prop_assert_eq!(top.len(), expected.len());
            for (g, e) in top.iter().zip(&expected) {
                prop_assert!((g.1 - e.1).abs() < 1e-9);
            }
        }
    }
}
