//! Observability integration tests at the facade level: metrics published
//! by the serving stack must reconcile *byte-exactly* with the storage and
//! prep counters they mirror, under concurrency, and span traces must
//! export as loadable chrome://tracing JSON — all without ever changing
//! query results.

use mcn::engine::{QueryEngine, QueryRequest};
use mcn::gen::{generate_workload, WorkloadSpec};
use mcn::obs::{chrome_trace_json, parse_chrome_trace, MetricsRegistry, Obs};
use mcn::storage::{BufferConfig, MCNStore, StoreView};
use mcn::{skyline_query, Algorithm};
use mcn_bench::{build_request_batch, ThroughputConfig};
use std::sync::Arc;

/// A deterministic mixed batch over a tiny workload (reusing the
/// throughput experiment's batch builder, as the concurrency tests do).
fn mixed_batch(seed: u64, batch: usize) -> (Arc<MCNStore>, Vec<QueryRequest>) {
    let spec = WorkloadSpec::tiny(seed);
    let workload = generate_workload(&spec);
    let store =
        Arc::new(MCNStore::build_in_memory(&workload.graph, BufferConfig::Fraction(0.02)).unwrap());
    let config = ThroughputConfig {
        batch,
        seed,
        ..Default::default()
    };
    let requests = build_request_batch(&spec, &workload.queries, &config);
    (store, requests)
}

#[test]
fn published_metrics_reconcile_with_io_stats_under_concurrent_load() {
    // Hammer: four query threads drive the shared buffer pool while an
    // observer repeatedly publishes the store's counters into a registry
    // and checks every snapshot. `publish_metrics` reads one consistent
    // `IoStats` snapshot, so the pool invariants must hold in every
    // published view even though the counters race forward underneath.
    let workload = generate_workload(&WorkloadSpec::tiny(31));
    let store =
        Arc::new(MCNStore::build_in_memory(&workload.graph, BufferConfig::Fraction(0.02)).unwrap());
    let registry = MetricsRegistry::new();
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let store = store.clone();
            let queries = workload.queries.clone();
            scope.spawn(move || {
                for i in 0..12 {
                    let q = queries[(t + i) % queries.len()];
                    let algo = if i % 2 == 0 {
                        Algorithm::Cea
                    } else {
                        Algorithm::Lsa
                    };
                    std::hint::black_box(skyline_query(&store, q, algo).facilities.len());
                }
            });
        }
        let mut last_logical = 0u64;
        for _ in 0..200 {
            store.publish_metrics(&registry);
            let snap = registry.snapshot();
            let logical = snap.counter_value("storage.logical_reads", &[]).unwrap();
            let hits = snap.counter_value("storage.buffer_hits", &[]).unwrap();
            let misses = snap.counter_value("storage.buffer_misses", &[]).unwrap();
            let physical = snap.counter_value("storage.physical_reads", &[]).unwrap();
            assert_eq!(logical, hits + misses, "published snapshot is torn");
            assert!(physical <= misses, "physical reads exceed buffer misses");
            assert!(logical >= last_logical, "published counters went backwards");
            last_logical = logical;
        }
    });
    // Final published view equals the quiesced pool byte-for-byte.
    store.publish_metrics(&registry);
    let snap = registry.snapshot();
    let io = store.io_stats();
    assert_eq!(
        snap.counter_value("storage.logical_reads", &[]),
        Some(io.logical_reads)
    );
    assert_eq!(
        snap.counter_value("storage.buffer_hits", &[]),
        Some(io.buffer_hits)
    );
    assert_eq!(
        snap.counter_value("storage.buffer_misses", &[]),
        Some(io.buffer_misses)
    );
    assert_eq!(
        snap.counter_value("storage.physical_reads", &[]),
        Some(io.physical_reads)
    );
}

#[test]
fn four_worker_batch_reconciles_metrics_and_keeps_results_identical() {
    let (store, requests) = mixed_batch(41, 18);

    // Baseline: no observability attached.
    let bare = QueryEngine::new(store.clone(), 4).run_batch(&requests);
    let bare_prints: Vec<String> = bare
        .outcomes
        .iter()
        .map(|o| o.output.fingerprint())
        .collect();

    // Observed run from identical starting conditions (clearing the pool
    // also zeroes its counters, so the shared registry's cumulative view
    // must equal this batch's deltas exactly).
    store.buffer().clear();
    let obs = Arc::new(Obs::new());
    obs.set_tracing(true);
    let engine = QueryEngine::new(store.clone(), 4).with_obs(obs.clone());
    let result = engine.run_batch(&requests);

    // Observability never changes results: byte-identical fingerprints.
    let observed_prints: Vec<String> = result
        .outcomes
        .iter()
        .map(|o| o.output.fingerprint())
        .collect();
    assert_eq!(bare_prints, observed_prints);

    // Batch-local metrics snapshot reconciles byte-exactly with the I/O
    // delta the engine measured for the same batch.
    let io = &result.stats.io;
    assert_eq!(io.logical_reads, io.buffer_hits + io.buffer_misses);
    let m = &result.stats.metrics;
    assert_eq!(
        m.counter_value("storage.logical_reads", &[]),
        Some(io.logical_reads)
    );
    assert_eq!(
        m.counter_value("storage.buffer_hits", &[]),
        Some(io.buffer_hits)
    );
    assert_eq!(
        m.counter_value("storage.buffer_misses", &[]),
        Some(io.buffer_misses)
    );
    assert_eq!(
        m.counter_value("storage.physical_reads", &[]),
        Some(io.physical_reads)
    );
    assert_eq!(
        m.counter_value("engine.queries", &[]),
        Some(requests.len() as u64)
    );
    assert_eq!(m.counter_value("engine.workers", &[]), Some(4));

    // Latency histogram: one sample per query, percentiles ordered.
    let latency = &result.stats.latency;
    assert_eq!(latency.count, requests.len() as u64);
    assert!(latency.p50 <= latency.p95 && latency.p95 <= latency.p99);
    // Tier histograms partition the batch.
    let tier_total: u64 = result.stats.tier_latency.iter().map(|h| h.count).sum();
    assert_eq!(tier_total, requests.len() as u64);

    // Shared registry: cumulative storage counters equal the pool's own
    // view (one batch since the clear), and the engine counted it.
    let shared = obs.registry().snapshot();
    let pool = store.io_stats();
    assert_eq!(
        shared.counter_value("storage.logical_reads", &[]),
        Some(pool.logical_reads)
    );
    assert_eq!(shared.counter_value("engine.batches", &[]), Some(1));
    assert_eq!(
        shared.counter_value("engine.queries", &[]),
        Some(requests.len() as u64)
    );
}

#[test]
fn traced_batch_exports_valid_chrome_trace_json() {
    let (store, requests) = mixed_batch(53, 12);
    let obs = Arc::new(Obs::new());
    obs.set_tracing(true);
    let engine = QueryEngine::new(store, 2).with_obs(obs.clone());
    engine.run_batch(&requests);

    let events = obs.tracer().drain();
    assert!(!events.is_empty());
    let text = chrome_trace_json(&events);
    let parsed = parse_chrome_trace(&text).expect("exported trace parses");
    assert_eq!(parsed.len(), events.len());
    // Deterministic serializer: re-serializing reproduces the bytes.
    assert_eq!(serde::json::to_string_pretty(&parsed), text);
    // Every query's lifecycle reaches the trace: schedule, search and
    // fingerprint spans for each request, plus unpack for the kinds that
    // have a separate unpacking stage (incremental top-k streams results
    // inside its single search span instead).
    for (i, request) in requests.iter().enumerate() {
        let query = i as u64;
        let mut expected = vec!["schedule", "search", "fingerprint"];
        if request.kind() != "topk-inc" {
            expected.push("unpack");
        }
        for name in expected {
            assert!(
                parsed
                    .iter()
                    .any(|e| e.args.query == query && e.name == name),
                "query {query} is missing a `{name}` span"
            );
        }
    }
    // Complete events with positive timestamps and 1-based worker tids.
    assert!(parsed.iter().all(|e| e.ph == "X" && e.tid >= 1));
    // Draining again yields nothing: the ring buffers were emptied.
    assert!(obs.tracer().drain().is_empty());
}
