//! Facility placement: Gaussian clusters around random network nodes.
//!
//! The paper generates its facility set "to form 10 Gaussian clusters centered
//! around 10 random nodes in the network", simulating points of interest
//! concentrated around a business district, the port area, etc. We reproduce
//! this by picking cluster centre nodes and placing each facility on an edge
//! whose end-node lies a (rounded) |N(0, σ)| breadth-first hops away from its
//! cluster's centre, at a uniformly random position along the edge.

use mcn_graph::{EdgeId, MultiCostGraph, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Parameters of the clustered facility placement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FacilitySpec {
    /// Total number of facilities |P|.
    pub count: usize,
    /// Number of Gaussian clusters (the paper uses 10).
    pub clusters: usize,
    /// Standard deviation of the cluster radius, in breadth-first hops.
    pub sigma_hops: f64,
    /// Seed of the deterministic generator.
    pub seed: u64,
}

impl FacilitySpec {
    /// The paper's shape (10 clusters) with the given facility count.
    pub fn clustered(count: usize, seed: u64) -> Self {
        Self {
            count,
            clusters: 10,
            sigma_hops: 8.0,
            seed,
        }
    }

    /// Serializes the spec as indented JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a spec from its JSON representation.
    ///
    /// # Errors
    /// Returns the underlying JSON error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde::json::from_str(text).map_err(|e| e.to_string())
    }
}

/// A facility placement: the edge it falls on and the position along it.
pub type Placement = (EdgeId, f64);

/// Computes facility placements on `graph` according to `spec`.
///
/// The placements are returned rather than inserted so that callers can decide
/// how to add them (e.g. `GraphBuilder` round-trips in tests, or directly on a
/// mutable builder in the workload pipeline).
pub fn place_facilities(graph: &MultiCostGraph, spec: &FacilitySpec) -> Vec<Placement> {
    assert!(spec.clusters >= 1, "at least one cluster required");
    assert!(
        graph.num_edges() > 0,
        "graph has no edges to place facilities on"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ 0xA5A5_5A5A_DEAD_BEEF);

    // Cluster centres: random distinct-ish nodes (duplicates allowed for tiny
    // graphs — they just merge clusters).
    let centres: Vec<NodeId> = (0..spec.clusters)
        .map(|_| NodeId::from(rng.gen_range(0..graph.num_nodes())))
        .collect();
    // Hop distance from every node to its nearest... we need per-cluster BFS
    // rings: for each cluster pre-compute BFS order so that "k hops from the
    // centre" can be sampled in O(1).
    let rings: Vec<Vec<Vec<NodeId>>> = centres.iter().map(|&c| bfs_rings(graph, c)).collect();

    let mut placements = Vec::with_capacity(spec.count);
    for _ in 0..spec.count {
        let cluster = rng.gen_range(0..spec.clusters);
        let rings = &rings[cluster];
        // |N(0, σ)| hops, clamped to the reachable radius.
        let hops = (normal_sample(&mut rng) * spec.sigma_hops).abs().round() as usize;
        let hops = hops.min(rings.len() - 1);
        let ring = &rings[hops];
        let anchor = ring[rng.gen_range(0..ring.len())];
        // Pick an edge incident to the anchor node and a position along it.
        let incident = graph.incident_edges(anchor);
        let edge = incident[rng.gen_range(0..incident.len())];
        placements.push((edge, rng.gen_range(0.0..=1.0)));
    }
    placements
}

/// Groups the nodes of `graph` by breadth-first hop distance from `centre`
/// (ring 0 = the centre itself). Unreachable nodes are omitted.
fn bfs_rings(graph: &MultiCostGraph, centre: NodeId) -> Vec<Vec<NodeId>> {
    let mut dist: Vec<Option<u32>> = vec![None; graph.num_nodes()];
    let mut queue = VecDeque::new();
    dist[centre.index()] = Some(0);
    queue.push_back(centre);
    let mut rings: Vec<Vec<NodeId>> = vec![vec![centre]];
    while let Some(n) = queue.pop_front() {
        let d = dist[n.index()].expect("queued nodes have distances");
        for &eid in graph.incident_edges(n) {
            let other = graph.edge(eid).opposite(n);
            if dist[other.index()].is_none() {
                dist[other.index()] = Some(d + 1);
                if rings.len() <= (d + 1) as usize {
                    rings.push(Vec::new());
                }
                rings[(d + 1) as usize].push(other);
                queue.push_back(other);
            }
        }
    }
    rings
}

/// A cheap standard-normal sample (sum of 12 uniforms minus 6).
fn normal_sample(rng: &mut ChaCha8Rng) -> f64 {
    (0..12).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::{assign_costs, CostDistribution};
    use crate::network::{build_graph, generate_topology, NetworkSpec};

    fn graph() -> MultiCostGraph {
        let topo = generate_topology(&NetworkSpec::with_target_nodes(2500, 4));
        let costs = assign_costs(&topo, 2, CostDistribution::Independent, 4);
        build_graph(&topo, &costs).0
    }

    #[test]
    fn placements_have_requested_count_and_valid_positions() {
        let g = graph();
        let spec = FacilitySpec::clustered(500, 1);
        let placements = place_facilities(&g, &spec);
        assert_eq!(placements.len(), 500);
        for (edge, pos) in &placements {
            assert!(edge.index() < g.num_edges());
            assert!((0.0..=1.0).contains(pos));
        }
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let g = graph();
        let spec = FacilitySpec::clustered(100, 9);
        assert_eq!(place_facilities(&g, &spec), place_facilities(&g, &spec));
        let other = FacilitySpec::clustered(100, 10);
        assert_ne!(place_facilities(&g, &spec), place_facilities(&g, &other));
    }

    #[test]
    fn facilities_are_spatially_clustered() {
        // With few clusters and a small sigma, facilities should touch far
        // fewer distinct edges than a uniform placement would.
        let g = graph();
        let spec = FacilitySpec {
            count: 1000,
            clusters: 5,
            sigma_hops: 3.0,
            seed: 3,
        };
        let placements = place_facilities(&g, &spec);
        let mut edges: Vec<u32> = placements.iter().map(|(e, _)| e.raw()).collect();
        edges.sort_unstable();
        edges.dedup();
        assert!(
            edges.len() < g.num_edges() / 3,
            "facilities touch {} of {} edges — not clustered",
            edges.len(),
            g.num_edges()
        );
    }

    #[test]
    fn bfs_rings_partition_reachable_nodes() {
        let g = graph();
        let rings = bfs_rings(&g, NodeId::new(0));
        let total: usize = rings.iter().map(Vec::len).sum();
        assert_eq!(total, g.num_nodes(), "connected graph: all nodes in rings");
        assert_eq!(rings[0], vec![NodeId::new(0)]);
    }
}
