//! Divide-and-conquer skyline computation.

use crate::SkylineItem;
use mcn_graph::dominates;

/// Computes the skyline of `items` with a divide-and-conquer strategy
/// (Börzsönyi et al., ICDE 2001).
///
/// The input is split in half on the first dimension's median; the skylines of
/// the two halves are computed recursively and then merged by removing from
/// the "worse" half every entry dominated by an entry of the "better" half.
/// Small partitions fall back to an in-memory nested-loops pass.
///
/// Returns indices into `items` (order unspecified but deterministic).
pub fn divide_and_conquer<T: SkylineItem>(items: &[T]) -> Vec<usize> {
    let indices: Vec<usize> = (0..items.len()).collect();
    dc(items, indices)
}

const SMALL_PARTITION: usize = 16;

fn dc<T: SkylineItem>(items: &[T], mut subset: Vec<usize>) -> Vec<usize> {
    if subset.len() <= SMALL_PARTITION {
        return nested_loops(items, &subset);
    }
    // Partition on the median of the first dimension.
    subset.sort_by(|&a, &b| {
        items[a].costs()[0]
            .total_cmp(&items[b].costs()[0])
            .then_with(|| items[a].costs().lex_cmp(items[b].costs()))
    });
    let mid = subset.len() / 2;
    let right = subset.split_off(mid);
    let left = subset;

    let left_sky = dc(items, left);
    let right_sky = dc(items, right);

    // Every survivor of the left half is in the final skyline of the union
    // only if not dominated by a right survivor and vice versa; since the left
    // half has smaller first components, left entries can only be dominated by
    // right entries that are ≤ in *all* dimensions, which the generic check
    // below covers. We simply merge with mutual filtering.
    let mut merged = Vec::with_capacity(left_sky.len() + right_sky.len());
    for &l in &left_sky {
        if !right_sky
            .iter()
            .any(|&r| dominates(items[r].costs(), items[l].costs()))
        {
            merged.push(l);
        }
    }
    for &r in &right_sky {
        if !left_sky
            .iter()
            .any(|&l| dominates(items[l].costs(), items[r].costs()))
        {
            merged.push(r);
        }
    }
    merged
}

fn nested_loops<T: SkylineItem>(items: &[T], subset: &[usize]) -> Vec<usize> {
    let mut result = Vec::new();
    'outer: for &i in subset {
        for &j in subset {
            if i != j && dominates(items[j].costs(), items[i].costs()) {
                continue 'outer;
            }
        }
        result.push(i);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{block_nested_loops, is_valid_skyline};
    use mcn_graph::CostVec;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn cv(v: &[f64]) -> CostVec {
        CostVec::from_slice(v)
    }

    #[test]
    fn small_inputs_fall_back_to_nested_loops() {
        let items = vec![cv(&[1.0, 5.0]), cv(&[2.0, 6.0]), cv(&[3.0, 2.0])];
        let mut got = divide_and_conquer(&items);
        got.sort_unstable();
        assert_eq!(got, vec![0, 2]);
    }

    #[test]
    fn large_random_input_matches_bnl() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for d in 2..=5 {
            let items: Vec<CostVec> = (0..500)
                .map(|_| {
                    let v: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..100.0)).collect();
                    cv(&v)
                })
                .collect();
            let mut a = divide_and_conquer(&items);
            let mut b = block_nested_loops(&items);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "D&C and BNL disagree at d={d}");
        }
    }

    #[test]
    fn duplicates_survive() {
        let items: Vec<CostVec> = (0..40).map(|_| cv(&[1.0, 1.0])).collect();
        assert_eq!(divide_and_conquer(&items).len(), 40);
    }

    proptest! {
        #[test]
        fn prop_dc_is_valid_skyline(
            points in proptest::collection::vec(
                proptest::collection::vec(0.0f64..30.0, 3), 0..120),
        ) {
            let items: Vec<CostVec> = points.iter().map(|p| cv(p)).collect();
            let got = divide_and_conquer(&items);
            prop_assert!(is_valid_skyline(&items, &got));
        }
    }
}
