//! Offline shim for the slice of serde this workspace uses.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and report
//! structs but never invokes a serializer in-tree, so the traits here are
//! markers and the derives (re-exported from the vendored `serde_derive`)
//! expand to nothing. Swap in the real serde when the build environment
//! gains registry access.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
