//! Error types for graph construction and validation.

use crate::ids::{EdgeId, FacilityId, NodeId};
use std::fmt;

/// Errors produced while building or validating a [`crate::MultiCostGraph`].
#[derive(Clone, Debug, PartialEq)]
pub enum GraphError {
    /// An edge refers to a node identifier that has not been added.
    UnknownNode(NodeId),
    /// A facility refers to an edge identifier that has not been added.
    UnknownEdge(EdgeId),
    /// A facility identifier was used twice.
    DuplicateFacility(FacilityId),
    /// An edge cost vector has a different dimensionality than the graph.
    CostDimensionMismatch {
        /// The edge in question.
        edge: EdgeId,
        /// The graph-wide number of cost types.
        expected: usize,
        /// The dimensionality supplied for this edge.
        found: usize,
    },
    /// An edge cost vector contains a negative or non-finite component.
    InvalidCost(EdgeId),
    /// A facility position lies outside `[0, 1]`.
    InvalidFacilityPosition {
        /// The facility in question.
        facility: FacilityId,
        /// The offending position value.
        position: f64,
    },
    /// A self-loop edge (both end-nodes identical) was supplied.
    SelfLoop(EdgeId),
    /// The graph has no nodes.
    EmptyGraph,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(n) => write!(f, "edge references unknown node {n}"),
            GraphError::UnknownEdge(e) => write!(f, "facility references unknown edge {e}"),
            GraphError::DuplicateFacility(p) => write!(f, "duplicate facility identifier {p}"),
            GraphError::CostDimensionMismatch {
                edge,
                expected,
                found,
            } => write!(
                f,
                "edge {edge} has {found} cost components but the graph has {expected} cost types"
            ),
            GraphError::InvalidCost(e) => {
                write!(f, "edge {e} has a negative or non-finite cost component")
            }
            GraphError::InvalidFacilityPosition { facility, position } => write!(
                f,
                "facility {facility} position {position} is outside [0, 1]"
            ),
            GraphError::SelfLoop(e) => write!(f, "edge {e} is a self-loop"),
            GraphError::EmptyGraph => write!(f, "the graph has no nodes"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_ids() {
        let e = GraphError::UnknownNode(NodeId::new(7));
        assert!(e.to_string().contains("v7"));
        let e = GraphError::CostDimensionMismatch {
            edge: EdgeId::new(3),
            expected: 4,
            found: 2,
        };
        assert!(e.to_string().contains("e3"));
        assert!(e.to_string().contains('4'));
        let e = GraphError::InvalidFacilityPosition {
            facility: FacilityId::new(1),
            position: 2.0,
        };
        assert!(e.to_string().contains("p1"));
    }
}
