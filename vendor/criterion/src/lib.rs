//! Offline stand-in for the slice of Criterion this workspace uses.
//!
//! Implements enough of the `criterion` 0.5 API for the `crates/bench`
//! suite to compile under `cargo bench --no-run` *and* to produce useful
//! numbers when actually run: each benchmark is warmed up, then timed for
//! the configured measurement window, and mean / min wall-clock times are
//! printed in a criterion-like one-line format.
//!
//! Supported surface: [`Criterion::benchmark_group`], group configuration
//! (`sample_size`, `warm_up_time`, `measurement_time`), `bench_function`,
//! `bench_with_input`, [`BenchmarkId::new`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Statistical analysis, plotting and baselines are out of scope.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one benchmark: a function name plus a parameter label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Creates an id like `function/parameter`.
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        Self {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Creates an id with a parameter label only.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        Self {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        Self {
            function,
            parameter: None,
        }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher<'a> {
    config: &'a GroupConfig,
    report: Option<Measurement>,
}

/// Aggregate timing of one benchmark.
struct Measurement {
    iterations: u64,
    total: Duration,
    fastest: Duration,
}

impl Bencher<'_> {
    /// Runs `routine` repeatedly: a warm-up window, then timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run untimed until the warm-up window elapses.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }

        let mut iterations = 0u64;
        let mut total = Duration::ZERO;
        let mut fastest = Duration::MAX;
        let deadline = Instant::now() + self.config.measurement_time;
        while iterations < self.config.sample_size as u64 || Instant::now() < deadline {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            iterations += 1;
            total += elapsed;
            fastest = fastest.min(elapsed);
        }
        self.report = Some(Measurement {
            iterations,
            total,
            fastest,
        });
    }
}

/// Per-group run configuration.
#[derive(Clone, Debug)]
struct GroupConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for GroupConfig {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// A named group of related benchmarks sharing a configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: GroupConfig,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Sets the untimed warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the timed measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    fn run<F: FnMut(&mut Bencher<'_>)>(&mut self, label: String, mut f: F) {
        let mut bencher = Bencher {
            config: &self.config,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(m) if m.iterations > 0 => {
                let mean = m.total / m.iterations as u32;
                println!(
                    "{}/{:<40} time: [mean {:>12.3?}  min {:>12.3?}  iters {}]",
                    self.name, label, mean, m.fastest, m.iterations
                );
            }
            _ => println!("{}/{:<40} time: [no samples]", self.name, label),
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher<'_>),
    {
        let label = id.into().render();
        self.run(label, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I, In, F>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        In: ?Sized,
        F: FnMut(&mut Bencher<'_>, &In),
    {
        let label = id.into().render();
        self.run(label, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a configuration-sharing group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: GroupConfig::default(),
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags like `--bench`; a real
            // argument parser is out of scope for the offline shim.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("lsa", "P500").render(), "lsa/P500");
        assert_eq!(BenchmarkId::from_parameter(64).render(), "64");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran >= 3);
    }
}
