//! The in-memory multi-cost graph.

use crate::cost::CostVec;
use crate::edge::Edge;
use crate::facility::Facility;
use crate::ids::{EdgeId, FacilityId, NodeId};
use crate::node::Node;
use serde::{Deserialize, Serialize};

/// An immutable, validated multi-cost transportation network.
///
/// Construct one with [`crate::GraphBuilder`]. The graph owns:
///
/// * the nodes (with optional coordinates),
/// * the edges, each carrying a `d`-dimensional cost vector,
/// * the facilities, each lying at a fractional position on an edge,
/// * adjacency lists (per node) and facility lists (per edge).
///
/// All lookups are `O(1)` array indexing; iteration over a node's incident
/// edges or an edge's facilities is a slice scan.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MultiCostGraph {
    pub(crate) num_cost_types: usize,
    pub(crate) nodes: Vec<Node>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) facilities: Vec<Facility>,
    /// For each node, the identifiers of edges incident to it.
    pub(crate) adjacency: Vec<Vec<EdgeId>>,
    /// For each edge, the identifiers of facilities lying on it.
    pub(crate) edge_facilities: Vec<Vec<FacilityId>>,
}

const _: () = crate::assert_send_sync::<MultiCostGraph>();

/// One entry of a node's adjacency list: the incident edge, the node at the
/// other end, and the edge's cost vector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// The connecting edge.
    pub edge: EdgeId,
    /// The node at the opposite end of the edge.
    pub node: NodeId,
    /// The edge's cost vector.
    pub costs: CostVec,
}

impl MultiCostGraph {
    /// Number of cost types `d` carried by every edge.
    #[inline]
    pub fn num_cost_types(&self) -> usize {
        self.num_cost_types
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of facilities `|P|`.
    #[inline]
    pub fn num_facilities(&self) -> usize {
        self.facilities.len()
    }

    /// Returns the node with the given identifier.
    ///
    /// # Panics
    /// Panics if the identifier is out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Returns the edge with the given identifier.
    ///
    /// # Panics
    /// Panics if the identifier is out of range.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Returns the facility with the given identifier.
    ///
    /// # Panics
    /// Panics if the identifier is out of range.
    #[inline]
    pub fn facility(&self, id: FacilityId) -> &Facility {
        &self.facilities[id.index()]
    }

    /// Iterates over all nodes.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = &Node> + '_ {
        self.nodes.iter()
    }

    /// Iterates over all edges.
    #[inline]
    pub fn edges(&self) -> impl Iterator<Item = &Edge> + '_ {
        self.edges.iter()
    }

    /// Iterates over all facilities.
    #[inline]
    pub fn facilities(&self) -> impl Iterator<Item = &Facility> + '_ {
        self.facilities.iter()
    }

    /// Identifiers of the edges incident to `node` (regardless of direction).
    #[inline]
    pub fn incident_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.adjacency[node.index()]
    }

    /// Identifiers of the facilities lying on `edge`.
    #[inline]
    pub fn facilities_on_edge(&self, edge: EdgeId) -> &[FacilityId] {
        &self.edge_facilities[edge.index()]
    }

    /// Iterates over the neighbors reachable from `node` by traversing one
    /// edge, respecting edge direction.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = Neighbor> + '_ {
        self.adjacency[node.index()].iter().filter_map(move |&eid| {
            let e = self.edge(eid);
            if e.traversable_from(node) {
                Some(Neighbor {
                    edge: eid,
                    node: e.opposite(node),
                    costs: e.costs,
                })
            } else {
                None
            }
        })
    }

    /// Average node degree (counting each undirected edge at both end-points).
    pub fn average_degree(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let total: usize = self.adjacency.iter().map(Vec::len).sum();
        total as f64 / self.nodes.len() as f64
    }

    /// Returns true iff the undirected version of the graph is connected.
    ///
    /// Used by the generators and loaders to validate workloads: the paper's
    /// queries implicitly assume every facility is reachable from every query
    /// location.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(n) = stack.pop() {
            for &eid in self.incident_edges(n) {
                let e = self.edge(eid);
                let other = e.opposite(n);
                if !seen[other.index()] {
                    seen[other.index()] = true;
                    count += 1;
                    stack.push(other);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Total size of the facility set grouped by edge, useful for sanity checks.
    pub fn facility_histogram(&self) -> Vec<usize> {
        self.edge_facilities.iter().map(Vec::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> MultiCostGraph {
        let mut b = GraphBuilder::new(2);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        let d = b.add_node(0.0, 1.0);
        b.add_edge(a, c, CostVec::from_slice(&[1.0, 4.0])).unwrap();
        b.add_edge(c, d, CostVec::from_slice(&[2.0, 5.0])).unwrap();
        let e = b.add_edge(a, d, CostVec::from_slice(&[3.0, 6.0])).unwrap();
        b.add_facility(e, 0.5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts_and_lookups() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_facilities(), 1);
        assert_eq!(g.num_cost_types(), 2);
        assert_eq!(g.node(NodeId::new(1)).id, NodeId::new(1));
        assert_eq!(g.edge(EdgeId::new(2)).source, NodeId::new(0));
        assert_eq!(g.facility(FacilityId::new(0)).edge, EdgeId::new(2));
    }

    #[test]
    fn neighbors_respect_structure() {
        let g = triangle();
        let mut ns: Vec<NodeId> = g.neighbors(NodeId::new(0)).map(|n| n.node).collect();
        ns.sort();
        assert_eq!(ns, vec![NodeId::new(1), NodeId::new(2)]);
        assert_eq!(g.incident_edges(NodeId::new(0)).len(), 2);
        assert_eq!(g.facilities_on_edge(EdgeId::new(2)), &[FacilityId::new(0)]);
        assert!(g.facilities_on_edge(EdgeId::new(0)).is_empty());
    }

    #[test]
    fn directed_edges_limit_neighbors() {
        let mut b = GraphBuilder::new(1);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        b.add_directed_edge(a, c, CostVec::from_slice(&[1.0]))
            .unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.neighbors(a).count(), 1);
        assert_eq!(g.neighbors(c).count(), 0);
        // ...but the undirected connectivity test still sees one component.
        assert!(g.is_connected());
    }

    #[test]
    fn connectivity_detection() {
        let g = triangle();
        assert!(g.is_connected());

        let mut b = GraphBuilder::new(1);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        b.add_node(2.0, 0.0); // isolated node
        b.add_edge(a, c, CostVec::from_slice(&[1.0])).unwrap();
        let g = b.build().unwrap();
        assert!(!g.is_connected());
    }

    #[test]
    fn average_degree() {
        let g = triangle();
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn facility_histogram_counts_per_edge() {
        let g = triangle();
        assert_eq!(g.facility_histogram(), vec![0, 0, 1]);
    }
}
