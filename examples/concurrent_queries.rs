//! Concurrent queries: drive a batch of mixed skyline/top-k queries through
//! the multi-query [`QueryEngine`] at increasing worker counts over one
//! shared store, and print throughput and buffer hit-rate.
//!
//! ```text
//! cargo run --release --example concurrent_queries
//! ```
//!
//! The store sits on a simulated disk that *blocks* for 50 µs per physical
//! page read (the paper charges such a latency arithmetically; here it is
//! real time), so adding workers overlaps I/O waits and the queries-per-
//! second figure climbs — while every result stays byte-identical to the
//! serial run, which this example verifies with fingerprints.

use mcn::engine::{QueryEngine, QueryRequest};
use mcn::gen::{generate_workload, WorkloadSpec};
use mcn::storage::{BufferConfig, DiskManager, InMemoryDisk, MCNStore};
use mcn::Algorithm;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // A synthetic workload in the style of the paper's Section VI, scaled
    // down so the example finishes in seconds.
    let spec = WorkloadSpec {
        nodes: 2000,
        facilities: 600,
        queries: 8,
        ..WorkloadSpec::tiny(42)
    };
    let workload = generate_workload(&spec);
    let disk: Arc<dyn DiskManager> =
        Arc::new(InMemoryDisk::with_read_latency(Duration::from_micros(50)));
    let store =
        Arc::new(MCNStore::build_on(&workload.graph, disk, BufferConfig::Fraction(0.01)).unwrap());
    println!(
        "network: {} nodes, {} facilities, d = {}, {} data pages",
        store.num_nodes(),
        store.num_facilities(),
        store.num_cost_types(),
        store.data_pages()
    );

    // A mixed batch: skyline, batch top-k and incremental top-k, alternating
    // LSA and CEA — the kind of traffic a shared service would see.
    let d = spec.cost_types;
    let requests: Vec<QueryRequest> = workload
        .queries
        .iter()
        .cycle()
        .take(24)
        .enumerate()
        .map(|(i, &location)| {
            let weights: Vec<f64> = (0..d).map(|j| 0.2 + ((i + j) % 5) as f64 * 0.2).collect();
            let algorithm = if i % 2 == 0 {
                Algorithm::Cea
            } else {
                Algorithm::Lsa
            };
            match i % 3 {
                0 => QueryRequest::Skyline {
                    location,
                    algorithm,
                },
                1 => QueryRequest::TopK {
                    location,
                    weights,
                    k: 4,
                    algorithm,
                },
                _ => QueryRequest::TopKIncremental {
                    location,
                    weights,
                    take: 4,
                    algorithm,
                },
            }
        })
        .collect();

    println!(
        "\nbatch of {} mixed queries, worker sweep:\n",
        requests.len()
    );
    println!(
        "{:<10} {:>10} {:>10} {:>9} {:>12} {:>10}",
        "workers", "wall(s)", "QPS", "speedup", "phys reads", "hit rate"
    );
    let mut baseline: Option<(Vec<String>, f64)> = None;
    for workers in [1usize, 2, 4] {
        store.buffer().clear();
        let engine = QueryEngine::new(store.clone(), workers);
        let result = engine.run_batch(&requests);
        let fingerprints: Vec<String> = result
            .outcomes
            .iter()
            .map(|o| o.output.fingerprint())
            .collect();
        let speedup = match &baseline {
            None => {
                baseline = Some((fingerprints, result.stats.qps));
                1.0
            }
            Some((serial_prints, serial_qps)) => {
                // Concurrency must never change a single result byte.
                assert_eq!(serial_prints, &fingerprints, "results diverged!");
                result.stats.qps / serial_qps
            }
        };
        println!(
            "{:<10} {:>10.3} {:>10.1} {:>8.2}x {:>12} {:>9.1}%",
            workers,
            result.stats.wall.as_secs_f64(),
            result.stats.qps,
            speedup,
            result.stats.io.physical_reads,
            result.stats.io.hit_ratio() * 100.0
        );
    }
    println!("\nevery worker count produced byte-identical results ✓");
}
