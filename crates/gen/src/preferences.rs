//! Per-user preference-vector synthesis for the scalarized serving tier.
//!
//! A production deployment stores one α per user; experiments need a
//! deterministic *pool* of such vectors covering the simplex. The weights
//! are drawn Dirichlet-style — d independent exponential variates,
//! normalized to unit sum — which is uniform on the simplex for
//! `concentration = 1` and biases towards the corners (opinionated users)
//! for smaller values.
//!
//! The raw vectors are plain `Vec<f64>` so this crate stays independent of
//! `mcn-alpha`; `Preference::new` in that crate validates and re-normalizes
//! them on ingestion.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Specification of a synthetic per-user preference pool.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PreferenceSpec {
    /// Number of users (one weight vector each).
    pub users: usize,
    /// Number of cost types d each vector weighs.
    pub cost_types: usize,
    /// Shape of the pool: 1.0 draws uniformly from the simplex; values
    /// below 1 push the mass towards single-cost extremists, values above 1
    /// towards the uniform center.
    pub concentration: f64,
    /// Master seed; the pool is a pure function of the spec.
    pub seed: u64,
}

impl PreferenceSpec {
    /// A uniform-on-the-simplex pool.
    pub fn uniform(users: usize, cost_types: usize, seed: u64) -> Self {
        Self {
            users,
            cost_types,
            concentration: 1.0,
            seed,
        }
    }

    /// Serializes to the workspace JSON dialect.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a spec back from JSON.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde::json::from_str(text).map_err(|e| e.to_string())
    }
}

/// Generates the pool: `spec.users` weight vectors of length
/// `spec.cost_types`, each normalized to unit sum with every component
/// strictly positive.
///
/// Deterministic: the same spec always produces the same pool, and user `i`
/// keeps their vector when the pool grows (draws are sequential from one
/// seeded stream).
///
/// # Panics
/// Panics if `cost_types == 0`, `users == 0`, or `concentration` is not a
/// positive finite number.
pub fn generate_preferences(spec: &PreferenceSpec) -> Vec<Vec<f64>> {
    assert!(spec.cost_types >= 1, "need at least one cost type");
    assert!(spec.users >= 1, "need at least one user");
    assert!(
        spec.concentration.is_finite() && spec.concentration > 0.0,
        "concentration must be positive and finite"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ 0xA17A_0001);
    (0..spec.users)
        .map(|_| {
            // Exponential variates via inverse CDF, raised to 1/concentration:
            // Gamma(k) is awkward without a gamma sampler, but the power
            // transform reshapes the spread the same qualitative way and
            // stays deterministic and dependency-free.
            let raw: Vec<f64> = (0..spec.cost_types)
                .map(|_| {
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    (-u.ln()).powf(1.0 / spec.concentration).max(1e-9)
                })
                .collect();
            let sum: f64 = raw.iter().sum();
            raw.iter().map(|w| w / sum).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_deterministic_and_on_the_simplex() {
        let spec = PreferenceSpec::uniform(20, 4, 7);
        let a = generate_preferences(&spec);
        let b = generate_preferences(&spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        for alpha in &a {
            assert_eq!(alpha.len(), 4);
            let sum: f64 = alpha.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(alpha.iter().all(|&w| w > 0.0 && w < 1.0));
        }
    }

    #[test]
    fn different_seeds_give_different_pools() {
        let a = generate_preferences(&PreferenceSpec::uniform(5, 3, 1));
        let b = generate_preferences(&PreferenceSpec::uniform(5, 3, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn user_vectors_are_stable_when_the_pool_grows() {
        let small = generate_preferences(&PreferenceSpec::uniform(3, 3, 9));
        let large = generate_preferences(&PreferenceSpec::uniform(8, 3, 9));
        assert_eq!(small[..], large[..3]);
    }

    #[test]
    fn concentration_shapes_the_spread() {
        // Extremist pools (low concentration) have a larger max component
        // on average than centrist pools (high concentration).
        let spread = |c: f64| -> f64 {
            let pool = generate_preferences(&PreferenceSpec {
                users: 200,
                cost_types: 3,
                concentration: c,
                seed: 42,
            });
            pool.iter()
                .map(|a| a.iter().cloned().fold(0.0, f64::max))
                .sum::<f64>()
                / pool.len() as f64
        };
        assert!(spread(0.3) > spread(1.0));
        assert!(spread(1.0) > spread(5.0));
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = PreferenceSpec {
            users: 12,
            cost_types: 5,
            concentration: 0.5,
            seed: 77,
        };
        assert_eq!(PreferenceSpec::from_json(&spec.to_json()).unwrap(), spec);
    }
}
