//! Progressive skyline and incremental top-k output — the two API properties
//! the paper emphasises for online systems: skyline members become available
//! the moment they are pinned (no need to wait for termination), and the
//! (i+1)-st best facility can be requested after the top-i without recomputing
//! anything.
//!
//! ```text
//! cargo run --release --example progressive_streaming
//! ```

use mcn::core::prelude::*;
use mcn::gen::{generate_workload, CostDistribution, WorkloadSpec};
use mcn::storage::{BufferConfig, MCNStore};
use std::sync::Arc;

fn main() {
    let spec = WorkloadSpec {
        nodes: 6_400,
        facilities: 1_500,
        cost_types: 4,
        distribution: CostDistribution::AntiCorrelated,
        clusters: 10,
        queries: 1,
        seed: 99,
    };
    let workload = generate_workload(&spec);
    let store =
        Arc::new(MCNStore::build_in_memory(&workload.graph, BufferConfig::Fraction(0.01)).unwrap());
    let q = workload.queries[0];

    // --- Progressive skyline -------------------------------------------------
    // Each member is printed the moment the algorithm pins it, together with
    // how much I/O had been spent up to that point: early answers are cheap.
    println!("Progressive skyline (CEA):");
    let mut search = mcn::core::SkylineSearch::cea(store.clone(), q);
    let mut produced = 0usize;
    while let Some(member) = search.next() {
        produced += 1;
        let io = search.collect_stats().io;
        println!(
            "  #{produced}: {} {} after {} page requests",
            member.facility, member.costs, io.logical_reads
        );
        if produced == 8 {
            println!("  … (stopping the consumer early — the search simply stops too)");
            break;
        }
    }

    // --- Incremental top-k ---------------------------------------------------
    // k is not known in advance: keep asking for the next best facility until
    // the consumer (here: a score budget) is satisfied.
    let weights = WeightedSum::uniform(4);
    println!("\nIncremental top-k (LSA), facilities with score < 900:");
    let mut iter = TopKIter::lsa(store.clone(), q, weights);
    let mut reported = 0usize;
    for entry in iter.by_ref() {
        if entry.score >= 900.0 || reported >= 10 {
            break;
        }
        reported += 1;
        println!("  #{reported}: {} score {:.1}", entry.facility, entry.score);
    }
    let stats = iter.stats();
    println!(
        "\nReported {reported} facilities using {} buffer misses and {} settled nodes",
        stats.io.buffer_misses, stats.nodes_settled
    );
}
