//! JSON round-trip properties for the `mcn-bench` report and configuration
//! types — the persistence layer behind `experiments --out/--check`.

use mcn_bench::{
    AlgoMeasurement, Experiment, ExperimentConfig, ExperimentTable, PointMeasurement, QueryKind,
    Row,
};
use proptest::prelude::*;
use serde::json::{from_str, to_string};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    from_str(&to_string(value)).expect("round-trip parse")
}

fn algo(seed: f64) -> AlgoMeasurement {
    AlgoMeasurement {
        cpu_seconds: seed * 0.001,
        physical_reads: seed,
        logical_reads: seed * 2.0,
        hit_ratio: 0.5,
        candidates: seed + 1.0,
        pinned: seed / 2.0,
        result_size: 7.0,
        nodes_settled: seed * 10.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn query_kind_roundtrips(k in 0usize..1000, skyline in any::<bool>()) {
        let kind = if skyline { QueryKind::Skyline } else { QueryKind::TopK(k) };
        prop_assert_eq!(roundtrip(&kind), kind);
    }

    #[test]
    fn measurements_roundtrip(seed in 0.0f64..1e6, queries in 1usize..1000) {
        let m = algo(seed);
        prop_assert_eq!(roundtrip(&m), m);
        let point = PointMeasurement {
            label: format!("|P| = {queries}"),
            lsa: algo(seed * 2.0),
            cea: algo(seed),
            queries,
        };
        prop_assert_eq!(roundtrip(&point), point.clone());
    }

    #[test]
    fn rows_and_tables_roundtrip(
        lsa_time in 0.0f64..1e6,
        cea_time in 0.0f64..1e6,
        reads in 0.0f64..1e9,
        latency in 0.0f64..1.0,
        n_rows in 0usize..6,
    ) {
        let row = Row {
            label: "d = 4".to_string(),
            lsa_time,
            cea_time,
            lsa_reads: reads,
            cea_reads: reads / 2.0,
            speedup: if cea_time > 0.0 { lsa_time / cea_time } else { 1.0 },
            result_size: 5.0,
        };
        prop_assert_eq!(roundtrip(&row), row.clone());
        let table = ExperimentTable {
            id: "fig08a".to_string(),
            title: "Fig. 8(a) — skyline: effect of |P|".to_string(),
            x_axis: "|P|".to_string(),
            rows: vec![row; n_rows],
            latency,
        };
        prop_assert_eq!(roundtrip(&table), table.clone());
        prop_assert_eq!(ExperimentTable::from_json(&table.to_json()).unwrap(), table);
    }

    #[test]
    fn experiment_config_roundtrips(
        scale in 1usize..10_000,
        latency in 0.0f64..1.0,
        queries in proptest::strategy::Just(None::<usize>),
        seed in any::<u64>(),
    ) {
        // Both the None and Some shapes of the optional query override.
        let none_config = ExperimentConfig { scale, latency, queries, seed };
        prop_assert_eq!(roundtrip(&none_config), none_config.clone());
        let some_config = ExperimentConfig { queries: Some(scale), ..none_config };
        prop_assert_eq!(roundtrip(&some_config), some_config);
    }
}

#[test]
fn every_experiment_variant_roundtrips() {
    for e in Experiment::all() {
        assert_eq!(roundtrip(&e), e);
    }
}
