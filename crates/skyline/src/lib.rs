//! # mcn-skyline
//!
//! Classic **main-memory skyline algorithms** over generic multi-dimensional
//! tuples. These are the algorithms surveyed in Section II-A of the paper
//! (Börzsönyi et al. ICDE'01 and successors) and are used here
//!
//! * by the *straightforward baseline* of Section IV: compute the complete
//!   cost vectors of all facilities with `d` full network expansions, then run
//!   a conventional skyline algorithm over them;
//! * as an independent oracle in tests: LSA and CEA must produce exactly the
//!   same skyline as BNL/SFS over the brute-force cost vectors.
//!
//! Three algorithms are provided:
//!
//! * [`block_nested_loops`] — the BNL algorithm of Börzsönyi et al.;
//! * [`sort_filter_skyline`] — SFS: topologically presort by a monotone score,
//!   then a single filtering pass (every retained tuple is final);
//! * [`divide_and_conquer`] — the D&C algorithm of Börzsönyi et al.
//!
//! All operate on items implementing [`SkylineItem`], i.e. anything exposing a
//! [`CostVec`]. All return indices into the input slice so callers can recover
//! their own payloads.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bnl;
pub mod dc;
pub mod sfs;

pub use bnl::block_nested_loops;
pub use dc::divide_and_conquer;
pub use sfs::sort_filter_skyline;

use mcn_graph::CostVec;

/// An item that can participate in skyline computation.
pub trait SkylineItem {
    /// The item's cost vector (lower is better in every dimension).
    fn costs(&self) -> &CostVec;
}

impl SkylineItem for CostVec {
    fn costs(&self) -> &CostVec {
        self
    }
}

impl<T> SkylineItem for (T, CostVec) {
    fn costs(&self) -> &CostVec {
        &self.1
    }
}

/// Naive `O(n²)` skyline used as the reference implementation in tests.
///
/// Returns the indices of all items not dominated by any other item, in input
/// order. Duplicate cost vectors are all retained (neither dominates the other).
pub fn naive_skyline<T: SkylineItem>(items: &[T]) -> Vec<usize> {
    let mut result = Vec::new();
    'outer: for (i, item) in items.iter().enumerate() {
        for (j, other) in items.iter().enumerate() {
            if i != j && mcn_graph::dominates(other.costs(), item.costs()) {
                continue 'outer;
            }
        }
        result.push(i);
    }
    result
}

/// Verifies that `skyline` (indices into `items`) is exactly the set of
/// non-dominated items. Used by property tests.
pub fn is_valid_skyline<T: SkylineItem>(items: &[T], skyline: &[usize]) -> bool {
    let mut expected = naive_skyline(items);
    let mut got: Vec<usize> = skyline.to_vec();
    expected.sort_unstable();
    got.sort_unstable();
    expected == got
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cv(v: &[f64]) -> CostVec {
        CostVec::from_slice(v)
    }

    #[test]
    fn naive_skyline_simple() {
        let items = vec![
            cv(&[1.0, 5.0]), // skyline
            cv(&[2.0, 6.0]), // dominated by 0
            cv(&[3.0, 2.0]), // skyline
            cv(&[0.5, 9.0]), // skyline
        ];
        assert_eq!(naive_skyline(&items), vec![0, 2, 3]);
    }

    #[test]
    fn naive_skyline_retains_duplicates() {
        let items = vec![cv(&[1.0, 1.0]), cv(&[1.0, 1.0]), cv(&[2.0, 2.0])];
        assert_eq!(naive_skyline(&items), vec![0, 1]);
    }

    #[test]
    fn skyline_item_for_pairs() {
        let items = vec![("a", cv(&[1.0, 5.0])), ("b", cv(&[2.0, 6.0]))];
        assert_eq!(naive_skyline(&items), vec![0]);
    }

    #[test]
    fn is_valid_skyline_checks_set_equality() {
        let items = vec![cv(&[1.0, 5.0]), cv(&[2.0, 6.0]), cv(&[3.0, 2.0])];
        assert!(is_valid_skyline(&items, &[2, 0]));
        assert!(!is_valid_skyline(&items, &[0]));
        assert!(!is_valid_skyline(&items, &[0, 1, 2]));
    }
}
