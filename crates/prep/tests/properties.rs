//! Property-based tests of the ParetoPrep table: JSON round-trips through
//! the vendored serde on arbitrary seeded networks, and structural scan
//! invariants (restriction consistency, reachability, triangle
//! inequality along edges). Admissibility against the exhaustive Pareto
//! path set is cross-checked in the root `tests/prep.rs` (it needs
//! `mcn-mcpp`, which depends on this crate).

use mcn_graph::{CostVec, GraphBuilder, MultiCostGraph, NodeId};
use mcn_prep::PrepTable;
use proptest::prelude::*;

/// Builds a connected seeded network: a line backbone plus extra edges,
/// with an LCG drawing `d`-dimensional costs.
fn build_network(d: usize, nodes: usize, extra: &[(u16, u16)], seed: u64) -> MultiCostGraph {
    let mut lcg = seed | 1;
    let mut next_cost = move || {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((lcg >> 33) % 1000) as f64 / 100.0 + 0.1
    };
    let mut b = GraphBuilder::new(d);
    let ids: Vec<NodeId> = (0..nodes).map(|i| b.add_node(i as f64, 0.0)).collect();
    for w in ids.windows(2) {
        let costs: Vec<f64> = (0..d).map(|_| next_cost()).collect();
        b.add_edge(w[0], w[1], CostVec::from_slice(&costs)).unwrap();
    }
    for &(a, c) in extra {
        let a = ids[a as usize % nodes];
        let c = ids[c as usize % nodes];
        if a == c {
            continue;
        }
        let costs: Vec<f64> = (0..d).map(|_| next_cost()).collect();
        b.add_edge(a, c, CostVec::from_slice(&costs)).unwrap();
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prep_table_round_trips_through_json(
        d in 2usize..=4,
        nodes in 3usize..=25,
        extra in proptest::collection::vec((0u16..100, 0u16..100), 0..12),
        target_sel in 0u16..100,
        seed in any::<u64>(),
    ) {
        let graph = build_network(d, nodes, &extra, seed);
        let target = NodeId::from(target_sel as usize % nodes);
        let table = PrepTable::build(&graph, target);
        let parsed = PrepTable::from_json(&table.to_json()).expect("round-trip parse");
        prop_assert_eq!(&parsed, &table);
        // Determinism doubles as a byte-level check: re-serializing the
        // parsed table reproduces the original JSON.
        prop_assert_eq!(parsed.to_json(), table.to_json());
    }

    #[test]
    fn scan_invariants_hold(
        d in 2usize..=4,
        nodes in 3usize..=25,
        extra in proptest::collection::vec((0u16..100, 0u16..100), 0..12),
        target_sel in 0u16..100,
        seed in any::<u64>(),
    ) {
        let graph = build_network(d, nodes, &extra, seed);
        let target = NodeId::from(target_sel as usize % nodes);
        let table = PrepTable::build(&graph, target);
        // The target reaches itself at zero cost; the backbone keeps the
        // network connected, so every node reaches it.
        prop_assert_eq!(table.bound(target).as_slice(), CostVec::zeros(d).as_slice());
        prop_assert_eq!(table.reachable_nodes(), graph.num_nodes());
        for v in (0..nodes).map(NodeId::from) {
            let bound = table.bound(v);
            prop_assert!(bound.as_slice().iter().all(|&c| c.is_finite() && c >= 0.0));
            // Per-edge forward bounds respect the node bound: taking any
            // edge cannot beat the component-wise optimum.
            for neighbor in graph.neighbors(v) {
                let fwd = table.forward_bound(&graph, neighbor.edge, v);
                for i in 0..d {
                    prop_assert!(fwd[i] >= bound[i] - bound[i].abs() * 1e-12);
                }
            }
        }
        // Every upper-bound cut is a real path cost, so it can never be
        // below the source's lower-bound vector.
        for v in (0..nodes).map(NodeId::from) {
            for cut in table.upper_bound_cuts(&graph, v) {
                let bound = table.bound(v);
                for i in 0..d {
                    prop_assert!(cut[i] >= bound[i] - bound[i].abs() * 1e-9);
                }
            }
        }
    }

    #[test]
    fn restricted_to_all_nodes_matches_the_full_scan(
        d in 2usize..=3,
        nodes in 3usize..=20,
        extra in proptest::collection::vec((0u16..100, 0u16..100), 0..8),
        target_sel in 0u16..100,
        seed in any::<u64>(),
    ) {
        let graph = build_network(d, nodes, &extra, seed);
        let target = NodeId::from(target_sel as usize % nodes);
        let full = PrepTable::build(&graph, target);
        let all: Vec<NodeId> = (0..nodes).map(NodeId::from).collect();
        let restricted = PrepTable::build_restricted(&graph, target, &all);
        prop_assert!(restricted.is_restricted());
        for v in &all {
            prop_assert_eq!(full.bound(*v), restricted.bound(*v));
        }
        // Restricting to a strict subset can only raise bounds (fewer
        // paths available), never lower them.
        let half: Vec<NodeId> = (0..nodes)
            .filter(|i| i % 2 == target.index() % 2 || *i == target.index())
            .map(NodeId::from)
            .collect();
        let sub = PrepTable::build_restricted(&graph, target, &half);
        for v in &half {
            let full_bound = full.bound(*v);
            let sub_bound = sub.bound(*v);
            for i in 0..d {
                prop_assert!(sub_bound[i] >= full_bound[i] - full_bound[i].abs() * 1e-12);
            }
        }
    }
}
