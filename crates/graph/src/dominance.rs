//! Dominance tests between cost vectors.
//!
//! The MCN skyline (paper Section III) is defined through Pareto dominance over
//! the per-cost-type shortest-path cost vectors: a facility `p'` **dominates**
//! `p` iff `c_i(p') ≤ c_i(p)` for every cost type `i` and `c_j(p') < c_j(p)`
//! for at least one `j`.

use crate::cost::CostVec;

/// The possible Pareto relations between two cost vectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DominanceRelation {
    /// The first vector dominates the second.
    Dominates,
    /// The second vector dominates the first.
    DominatedBy,
    /// The two vectors are identical in every component.
    Equal,
    /// Neither vector dominates the other (they are incomparable).
    Incomparable,
}

/// Returns true iff `a` dominates `b`: `a` is no larger in every component and
/// strictly smaller in at least one.
#[inline]
pub fn dominates(a: &CostVec, b: &CostVec) -> bool {
    debug_assert_eq!(a.len(), b.len(), "dimensionality mismatch");
    let mut strictly_smaller = false;
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_smaller = true;
        }
    }
    strictly_smaller
}

/// Returns true iff `a` *weakly* dominates `b`: no component of `a` is larger.
///
/// Unlike [`dominates`], equal vectors weakly dominate each other. This is the
/// test used by LSA/CEA when eliminating candidates against a newly pinned
/// facility: a candidate whose *known* costs are all ≥ the pinned facility's is
/// dominated, because its unknown costs are guaranteed to be no smaller
/// (incremental NN retrieval discovers facilities in increasing cost order).
#[inline]
pub fn dominates_weak(a: &CostVec, b: &CostVec) -> bool {
    debug_assert_eq!(a.len(), b.len(), "dimensionality mismatch");
    a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| x <= y)
}

/// Returns true iff neither vector dominates the other and they are not equal.
#[inline]
pub fn incomparable(a: &CostVec, b: &CostVec) -> bool {
    relation(a, b) == DominanceRelation::Incomparable
}

/// Computes the full [`DominanceRelation`] between `a` and `b` in one pass.
#[inline]
pub fn relation(a: &CostVec, b: &CostVec) -> DominanceRelation {
    debug_assert_eq!(a.len(), b.len(), "dimensionality mismatch");
    let mut a_smaller = false;
    let mut b_smaller = false;
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        if x < y {
            a_smaller = true;
        } else if y < x {
            b_smaller = true;
        }
        if a_smaller && b_smaller {
            return DominanceRelation::Incomparable;
        }
    }
    match (a_smaller, b_smaller) {
        (true, false) => DominanceRelation::Dominates,
        (false, true) => DominanceRelation::DominatedBy,
        (false, false) => DominanceRelation::Equal,
        (true, true) => unreachable!("handled by early return"),
    }
}

/// Partial-information dominance used during the shrinking stage of LSA/CEA.
///
/// `pinned` is a fully known cost vector; `partial` contains the candidate's
/// known costs, with `None` for cost types whose expansion has not reached it
/// yet. Because NN retrieval is incremental, every unknown cost of the
/// candidate is guaranteed to be **no smaller** than the pinned facility's
/// corresponding cost, so the candidate can be eliminated iff all of its known
/// costs are ≥ the pinned facility's costs.
#[inline]
pub fn pinned_dominates_partial(pinned: &CostVec, partial: &[Option<f64>]) -> bool {
    debug_assert_eq!(pinned.len(), partial.len(), "dimensionality mismatch");
    pinned
        .as_slice()
        .iter()
        .zip(partial)
        .all(|(&p, known)| match known {
            Some(c) => p <= *c,
            // Unknown cost: the expansion frontier has already passed `p`'s
            // cost on this type, so the candidate's cost is ≥ p's.
            None => true,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cv(v: &[f64]) -> CostVec {
        CostVec::from_slice(v)
    }

    #[test]
    fn strict_dominance() {
        assert!(dominates(&cv(&[1.0, 2.0]), &cv(&[2.0, 3.0])));
        assert!(dominates(&cv(&[1.0, 2.0]), &cv(&[1.0, 3.0])));
        assert!(!dominates(&cv(&[1.0, 2.0]), &cv(&[1.0, 2.0])));
        assert!(!dominates(&cv(&[1.0, 4.0]), &cv(&[2.0, 3.0])));
        assert!(!dominates(&cv(&[2.0, 3.0]), &cv(&[1.0, 2.0])));
    }

    #[test]
    fn weak_dominance_accepts_equality() {
        assert!(dominates_weak(&cv(&[1.0, 2.0]), &cv(&[1.0, 2.0])));
        assert!(dominates_weak(&cv(&[1.0, 2.0]), &cv(&[1.0, 3.0])));
        assert!(!dominates_weak(&cv(&[1.0, 4.0]), &cv(&[1.0, 3.0])));
    }

    #[test]
    fn relation_covers_all_cases() {
        assert_eq!(
            relation(&cv(&[1.0, 1.0]), &cv(&[2.0, 2.0])),
            DominanceRelation::Dominates
        );
        assert_eq!(
            relation(&cv(&[2.0, 2.0]), &cv(&[1.0, 1.0])),
            DominanceRelation::DominatedBy
        );
        assert_eq!(
            relation(&cv(&[1.0, 1.0]), &cv(&[1.0, 1.0])),
            DominanceRelation::Equal
        );
        assert_eq!(
            relation(&cv(&[1.0, 3.0]), &cv(&[3.0, 1.0])),
            DominanceRelation::Incomparable
        );
        assert!(incomparable(&cv(&[1.0, 3.0]), &cv(&[3.0, 1.0])));
        assert!(!incomparable(&cv(&[1.0, 1.0]), &cv(&[1.0, 1.0])));
    }

    #[test]
    fn paper_figure1_example() {
        // p1 = (20 min, 0 $), p2 = (10 min, 1 $): neither dominates the other,
        // both belong to the skyline (paper Figure 1 discussion).
        let p1 = cv(&[20.0, 0.0]);
        let p2 = cv(&[10.0, 1.0]);
        assert_eq!(relation(&p1, &p2), DominanceRelation::Incomparable);
    }

    #[test]
    fn partial_dominance_shrinking_stage() {
        // Pinned p1 = (5, 7). Candidate p2 has known c1 = 6 and unknown c2.
        // Since 5 <= 6 and c2(p2) >= 7 is guaranteed, p1 dominates p2.
        let pinned = cv(&[5.0, 7.0]);
        assert!(pinned_dominates_partial(&pinned, &[Some(6.0), None]));
        // Candidate p5 has known c2 = 3 < 7, so it cannot be eliminated.
        assert!(!pinned_dominates_partial(&pinned, &[None, Some(3.0)]));
        // Fully known candidate strictly better in one dimension survives.
        assert!(!pinned_dominates_partial(&pinned, &[Some(4.0), Some(9.0)]));
        // Fully known candidate worse everywhere is eliminated.
        assert!(pinned_dominates_partial(&pinned, &[Some(6.0), Some(8.0)]));
    }

    proptest! {
        #[test]
        fn prop_dominance_is_antisymmetric(
            a in proptest::collection::vec(0.0f64..100.0, 2..=5),
        ) {
            let b: Vec<f64> = a.iter().map(|x| x + 1.0).collect();
            let ca = cv(&a);
            let cb = cv(&b);
            prop_assert!(dominates(&ca, &cb));
            prop_assert!(!dominates(&cb, &ca));
        }

        #[test]
        fn prop_relation_consistent_with_predicates(
            a in proptest::collection::vec(0.0f64..10.0, 2..=5),
            b in proptest::collection::vec(0.0f64..10.0, 2..=5),
        ) {
            prop_assume!(a.len() == b.len());
            let ca = cv(&a);
            let cb = cv(&b);
            match relation(&ca, &cb) {
                DominanceRelation::Dominates => {
                    prop_assert!(dominates(&ca, &cb));
                    prop_assert!(dominates_weak(&ca, &cb));
                }
                DominanceRelation::DominatedBy => {
                    prop_assert!(dominates(&cb, &ca));
                }
                DominanceRelation::Equal => {
                    prop_assert!(!dominates(&ca, &cb) && !dominates(&cb, &ca));
                    prop_assert!(dominates_weak(&ca, &cb) && dominates_weak(&cb, &ca));
                }
                DominanceRelation::Incomparable => {
                    prop_assert!(!dominates(&ca, &cb) && !dominates(&cb, &ca));
                }
            }
        }

        #[test]
        fn prop_partial_with_all_known_matches_weak_dominance(
            a in proptest::collection::vec(0.0f64..10.0, 2..=5),
            b in proptest::collection::vec(0.0f64..10.0, 2..=5),
        ) {
            prop_assume!(a.len() == b.len());
            let ca = cv(&a);
            let partial: Vec<Option<f64>> = b.iter().copied().map(Some).collect();
            prop_assert_eq!(
                pinned_dominates_partial(&ca, &partial),
                dominates_weak(&ca, &cv(&b))
            );
        }
    }
}
