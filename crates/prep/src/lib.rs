//! # mcn-prep
//!
//! **ParetoPrep-style precomputation** for multi-criteria path-skyline
//! queries (Shekelyan, Jossé & Schubert, *ParetoPrep: Fast computation of
//! Path Skylines Queries*).
//!
//! The paper this repository reproduces contrasts its facility skyline with
//! multi-criteria Pareto path computation (MCPP, Section II-D). The
//! exhaustive label-correcting MCPP baseline in `mcn-mcpp` keeps every
//! non-dominated label at every node until termination; ParetoPrep showed
//! that one cheap **backward scan** from the target — computing, per node,
//! the vector of single-criterion shortest distances to the target — prunes
//! the vast majority of those labels:
//!
//! * [`PrepTable`] — the scan result: per-cost **lower bounds** `L(v)` for
//!   every node, per-edge forward bounds, and up to `d` concrete
//!   upper-bound paths ([`PrepTable::upper_bound_cuts`]). A
//!   [`PrepTable::build_restricted`] variant scans only a node subset for
//!   repeated queries over a fixed region.
//! * [`PrepCache`] — a bounded, thread-safe LRU of tables keyed by target
//!   node, so concurrent query batches towards popular targets share one
//!   scan (`mcn-engine` serves `QueryRequest::PathSkyline` through it).
//!
//! The pruned search itself lives in `mcn-mcpp`
//! (`pareto_paths_prepped`), which this crate deliberately does not depend
//! on: `mcn-prep` only needs the graph model.
//!
//! ## Example
//!
//! ```
//! use mcn_graph::{CostVec, GraphBuilder, NodeId};
//! use mcn_prep::PrepTable;
//!
//! let mut b = GraphBuilder::new(2);
//! let s = b.add_node(0.0, 0.0);
//! let m = b.add_node(1.0, 0.0);
//! let t = b.add_node(2.0, 0.0);
//! b.add_edge(s, m, CostVec::from_slice(&[1.0, 4.0])).unwrap();
//! b.add_edge(m, t, CostVec::from_slice(&[2.0, 3.0])).unwrap();
//! let g = b.build().unwrap();
//!
//! let prep = PrepTable::build(&g, t);
//! assert_eq!(prep.bound(s).as_slice(), &[3.0, 7.0]);
//! assert!(prep.reaches(m));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod table;

pub use cache::{PrepCache, PrepCacheStats};
pub use table::PrepTable;

/// Compile-time thread-safety proof: instantiated in a `const _` next to
/// each shared type, so the build fails the moment a field change makes the
/// type lose `Send`/`Sync` (the `missing-send-sync-assert` lint requires
/// one such assertion per concurrency-facing type, outside `cfg(test)`).
pub(crate) const fn assert_send_sync<T: Send + Sync>() {}
