//! The rule engine: eight repo-specific lints over the token streams of
//! [`crate::workspace::Workspace`] files.
//!
//! The original six rules work purely on tokens plus the light structure
//! derived in [`crate::source`]. Since the resolver landed, the
//! reachability-based rules (`nondet-iteration`, `hot-path-alloc`,
//! `lock-order`) run over the *resolved* call graph of
//! [`crate::callgraph::Model`]: method calls bind to their receiver's
//! declared type, trait-bound receivers fan out to every implementor, and
//! the closures over-approximate rather than miss. False positives are
//! silenced with a reasoned `// mcn-lint: allow(rule, reason = "...")`.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::Model;
use crate::lexer::Token;
use crate::locks;
use crate::resolver::CONTAINER_TYPES;
use crate::source::SourceFile;
use crate::workspace::Workspace;
use crate::Finding;

/// Rule names, as used in findings, allow directives and the baseline.
pub const RULE_LOCK_ACROSS_IO: &str = "lock-across-io";
/// See [`RULE_LOCK_ACROSS_IO`].
pub const RULE_NONDET_ITERATION: &str = "nondet-iteration";
/// See [`RULE_LOCK_ACROSS_IO`].
pub const RULE_FLOAT_EQ: &str = "float-eq";
/// See [`RULE_LOCK_ACROSS_IO`].
pub const RULE_PANIC_IN_WORKER: &str = "panic-in-worker";
/// See [`RULE_LOCK_ACROSS_IO`].
pub const RULE_RAW_SPAWN: &str = "raw-spawn";
/// See [`RULE_LOCK_ACROSS_IO`].
pub const RULE_MISSING_SEND_SYNC: &str = "missing-send-sync-assert";
/// Lock-order cycles over the resolved call graph (see [`crate::locks`]).
pub const RULE_LOCK_ORDER: &str = "lock-order";
/// Allocation in functions reachable from the query inner loops.
pub const RULE_HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// Malformed `mcn-lint:` comments; not suppressible.
pub const RULE_ALLOW_SYNTAX: &str = "allow-syntax";

/// All suppressible rules, for documentation and directive validation.
pub const ALL_RULES: [&str; 8] = [
    RULE_LOCK_ACROSS_IO,
    RULE_NONDET_ITERATION,
    RULE_FLOAT_EQ,
    RULE_PANIC_IN_WORKER,
    RULE_RAW_SPAWN,
    RULE_MISSING_SEND_SYNC,
    RULE_LOCK_ORDER,
    RULE_HOT_PATH_ALLOC,
];

/// One rule's documentation, for the `list-rules` subcommand.
pub struct RuleDoc {
    /// Rule name as used in findings and allow directives.
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Whether `mcn-lint: allow(...)` can suppress it.
    pub suppressible: bool,
}

/// Every rule, with its one-line description.
pub const RULE_DOCS: [RuleDoc; 9] = [
    RuleDoc {
        name: RULE_LOCK_ACROSS_IO,
        summary: "a lock guard stays live across a physical-read/DiskManager call",
        suppressible: true,
    },
    RuleDoc {
        name: RULE_NONDET_ITERATION,
        summary: "hash-order iteration in a function that reaches a determinism sink \
                  (resolved call graph)",
        suppressible: true,
    },
    RuleDoc {
        name: RULE_FLOAT_EQ,
        summary: "exact float comparison against a literal in non-test code",
        suppressible: true,
    },
    RuleDoc {
        name: RULE_PANIC_IN_WORKER,
        summary: "unwrap/expect/panic! inside a spawned worker closure",
        suppressible: true,
    },
    RuleDoc {
        name: RULE_RAW_SPAWN,
        summary: "thread creation outside the driver/engine modules",
        suppressible: true,
    },
    RuleDoc {
        name: RULE_MISSING_SEND_SYNC,
        summary: "concurrency-facing pub struct without a compile-time Send/Sync assertion",
        suppressible: true,
    },
    RuleDoc {
        name: RULE_LOCK_ORDER,
        summary: "a lock acquisition edge closes a cycle in the acquisition-order graph \
                  (deadlock precondition); allow on the edge site exempts the edge",
        suppressible: true,
    },
    RuleDoc {
        name: RULE_HOT_PATH_ALLOC,
        summary: "allocation (container construction, format!, to_vec, container clone) \
                  in a function reachable from the LSA/CEA/prep inner loops",
        suppressible: true,
    },
    RuleDoc {
        name: RULE_ALLOW_SYNTAX,
        summary: "malformed mcn-lint directive (never suppressible)",
        suppressible: false,
    },
];

/// Guard-producing method names: `self.file.lock()` and friends.
pub const GUARD_METHODS: [&str; 6] = ["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// Calls that hit the `DiskManager` / physical-read layer.
const IO_CALLS: [&str; 9] = [
    "read_page",
    "write_page",
    "allocate_page",
    "with_page",
    "read_exact",
    "write_all",
    "seek",
    "flush",
    "sync_all",
];

/// Functions whose output must be byte-identical run-to-run: fingerprints,
/// serde output and the checked-in gate baselines.
const DETERMINISM_SINKS: [&str; 7] = [
    "fingerprint",
    "serialize",
    "to_json",
    "run_gate",
    "run_label_gate",
    "export_meta_json",
    "export_manifest_json",
];

/// Files that own thread management; `thread::spawn`/`scope` is legal here.
const SPAWN_ALLOWLIST: [&str; 2] = [
    "crates/expansion/src/driver.rs",
    "crates/engine/src/engine.rs",
];

/// Crates whose worker threads must not panic (a panicking worker poisons
/// a whole multi-query batch).
const WORKER_CRATES: [&str; 2] = ["engine", "expansion"];

/// Field types that make a struct concurrency-facing.
const CONCURRENCY_MARKERS: [&str; 8] = [
    "Mutex",
    "RwLock",
    "Condvar",
    "JoinHandle",
    "Sender",
    "Receiver",
    "SyncSender",
    "Arc",
];

/// Everything one full pass produces: findings plus the lock-order graph.
pub struct Analysis {
    /// Surviving findings, sorted by file, line and rule.
    pub findings: Vec<Finding>,
    /// Deduplicated lock acquisition edges (diffed against
    /// `lock-order.json` by the driver).
    pub lock_edges: Vec<locks::LockEdge>,
    /// Every lock class found in non-test code.
    pub lock_classes: Vec<locks::LockClass>,
}

/// Runs every rule over the workspace: builds the resolved model once,
/// runs the lexical rules per file and the call-graph rules on top, and
/// returns the surviving findings plus the lock-order graph.
pub fn analyze(ws: &Workspace) -> Analysis {
    let model = Model::build(ws);
    let mut raw = Vec::new();
    let sensitive = sensitive_spans(&model);
    for (fi, file) in ws.files.iter().enumerate() {
        for bad in &file.bad_directives {
            raw.push(Finding {
                file: file.path.clone(),
                rule: RULE_ALLOW_SYNTAX.to_string(),
                line: bad.line,
                excerpt: file.excerpt(bad.line),
                message: bad.message.clone(),
            });
        }
        lock_across_io(file, &mut raw);
        nondet_iteration(file, fi, &sensitive, &mut raw);
        float_eq(file, &mut raw);
        panic_in_worker(file, &mut raw);
        raw_spawn(file, &mut raw);
    }
    missing_send_sync_assert(ws, &mut raw);
    hot_path_alloc(&model, &mut raw);
    let lock = locks::run(&model);
    raw.extend(lock.findings.iter().cloned());

    let mut findings: Vec<Finding> = raw
        .into_iter()
        .filter(|f| {
            f.rule == RULE_ALLOW_SYNTAX || {
                let file = ws.files.iter().find(|s| s.path == f.file);
                !file.is_some_and(|s| s.allowed(&f.rule, f.line))
            }
        })
        .collect();
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
    Analysis {
        findings,
        lock_edges: lock.edges,
        lock_classes: lock.classes,
    }
}

/// Runs every rule and returns the surviving findings, sorted by file,
/// line and rule.
pub fn run_all(ws: &Workspace) -> Vec<Finding> {
    analyze(ws).findings
}

fn push(out: &mut Vec<Finding>, file: &SourceFile, rule: &str, line: u32, message: String) {
    out.push(Finding {
        file: file.path.clone(),
        rule: rule.to_string(),
        line,
        excerpt: file.excerpt(line),
        message,
    });
}

// ---------------------------------------------------------------- rule 1

/// **lock-across-io**: a guard bound by `.lock()`/`.read()`/`.write()`
/// stays live across a call into the `DiskManager`/physical-read layer.
/// This is exactly the PR 3 deadlock/latency hazard: physical I/O while a
/// shard or page lock is held serializes every other thread behind disk
/// latency. The guard's liveness ends at `drop(guard)` or the end of its
/// block. Applies to test code too — test deadlocks hang CI just as hard.
fn lock_across_io(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("let")
            || matches!(toks.get(i.wrapping_sub(1)), Some(t) if t.is_ident("if") || t.is_ident("while") || t.is_ident("else"))
        {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = toks.get(j).and_then(|t| t.ident()).map(str::to_string) else {
            i += 1;
            continue;
        };
        // Find the end of the statement; bail on block initializers
        // (match/closures) — guards are bound from plain call chains.
        let Some((eq, stmt_end)) = simple_let_bounds(toks, j + 1) else {
            i += 1;
            continue;
        };
        let binds_guard = (eq..stmt_end).any(|k| {
            toks[k].is_op(".")
                && toks
                    .get(k + 1)
                    .and_then(|t| t.ident())
                    .is_some_and(|id| GUARD_METHODS.contains(&id))
                && toks.get(k + 2).is_some_and(|t| t.is_op("("))
                && toks.get(k + 3).is_some_and(|t| t.is_op(")"))
        });
        if !binds_guard {
            i += 1;
            continue;
        }
        let bound_line = toks[i].line;
        // Walk the guard's live range looking for physical I/O calls.
        let mut depth = 0i32;
        let mut m = stmt_end + 1;
        while m < toks.len() {
            let t = &toks[m];
            if t.is_op("{") {
                depth += 1;
            } else if t.is_op("}") {
                depth -= 1;
                if depth < 0 {
                    break; // the guard's block closed
                }
            } else if t.is_ident("drop")
                && toks.get(m + 1).is_some_and(|t| t.is_op("("))
                && toks.get(m + 2).is_some_and(|t| t.is_ident(&name))
                && toks.get(m + 3).is_some_and(|t| t.is_op(")"))
            {
                break; // explicitly released
            } else if let Some(id) = t.ident() {
                if IO_CALLS.contains(&id) && toks.get(m + 1).is_some_and(|t| t.is_op("(")) {
                    push(
                        out,
                        file,
                        RULE_LOCK_ACROSS_IO,
                        t.line,
                        format!(
                            "`{id}()` called while lock guard `{name}` \
                             (bound on line {bound_line}) is still live; \
                             drop the guard before physical I/O"
                        ),
                    );
                }
            }
            m += 1;
        }
        i += 1;
    }
}

/// For a `let` statement, returns `(index after =, index of terminating ;)`
/// if the initializer is a plain expression (no depth-0 `{`).
fn simple_let_bounds(toks: &[Token], from: usize) -> Option<(usize, usize)> {
    let mut k = from;
    let mut depth = 0i32;
    let mut eq = None;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_op("(") || t.is_op("[") || t.is_op("<") || t.is_op("::<") {
            depth += 1;
        } else if t.is_op(")") || t.is_op("]") || t.is_op(">") {
            depth -= 1;
        } else if depth <= 0 && t.is_op("=") {
            eq = Some(k + 1);
        } else if depth <= 0 && t.is_op("{") {
            return None;
        } else if depth <= 0 && t.is_op(";") {
            return eq.map(|e| (e, k));
        }
        k += 1;
    }
    None
}

// ---------------------------------------------------------------- rule 2

/// Computes the set of "determinism-sensitive" functions over the
/// *resolved* call graph, keyed by `(file index, span start token)`:
/// everything that can reach a sink (fingerprints, serde output, gate
/// baselines) as a caller, plus everything a sink itself calls. A call
/// site whose *name* matches a sink still seeds sensitivity even when the
/// callee lives outside the workspace (vendored serde), so the boundary
/// stays conservative; propagation through the graph is resolved, so two
/// unrelated functions sharing a name no longer taint each other.
fn sensitive_spans(model: &Model<'_>) -> BTreeSet<(usize, usize)> {
    let r = &model.resolver;
    let g = &model.graph;
    // Seeds: workspace fns named like a sink, plus fns that call a
    // sink-named target directly (resolved or not).
    let mut seeds: Vec<usize> = Vec::new();
    for (i, f) in r.fns.iter().enumerate() {
        let named_sink = DETERMINISM_SINKS.contains(&f.name.as_str());
        let calls_sink = g.sites[i]
            .iter()
            .any(|s| DETERMINISM_SINKS.contains(&s.name.as_str()));
        if named_sink || calls_sink {
            seeds.push(i);
        }
    }
    let sink_named: Vec<usize> = r
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| DETERMINISM_SINKS.contains(&f.name.as_str()))
        .map(|(i, _)| i)
        .collect();
    // Reverse closure: callers that reach a seed. Forward closure: what
    // the sinks themselves execute.
    let sensitive = g.reaches(&seeds);
    let executed = g.reachable_from(&sink_named);
    let mut out = BTreeSet::new();
    for (i, f) in r.fns.iter().enumerate() {
        if sensitive[i] || executed[i] {
            let span = &model.ws.files[f.file].fns[f.span];
            out.insert((f.file, span.start));
        }
    }
    out
}

/// **nondet-iteration**: iterating a `HashMap`/`HashSet` inside a function
/// that transitively feeds a determinism sink (over the resolved call
/// graph). Hash iteration order is randomized per process, so any such
/// path can flip fingerprint bytes or baseline JSON between runs.
/// Iterations that sort in the same statement (or whose `let` result is
/// `.sort*`-ed later in the function) pass. Non-test code only: the
/// product invariant is what's guarded here.
fn nondet_iteration(
    file: &SourceFile,
    file_idx: usize,
    sensitive: &BTreeSet<(usize, usize)>,
    out: &mut Vec<Finding>,
) {
    let toks = &file.tokens;
    let hash_names = hash_typed_names(toks);
    if hash_names.is_empty() {
        return;
    }
    const ITER_METHODS: [&str; 8] = [
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "drain",
        "into_keys",
        "into_values",
    ];
    for f in &file.fns {
        if !sensitive.contains(&(file_idx, f.start)) || file.in_test_code(f.start) {
            continue;
        }
        // One finding per line: a `for … in map.iter()` matches both the
        // `for` pattern and the method pattern.
        let mut flagged: BTreeSet<u32> = BTreeSet::new();
        for k in f.body_start..f.end.min(toks.len()) {
            let t = &toks[k];
            let mut hit = false;
            // `for x in map { … }` / `for (k, v) in &self.map { … }`
            if t.is_ident("for") {
                let mut e = k + 1;
                while e < toks.len() && !toks[e].is_ident("in") {
                    e += 1;
                }
                let mut b = e;
                while b < toks.len() && !toks[b].is_op("{") {
                    if toks[b].ident().is_some_and(|id| hash_names.contains(id)) {
                        hit = true;
                    }
                    b += 1;
                }
            }
            // `map.iter()` and friends.
            if t.ident().is_some_and(|id| hash_names.contains(id))
                && toks.get(k + 1).is_some_and(|t| t.is_op("."))
                && toks
                    .get(k + 2)
                    .and_then(|t| t.ident())
                    .is_some_and(|id| ITER_METHODS.contains(&id))
                && toks.get(k + 3).is_some_and(|t| t.is_op("("))
            {
                hit = true;
            }
            if hit && flagged.insert(toks[k].line) && !iteration_is_sorted(file, f, k) {
                push(
                    out,
                    file,
                    RULE_NONDET_ITERATION,
                    t.line,
                    format!(
                        "hash-order iteration inside `{}`, which feeds a \
                         determinism sink; collect through a sorted \
                         container or sort the result",
                        f.name
                    ),
                );
            }
        }
    }
}

/// Collects identifiers with a `HashMap`/`HashSet` type or initializer.
fn hash_typed_names(toks: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for k in 0..toks.len() {
        if !(toks[k].is_ident("HashMap") || toks[k].is_ident("HashSet")) {
            continue;
        }
        // `name: [&mut] [std::collections::]HashMap<…>` — walk back over
        // the path, references and mutability.
        let mut b = k;
        while b >= 2 && toks[b - 1].is_op("::") && toks[b - 2].ident().is_some() {
            b -= 2;
        }
        while b >= 1
            && (toks[b - 1].is_op("&")
                || toks[b - 1].is_ident("mut")
                || matches!(toks[b - 1].kind, crate::lexer::TokenKind::Lifetime))
        {
            b -= 1;
        }
        if b >= 2 && toks[b - 1].is_op(":") {
            if let Some(n) = toks[b - 2].ident() {
                names.insert(n.to_string());
            }
        }
        // `let [mut] name = HashMap::new()` — walk back over `= path`.
        if b >= 2 && toks[b - 1].is_op("=") {
            if let Some(n) = toks[b - 2].ident() {
                if n != "mut" {
                    names.insert(n.to_string());
                } else if b >= 3 {
                    if let Some(n) = toks[b - 3].ident() {
                        names.insert(n.to_string());
                    }
                }
            }
        }
    }
    names
}

/// True when the statement around token `k` sorts (mentions a `sort*`
/// helper or a BTree collect), or when it is a `let` whose binding is
/// `.sort*`-ed later in the enclosing function body.
fn iteration_is_sorted(file: &SourceFile, f: &crate::source::FnSpan, k: usize) -> bool {
    let toks = &file.tokens;
    // Statement bounds: back to `;`/`{`/`}`, forward to `;` or a body `{`
    // (paren depth zero).
    let mut start = k;
    while start > f.body_start
        && !(toks[start - 1].is_op(";") || toks[start - 1].is_op("{") || toks[start - 1].is_op("}"))
    {
        start -= 1;
    }
    let mut end = k;
    let mut paren = 0i32;
    while end < f.end.min(toks.len()) {
        let t = &toks[end];
        if t.is_op("(") {
            paren += 1;
        } else if t.is_op(")") {
            paren -= 1;
        } else if paren <= 0 && (t.is_op(";") || t.is_op("{")) {
            break;
        }
        end += 1;
    }
    let sorts = |t: &Token| {
        t.ident().is_some_and(|id| {
            id.starts_with("sort") || id == "BTreeMap" || id == "BTreeSet" || id == "BinaryHeap"
        })
    };
    if toks[start..end.min(toks.len())].iter().any(sorts) {
        return true;
    }
    // `let bound = map.iter()…;` later followed by `bound.sort…`.
    if toks[start].is_ident("let") {
        let mut n = start + 1;
        if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
            n += 1;
        }
        if let Some(bound) = toks.get(n).and_then(|t| t.ident()) {
            for m in end..f.end.min(toks.len()).saturating_sub(2) {
                if toks[m].is_ident(bound)
                    && toks[m + 1].is_op(".")
                    && toks[m + 2].ident().is_some_and(|id| id.starts_with("sort"))
                {
                    return true;
                }
            }
        }
    }
    false
}

// ---------------------------------------------------------------- rule 3

/// **float-eq**: `==`/`!=` against a float literal in non-test code. Exact
/// float comparison on computed costs silently breaks under the
/// `BOUND_DEFLATION` scheme (PR 5's ulp-overshoot bug); comparisons should
/// go through the sanctioned epsilon helpers or `to_bits()`. The lexical
/// rule catches literal comparands — the form every real incident had.
fn float_eq(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for k in 0..toks.len() {
        if !(toks[k].is_op("==") || toks[k].is_op("!=")) || file.in_test_code(k) {
            continue;
        }
        let prev_float = k > 0 && toks[k - 1].is_float();
        let next_float = toks.get(k + 1).is_some_and(|t| t.is_float())
            || (toks.get(k + 1).is_some_and(|t| t.is_op("-"))
                && toks.get(k + 2).is_some_and(|t| t.is_float()));
        if prev_float || next_float {
            push(
                out,
                file,
                RULE_FLOAT_EQ,
                toks[k].line,
                "exact float comparison; use the epsilon/BOUND_DEFLATION \
                 helpers or compare to_bits()"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------- rule 4

/// **panic-in-worker**: `unwrap()`/`expect()`/`panic!`-family calls inside
/// a `spawn(…)` argument in the engine/expansion crates. A panicking
/// worker tears down a scoped batch (or detaches a poisoned driver
/// thread); workers must surface errors through their result channels.
fn panic_in_worker(file: &SourceFile, out: &mut Vec<Finding>) {
    if !WORKER_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let toks = &file.tokens;
    for k in 0..toks.len() {
        if !toks[k].is_ident("spawn")
            || !toks.get(k + 1).is_some_and(|t| t.is_op("("))
            || file.in_test_code(k)
        {
            continue;
        }
        // Scan the spawn argument list (the worker closure).
        let mut depth = 0i32;
        let mut m = k + 1;
        while m < toks.len() {
            let t = &toks[m];
            if t.is_op("(") {
                depth += 1;
            } else if t.is_op(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if let Some(id) = t.ident() {
                let is_panic_macro =
                    matches!(id, "panic" | "unreachable" | "todo" | "unimplemented")
                        && toks.get(m + 1).is_some_and(|t| t.is_op("!"));
                let is_unwrap = matches!(id, "unwrap" | "expect")
                    && toks.get(m + 1).is_some_and(|t| t.is_op("("));
                if is_panic_macro || is_unwrap {
                    push(
                        out,
                        file,
                        RULE_PANIC_IN_WORKER,
                        t.line,
                        format!(
                            "`{id}` inside a spawned worker; workers must \
                             report errors through their channel, not panic"
                        ),
                    );
                }
            }
            m += 1;
        }
    }
}

// ---------------------------------------------------------------- rule 5

/// **raw-spawn**: `thread::spawn`/`thread::scope`/`thread::Builder`
/// outside the two modules that own thread lifecycles
/// ([`SPAWN_ALLOWLIST`]). Ad-hoc threads bypass the driver's worker
/// accounting and the engine's scoped shutdown. Test code may spawn
/// freely (hammer tests do).
fn raw_spawn(file: &SourceFile, out: &mut Vec<Finding>) {
    if SPAWN_ALLOWLIST.contains(&file.path.as_str()) {
        return;
    }
    let toks = &file.tokens;
    for k in 0..toks.len().saturating_sub(2) {
        if toks[k].is_ident("thread")
            && toks[k + 1].is_op("::")
            && toks
                .get(k + 2)
                .and_then(|t| t.ident())
                .is_some_and(|id| matches!(id, "spawn" | "scope" | "Builder"))
            && !file.in_test_code(k)
        {
            push(
                out,
                file,
                RULE_RAW_SPAWN,
                toks[k].line,
                "raw thread creation outside the driver/engine modules; \
                 route work through ParallelDriver or QueryEngine"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------- rule 6

/// **missing-send-sync-assert**: a public struct that is concurrency-facing
/// — it holds a lock/atomic/channel/`Arc` field, or is itself shared via
/// `Arc<T>` somewhere in the workspace — without a compile-time
/// `Send`/`Sync` assertion in non-test code of its crate. `cfg(test)`
/// assertions don't count: they vanish from the build users compile, so an
/// accidental `!Send` field regression would ship silently.
fn missing_send_sync_assert(ws: &Workspace, out: &mut Vec<Finding>) {
    // Names shared via Arc<…> anywhere in non-test code.
    let mut arc_shared: BTreeSet<String> = BTreeSet::new();
    for file in &ws.files {
        for k in 0..file.tokens.len().saturating_sub(2) {
            if file.tokens[k].is_ident("Arc")
                && file.tokens[k + 1].is_op("<")
                && !file.in_test_code(k)
            {
                if let Some(n) = file.tokens[k + 2].ident() {
                    arc_shared.insert(n.to_string());
                }
            }
        }
    }
    // Non-test `assert_send*` mentions, per crate.
    let mut asserted: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for file in &ws.files {
        for k in 0..file.tokens.len() {
            let is_assert = file.tokens[k]
                .ident()
                .is_some_and(|id| id.starts_with("assert_send"));
            if !is_assert || file.in_test_code(k) {
                continue;
            }
            for t in file.tokens.iter().skip(k + 1).take(12) {
                if let Some(n) = t.ident() {
                    if n.chars().next().is_some_and(|c| c.is_uppercase()) {
                        asserted
                            .entry(file.crate_name.clone())
                            .or_default()
                            .insert(n.to_string());
                    }
                }
            }
        }
    }
    for file in &ws.files {
        let toks = &file.tokens;
        for k in 0..toks.len().saturating_sub(2) {
            if !toks[k].is_ident("struct") || file.in_test_code(k) {
                continue;
            }
            let vis_pub = toks
                .get(k.wrapping_sub(1))
                .is_some_and(|t| t.is_ident("pub"))
                || (k >= 4 && toks[k - 1].is_op(")") && toks[k - 4].is_ident("pub"));
            if !vis_pub {
                continue;
            }
            let Some(name) = toks[k + 1].ident().map(str::to_string) else {
                continue;
            };
            let (body_start, body_end) = struct_body(toks, k + 2);
            let has_marker = toks[body_start..body_end.min(toks.len())].iter().any(|t| {
                t.ident()
                    .is_some_and(|id| CONCURRENCY_MARKERS.contains(&id) || id.starts_with("Atomic"))
            });
            if !(has_marker || arc_shared.contains(&name)) {
                continue;
            }
            let have = asserted
                .get(&file.crate_name)
                .is_some_and(|s| s.contains(&name));
            if !have {
                push(
                    out,
                    file,
                    RULE_MISSING_SEND_SYNC,
                    toks[k].line,
                    format!(
                        "pub struct `{name}` is concurrency-facing but has \
                         no non-test compile-time Send/Sync assertion in \
                         crate `{}`",
                        file.crate_name
                    ),
                );
            }
        }
    }
}

/// Returns the token range of a struct's field list, skipping generics.
/// For unit structs the range is empty.
fn struct_body(toks: &[Token], mut j: usize) -> (usize, usize) {
    // Skip `<…>` generic parameters (no merged `>>`; `->` can't appear).
    if toks.get(j).is_some_and(|t| t.is_op("<")) {
        let mut angle = 0i32;
        while j < toks.len() {
            if toks[j].is_op("<") || toks[j].is_op("::<") {
                angle += 1;
            } else if toks[j].is_op(">") {
                angle -= 1;
                if angle == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    match toks.get(j) {
        Some(t) if t.is_op("{") => (j + 1, crate::source::matching_close(toks, j) - 1),
        Some(t) if t.is_op("(") => {
            let mut depth = 0i32;
            let start = j + 1;
            while j < toks.len() {
                if toks[j].is_op("(") {
                    depth += 1;
                } else if toks[j].is_op(")") {
                    depth -= 1;
                    if depth == 0 {
                        return (start, j);
                    }
                }
                j += 1;
            }
            (start, toks.len())
        }
        _ => (j, j),
    }
}

/// Seed roots for **hot-path-alloc**: `(crate, fn name)` pairs naming the
/// inner-loop drivers of LSA/CEA expansion and the ParetoPrep scan. A
/// root's *loop bodies* are hot; every function those loop bodies call is
/// hot throughout its whole body, transitively.
const HOT_PATH_ROOTS: [(&str, &str); 4] = [
    ("expansion", "advance"),
    ("expansion", "next_nearest"),
    ("mcpp", "search"),
    ("prep", "scan"),
];

/// Crates the hot-path lint never descends into: storage allocation is
/// page management amortized behind the buffer pool, and the witness crate
/// is debug-assertion instrumentation that vanishes in release builds.
const HOT_PATH_EXCLUDED_CRATES: [&str; 2] = ["storage", "witness"];

/// Method calls that allocate a fresh owned value.
const ALLOC_METHODS: [&str; 4] = ["to_vec", "to_owned", "to_string", "collect"];

/// Container constructors that allocate (checked as `Container::ctor`).
const ALLOC_CTORS: [&str; 3] = ["new", "with_capacity", "from"];

/// **hot-path-alloc**: per-step allocation inside the algorithmic inner
/// loops. Functions reachable (over the resolved call graph) from a
/// [`HOT_PATH_ROOTS`] loop body are flagged wherever they allocate:
/// `format!`/`vec!` expansion, container constructors, `.to_vec()`-style
/// owned conversions, `.collect()`, and `.clone()` of container-typed (or
/// untypeable) receivers. `Arc`/`Rc` clones are refcount bumps, `.push(…)`
/// is amortized O(1), and `Copy` scalar clones resolve to non-container
/// types — none of those fire. Sites that allocate by design carry
/// `mcn-lint: allow(hot-path-alloc, reason = "…")`.
fn hot_path_alloc(model: &Model<'_>, out: &mut Vec<Finding>) {
    let r = &model.resolver;
    let ws = model.ws;
    let excluded = |i: usize| HOT_PATH_EXCLUDED_CRATES.contains(&r.fns[i].crate_name.as_str());
    let mut roots: Vec<usize> = Vec::new();
    for (i, f) in r.fns.iter().enumerate() {
        let is_root = HOT_PATH_ROOTS
            .iter()
            .any(|&(c, n)| f.crate_name == c && f.name == n);
        let span_start = ws.files[f.file].fns[f.span].start;
        if is_root && !ws.files[f.file].in_test_code(span_start) {
            roots.push(i);
        }
    }
    if roots.is_empty() {
        return;
    }
    // Hot closure: callees invoked from a root's loop body, then everything
    // they reach, never descending into excluded crates.
    let mut hot = vec![false; r.fns.len()];
    let mut stack: Vec<usize> = Vec::new();
    for &root in &roots {
        let f = &r.fns[root];
        let file = &ws.files[f.file];
        let loops = loop_ranges(file, &file.fns[f.span]);
        for site in &model.graph.sites[root] {
            if !in_any(&loops, site.tok) {
                continue;
            }
            for &c in &site.candidates {
                if !hot[c] && !excluded(c) {
                    hot[c] = true;
                    stack.push(c);
                }
            }
        }
    }
    while let Some(fi) = stack.pop() {
        for site in &model.graph.sites[fi] {
            for &c in &site.candidates {
                if !hot[c] && !excluded(c) {
                    hot[c] = true;
                    stack.push(c);
                }
            }
        }
    }
    for (i, f) in r.fns.iter().enumerate() {
        let everywhere = hot[i];
        let is_root = roots.contains(&i);
        if !everywhere && !is_root {
            continue;
        }
        let file = &ws.files[f.file];
        let span = &file.fns[f.span];
        if file.in_test_code(span.start) {
            continue;
        }
        let ranges: Vec<(usize, usize)> = if everywhere {
            vec![(span.body_start, span.end.min(file.tokens.len()))]
        } else {
            loop_ranges(file, span)
        };
        let why = if everywhere {
            format!("`{}` is reachable from a hot inner loop", f.qualified())
        } else {
            format!("inside a hot loop of `{}`", f.qualified())
        };
        scan_alloc_sites(model, i, &ranges, &why, out);
    }
}

/// Flags allocation sites of `fns[fn_id]` within `ranges` (token index
/// half-open intervals), skipping tokens owned by nested `fn` items.
fn scan_alloc_sites(
    model: &Model<'_>,
    fn_id: usize,
    ranges: &[(usize, usize)],
    why: &str,
    out: &mut Vec<Finding>,
) {
    let r = &model.resolver;
    let f = &r.fns[fn_id];
    let file = &model.ws.files[f.file];
    let toks = &file.tokens;
    let span = &file.fns[f.span];
    for k in span.body_start..span.end.min(toks.len()) {
        if !in_any(ranges, k) || !model.owns_token(fn_id, k) {
            continue;
        }
        // `format!` / `vec!` macro expansion.
        if let Some(id) = toks[k].ident() {
            if (id == "format" || id == "vec") && toks.get(k + 1).is_some_and(|t| t.is_op("!")) {
                push(
                    out,
                    file,
                    RULE_HOT_PATH_ALLOC,
                    toks[k].line,
                    format!("`{id}!` allocates {why}; hoist the buffer out of the loop"),
                );
                continue;
            }
            // `Vec::new(…)`, `String::from(…)`, `Box::new(…)`, …
            if CONTAINER_TYPES.contains(&id)
                && toks.get(k + 1).is_some_and(|t| t.is_op("::"))
                && toks
                    .get(k + 2)
                    .and_then(|t| t.ident())
                    .is_some_and(|m| ALLOC_CTORS.contains(&m))
                && toks
                    .get(k + 3)
                    .is_some_and(|t| t.is_op("(") || t.is_op("::<"))
            {
                let m = toks[k + 2].ident().unwrap_or_default();
                push(
                    out,
                    file,
                    RULE_HOT_PATH_ALLOC,
                    toks[k].line,
                    format!("`{id}::{m}` allocates {why}; hoist or reuse a buffer"),
                );
                continue;
            }
        }
        // `.to_vec()` / `.to_owned()` / `.to_string()` / `.collect()` /
        // `.clone()` on a container-typed or untypeable receiver.
        if !toks[k].is_op(".") {
            continue;
        }
        let Some(m) = toks.get(k + 1).and_then(|t| t.ident()) else {
            continue;
        };
        let is_invoked = toks
            .get(k + 2)
            .is_some_and(|t| t.is_op("(") || t.is_op("::<"));
        if !is_invoked {
            continue;
        }
        if ALLOC_METHODS.contains(&m) {
            push(
                out,
                file,
                RULE_HOT_PATH_ALLOC,
                toks[k + 1].line,
                format!("`.{m}()` allocates a fresh owned value {why}; hoist or reuse a buffer"),
            );
            continue;
        }
        if m == "clone" && k > span.body_start {
            match r.postfix_type(model.ws, fn_id, k - 1) {
                Some(ty) if r.is_container_type(&ty) => {
                    push(
                        out,
                        file,
                        RULE_HOT_PATH_ALLOC,
                        toks[k + 1].line,
                        format!(
                            "`.clone()` of a `{}` deep-copies {why}; borrow or reuse instead",
                            ty.first().map(String::as_str).unwrap_or("container")
                        ),
                    );
                }
                Some(_) => {} // Arc/Rc refcount bump, Copy scalar, or plain struct.
                None => {
                    push(
                        out,
                        file,
                        RULE_HOT_PATH_ALLOC,
                        toks[k + 1].line,
                        format!(
                            "`.clone()` of an unresolved receiver {why}; if it deep-copies, \
                             hoist it — otherwise add a reasoned allow"
                        ),
                    );
                }
            }
        }
    }
}

/// True when `k` falls in any half-open `(start, end)` range.
fn in_any(ranges: &[(usize, usize)], k: usize) -> bool {
    ranges.iter().any(|&(a, b)| k >= a && k < b)
}

/// Token ranges of every `for`/`while`/`loop` body in `span` (nested loops
/// yield overlapping ranges). The body brace is the first `{` at zero
/// paren/bracket depth after the keyword — Rust forbids bare struct
/// literals in loop-header position, so that brace opens the body.
fn loop_ranges(file: &SourceFile, span: &crate::source::FnSpan) -> Vec<(usize, usize)> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let end = span.end.min(toks.len());
    for k in span.body_start..end {
        let is_loop_kw = toks[k]
            .ident()
            .is_some_and(|id| id == "for" || id == "while" || id == "loop");
        if !is_loop_kw {
            continue;
        }
        let mut depth = 0i32;
        let mut m = k + 1;
        while m < end {
            let t = &toks[m];
            if t.is_op("(") || t.is_op("[") {
                depth += 1;
            } else if t.is_op(")") || t.is_op("]") {
                depth -= 1;
            } else if t.is_op("{") && depth == 0 {
                out.push((m + 1, crate::source::matching_close(toks, m)));
                break;
            } else if t.is_op(";") && depth == 0 {
                break;
            }
            m += 1;
        }
    }
    out
}
