//! Per-rule fixture tests: every rule gets one embedded snippet proving it
//! fires and one proving `// mcn-lint: allow(...)` suppresses it, plus the
//! acceptance scenario — deliberately reintroducing the PR 3
//! lock-across-physical-read pattern and watching rule 1 catch it.

use mcn_analyze::rules::{self, run_all};
use mcn_analyze::source::SourceFile;
use mcn_analyze::workspace::Workspace;
use mcn_analyze::Finding;

/// Runs every rule over a single in-memory file and keeps `rule`'s hits.
fn findings_for(rule: &str, path: &str, text: &str) -> Vec<Finding> {
    let ws = Workspace::from_files(vec![SourceFile::from_str(path, text)]);
    run_all(&ws)
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect()
}

// ---------------------------------------------------------------- rule 1

/// The PR 3 incident, re-created: a buffer-pool shard guard bound via
/// `.lock()` held across `DiskManager::read_page`. Rule 1 must catch it.
#[test]
fn lock_across_io_catches_the_pr3_pattern() {
    let hits = findings_for(
        rules::RULE_LOCK_ACROSS_IO,
        "crates/scratch/src/lib.rs",
        concat!(
            "impl Pool {\n",
            "    fn with_page(&self, id: u32) -> Page {\n",
            "        let shard = self.shards[id as usize % N].lock();\n",
            "        let mut page = Page::default();\n",
            "        self.disk.read_page(id, &mut page);\n",
            "        page\n",
            "    }\n",
            "}\n",
        ),
    );
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].line, 5);
    assert!(hits[0].message.contains("`shard`"));
    assert!(hits[0].excerpt.contains("read_page"));
}

#[test]
fn lock_across_io_respects_drop_and_block_end() {
    let clean = findings_for(
        rules::RULE_LOCK_ACROSS_IO,
        "crates/scratch/src/lib.rs",
        concat!(
            "impl Pool {\n",
            "    fn ok_drop(&self, id: u32) {\n",
            "        let shard = self.shard.lock();\n",
            "        drop(shard);\n",
            "        self.disk.read_page(id, &mut Page::default());\n",
            "    }\n",
            "    fn ok_scope(&self, id: u32) {\n",
            "        {\n",
            "            let shard = self.shard.lock();\n",
            "            shard.touch();\n",
            "        }\n",
            "        self.disk.read_page(id, &mut Page::default());\n",
            "    }\n",
            "}\n",
        ),
    );
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn lock_across_io_allow_suppresses() {
    let hits = findings_for(
        rules::RULE_LOCK_ACROSS_IO,
        "crates/scratch/src/lib.rs",
        concat!(
            "impl Disk {\n",
            "    fn read(&self, id: u32) {\n",
            "        let mut file = self.file.write();\n",
            "        // mcn-lint: allow(lock-across-io, reason = \"the file handle is the lock\")\n",
            "        file.read_exact(&mut self.buf);\n",
            "    }\n",
            "}\n",
        ),
    );
    assert!(hits.is_empty(), "{hits:?}");
}

// ---------------------------------------------------------------- rule 2

/// A helper that feeds `fingerprint()` iterating a HashMap unsorted.
#[test]
fn nondet_iteration_fires_on_sensitive_path() {
    let hits = findings_for(
        rules::RULE_NONDET_ITERATION,
        "crates/scratch/src/lib.rs",
        concat!(
            "use std::collections::HashMap;\n",
            "fn summarize(counts: &HashMap<u32, u64>) -> String {\n",
            "    let mut out = String::new();\n",
            "    for (k, v) in counts.iter() {\n",
            "        out.push_str(&format!(\"{k}={v}\"));\n",
            "    }\n",
            "    fingerprint(&out)\n",
            "}\n",
            "fn fingerprint(s: &str) -> String { s.to_string() }\n",
        ),
    );
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].line, 4);
    assert!(hits[0].message.contains("summarize"));
}

#[test]
fn nondet_iteration_skips_sorted_and_insensitive() {
    // Sorted in the same statement: fine.
    let sorted = findings_for(
        rules::RULE_NONDET_ITERATION,
        "crates/scratch/src/lib.rs",
        concat!(
            "use std::collections::{BTreeMap, HashMap};\n",
            "fn summarize(counts: &HashMap<u32, u64>) -> String {\n",
            "    let ordered: BTreeMap<_, _> = counts.iter().collect();\n",
            "    fingerprint(&format!(\"{ordered:?}\"))\n",
            "}\n",
            "fn fingerprint(s: &str) -> String { s.to_string() }\n",
        ),
    );
    assert!(sorted.is_empty(), "{sorted:?}");

    // Sorted later in the function: fine.
    let sorted_later = findings_for(
        rules::RULE_NONDET_ITERATION,
        "crates/scratch/src/lib.rs",
        concat!(
            "use std::collections::HashMap;\n",
            "fn summarize(counts: &HashMap<u32, u64>) -> String {\n",
            "    let mut pairs: Vec<_> = counts.iter().collect();\n",
            "    pairs.sort();\n",
            "    fingerprint(&format!(\"{pairs:?}\"))\n",
            "}\n",
            "fn fingerprint(s: &str) -> String { s.to_string() }\n",
        ),
    );
    assert!(sorted_later.is_empty(), "{sorted_later:?}");

    // Same iteration, but nothing downstream reaches a sink: fine.
    let insensitive = findings_for(
        rules::RULE_NONDET_ITERATION,
        "crates/scratch/src/lib.rs",
        concat!(
            "use std::collections::HashMap;\n",
            "fn tally(counts: &HashMap<u32, u64>) -> u64 {\n",
            "    let mut total = 0;\n",
            "    for v in counts.values() {\n",
            "        total += v;\n",
            "    }\n",
            "    total\n",
            "}\n",
        ),
    );
    assert!(insensitive.is_empty(), "{insensitive:?}");
}

#[test]
fn nondet_iteration_allow_suppresses() {
    let hits = findings_for(
        rules::RULE_NONDET_ITERATION,
        "crates/scratch/src/lib.rs",
        concat!(
            "use std::collections::HashMap;\n",
            "fn summarize(counts: &HashMap<u32, u64>) -> u64 {\n",
            "    // mcn-lint: allow(nondet-iteration, reason = \"sum is order-independent\")\n",
            "    let total: u64 = counts.values().sum();\n",
            "    fingerprint(total)\n",
            "}\n",
            "fn fingerprint(t: u64) -> u64 { t }\n",
        ),
    );
    assert!(hits.is_empty(), "{hits:?}");
}

// ---------------------------------------------------------------- rule 3

#[test]
fn float_eq_fires_on_literal_comparison() {
    let hits = findings_for(
        rules::RULE_FLOAT_EQ,
        "crates/scratch/src/lib.rs",
        concat!(
            "fn degenerate(cost: f64) -> bool {\n",
            "    cost == 0.0 || cost != -1.5\n",
            "}\n",
        ),
    );
    assert_eq!(hits.len(), 2, "{hits:?}");
}

#[test]
fn float_eq_ignores_integers_and_test_code() {
    let hits = findings_for(
        rules::RULE_FLOAT_EQ,
        "crates/scratch/src/lib.rs",
        concat!(
            "fn count_ok(n: u32) -> bool { n == 0 }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn exact_is_fine_here() { assert!(super::f() == 0.25); }\n",
            "}\n",
        ),
    );
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn float_eq_allow_suppresses() {
    let hits = findings_for(
        rules::RULE_FLOAT_EQ,
        "crates/scratch/src/lib.rs",
        concat!(
            "fn degenerate(cost: f64) -> bool {\n",
            "    // mcn-lint: allow(float-eq, reason = \"division-by-zero guard, exact on purpose\")\n",
            "    cost == 0.0\n",
            "}\n",
        ),
    );
    assert!(hits.is_empty(), "{hits:?}");
}

// ---------------------------------------------------------------- rule 4

#[test]
fn panic_in_worker_fires_inside_spawn() {
    let hits = findings_for(
        rules::RULE_PANIC_IN_WORKER,
        "crates/engine/src/scratch.rs",
        concat!(
            "fn run(s: &Scope) {\n",
            "    s.spawn(|| {\n",
            "        let item = queue.pop().unwrap();\n",
            "        if item.poisoned { panic!(\"bad item\"); }\n",
            "    });\n",
            "}\n",
        ),
    );
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(hits.iter().any(|f| f.message.contains("`unwrap`")));
    assert!(hits.iter().any(|f| f.message.contains("`panic`")));
}

#[test]
fn panic_in_worker_only_in_worker_crates_and_spawns() {
    // Same code outside engine/expansion: not a worker, no finding.
    let other_crate = findings_for(
        rules::RULE_PANIC_IN_WORKER,
        "crates/storage/src/scratch.rs",
        "fn run(s: &Scope) { s.spawn(|| { queue.pop().unwrap(); }); }\n",
    );
    assert!(other_crate.is_empty(), "{other_crate:?}");

    // unwrap outside any spawn in a worker crate: rule 4 stays quiet.
    let outside_spawn = findings_for(
        rules::RULE_PANIC_IN_WORKER,
        "crates/engine/src/scratch.rs",
        "fn setup() { let cfg = load().unwrap(); use_cfg(cfg); }\n",
    );
    assert!(outside_spawn.is_empty(), "{outside_spawn:?}");
}

#[test]
fn panic_in_worker_allow_suppresses() {
    let hits = findings_for(
        rules::RULE_PANIC_IN_WORKER,
        "crates/engine/src/scratch.rs",
        concat!(
            "fn run(s: &Scope) {\n",
            "    s.spawn(|| {\n",
            "        // mcn-lint: allow(panic-in-worker, reason = \"channel closed means shutdown\")\n",
            "        let item = queue.pop().unwrap();\n",
            "        drop(item);\n",
            "    });\n",
            "}\n",
        ),
    );
    assert!(hits.is_empty(), "{hits:?}");
}

// ---------------------------------------------------------------- rule 5

#[test]
fn raw_spawn_fires_outside_driver_modules() {
    let hits = findings_for(
        rules::RULE_RAW_SPAWN,
        "crates/storage/src/scratch.rs",
        concat!(
            "use std::thread;\n",
            "fn prefetch() {\n",
            "    thread::spawn(|| warm_cache());\n",
            "}\n",
        ),
    );
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].line, 3);
}

#[test]
fn raw_spawn_allows_driver_engine_and_tests() {
    let driver = findings_for(
        rules::RULE_RAW_SPAWN,
        "crates/expansion/src/driver.rs",
        "fn spawn_worker() { std::thread::spawn(|| work()); }\n",
    );
    assert!(driver.is_empty(), "{driver:?}");

    let test_code = findings_for(
        rules::RULE_RAW_SPAWN,
        "crates/storage/src/scratch.rs",
        concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn hammer() { std::thread::scope(|s| { s.spawn(|| ()); }); }\n",
            "}\n",
        ),
    );
    assert!(test_code.is_empty(), "{test_code:?}");
}

#[test]
fn raw_spawn_allow_suppresses() {
    let hits = findings_for(
        rules::RULE_RAW_SPAWN,
        "crates/storage/src/scratch.rs",
        concat!(
            "fn prefetch() {\n",
            "    // mcn-lint: allow(raw-spawn, reason = \"fire-and-forget warmup, no accounting needed\")\n",
            "    std::thread::spawn(|| warm_cache());\n",
            "}\n",
        ),
    );
    assert!(hits.is_empty(), "{hits:?}");
}

// ---------------------------------------------------------------- rule 6

#[test]
fn missing_send_sync_assert_fires_without_nontest_assert() {
    let hits = findings_for(
        rules::RULE_MISSING_SEND_SYNC,
        "crates/scratch/src/lib.rs",
        concat!(
            "pub struct Cache {\n",
            "    inner: Mutex<Inner>,\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    const fn assert_send_sync<T: Send + Sync>() {}\n",
            "    const _: () = assert_send_sync::<super::Cache>();\n",
            "}\n",
        ),
    );
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].message.contains("`Cache`"));
}

#[test]
fn missing_send_sync_assert_satisfied_by_const_assert() {
    let hits = findings_for(
        rules::RULE_MISSING_SEND_SYNC,
        "crates/scratch/src/lib.rs",
        concat!(
            "pub struct Cache {\n",
            "    inner: Mutex<Inner>,\n",
            "}\n",
            "const fn assert_send_sync<T: Send + Sync>() {}\n",
            "const _: () = assert_send_sync::<Cache>();\n",
        ),
    );
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn missing_send_sync_assert_covers_arc_shared_plain_types() {
    // `Table` holds no lock itself but is shared via Arc<Table>: flagged.
    let hits = findings_for(
        rules::RULE_MISSING_SEND_SYNC,
        "crates/scratch/src/lib.rs",
        concat!(
            "pub struct Table { rows: Vec<u64> }\n",
            "pub struct Cache { t: Arc<Table> }\n",
            "const fn assert_send_sync<T: Send + Sync>() {}\n",
            "const _: () = assert_send_sync::<Cache>();\n",
        ),
    );
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].message.contains("`Table`"));
    // Plain structs nobody shares stay unflagged.
    let plain = findings_for(
        rules::RULE_MISSING_SEND_SYNC,
        "crates/scratch/src/lib.rs",
        "pub struct Point { x: f64, y: f64 }\n",
    );
    assert!(plain.is_empty(), "{plain:?}");
}

#[test]
fn missing_send_sync_assert_allow_suppresses() {
    let hits = findings_for(
        rules::RULE_MISSING_SEND_SYNC,
        "crates/scratch/src/lib.rs",
        concat!(
            "// mcn-lint: allow(missing-send-sync-assert, reason = \"single-thread debug helper\")\n",
            "pub struct Probe {\n",
            "    inner: Mutex<Vec<u64>>,\n",
            "}\n",
        ),
    );
    assert!(hits.is_empty(), "{hits:?}");
}

// ------------------------------------------------------------- directives

#[test]
fn malformed_allow_is_a_finding_itself() {
    let ws = Workspace::from_files(vec![SourceFile::from_str(
        "crates/scratch/src/lib.rs",
        "// mcn-lint: allow(float-eq)\nfn f(v: f64) -> bool { v == 0.0 }\n",
    )]);
    let findings = run_all(&ws);
    assert!(
        findings.iter().any(|f| f.rule == "allow-syntax"),
        "{findings:?}"
    );
    // And the malformed directive must NOT suppress the real finding.
    assert!(
        findings.iter().any(|f| f.rule == rules::RULE_FLOAT_EQ),
        "{findings:?}"
    );
}

// ---------------------------------------------------------------- lock-order

/// Two functions acquiring the same two lock classes in opposite orders:
/// the canonical deadlock precondition. Both edges close the cycle, so
/// both acquisition sites are reported.
#[test]
fn lock_order_catches_a_two_lock_cycle() {
    let hits = findings_for(
        rules::RULE_LOCK_ORDER,
        "crates/scratch/src/lib.rs",
        concat!(
            "pub struct A { m: Mutex<u32> }\n",
            "pub struct B { m: Mutex<u32> }\n",
            "pub struct Sys { a: A, b: B }\n",
            "impl Sys {\n",
            "    fn fwd(&self) -> u32 {\n",
            "        let ga = self.a.m.lock();\n",
            "        let gb = self.b.m.lock();\n",
            "        *ga + *gb\n",
            "    }\n",
            "    fn rev(&self) -> u32 {\n",
            "        let gb = self.b.m.lock();\n",
            "        let ga = self.a.m.lock();\n",
            "        *ga + *gb\n",
            "    }\n",
            "}\n",
        ),
    );
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(hits.iter().any(|f| f.message.contains("`scratch::A.m`")));
    assert!(hits.iter().any(|f| f.message.contains("`scratch::B.m`")));
}

/// Dropping the first guard before taking the second breaks the overlap:
/// no edge, no cycle, no finding.
#[test]
fn lock_order_respects_guard_drops() {
    let hits = findings_for(
        rules::RULE_LOCK_ORDER,
        "crates/scratch/src/lib.rs",
        concat!(
            "pub struct A { m: Mutex<u32> }\n",
            "pub struct B { m: Mutex<u32> }\n",
            "pub struct Sys { a: A, b: B }\n",
            "impl Sys {\n",
            "    fn fwd(&self) {\n",
            "        let ga = self.a.m.lock();\n",
            "        drop(ga);\n",
            "        let gb = self.b.m.lock();\n",
            "        drop(gb);\n",
            "    }\n",
            "    fn rev(&self) {\n",
            "        let gb = self.b.m.lock();\n",
            "        drop(gb);\n",
            "        let ga = self.a.m.lock();\n",
            "        drop(ga);\n",
            "    }\n",
            "}\n",
        ),
    );
    assert!(hits.is_empty(), "{hits:?}");
}

/// A guard held across a call picks up the callee's acquisitions through
/// the call-graph closure: the cycle spans four functions and no single
/// function nests two guards.
#[test]
fn lock_order_sees_edges_through_calls() {
    let hits = findings_for(
        rules::RULE_LOCK_ORDER,
        "crates/scratch/src/lib.rs",
        concat!(
            "pub struct A { m: Mutex<u32> }\n",
            "pub struct B { m: Mutex<u32> }\n",
            "pub struct Sys { a: A, b: B }\n",
            "impl Sys {\n",
            "    fn outer(&self) {\n",
            "        let ga = self.a.m.lock();\n",
            "        self.lock_b();\n",
            "    }\n",
            "    fn lock_b(&self) {\n",
            "        let gb = self.b.m.lock();\n",
            "    }\n",
            "    fn other(&self) {\n",
            "        let gb = self.b.m.lock();\n",
            "        self.lock_a();\n",
            "    }\n",
            "    fn lock_a(&self) {\n",
            "        let ga = self.a.m.lock();\n",
            "    }\n",
            "}\n",
        ),
    );
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(
        hits.iter().any(|f| f.message.contains("via")),
        "cross-call edges carry the callee attribution: {hits:?}"
    );
}

/// An `allow(lock-order)` on one acquisition site removes that edge from
/// the graph — the cycle disappears and *neither* direction reports.
#[test]
fn lock_order_allow_removes_the_edge() {
    let hits = findings_for(
        rules::RULE_LOCK_ORDER,
        "crates/scratch/src/lib.rs",
        concat!(
            "pub struct A { m: Mutex<u32> }\n",
            "pub struct B { m: Mutex<u32> }\n",
            "pub struct Sys { a: A, b: B }\n",
            "impl Sys {\n",
            "    fn fwd(&self) -> u32 {\n",
            "        let ga = self.a.m.lock();\n",
            "        let gb = self.b.m.lock();\n",
            "        *ga + *gb\n",
            "    }\n",
            "    fn rev(&self) -> u32 {\n",
            "        let gb = self.b.m.lock();\n",
            "        // mcn-lint: allow(lock-order, reason = \"startup-only path, never concurrent with fwd\")\n",
            "        let ga = self.a.m.lock();\n",
            "        *ga + *gb\n",
            "    }\n",
            "}\n",
        ),
    );
    assert!(hits.is_empty(), "{hits:?}");
}

// ------------------------------------------------------------ hot-path-alloc

/// `search` in the `mcpp` crate is a seeded hot root: allocation inside
/// its loops is flagged, setup allocation before the loop is not.
#[test]
fn hot_path_alloc_flags_root_loop_bodies_only() {
    let hits = findings_for(
        rules::RULE_HOT_PATH_ALLOC,
        "crates/mcpp/src/scratch.rs",
        concat!(
            "pub fn search(n: u32) -> u32 {\n",
            "    let mut acc = Vec::with_capacity(n as usize);\n",
            "    for i in 0..n {\n",
            "        let step = vec![i];\n",
            "        acc.push(step[0]);\n",
            "    }\n",
            "    acc.len() as u32\n",
            "}\n",
        ),
    );
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].line, 4, "only the in-loop `vec!` fires: {hits:?}");
}

/// A callee invoked from a hot root's loop is hot *everywhere*: its
/// allocations are flagged even outside any loop of its own.
#[test]
fn hot_path_alloc_propagates_to_loop_callees() {
    let hits = findings_for(
        rules::RULE_HOT_PATH_ALLOC,
        "crates/mcpp/src/scratch.rs",
        concat!(
            "pub fn search(n: u32) -> u32 {\n",
            "    let mut total = 0;\n",
            "    for i in 0..n {\n",
            "        total += step(i);\n",
            "    }\n",
            "    total\n",
            "}\n",
            "fn step(i: u32) -> u32 {\n",
            "    let owned = i.to_string();\n",
            "    owned.len() as u32\n",
            "}\n",
        ),
    );
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].message.contains("to_string"), "{hits:?}");
    assert!(
        hits[0].message.contains("reachable from a hot inner loop"),
        "{hits:?}"
    );
}

/// A reasoned allow on the allocation site suppresses the finding.
#[test]
fn hot_path_alloc_allow_suppresses() {
    let hits = findings_for(
        rules::RULE_HOT_PATH_ALLOC,
        "crates/mcpp/src/scratch.rs",
        concat!(
            "pub fn search(n: u32) -> u32 {\n",
            "    let mut total = 0;\n",
            "    for i in 0..n {\n",
            "        // mcn-lint: allow(hot-path-alloc, reason = \"bounded scratch list, one per step by design\")\n",
            "        let step = vec![i];\n",
            "        total += step[0];\n",
            "    }\n",
            "    total\n",
            "}\n",
        ),
    );
    assert!(hits.is_empty(), "{hits:?}");
}

/// Functions not reachable from any hot root allocate freely.
#[test]
fn hot_path_alloc_ignores_cold_functions() {
    let hits = findings_for(
        rules::RULE_HOT_PATH_ALLOC,
        "crates/mcpp/src/scratch.rs",
        concat!(
            "pub fn build_report(n: u32) -> String {\n",
            "    let mut out = String::new();\n",
            "    for i in 0..n {\n",
            "        out += &format!(\"{i}\");\n",
            "    }\n",
            "    out\n",
            "}\n",
        ),
    );
    assert!(hits.is_empty(), "{hits:?}");
}
