//! Network nodes (road intersections).

use crate::ids::NodeId;
use serde::{Deserialize, Serialize};

/// A network node (road intersection).
///
/// Nodes optionally carry spatial coordinates. The query algorithms do **not**
/// rely on node locations (the paper targets generic cost types with no
/// Euclidean lower bounds); coordinates are used only by the workload
/// generators, the loaders for real datasets, and for computing the position of
/// facilities along their edges.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The node identifier.
    pub id: NodeId,
    /// X coordinate (e.g. longitude or planar x); `NaN` if unknown.
    pub x: f64,
    /// Y coordinate (e.g. latitude or planar y); `NaN` if unknown.
    pub y: f64,
}

impl Node {
    /// Creates a node with coordinates.
    #[inline]
    pub fn new(id: NodeId, x: f64, y: f64) -> Self {
        Self { id, x, y }
    }

    /// Creates a node without spatial information.
    #[inline]
    pub fn without_position(id: NodeId) -> Self {
        Self {
            id,
            x: f64::NAN,
            y: f64::NAN,
        }
    }

    /// Returns true if the node carries spatial coordinates.
    #[inline]
    pub fn has_position(&self) -> bool {
        !self.x.is_nan() && !self.y.is_nan()
    }

    /// Euclidean distance to another node; `None` if either lacks coordinates.
    #[inline]
    pub fn euclidean_distance(&self, other: &Node) -> Option<f64> {
        if self.has_position() && other.has_position() {
            Some(((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_handling() {
        let a = Node::new(NodeId::new(0), 0.0, 0.0);
        let b = Node::new(NodeId::new(1), 3.0, 4.0);
        let c = Node::without_position(NodeId::new(2));
        assert!(a.has_position());
        assert!(!c.has_position());
        assert_eq!(a.euclidean_distance(&b), Some(5.0));
        assert_eq!(a.euclidean_distance(&c), None);
    }
}
