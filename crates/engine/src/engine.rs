//! The bounded worker pool scheduling a batch of queries.

use crate::context::PathContext;
use crate::request::{QueryOutcome, QueryRequest};
use mcn_graph::RegionId;
use mcn_obs::{
    default_clock, Clock, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, Obs,
};
use mcn_prep::PrepCacheStats;
use mcn_storage::{with_seed_region, IoStats, MCNStore, PartitionedStore, StoreView};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Aggregate statistics of one executed batch.
#[derive(Clone, Debug)]
pub struct BatchStats {
    /// Number of queries executed.
    pub queries: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time from submission to the last completion.
    pub wall: Duration,
    /// Queries per second of wall-clock time.
    pub qps: f64,
    /// Store-wide I/O delta over the whole batch, taken from consistent
    /// before/after snapshots of the striped buffer pool (so
    /// `logical_reads == buffer_hits + buffer_misses` holds exactly).
    pub io: IoStats,
    /// Region-affine scheduling only: claims where a worker stayed on its
    /// previous region (zero for FIFO batches).
    pub affine_hits: u64,
    /// Region-affine scheduling only: fallback claims onto a region another
    /// worker was already serving (the no-starvation path; zero for FIFO
    /// batches).
    pub affine_steals: u64,
    /// Prep-table cache activity over this batch (hits/misses/evictions
    /// delta of the attached [`PathContext`]'s cache; all-zero when the
    /// engine has no path context or the batch had no path queries).
    pub prep_cache: PrepCacheStats,
    /// Per-query latency over the whole batch (claim to completion on the
    /// engine's clock) as a deterministic log2 histogram with p50/p95/p99
    /// (`engine.latency_ns`, nanoseconds).
    pub latency: HistogramSnapshot,
    /// The same latency histogram split by serving tier
    /// ([`QueryRequest::kind`]), labelled `tier=<kind>` and sorted by tier
    /// name; one entry per tier present in the batch.
    pub tier_latency: Vec<HistogramSnapshot>,
    /// Batch-local metrics snapshot: the I/O and prep-cache *deltas* above
    /// republished as `storage.*` / `prep.cache.*` counters, plus
    /// `engine.queries`/`engine.workers` and the latency histograms — so a
    /// batch's whole accounting exports as one deterministic JSON or
    /// Prometheus document. Counters here reconcile byte-exactly with
    /// [`BatchStats::io`] and [`BatchStats::prep_cache`].
    pub metrics: MetricsSnapshot,
}

/// A batch of outcomes plus its aggregate statistics. `outcomes[i]` belongs
/// to `requests[i]` regardless of which worker executed it.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Per-query outcomes, in request order.
    pub outcomes: Vec<QueryOutcome>,
    /// Aggregate statistics.
    pub stats: BatchStats,
}

/// The shared state of a region-affine batch: one FIFO queue of request
/// indices per region, plus how many workers are currently serving each
/// region.
struct AffineState {
    queues: Vec<VecDeque<usize>>,
    active: Vec<usize>,
    remaining: usize,
}

/// How a region-affine claim was made (for the batch statistics).
enum ClaimKind {
    /// The worker stayed on its previous region.
    Sticky,
    /// The worker moved to a region no one was serving.
    Spread,
    /// Every region with pending work was already being served; the worker
    /// took the globally oldest request anyway (prevents starvation).
    Steal,
}

impl AffineState {
    fn new(regions: &[RegionId], num_regions: usize) -> Self {
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); num_regions];
        for (i, region) in regions.iter().enumerate() {
            queues[region.index()].push_back(i);
        }
        Self {
            active: vec![0; num_regions],
            remaining: regions.len(),
            queues,
        }
    }

    /// Claims the next request for a worker whose previous region was
    /// `prefer`: its own region first, then the oldest request of an idle
    /// region, then — FIFO fallback — the oldest request overall.
    fn claim(&mut self, prefer: Option<usize>) -> Option<(usize, usize, ClaimKind)> {
        if self.remaining == 0 {
            return None;
        }
        if let Some(r) = prefer {
            if let Some(i) = self.queues[r].pop_front() {
                self.active[r] += 1;
                self.remaining -= 1;
                return Some((r, i, ClaimKind::Sticky));
            }
        }
        let oldest = |r_active: bool, queues: &[VecDeque<usize>], active: &[usize]| {
            queues
                .iter()
                .enumerate()
                .filter(|(r, q)| !q.is_empty() && (r_active || active[*r] == 0))
                .min_by_key(|(_, q)| *q.front().unwrap())
                .map(|(r, _)| r)
        };
        let (region, kind) = match oldest(false, &self.queues, &self.active) {
            Some(r) => (r, ClaimKind::Spread),
            // Every region with work is being served: take the oldest
            // pending request anyway so no request waits forever.
            None => (
                oldest(true, &self.queues, &self.active)
                    .expect("remaining > 0 implies a non-empty queue"),
                ClaimKind::Steal,
            ),
        };
        let i = self.queues[region].pop_front().unwrap();
        self.active[region] += 1;
        self.remaining -= 1;
        Some((region, i, kind))
    }
}

/// A multi-query scheduler: a fixed-size pool of worker threads draining a
/// batch of [`QueryRequest`]s against one shared store — a monolithic
/// [`MCNStore`] (the default) or any other [`StoreView`], e.g. a
/// region-partitioned store.
///
/// [`QueryEngine::run_batch`] claims requests FIFO through an atomic cursor.
/// [`QueryEngine::run_batch_with_regions`] additionally tags every query
/// with its seed region and can schedule **region-affine**: workers prefer
/// to stay on the region they just served (keeping that region's buffer
/// pool hot and avoiding two workers thrashing one region's pool), spread
/// to idle regions otherwise, and fall back to plain FIFO when every
/// region is taken — so no request ever starves. Scheduling never changes
/// results: each query runs the ordinary single-query algorithm, so
/// per-query outputs are identical to serial execution at any pool size
/// and in both scheduling modes.
pub struct QueryEngine<S: StoreView + ?Sized = MCNStore> {
    workers: usize,
    store: Arc<S>,
    /// Present when the engine serves [`QueryRequest::PathSkyline`]
    /// requests: the graph plus the shared prep-table cache.
    paths: Option<Arc<PathContext>>,
    /// Observability context: supplies the clock every batch is timed
    /// against, receives lifecycle spans when tracing is enabled, and
    /// accumulates cross-batch metrics in its shared registry.
    obs: Option<Arc<Obs>>,
}

const _: () = crate::assert_send_sync::<QueryEngine>();
const _: () = crate::assert_send_sync::<QueryEngine<PartitionedStore>>();
const _: () = crate::assert_send_sync::<QueryEngine<dyn StoreView>>();

impl<S: StoreView + ?Sized> QueryEngine<S> {
    /// Creates an engine over `store` with `workers` threads (clamped to at
    /// least one).
    pub fn new(store: Arc<S>, workers: usize) -> Self {
        Self {
            store,
            workers: workers.max(1),
            paths: None,
            obs: None,
        }
    }

    /// Attaches a [`PathContext`] so the engine can serve
    /// [`QueryRequest::PathSkyline`] requests; batches then share the
    /// context's prep-table cache across workers (and across batches, for a
    /// warm cache). The context can be shared between engines.
    pub fn with_path_context(mut self, paths: Arc<PathContext>) -> Self {
        self.paths = Some(paths);
        self
    }

    /// The attached path context, if any.
    pub fn path_context(&self) -> Option<&Arc<PathContext>> {
        self.paths.as_ref()
    }

    /// Attaches an observability context. Batches are then timed against
    /// its [`Clock`], publish cumulative store/prep/engine metrics into
    /// its registry after every batch, and — when `obs.set_tracing(true)`
    /// — record per-query lifecycle spans
    /// (`schedule → prep-lookup/build → search → unpack → fingerprint`)
    /// into its tracer. Observation never changes query results.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The attached observability context, if any.
    pub fn obs(&self) -> Option<&Arc<Obs>> {
        self.obs.as_ref()
    }

    /// The shared store.
    pub fn store(&self) -> &Arc<S> {
        &self.store
    }

    /// Size of the worker pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes one request on the calling thread (no pool involved).
    pub fn run_one(&self, request: &QueryRequest) -> QueryOutcome {
        request.execute_observed(&self.store, self.paths.as_deref(), self.obs.as_deref(), 0)
    }

    /// Executes `requests` across the worker pool and returns the outcomes
    /// in request order together with aggregate throughput statistics.
    ///
    /// Blocks until the whole batch has completed. With `workers == 1` this
    /// is plain serial execution on one spawned thread; larger pools only
    /// change scheduling, never results.
    pub fn run_batch(&self, requests: &[QueryRequest]) -> BatchResult {
        self.run(requests, None, false)
    }

    /// Like [`QueryEngine::run_batch`], with every query tagged by its seed
    /// region (`regions[i]` for `requests[i]`, as produced by
    /// `PartitionMap::region_of_location`). Execution is wrapped in
    /// [`with_seed_region`], so a partitioned store classifies its reads as
    /// home/cross-region in **both** modes; `affine` selects region-affine
    /// claiming over plain FIFO. Results are byte-identical either way.
    ///
    /// # Panics
    /// Panics if the tag slice length differs from the request count.
    pub fn run_batch_with_regions(
        &self,
        requests: &[QueryRequest],
        regions: &[RegionId],
        affine: bool,
    ) -> BatchResult {
        assert_eq!(
            requests.len(),
            regions.len(),
            "one region tag per request required"
        );
        self.run(requests, Some(regions), affine)
    }

    fn run(
        &self,
        requests: &[QueryRequest],
        regions: Option<&[RegionId]>,
        affine: bool,
    ) -> BatchResult {
        let n = requests.len();
        let io_before = self.store.io_stats();
        let prep_before = self
            .paths
            .as_deref()
            .map(|ctx| ctx.cache_stats())
            .unwrap_or_default();
        let obs = self.obs.as_deref();
        let clock: &dyn Clock = match obs {
            Some(o) => o.clock(),
            None => default_clock(),
        };
        // Per-query latency (claim → completion), overall and split by
        // serving tier. `Histogram::record` is wait-free, so workers share
        // the histograms by reference without a lock.
        let latency_hist = Histogram::new();
        let tier_hists: Vec<(&'static str, Histogram)> = {
            let mut tiers: Vec<&'static str> = requests.iter().map(QueryRequest::kind).collect();
            tiers.sort_unstable();
            tiers.dedup();
            tiers.into_iter().map(|t| (t, Histogram::new())).collect()
        };
        let started_ns = clock.now_ns();
        let slots: Vec<Mutex<Option<QueryOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let affine_hits = AtomicU64::new(0);
        let affine_steals = AtomicU64::new(0);

        let paths = self.paths.as_deref();
        let latency_hist = &latency_hist;
        let tier_hists = &tier_hists;
        let execute = |i: usize| {
            let tier = requests[i].kind();
            let t0 = clock.now_ns();
            if let Some(o) = obs {
                // The schedule span covers batch submission → this claim.
                o.tracer()
                    .record("schedule", tier, i as u64, started_ns, t0);
            }
            let run = || requests[i].execute_observed(&self.store, paths, obs, i as u64);
            let outcome = match regions {
                Some(tags) => with_seed_region(tags[i], run),
                None => run(),
            };
            if let Some(o) = obs {
                if o.tracing() {
                    // Fingerprinting re-serializes the output, so only pay
                    // for it when someone is collecting the trace.
                    let _span = o.span("fingerprint", tier, i as u64);
                    let _ = outcome.output.fingerprint();
                }
            }
            let t1 = clock.now_ns();
            let latency = t1.saturating_sub(t0);
            latency_hist.record(latency);
            tier_hists
                .iter()
                .find(|(t, _)| *t == tier)
                .expect("every request kind has a histogram")
                .1
                .record(latency);
            let mut slot = slots[i].lock();
            let _slot_w = mcn_witness::acquire("engine::run.slots");
            *slot = Some(outcome);
        };

        // Scheduler state lives outside the scope so worker borrows survive
        // until the final join.
        let cursor = AtomicUsize::new(0);
        let state = affine.then(|| {
            let tags = regions.expect("affine scheduling requires region tags");
            let num_regions = tags.iter().map(|r| r.index() + 1).max().unwrap_or(1);
            Mutex::new(AffineState::new(tags, num_regions))
        });

        std::thread::scope(|scope| {
            let workers = self.workers.min(n.max(1));
            if let Some(state) = &state {
                for _ in 0..workers {
                    let execute = &execute;
                    let affine_hits = &affine_hits;
                    let affine_steals = &affine_steals;
                    scope.spawn(move || {
                        let mut last: Option<usize> = None;
                        loop {
                            let claimed = {
                                let mut st = state.lock();
                                let _state_w = mcn_witness::acquire("engine::run.state");
                                st.claim(last)
                            };
                            let Some((region, i, kind)) = claimed else {
                                break;
                            };
                            match kind {
                                ClaimKind::Sticky => {
                                    affine_hits.fetch_add(1, Ordering::Relaxed);
                                }
                                ClaimKind::Spread => {}
                                ClaimKind::Steal => {
                                    affine_steals.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            execute(i);
                            {
                                let mut st = state.lock();
                                let _state_w = mcn_witness::acquire("engine::run.state");
                                st.active[region] -= 1;
                            }
                            last = Some(region);
                        }
                    });
                }
            } else {
                for _ in 0..workers {
                    let cursor = &cursor;
                    let execute = &execute;
                    scope.spawn(move || loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        execute(i);
                    });
                }
            }
        });

        let wall = clock.elapsed(started_ns);
        let io = self.store.io_stats() - io_before;
        let prep_cache = self
            .paths
            .as_deref()
            .map(|ctx| ctx.cache_stats().since(&prep_before))
            .unwrap_or_default();
        let latency = latency_hist.snapshot("engine.latency_ns", Vec::new());
        let tier_latency: Vec<HistogramSnapshot> = tier_hists
            .iter()
            .map(|(tier, hist)| {
                hist.snapshot(
                    "engine.latency_ns",
                    vec![("tier".to_string(), tier.to_string())],
                )
            })
            .collect();

        // Batch-local metrics: the deltas above, republished so one
        // snapshot carries the whole batch accounting. Values reconcile
        // byte-exactly with `io`/`prep_cache` because they are set from
        // the same structs.
        let batch_registry = MetricsRegistry::new();
        io.publish(&batch_registry, &[]);
        prep_cache.publish(&batch_registry, &[]);
        batch_registry.counter("engine.queries", &[]).set(n as u64);
        batch_registry
            .counter("engine.workers", &[])
            .set(self.workers as u64);
        batch_registry.merge_histogram(&latency);
        for snap in &tier_latency {
            batch_registry.merge_histogram(snap);
        }
        let metrics = batch_registry.snapshot();

        // Cross-batch metrics: cumulative store/prep counters plus the
        // batch latency merged into the shared registry. One engine batch
        // runs at a time per store, so the absolute publishes are the
        // single-publisher case `IoStats::publish` documents.
        if let Some(o) = obs {
            let shared = o.registry();
            self.store.publish_metrics(shared);
            if let Some(ctx) = paths {
                ctx.cache_stats().publish(shared, &[]);
            }
            shared.counter("engine.batches", &[]).inc();
            shared.counter("engine.queries", &[]).add(n as u64);
            shared.merge_histogram(&latency);
            for snap in &tier_latency {
                shared.merge_histogram(snap);
            }
        }

        let outcomes: Vec<QueryOutcome> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("every request slot is filled before the scope ends")
            })
            .collect();
        let qps = if wall.as_secs_f64() > 0.0 {
            n as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        BatchResult {
            outcomes,
            stats: BatchStats {
                queries: n,
                workers: self.workers,
                wall,
                qps,
                io,
                affine_hits: affine_hits.into_inner(),
                affine_steals: affine_steals.into_inner(),
                prep_cache,
                latency,
                tier_latency,
                metrics,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::QueryOutput;
    use mcn_core::Algorithm;
    use mcn_gen::{generate_workload, WorkloadSpec};
    use mcn_graph::{partition_graph, PartitionSpec};
    use mcn_storage::{BufferConfig, PartitionedStore};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn fixture() -> (Arc<MCNStore>, Vec<QueryRequest>) {
        let workload = generate_workload(&WorkloadSpec::tiny(11));
        let d = workload.spec.cost_types;
        let store = Arc::new(
            MCNStore::build_in_memory(&workload.graph, BufferConfig::Fraction(0.01)).unwrap(),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let requests: Vec<QueryRequest> = workload
            .queries
            .iter()
            .cycle()
            .take(12)
            .enumerate()
            .map(|(i, &location)| {
                let weights: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
                let algorithm = if i % 2 == 0 {
                    Algorithm::Cea
                } else {
                    Algorithm::Lsa
                };
                match i % 3 {
                    0 => QueryRequest::Skyline {
                        location,
                        algorithm,
                    },
                    1 => QueryRequest::TopK {
                        location,
                        weights,
                        k: 4,
                        algorithm,
                    },
                    _ => QueryRequest::TopKIncremental {
                        location,
                        weights,
                        take: 3,
                        algorithm,
                    },
                }
            })
            .collect();
        (store, requests)
    }

    /// A partitioned fixture: the same workload shape over region shards,
    /// with every request tagged by its seed region.
    fn partitioned_fixture(
        regions: usize,
    ) -> (Arc<PartitionedStore>, Vec<QueryRequest>, Vec<RegionId>) {
        let workload = generate_workload(&WorkloadSpec::tiny(11));
        let d = workload.spec.cost_types;
        let map = partition_graph(&workload.graph, &PartitionSpec::new(regions));
        let tags_of = |location| map.region_of_location(&workload.graph, location);
        let store = Arc::new(
            PartitionedStore::build_in_memory(
                &workload.graph,
                map.clone(),
                BufferConfig::Pages(32),
            )
            .unwrap(),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut requests = Vec::new();
        let mut tags = Vec::new();
        for (i, &location) in workload.queries.iter().cycle().take(16).enumerate() {
            let weights: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
            let algorithm = if i % 2 == 0 {
                Algorithm::Cea
            } else {
                Algorithm::Lsa
            };
            requests.push(match i % 2 {
                0 => QueryRequest::Skyline {
                    location,
                    algorithm,
                },
                _ => QueryRequest::TopK {
                    location,
                    weights,
                    k: 4,
                    algorithm,
                },
            });
            tags.push(tags_of(location));
        }
        (store, requests, tags)
    }

    fn fingerprints(result: &BatchResult) -> Vec<String> {
        result
            .outcomes
            .iter()
            .map(|o| o.output.fingerprint())
            .collect()
    }

    #[test]
    fn four_workers_match_serial_byte_for_byte() {
        let (store, requests) = fixture();
        let serial = QueryEngine::new(store.clone(), 1).run_batch(&requests);
        let concurrent = QueryEngine::new(store.clone(), 4).run_batch(&requests);
        assert_eq!(fingerprints(&serial), fingerprints(&concurrent));
        // Logical reads are a pure function of the queries, independent of
        // scheduling and buffer state.
        assert_eq!(
            serial.stats.io.logical_reads,
            concurrent.stats.io.logical_reads
        );
    }

    #[test]
    fn batch_stats_are_populated_and_consistent() {
        let (store, requests) = fixture();
        let result = QueryEngine::new(store, 3).run_batch(&requests);
        assert_eq!(result.stats.queries, requests.len());
        assert_eq!(result.stats.workers, 3);
        assert!(result.stats.qps > 0.0);
        assert!(result.stats.io.logical_reads > 0);
        assert_eq!(
            result.stats.io.logical_reads,
            result.stats.io.buffer_hits + result.stats.io.buffer_misses
        );
        assert_eq!(result.stats.affine_hits, 0);
        assert_eq!(result.stats.affine_steals, 0);
        for outcome in &result.outcomes {
            assert!(!outcome.output.is_empty());
            assert!(outcome.stats.nodes_settled > 0);
        }
    }

    #[test]
    fn outcomes_follow_request_order() {
        let (store, requests) = fixture();
        let result = QueryEngine::new(store.clone(), 4).run_batch(&requests);
        for (req, outcome) in requests.iter().zip(&result.outcomes) {
            match (req, &outcome.output) {
                (QueryRequest::Skyline { .. }, QueryOutput::Skyline(_)) => {}
                (QueryRequest::TopK { k, .. }, QueryOutput::TopK(entries)) => {
                    assert!(entries.len() <= *k);
                }
                (QueryRequest::TopKIncremental { take, .. }, QueryOutput::TopK(entries)) => {
                    assert!(entries.len() <= *take);
                }
                other => panic!("request/outcome kind mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn incremental_topk_matches_batch_topk_prefix() {
        let (store, _) = fixture();
        let location = mcn_graph::NetworkLocation::Node(mcn_graph::NodeId::new(5));
        let weights = vec![0.5, 0.3, 0.2];
        let engine = QueryEngine::new(store, 2);
        let batch = engine.run_one(&QueryRequest::TopK {
            location,
            weights: weights.clone(),
            k: 5,
            algorithm: Algorithm::Cea,
        });
        let incremental = engine.run_one(&QueryRequest::TopKIncremental {
            location,
            weights,
            take: 5,
            algorithm: Algorithm::Cea,
        });
        assert_eq!(batch.output.fingerprint(), incremental.output.fingerprint());
    }

    #[test]
    fn zero_workers_clamps_to_one_and_empty_batch_is_fine() {
        let (store, _) = fixture();
        let engine = QueryEngine::new(store, 0);
        assert_eq!(engine.workers(), 1);
        let result = engine.run_batch(&[]);
        assert!(result.outcomes.is_empty());
        assert_eq!(result.stats.queries, 0);
    }

    #[test]
    fn engine_runs_over_a_partitioned_store() {
        let (store, requests, tags) = partitioned_fixture(4);
        let engine = QueryEngine::new(store.clone(), 4);
        let fifo = engine.run_batch_with_regions(&requests, &tags, false);
        let affine = engine.run_batch_with_regions(&requests, &tags, true);
        // Scheduling mode changes neither the results …
        assert_eq!(fingerprints(&fifo), fingerprints(&affine));
        // … nor the logical read count (a pure function of the queries).
        assert_eq!(fifo.stats.io.logical_reads, affine.stats.io.logical_reads);
        // Every query executed exactly once (no starvation, no loss).
        assert_eq!(affine.outcomes.len(), requests.len());
        // The seed scope classified reads in both modes.
        let traffic = store.region_traffic();
        assert!(traffic.home_reads + traffic.cross_reads > 0);
    }

    #[test]
    fn affine_matches_plain_fifo_on_a_monolithic_store_too() {
        // Region tags over a monolithic store are legal (single region 0):
        // affinity degenerates to FIFO with extra bookkeeping.
        let (store, requests) = fixture();
        let tags = vec![RegionId::new(0); requests.len()];
        let engine = QueryEngine::new(store.clone(), 3);
        let plain = engine.run_batch(&requests);
        let affine = engine.run_batch_with_regions(&requests, &tags, true);
        assert_eq!(fingerprints(&plain), fingerprints(&affine));
        // One region, three workers: apart from each worker's first claim
        // (spread or steal depending on timing), every claim is sticky or a
        // steal — never more than the batch minus the very first spread.
        let classified = affine.stats.affine_hits + affine.stats.affine_steals;
        assert!(
            (requests.len() as u64 - 3..requests.len() as u64).contains(&classified),
            "unexpected claim mix: {classified} of {}",
            requests.len()
        );
    }

    #[test]
    fn single_worker_affine_drains_regions_without_steals() {
        // With one worker the schedule is fully deterministic: spread to the
        // oldest idle region, drain it with sticky claims, repeat. The steal
        // path (another worker on the region) cannot trigger.
        let (store, requests, tags) = partitioned_fixture(8);
        let engine = QueryEngine::new(store, 1);
        let result = engine.run_batch_with_regions(&requests, &tags, true);
        let distinct: std::collections::HashSet<RegionId> = tags.iter().copied().collect();
        assert_eq!(result.stats.affine_steals, 0);
        assert_eq!(
            result.stats.affine_hits,
            (requests.len() - distinct.len()) as u64
        );
    }

    /// A fixture with path-skyline requests mixed into the batch: sources
    /// and targets cycled over a small pool so the prep cache gets reuse.
    /// The network is deliberately smaller than [`WorkloadSpec::tiny`]:
    /// anti-correlated Pareto path sets grow quickly with network diameter
    /// and these tests also run in debug builds.
    fn path_fixture() -> (Arc<MCNStore>, Arc<crate::PathContext>, Vec<QueryRequest>) {
        let workload = generate_workload(&WorkloadSpec {
            nodes: 250,
            facilities: 60,
            queries: 4,
            ..WorkloadSpec::tiny(31)
        });
        let graph = Arc::new(workload.graph);
        let store = Arc::new(
            MCNStore::build_on(
                &graph,
                Arc::new(mcn_storage::InMemoryDisk::new()),
                BufferConfig::Fraction(0.01),
            )
            .unwrap(),
        );
        let ctx = Arc::new(crate::PathContext::new(graph.clone(), 4));
        let mut rng = ChaCha8Rng::seed_from_u64(310);
        let n = graph.num_nodes();
        let targets: Vec<mcn_graph::NodeId> = (0..3)
            .map(|_| mcn_graph::NodeId::from(rng.gen_range(0..n)))
            .collect();
        let requests: Vec<QueryRequest> = (0..12)
            .map(|i| QueryRequest::PathSkyline {
                source: mcn_graph::NodeId::from(rng.gen_range(0..n)),
                target: targets[i % targets.len()],
            })
            .collect();
        (store, ctx, requests)
    }

    #[test]
    fn path_skyline_batches_match_serial_byte_for_byte() {
        let (store, ctx, requests) = path_fixture();
        let serial = QueryEngine::new(store.clone(), 1)
            .with_path_context(ctx.clone())
            .run_batch(&requests);
        ctx.clear_cache();
        let concurrent = QueryEngine::new(store, 4)
            .with_path_context(ctx.clone())
            .run_batch(&requests);
        assert_eq!(fingerprints(&serial), fingerprints(&concurrent));
        for outcome in &serial.outcomes {
            assert!(matches!(outcome.output, QueryOutput::Paths(_)));
            assert!(!outcome.output.is_empty());
        }
        // Three distinct targets, twelve requests: the cache absorbed the
        // repeats (some misses may duplicate under races, never exceed the
        // request count).
        let stats = ctx.cache_stats();
        assert!(stats.hits > 0);
        assert!(stats.misses < requests.len() as u64);
    }

    #[test]
    fn warm_cache_reruns_are_fingerprint_identical() {
        let (store, ctx, requests) = path_fixture();
        let engine = QueryEngine::new(store, 2).with_path_context(ctx.clone());
        let cold = engine.run_batch(&requests);
        let warm = engine.run_batch(&requests);
        assert_eq!(fingerprints(&cold), fingerprints(&warm));
        // The second batch ran entirely from the cache.
        assert!(ctx.cache_stats().hits >= requests.len() as u64);
    }

    #[test]
    #[should_panic(expected = "PathContext")]
    fn path_skyline_without_context_panics() {
        let (store, _) = fixture();
        let engine = QueryEngine::new(store, 1);
        let _ = engine.run_one(&QueryRequest::PathSkyline {
            source: mcn_graph::NodeId::new(0),
            target: mcn_graph::NodeId::new(1),
        });
    }

    /// Mixed serving-tier traffic: alpha-path requests interleaved with
    /// path-skyline and skyline requests in one batch, exercising the
    /// per-user preference route through the shared prep cache.
    fn mixed_alpha_fixture() -> (Arc<MCNStore>, Arc<crate::PathContext>, Vec<QueryRequest>) {
        let (store, ctx, mut requests) = path_fixture();
        let n = ctx.graph().num_nodes();
        let d = ctx.graph().num_cost_types();
        let mut rng = ChaCha8Rng::seed_from_u64(311);
        let targets: Vec<mcn_graph::NodeId> = requests
            .iter()
            .filter_map(|r| match r {
                QueryRequest::PathSkyline { target, .. } => Some(*target),
                _ => None,
            })
            .collect();
        for i in 0..12 {
            let weights: Vec<f64> = (0..d).map(|_| rng.gen_range(0.05..1.0)).collect();
            requests.push(QueryRequest::AlphaPath {
                source: mcn_graph::NodeId::from(rng.gen_range(0..n)),
                target: targets[i % targets.len()],
                alpha: mcn_alpha::Preference::new(&weights).unwrap(),
            });
        }
        (store, ctx, requests)
    }

    #[test]
    fn alpha_path_batches_match_serial_and_report_cache_stats() {
        let (store, ctx, requests) = mixed_alpha_fixture();
        let serial = QueryEngine::new(store.clone(), 1)
            .with_path_context(ctx.clone())
            .run_batch(&requests);
        ctx.clear_cache();
        let concurrent = QueryEngine::new(store, 4)
            .with_path_context(ctx.clone())
            .run_batch(&requests);
        assert_eq!(fingerprints(&serial), fingerprints(&concurrent));
        for (request, outcome) in requests.iter().zip(&serial.outcomes) {
            if let QueryRequest::AlphaPath { .. } = request {
                assert_eq!(request.kind(), "alpha-path");
                assert_eq!(outcome.stats.algorithm, "alpha-astar");
                assert!(matches!(outcome.output, QueryOutput::AlphaPath(_)));
                assert_eq!(outcome.stats.result_size, outcome.output.len());
            }
        }
        // The batch-level prep-cache delta reconciles: every path-flavored
        // request was one cache lookup, and the warm repeats were hits.
        let cache = serial.stats.prep_cache;
        assert!(cache.hits + cache.misses >= 24);
        assert!(cache.hits > 0);
        assert!(cache.hit_ratio() > 0.0);
        // A batch with no path context reports a zeroed delta.
        let (plain_store, plain_requests) = fixture();
        let plain = QueryEngine::new(plain_store, 2).run_batch(&plain_requests);
        assert_eq!(plain.stats.prep_cache, mcn_prep::PrepCacheStats::default());
    }

    #[test]
    fn engine_alpha_route_matches_direct_dijkstra() {
        // The engine's prep-backed A* answer must be the same route plain
        // Dijkstra finds without any engine or cache in the loop.
        let (store, ctx, requests) = mixed_alpha_fixture();
        let engine = QueryEngine::new(store, 2).with_path_context(ctx.clone());
        for request in &requests {
            if let QueryRequest::AlphaPath {
                source,
                target,
                alpha,
            } = request
            {
                let outcome = engine.run_one(request);
                let direct = mcn_alpha::scalarized_path(ctx.graph(), *source, *target, alpha);
                match (&outcome.output, direct.path) {
                    (QueryOutput::AlphaPath(Some(via_engine)), Some(plain)) => {
                        assert_eq!(via_engine.edges, plain.edges);
                        assert_eq!(via_engine.total.to_bits(), plain.total.to_bits());
                    }
                    (QueryOutput::AlphaPath(None), None) => {}
                    other => panic!("engine and direct search disagree: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn route_index_serves_path_queries_byte_identically() {
        let (store, ctx, requests) = mixed_alpha_fixture();
        let baseline = QueryEngine::new(store.clone(), 2)
            .with_path_context(ctx.clone())
            .run_batch(&requests);
        let index = Arc::new(mcn_index::RouteIndex::build(
            ctx.graph(),
            &mcn_index::IndexConfig::default(),
        ));
        assert!(index.exact(), "the fixture workload must index exactly");
        let indexed_ctx =
            Arc::new(crate::PathContext::new(ctx.graph().clone(), 4).with_route_index(index));
        let indexed = QueryEngine::new(store, 2)
            .with_path_context(indexed_ctx.clone())
            .run_batch(&requests);
        assert_eq!(fingerprints(&baseline), fingerprints(&indexed));
        for (request, outcome) in requests.iter().zip(&indexed.outcomes) {
            match request {
                QueryRequest::AlphaPath { .. } => {
                    assert_eq!(outcome.stats.algorithm, "alpha-index")
                }
                QueryRequest::PathSkyline { .. } => {
                    assert_eq!(outcome.stats.algorithm, "MCPP-index")
                }
                _ => {}
            }
        }
        // Index-served path queries never consult the prep cache.
        let cache = indexed_ctx.cache_stats();
        assert_eq!(cache.hits + cache.misses, 0);
    }

    #[test]
    fn inexact_route_index_falls_back_to_the_prep_tier() {
        let (store, ctx, requests) = mixed_alpha_fixture();
        // A bundle cap of 1 forces truncation on the anti-correlated
        // workload, so the index is not exact and must never serve.
        let index = Arc::new(mcn_index::RouteIndex::build(
            ctx.graph(),
            &mcn_index::IndexConfig {
                max_bundle: 1,
                ..mcn_index::IndexConfig::default()
            },
        ));
        assert!(!index.exact());
        let fallback_ctx = Arc::new(
            crate::PathContext::new(ctx.graph().clone(), 4).with_route_index(index.clone()),
        );
        assert!(fallback_ctx.route_index().is_some());
        assert!(fallback_ctx.serving_index().is_none());
        let outcomes = QueryEngine::new(store, 2)
            .with_path_context(fallback_ctx)
            .run_batch(&requests);
        for (request, outcome) in requests.iter().zip(&outcomes.outcomes) {
            match request {
                QueryRequest::AlphaPath { .. } => {
                    assert_eq!(outcome.stats.algorithm, "alpha-astar")
                }
                QueryRequest::PathSkyline { .. } => {
                    assert_eq!(outcome.stats.algorithm, "MCPP-prep")
                }
                _ => {}
            }
        }
    }

    #[test]
    fn manual_clock_makes_batch_timing_deterministic() {
        let (store, requests) = fixture();
        let step = 1_000u64;
        let clock = Arc::new(mcn_obs::ManualClock::with_step(0, step));
        let obs = Arc::new(mcn_obs::Obs::with_clock(clock.clone()));
        let engine = QueryEngine::new(store, 1).with_obs(obs);
        let result = engine.run_batch(&requests);
        let n = requests.len() as u64;
        // One worker, tracing off: one read at batch start, four per query
        // (claim, request start, request wall, completion), one at the end.
        assert_eq!(clock.reads(), 4 * n + 2);
        assert_eq!(
            result.stats.wall,
            Duration::from_nanos((4 * n + 1) * step),
            "batch wall time is exact on a stepping clock"
        );
        for outcome in &result.outcomes {
            assert_eq!(outcome.wall, Duration::from_nanos(step));
        }
        // Every query took exactly claim→completion = 3 steps, so the
        // histogram collapses to a single value and every percentile
        // clamps to the observed max.
        let lat = &result.stats.latency;
        assert_eq!(lat.count, n);
        assert_eq!((lat.min, lat.max), (3 * step, 3 * step));
        assert_eq!((lat.p50, lat.p95, lat.p99), (3 * step, 3 * step, 3 * step));
        assert!(result.stats.qps > 0.0);
    }

    #[test]
    fn frozen_clock_reports_zero_wall_and_zero_qps() {
        let (store, requests) = fixture();
        let obs = Arc::new(mcn_obs::Obs::with_clock(Arc::new(
            mcn_obs::ManualClock::new(7),
        )));
        let result = QueryEngine::new(store, 2)
            .with_obs(obs)
            .run_batch(&requests);
        assert_eq!(result.stats.wall, Duration::ZERO);
        assert_eq!(result.stats.qps, 0.0);
        assert_eq!(result.stats.latency.count, requests.len() as u64);
        assert_eq!(result.stats.latency.max, 0);
    }

    #[test]
    fn batch_metrics_reconcile_with_io_and_prep_stats() {
        let (store, ctx, requests) = mixed_alpha_fixture();
        let obs = Arc::new(mcn_obs::Obs::new());
        let engine = QueryEngine::new(store.clone(), 4)
            .with_path_context(ctx.clone())
            .with_obs(obs.clone());
        let result = engine.run_batch(&requests);
        let n = requests.len() as u64;

        // Batch-local snapshot mirrors the delta structs byte-exactly.
        let m = &result.stats.metrics;
        let io = result.stats.io;
        assert_eq!(
            m.counter_value("storage.logical_reads", &[]),
            Some(io.logical_reads)
        );
        assert_eq!(
            m.counter_value("storage.buffer_hits", &[]),
            Some(io.buffer_hits)
        );
        assert_eq!(
            m.counter_value("storage.buffer_misses", &[]),
            Some(io.buffer_misses)
        );
        assert_eq!(io.logical_reads, io.buffer_hits + io.buffer_misses);
        let cache = result.stats.prep_cache;
        assert_eq!(m.counter_value("prep.cache.hits", &[]), Some(cache.hits));
        assert_eq!(
            m.counter_value("prep.cache.misses", &[]),
            Some(cache.misses)
        );
        assert_eq!(m.counter_value("engine.queries", &[]), Some(n));
        assert_eq!(m.counter_value("engine.workers", &[]), Some(4));

        // Latency histograms: one overall, one per tier, and the tier
        // splits partition the batch.
        assert_eq!(result.stats.latency.count, n);
        let tier_total: u64 = result.stats.tier_latency.iter().map(|h| h.count).sum();
        assert_eq!(tier_total, n);
        let tiers: Vec<String> = result
            .stats
            .tier_latency
            .iter()
            .map(|h| h.labels[0].1.clone())
            .collect();
        let mut sorted = tiers.clone();
        sorted.sort();
        assert_eq!(tiers, sorted, "tier histograms are sorted by tier name");
        assert!(m.histogram("engine.latency_ns", &[]).is_some());

        // Shared registry: cumulative counters reconcile with the store's
        // own accounting after the batch.
        let shared = obs.registry().snapshot();
        assert_eq!(shared.counter_value("engine.batches", &[]), Some(1));
        assert_eq!(shared.counter_value("engine.queries", &[]), Some(n));
        let total = store.io_stats();
        assert_eq!(
            shared.counter_value("storage.logical_reads", &[]),
            Some(total.logical_reads)
        );
        assert_eq!(
            shared.counter_value("prep.cache.hits", &[]),
            Some(ctx.cache_stats().hits)
        );

        // The snapshot's exporters are deterministic: JSON round-trips.
        let text = m.to_json();
        let back = mcn_obs::MetricsSnapshot::from_json(&text).unwrap();
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn tracing_records_the_full_query_lifecycle() {
        let (store, ctx, requests) = mixed_alpha_fixture();
        let obs = Arc::new(mcn_obs::Obs::new());
        obs.set_tracing(true);
        let engine = QueryEngine::new(store.clone(), 2)
            .with_path_context(ctx.clone())
            .with_obs(obs.clone());
        let traced = engine.run_batch(&requests);
        let events = obs.tracer().drain();
        assert_eq!(obs.tracer().dropped(), 0);
        for i in 0..requests.len() as u64 {
            let names: Vec<&str> = events
                .iter()
                .filter(|e| e.query == i)
                .map(|e| e.name.as_str())
                .collect();
            for phase in ["schedule", "search", "unpack", "fingerprint"] {
                assert!(names.contains(&phase), "query {i} is missing {phase:?}");
            }
        }
        // Path-flavored queries also traced their prep-cache traffic.
        assert!(events.iter().any(|e| e.name == "prep-lookup"));
        assert!(events.iter().any(|e| e.name == "prep-build"));
        // The trace exports as chrome://tracing JSON and round-trips.
        let json = mcn_obs::chrome_trace_json(&events);
        let back = mcn_obs::parse_chrome_trace(&json).unwrap();
        assert_eq!(back.len(), events.len());

        // Observability never changes results: rerunning with tracing off
        // (warm cache notwithstanding) is fingerprint-identical.
        obs.set_tracing(false);
        ctx.clear_cache();
        let untraced = engine.run_batch(&requests);
        assert_eq!(fingerprints(&traced), fingerprints(&untraced));
        assert!(obs.tracer().is_empty());
    }

    #[test]
    fn path_requests_are_region_taggable() {
        // PathSkyline requests carry their source as the location, so
        // region-affine batches accept them like any other request kind.
        let (store, ctx, requests) = path_fixture();
        let tags = vec![RegionId::new(0); requests.len()];
        let engine = QueryEngine::new(store, 2).with_path_context(ctx.clone());
        let plain = engine.run_batch(&requests);
        ctx.clear_cache();
        let affine = engine.run_batch_with_regions(&requests, &tags, true);
        assert_eq!(fingerprints(&plain), fingerprints(&affine));
        for (request, outcome) in requests.iter().zip(&affine.outcomes) {
            assert_eq!(request.kind(), "path-skyline");
            assert_eq!(outcome.stats.algorithm, "MCPP-prep");
            assert!(outcome.stats.candidates > 0);
            assert_eq!(outcome.stats.result_size, outcome.output.len());
        }
    }
}
