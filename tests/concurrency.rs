//! Concurrent-correctness integration tests: the multi-query engine and the
//! parallel LSA mode must be *byte-identical* to serial execution.
//!
//! Run in CI in release mode (`cargo test --release -p mcn --test
//! concurrency`) so the scheduler interleavings resemble production timing.

use mcn::engine::{QueryEngine, QueryRequest};
use mcn::gen::{generate_workload, WorkloadSpec};
use mcn::graph::NetworkLocation;
use mcn::storage::{BufferConfig, MCNStore};
use mcn::{parallel_lsa_skyline, skyline_query, Algorithm};
use mcn_bench::{build_request_batch, ThroughputConfig};
use std::sync::Arc;

/// Builds a deterministic mixed batch (skyline / top-k / incremental top-k,
/// LSA and CEA alternating) over a generated workload, reusing the
/// throughput experiment's batch builder.
fn mixed_batch(seed: u64, batch: usize) -> (Arc<MCNStore>, Vec<QueryRequest>) {
    let spec = WorkloadSpec::tiny(seed);
    let workload = generate_workload(&spec);
    let store =
        Arc::new(MCNStore::build_in_memory(&workload.graph, BufferConfig::Fraction(0.01)).unwrap());
    let config = ThroughputConfig {
        batch,
        seed,
        ..Default::default()
    };
    let requests = build_request_batch(&spec, &workload.queries, &config);
    (store, requests)
}

#[test]
fn engine_with_four_workers_matches_serial_byte_for_byte() {
    for seed in [3u64, 19] {
        let (store, requests) = mixed_batch(seed, 18);
        let serial = QueryEngine::new(store.clone(), 1).run_batch(&requests);
        let concurrent = QueryEngine::new(store.clone(), 4).run_batch(&requests);

        // Byte-identical per-query results, in request order.
        let serial_prints: Vec<String> = serial
            .outcomes
            .iter()
            .map(|o| o.output.fingerprint())
            .collect();
        let concurrent_prints: Vec<String> = concurrent
            .outcomes
            .iter()
            .map(|o| o.output.fingerprint())
            .collect();
        assert_eq!(serial_prints, concurrent_prints, "seed {seed}");

        // Deterministic facility ordering: repeat the concurrent run and
        // compare against itself — scheduling must not leak into results.
        let again = QueryEngine::new(store.clone(), 4).run_batch(&requests);
        let again_prints: Vec<String> = again
            .outcomes
            .iter()
            .map(|o| o.output.fingerprint())
            .collect();
        assert_eq!(concurrent_prints, again_prints, "seed {seed}");

        // Logical page reads are a pure function of the queries: exactly
        // equal at any worker count (well inside the 1 % budget).
        assert_eq!(
            serial.stats.io.logical_reads, concurrent.stats.io.logical_reads,
            "seed {seed}"
        );
        // The striped pool's snapshot invariant holds on the aggregates.
        for stats in [&serial.stats.io, &concurrent.stats.io] {
            assert_eq!(stats.logical_reads, stats.buffer_hits + stats.buffer_misses);
        }
    }
}

#[test]
fn parallel_lsa_equals_serial_lsa_through_the_facade() {
    let workload = generate_workload(&WorkloadSpec::tiny(7));
    let store =
        Arc::new(MCNStore::build_in_memory(&workload.graph, BufferConfig::Fraction(0.01)).unwrap());
    for &q in workload.queries.iter().take(4) {
        let serial = skyline_query(&store, q, Algorithm::Lsa);
        let parallel = parallel_lsa_skyline(&store, q);
        assert_eq!(serial.facilities, parallel.facilities);
    }
}

#[test]
fn concurrent_engine_queries_race_with_parallel_lsa() {
    // Mixed-mode stress: engine workers and an intra-query parallel LSA all
    // hammer one shared store; results must stay correct and the pool
    // counters consistent.
    let workload = generate_workload(&WorkloadSpec::tiny(23));
    let store =
        Arc::new(MCNStore::build_in_memory(&workload.graph, BufferConfig::Fraction(0.02)).unwrap());
    let q: NetworkLocation = workload.queries[0];
    let expected = skyline_query(&store, q, Algorithm::Lsa).facilities;
    let engine = QueryEngine::new(store.clone(), 3);
    let requests: Vec<QueryRequest> = workload
        .queries
        .iter()
        .map(|&location| QueryRequest::Skyline {
            location,
            algorithm: Algorithm::Cea,
        })
        .collect();
    std::thread::scope(|scope| {
        let store = &store;
        let expected = &expected;
        scope.spawn(move || {
            for _ in 0..3 {
                assert_eq!(&parallel_lsa_skyline(store, q).facilities, expected);
            }
        });
        engine.run_batch(&requests);
    });
    let io = store.io_stats();
    assert_eq!(io.logical_reads, io.buffer_hits + io.buffer_misses);
}

#[test]
fn facade_types_are_thread_safe() {
    // Compile-time Send/Sync contract at the facade level (the per-crate
    // unit tests assert the same for the building blocks).
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    const _: () = assert_send_sync::<MCNStore>();
    const _: () = assert_send_sync::<QueryEngine>();
    const _: () = assert_send::<mcn::SkylineSearch<mcn::expansion::DirectAccess>>();
}
