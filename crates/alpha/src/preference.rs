//! User preference vectors α ∈ Δ^{d-1}.

use mcn_graph::{CostVec, MAX_COST_TYPES};
use serde::{Deserialize, Serialize};

/// A user's preference over the d cost types: a point on the standard
/// simplex Δ^{d-1} (non-negative weights summing to 1).
///
/// Constructed through [`Preference::new`], which validates the raw weights
/// (finite, non-negative, at least one strictly positive) and normalizes
/// them to unit sum, so every `Preference` in the system is already on the
/// simplex. The scalarized cost of a multi-cost vector is the dot product
/// [`Preference::cost_of`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Preference {
    weights: Vec<f64>,
}

const _: () = crate::assert_send_sync::<Preference>();

impl Preference {
    /// Validates and normalizes `weights` onto the simplex.
    ///
    /// Requirements: 1 ≤ d ≤ [`MAX_COST_TYPES`], every weight
    /// finite and ≥ 0, and at least one weight strictly positive. The
    /// stored vector is `weights / sum(weights)`.
    pub fn new(weights: &[f64]) -> Result<Self, String> {
        if weights.is_empty() || weights.len() > MAX_COST_TYPES {
            return Err(format!(
                "preference needs 1..={} weights, got {}",
                MAX_COST_TYPES,
                weights.len()
            ));
        }
        let mut sum = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(format!("weight {i} must be finite and >= 0, got {w}"));
            }
            sum += w;
        }
        if sum <= 0.0 {
            return Err("at least one weight must be strictly positive".into());
        }
        Ok(Self {
            weights: weights.iter().map(|w| w / sum).collect(),
        })
    }

    /// The uniform preference 1/d · (1, …, 1) — the estimator's starting
    /// point and the natural "no stated preference" default.
    pub fn uniform(cost_types: usize) -> Self {
        Self::new(&vec![1.0; cost_types.max(1)]).expect("uniform weights are valid")
    }

    /// Number of cost types d this preference scores.
    pub fn cost_types(&self) -> usize {
        self.weights.len()
    }

    /// The normalized weights (sum to 1 up to rounding).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Scalarized cost α·c of a multi-cost vector.
    ///
    /// Zero-weight components are skipped so an infinite cost in an ignored
    /// component never poisons the product with `0 · ∞ = NaN` (prep bounds
    /// are ∞ in every component for unreachable nodes).
    pub fn cost_of(&self, costs: &CostVec) -> f64 {
        debug_assert_eq!(costs.len(), self.weights.len());
        let mut acc = 0.0;
        for (i, &w) in self.weights.iter().enumerate() {
            if w > 0.0 {
                acc += w * costs[i];
            }
        }
        acc
    }

    /// Scalarized cost of a plain slice (same skip-zero-weight contract as
    /// [`Preference::cost_of`]).
    pub fn dot(&self, costs: &[f64]) -> f64 {
        debug_assert_eq!(costs.len(), self.weights.len());
        let mut acc = 0.0;
        for (i, &w) in self.weights.iter().enumerate() {
            if w > 0.0 {
                acc += w * costs[i];
            }
        }
        acc
    }

    /// Serializes to the workspace JSON dialect.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses and **re-validates** a preference from JSON: the stored
    /// weights pass through [`Preference::new`], so hand-edited files with
    /// negative or NaN weights are rejected rather than silently served.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let raw: Self = serde::json::from_str(text).map_err(|e| e.to_string())?;
        Self::new(&raw.weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_onto_the_simplex() {
        let p = Preference::new(&[2.0, 6.0]).unwrap();
        assert_eq!(p.weights(), &[0.25, 0.75]);
        assert_eq!(p.cost_types(), 2);
        let sum: f64 = p.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_is_one_over_d() {
        let p = Preference::uniform(4);
        for &w in p.weights() {
            assert!((w - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_invalid_weights() {
        assert!(Preference::new(&[]).is_err());
        assert!(Preference::new(&[1.0; 9]).is_err());
        assert!(Preference::new(&[0.0, 0.0]).is_err());
        assert!(Preference::new(&[1.0, -0.5]).is_err());
        assert!(Preference::new(&[1.0, f64::NAN]).is_err());
        assert!(Preference::new(&[1.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn cost_of_skips_zero_weights() {
        let p = Preference::new(&[1.0, 0.0]).unwrap();
        let c = CostVec::from_slice(&[3.0, f64::INFINITY]);
        assert_eq!(p.cost_of(&c), 3.0);
        assert_eq!(p.dot(&[3.0, f64::INFINITY]), 3.0);
    }

    #[test]
    fn json_round_trip_revalidates() {
        let p = Preference::new(&[1.0, 2.0, 3.0]).unwrap();
        let back = Preference::from_json(&p.to_json()).unwrap();
        assert_eq!(p, back);
        // A hand-edited file with a negative weight is rejected on parse.
        let bad = "{\n  \"weights\": [\n    1.0,\n    -1.0\n  ]\n}";
        assert!(Preference::from_json(bad).is_err());
    }
}
