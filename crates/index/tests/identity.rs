//! Byte-identity of index-served answers against the direct algorithms on
//! seeded synthetic networks, sequential and partitioned builds alike.

use mcn_alpha::{scalarized_path, Preference};
use mcn_gen::{generate_workload, CostDistribution, WorkloadSpec};
use mcn_graph::{MultiCostGraph, NodeId};
use mcn_index::{IndexConfig, RouteIndex};
use mcn_mcpp::pareto_paths_prepped;
use mcn_prep::PrepTable;

fn workload(nodes: usize, d: usize, seed: u64) -> MultiCostGraph {
    generate_workload(&WorkloadSpec {
        nodes,
        facilities: 10,
        cost_types: d,
        distribution: CostDistribution::AntiCorrelated,
        clusters: 3,
        queries: 0,
        seed,
    })
    .graph
}

/// Deterministic endpoint pairs spread over the node range.
fn pairs(n: usize, count: usize) -> Vec<(NodeId, NodeId)> {
    (0..count)
        .map(|i| {
            let s = (i * 7919 + 13) % n;
            let t = (i * 104_729 + n / 2) % n;
            (NodeId::from(s), NodeId::from(t))
        })
        .collect()
}

fn prefs(d: usize) -> Vec<Preference> {
    let mut out = vec![Preference::uniform(d)];
    for axis in 0..d {
        let mut w = vec![0.1; d];
        w[axis] = 1.0;
        out.push(Preference::new(&w).unwrap());
    }
    out
}

fn assert_identity(graph: &MultiCostGraph, index: &RouteIndex, label: &str) {
    assert!(index.exact(), "{label}: build must stay exact");
    let n = graph.num_nodes();
    for (s, t) in pairs(n, 6) {
        for pref in prefs(graph.num_cost_types()) {
            let direct = scalarized_path(graph, s, t, &pref);
            let via = index.alpha_path(graph, s, t, &pref);
            assert_eq!(
                via.path,
                direct.path,
                "{label}: alpha mismatch at ({s}, {t}, α = {:?})",
                pref.weights()
            );
        }
        let prep = PrepTable::build(graph, t);
        let direct = pareto_paths_prepped(graph, s, t, &prep);
        let via = index.skyline_paths(graph, s, t);
        assert_eq!(
            via.paths, direct.paths,
            "{label}: skyline mismatch at ({s}, {t})"
        );
    }
}

#[test]
fn sequential_build_matches_direct_algorithms_at_d2_and_d3() {
    for (d, seed) in [(2, 11u64), (2, 42), (3, 7)] {
        let graph = workload(90, d, seed);
        let index = RouteIndex::build(&graph, &IndexConfig::default());
        assert_identity(&graph, &index, &format!("d = {d}, seed {seed}"));
    }
}

#[test]
fn partitioned_build_matches_direct_algorithms() {
    for (d, nodes, seed) in [(2, 120, 23u64), (3, 90, 7)] {
        let graph = workload(nodes, d, seed);
        let index = RouteIndex::build(&graph, &IndexConfig::with_regions(3));
        assert_eq!(index.regions(), 3);
        assert_identity(&graph, &index, &format!("d = {d}, regions = 3"));
    }
}

#[test]
fn partitioned_and_sequential_answers_agree() {
    // The hierarchies differ (contraction orders differ) but every answer
    // must still be the same bytes, pinned by the direct algorithms above;
    // here the two index variants are also checked against each other.
    let graph = workload(80, 2, 5);
    let seq = RouteIndex::build(&graph, &IndexConfig::default());
    let par = RouteIndex::build(&graph, &IndexConfig::with_regions(4));
    let pref = Preference::uniform(2);
    for (s, t) in pairs(graph.num_nodes(), 8) {
        assert_eq!(
            seq.alpha_path(&graph, s, t, &pref).path,
            par.alpha_path(&graph, s, t, &pref).path
        );
        assert_eq!(
            seq.skyline_paths(&graph, s, t).paths,
            par.skyline_paths(&graph, s, t).paths
        );
    }
}
