//! The `obs` experiment: what does observability cost?
//!
//! Runs the same mixed query batch through [`mcn_engine::QueryEngine`] in
//! three modes — no [`mcn_obs::Obs`] attached (`off`), an `Obs` attached
//! with tracing disabled (`disabled`, the production default), and an
//! `Obs` with span tracing enabled (`enabled`) — and reports the wall
//! clock of each alongside the latency percentiles the engine collects.
//!
//! Two properties are *asserted* on every run (not just reported):
//!
//! * every mode produces byte-identical per-query fingerprints — the
//!   observability layer must never change results, and
//! * the `disabled` mode costs at most
//!   [`ObsExperimentConfig::max_disabled_overhead`] (2 % by default) over
//!   the bare engine — the always-on metrics path must stay near free.
//!
//! Wall-clock comparisons on shared CI hardware are noisy, so the modes
//! are run *interleaved* for `repeats` rounds and each mode is scored by
//! its **minimum** wall time (the classic best-of-N noise filter), while
//! physical reads carry a blocking latency so the workload is dominated
//! by I/O waits — the regime the serving stack actually runs in — rather
//! than by scheduler jitter. The overhead assertion is one-sided and can
//! be disabled with `--no-obs-asserts` for constrained environments.
//!
//! The `enabled` round also drains the tracer and embeds the
//! chrome://tracing JSON document in the report (the `experiments` binary
//! writes it to `obs-trace.json` next to the table), after proving it
//! parses back losslessly.

use crate::report::json_safe;
use mcn_engine::{QueryEngine, QueryRequest};
use mcn_gen::{generate_workload, WorkloadSpec};
use mcn_obs::{chrome_trace_json, parse_chrome_trace, Obs};
use mcn_storage::{BufferConfig, DiskManager, InMemoryDisk, MCNStore};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// Identifier of the observability-overhead experiment in the
/// `experiments` binary and its report file name (`<id>.json`).
pub const OBS_ID: &str = "obs";

/// Ceiling on the disabled-mode overhead asserted by default: attached
/// metrics with tracing off must cost at most this fraction of the bare
/// engine's wall clock.
pub const MAX_DISABLED_OVERHEAD: f64 = 0.02;

/// Configuration of an observability-overhead run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObsExperimentConfig {
    /// Scale-down divider applied to the paper's default workload.
    pub scale: usize,
    /// Number of queries in the batch.
    pub batch: usize,
    /// Worker threads of the engine (the same count in every mode).
    pub workers: usize,
    /// Interleaved measurement rounds; each mode is scored by its minimum
    /// wall time over the rounds.
    pub repeats: usize,
    /// Buffer size as a fraction of the store's data pages.
    pub buffer: f64,
    /// `k` used for the top-k members of the batch.
    pub k: usize,
    /// Blocking latency per physical page read, in microseconds (makes
    /// the batch I/O-dominated, as in the `throughput` experiment).
    pub read_latency_us: u64,
    /// Master seed for the workload and the per-query weights.
    pub seed: u64,
    /// Ceiling asserted on the disabled-mode overhead when
    /// `assert_overhead` is set.
    pub max_disabled_overhead: f64,
    /// Assert the disabled-overhead ceiling (fingerprint equality across
    /// modes is always asserted).
    pub assert_overhead: bool,
}

impl Default for ObsExperimentConfig {
    fn default() -> Self {
        Self {
            scale: 50,
            batch: 32,
            workers: 4,
            repeats: 3,
            buffer: 0.01,
            k: 4,
            read_latency_us: 50,
            seed: 2010,
            max_disabled_overhead: MAX_DISABLED_OVERHEAD,
            assert_overhead: true,
        }
    }
}

/// One row of the report: the batch in one observability mode.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObsRow {
    /// `"off"`, `"disabled"` or `"enabled"`.
    pub mode: String,
    /// Minimum wall-clock seconds over the interleaved rounds.
    pub wall_seconds: f64,
    /// Queries per second at that minimum wall time.
    pub qps: f64,
    /// Median per-query latency (ms) of the best round.
    pub p50_ms: f64,
    /// 95th-percentile per-query latency (ms) of the best round.
    pub p95_ms: f64,
    /// 99th-percentile per-query latency (ms) of the best round.
    pub p99_ms: f64,
    /// Total logical page requests of the best round.
    pub logical_reads: u64,
    /// Total physical page reads of the best round.
    pub physical_reads: u64,
}

/// The persisted observability report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// Always [`OBS_ID`].
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The configuration that produced the rows.
    pub config: ObsExperimentConfig,
    /// Queries in the batch.
    pub queries: usize,
    /// One row per mode, in `off`, `disabled`, `enabled` order.
    pub rows: Vec<ObsRow>,
    /// `disabled` wall over `off` wall, minus one (may be negative:
    /// best-of-N minima of a noisy quantity are not ordered).
    pub disabled_overhead: f64,
    /// `enabled` wall over `off` wall, minus one.
    pub enabled_overhead: f64,
    /// Span events captured by the `enabled` mode's final round.
    pub trace_events: usize,
    /// chrome://tracing JSON document of those events (load it via
    /// `chrome://tracing` or Perfetto).
    pub trace_json: String,
}

impl ObsReport {
    /// Serializes the report as indented JSON (the `--out` format).
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a report from its JSON representation.
    ///
    /// # Errors
    /// Returns the underlying JSON error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde::json::from_str(text).map_err(|e| e.to_string())
    }
}

/// The three modes, in reporting order.
const MODES: [&str; 3] = ["off", "disabled", "enabled"];

/// One mode's best-so-far measurements while the rounds interleave.
struct ModeBest {
    wall_seconds: f64,
    qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    logical_reads: u64,
    physical_reads: u64,
}

impl ModeBest {
    fn new() -> Self {
        Self {
            wall_seconds: f64::INFINITY,
            qps: 0.0,
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            logical_reads: 0,
            physical_reads: 0,
        }
    }
}

/// Builds the mixed request batch (same shape as the `throughput`
/// experiment: skyline / top-k / incremental top-k round-robin with
/// CEA/LSA alternation). Deterministic in `config.seed`.
fn obs_request_batch(
    spec: &WorkloadSpec,
    queries: &[mcn_graph::NetworkLocation],
    config: &ObsExperimentConfig,
) -> Vec<QueryRequest> {
    crate::requests::mixed_request_batch(
        queries,
        spec.cost_types,
        config.batch,
        config.seed ^ 0x0B5E_0B5E,
        |i, location, weights, algorithm| match i % 3 {
            0 => QueryRequest::Skyline {
                location,
                algorithm,
            },
            1 => QueryRequest::TopK {
                location,
                weights,
                k: config.k,
                algorithm,
            },
            _ => QueryRequest::TopKIncremental {
                location,
                weights,
                take: config.k,
                algorithm,
            },
        },
    )
}

/// Runs the observability-overhead experiment described by `config`.
///
/// # Panics
/// Panics if any mode or round produces fingerprints differing from the
/// first run (observability must never change results), if the captured
/// trace fails its chrome-JSON round-trip, or — when
/// `config.assert_overhead` is set — if the disabled-mode overhead
/// exceeds `config.max_disabled_overhead`.
pub fn run_obs(config: &ObsExperimentConfig) -> ObsReport {
    assert!(config.repeats >= 1, "need at least one measurement round");
    let mut spec = WorkloadSpec::paper_scaled(config.scale);
    spec.seed = config.seed;
    let workload = generate_workload(&spec);
    let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::with_read_latency(
        Duration::from_micros(config.read_latency_us),
    ));
    let store = Arc::new(
        MCNStore::build_on(&workload.graph, disk, BufferConfig::Fraction(config.buffer))
            .expect("workload store builds"),
    );
    let requests = obs_request_batch(&spec, &workload.queries, config);

    let mut best: Vec<ModeBest> = MODES.iter().map(|_| ModeBest::new()).collect();
    let mut baseline_prints: Option<Vec<String>> = None;
    let mut trace_json = String::new();
    let mut trace_events = 0usize;
    for _round in 0..config.repeats {
        for (m, &mode) in MODES.iter().enumerate() {
            // Identical starting conditions for every measurement: empty
            // buffer, zeroed pool counters.
            store.buffer().clear();
            let obs = match mode {
                "off" => None,
                _ => Some(Arc::new(Obs::new())),
            };
            if let Some(o) = &obs {
                o.set_tracing(mode == "enabled");
            }
            let mut engine = QueryEngine::new(store.clone(), config.workers);
            if let Some(o) = &obs {
                engine = engine.with_obs(o.clone());
            }
            let result = engine.run_batch(&requests);
            let fingerprints: Vec<String> = result
                .outcomes
                .iter()
                .map(|o| o.output.fingerprint())
                .collect();
            match &baseline_prints {
                None => baseline_prints = Some(fingerprints),
                Some(base) => assert_eq!(
                    base, &fingerprints,
                    "observability mode `{mode}` changed query results"
                ),
            }
            if mode == "enabled" {
                let events = obs.as_ref().expect("enabled mode has obs").tracer().drain();
                let json = chrome_trace_json(&events);
                let parsed = parse_chrome_trace(&json)
                    .expect("captured trace parses back as chrome trace JSON");
                assert_eq!(parsed.len(), events.len(), "trace round-trip lost events");
                trace_events = events.len();
                trace_json = json;
            }
            let wall = result.stats.wall.as_secs_f64();
            if wall < best[m].wall_seconds {
                best[m] = ModeBest {
                    wall_seconds: wall,
                    qps: result.stats.qps,
                    p50_ms: result.stats.latency.p50 as f64 / 1e6,
                    p95_ms: result.stats.latency.p95 as f64 / 1e6,
                    p99_ms: result.stats.latency.p99 as f64 / 1e6,
                    logical_reads: result.stats.io.logical_reads,
                    physical_reads: result.stats.io.physical_reads,
                };
            }
        }
    }

    let off_wall = best[0].wall_seconds;
    let disabled_overhead = overhead_vs(best[1].wall_seconds, off_wall);
    let enabled_overhead = overhead_vs(best[2].wall_seconds, off_wall);
    if config.assert_overhead {
        assert!(
            disabled_overhead <= config.max_disabled_overhead,
            "attached-but-disabled observability cost {:.2}% over the bare engine \
             (ceiling {:.2}%; rerun with --no-obs-asserts on constrained machines)",
            disabled_overhead * 100.0,
            config.max_disabled_overhead * 100.0
        );
    }

    let rows = MODES
        .iter()
        .zip(&best)
        .map(|(&mode, b)| ObsRow {
            mode: mode.to_string(),
            wall_seconds: json_safe(b.wall_seconds),
            qps: json_safe(b.qps),
            p50_ms: json_safe(b.p50_ms),
            p95_ms: json_safe(b.p95_ms),
            p99_ms: json_safe(b.p99_ms),
            logical_reads: b.logical_reads,
            physical_reads: b.physical_reads,
        })
        .collect();
    ObsReport {
        id: OBS_ID.to_string(),
        title: format!(
            "Observability overhead — {} mixed queries, best of {} interleaved rounds",
            requests.len(),
            config.repeats
        ),
        config: config.clone(),
        queries: requests.len(),
        rows,
        disabled_overhead: json_safe(disabled_overhead),
        enabled_overhead: json_safe(enabled_overhead),
        trace_events,
        trace_json,
    }
}

/// `mode_wall / off_wall − 1`, guarded so a zero baseline reports zero
/// overhead instead of dividing by zero.
fn overhead_vs(mode_wall: f64, off_wall: f64) -> f64 {
    if off_wall > 0.0 {
        mode_wall / off_wall - 1.0
    } else {
        0.0
    }
}

/// Renders an observability report in the same fixed-width style as the
/// figure tables.
pub fn render_obs_table(table: &ObsReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {} [{}]\n", table.title, table.id));
    out.push_str(&format!(
        "(batch of {} queries, {} workers, {} µs per physical read, scale 1/{})\n",
        table.queries, table.config.workers, table.config.read_latency_us, table.config.scale
    ));
    out.push_str(&format!(
        "{:<10} {:>10} {:>10} {:>9} {:>9} {:>9} {:>14} {:>14}\n",
        "mode",
        "wall(s)",
        "QPS",
        "p50(ms)",
        "p95(ms)",
        "p99(ms)",
        "logical reads",
        "physical reads"
    ));
    for r in &table.rows {
        out.push_str(&format!(
            "{:<10} {:>10.4} {:>10.1} {:>9.3} {:>9.3} {:>9.3} {:>14} {:>14}\n",
            r.mode,
            r.wall_seconds,
            r.qps,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            r.logical_reads,
            r.physical_reads
        ));
    }
    out.push_str(&format!(
        "overhead vs off: disabled {:+.2}%, enabled {:+.2}%; {} trace events captured\n",
        table.disabled_overhead * 100.0,
        table.enabled_overhead * 100.0,
        table.trace_events
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ObsExperimentConfig {
        ObsExperimentConfig {
            scale: 2000,
            batch: 9,
            workers: 2,
            repeats: 2,
            read_latency_us: 10,
            // Overhead on a sub-millisecond batch is all noise; the
            // structural assertions (fingerprints, trace round-trip)
            // still run.
            assert_overhead: false,
            ..Default::default()
        }
    }

    #[test]
    fn obs_experiment_reports_all_three_modes() {
        let report = run_obs(&tiny_config());
        assert_eq!(report.queries, 9);
        let modes: Vec<&str> = report.rows.iter().map(|r| r.mode.as_str()).collect();
        assert_eq!(modes, vec!["off", "disabled", "enabled"]);
        for row in &report.rows {
            assert!(row.wall_seconds > 0.0);
            assert!(row.qps > 0.0);
            assert!(row.logical_reads > 0);
            assert!(row.physical_reads <= row.logical_reads);
            assert!(row.p50_ms <= row.p95_ms && row.p95_ms <= row.p99_ms);
        }
        // Logical reads are a pure function of the batch: identical in
        // every mode.
        assert_eq!(report.rows[0].logical_reads, report.rows[1].logical_reads);
        assert_eq!(report.rows[0].logical_reads, report.rows[2].logical_reads);
        assert!(report.disabled_overhead.is_finite());
        assert!(report.enabled_overhead.is_finite());
    }

    #[test]
    fn enabled_mode_captures_a_loadable_trace() {
        let report = run_obs(&tiny_config());
        // Every query contributes at least schedule + search + unpack.
        assert!(report.trace_events >= 3 * report.queries);
        let parsed = parse_chrome_trace(&report.trace_json).unwrap();
        assert_eq!(parsed.len(), report.trace_events);
        assert!(parsed.iter().all(|e| e.ph == "X"));
        assert!(parsed.iter().any(|e| e.name == "search"));
        assert!(parsed.iter().any(|e| e.name == "fingerprint"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = run_obs(&tiny_config());
        let json = report.to_json();
        let parsed = ObsReport::from_json(&json).unwrap();
        assert_eq!(parsed, report);
        // Deterministic serializer: re-serializing reproduces the bytes,
        // embedded trace document included.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn overhead_guard_handles_zero_wall() {
        // A zero baseline reports zero overhead instead of dividing by
        // zero (exercised directly: real runs always have positive wall).
        assert_eq!(overhead_vs(1.0, 0.0), 0.0);
        assert!((overhead_vs(1.02, 1.0) - 0.02).abs() < 1e-12);
    }
}
