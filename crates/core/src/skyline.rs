//! MCN skyline processing: LSA, CEA and the straightforward baseline.
//!
//! Both LSA (Local Search Algorithm) and CEA (Combined Expansion Algorithm)
//! perform the *same logical search* — `d` incremental network expansions
//! probed round-robin, a growing stage that collects candidates until the
//! first facility is pinned, and a shrinking stage that resolves the remaining
//! candidates. They differ only in how the expansions read the network:
//!
//! * LSA uses [`DirectAccess`]: every expansion fetches adjacency and facility
//!   pages independently (the same page may be read up to `d` times, mitigated
//!   only by the LRU buffer).
//! * CEA uses [`SharedAccess`]: fetched records are shared among the `d`
//!   expansions, so each node's adjacency record and each edge's facility list
//!   is read at most once per query.
//!
//! Consequently [`SkylineSearch`] is generic over the access discipline and
//! instantiating it with one or the other yields LSA or CEA; both encounter
//! and pin facilities in exactly the same order and report exactly the same
//! skyline (paper Section IV-B).
//!
//! The search is **progressive**: [`SkylineSearch`] implements [`Iterator`]
//! and yields every skyline facility the moment it is pinned.
//!
//! The search is also generic over an [`ExpansionDriver`]: with the default
//! [`SerialDriver`] the `d` expansions are probed inline (the paper's
//! behaviour), while [`SkylineSearch::lsa_parallel`] runs them on worker
//! threads ([`ParallelDriver`]) and produces **byte-identical results** —
//! the coordinator consumes the same per-expansion emission streams either
//! way (see `mcn_expansion::driver` for the argument). CEA stays
//! single-threaded per query: its point is to *share* fetched pages between
//! the expansions, which a per-thread split would undo.

use crate::candidate::CandidateSet;
use crate::stats::QueryStats;
use mcn_expansion::{
    seeds_for_location, DirectAccess, Expansion, ExpansionDriver, FacilityMode, NetworkAccess,
    ParallelDriver, SerialDriver, SharedAccess,
};
use mcn_graph::{dominates_weak, CostVec, EdgeId, FacilityId, NetworkLocation};
use mcn_storage::{IoStats, StoreView};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Which algorithm variant to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Local Search Algorithm: `d` independent expansions.
    Lsa,
    /// Combined Expansion Algorithm: expansions share fetched information.
    Cea,
}

impl Algorithm {
    /// Human-readable name as used in the paper's plots.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Lsa => "LSA",
            Algorithm::Cea => "CEA",
        }
    }
}

/// One skyline member: a facility together with its complete cost vector.
#[derive(Clone, Debug, PartialEq)]
pub struct SkylineFacility {
    /// The facility.
    pub facility: FacilityId,
    /// Its per-cost-type network distances from the query location.
    pub costs: CostVec,
}

/// The result of a skyline query.
#[derive(Clone, Debug)]
pub struct SkylineResult {
    /// The skyline facilities, in the order they were pinned (LSA/CEA) or in
    /// facility order (baseline).
    pub facilities: Vec<SkylineFacility>,
    /// Execution statistics.
    pub stats: QueryStats,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stage {
    Growing,
    Shrinking,
}

/// A progressive MCN skyline computation, generic over the access discipline
/// and the expansion driver (inline by default, worker threads via
/// [`SkylineSearch::lsa_parallel`]).
///
/// Use [`skyline_query`] for the common case; instantiate this type directly
/// (or via [`SkylineSearch::lsa`] / [`SkylineSearch::cea`]) when progressive
/// output is needed.
pub struct SkylineSearch<A: NetworkAccess, D: ExpansionDriver = SerialDriver<A>> {
    access: Arc<A>,
    driver: D,
    active: Vec<bool>,
    next_probe: usize,
    stage: Stage,
    candidates: CandidateSet,
    emitted: Vec<SkylineFacility>,
    pending: VecDeque<SkylineFacility>,
    finished: bool,
    algorithm: &'static str,
    dominance_checks: usize,
    start_io: IoStats,
    started: Instant,
}

// Thread-safety contract: searches must be movable onto `QueryEngine`
// worker threads at every driver/access combination.
const _: () = crate::assert_send::<SkylineSearch<DirectAccess>>();
const _: () = crate::assert_send::<SkylineSearch<SharedAccess>>();
const _: () = crate::assert_send::<SkylineSearch<DirectAccess, ParallelDriver>>();

impl<S: StoreView + ?Sized> SkylineSearch<DirectAccess<S>> {
    /// Starts an LSA skyline computation at `location`. The store may be
    /// monolithic (`MCNStore`, the default) or any other [`StoreView`],
    /// e.g. a region-partitioned store — the results are identical.
    pub fn lsa(store: Arc<S>, location: NetworkLocation) -> Self {
        Self::new(Arc::new(DirectAccess::new(store)), location, "LSA")
    }
}

impl<S: StoreView + ?Sized> SkylineSearch<SharedAccess<S>> {
    /// Starts a CEA skyline computation at `location` (over any
    /// [`StoreView`], like [`SkylineSearch::lsa`]).
    pub fn cea(store: Arc<S>, location: NetworkLocation) -> Self {
        Self::new(Arc::new(SharedAccess::new(store)), location, "CEA")
    }
}

impl<S: StoreView + ?Sized> SkylineSearch<DirectAccess<S>, ParallelDriver> {
    /// Starts an LSA skyline computation whose `d` expansions run on worker
    /// threads. Results (facilities, cost vectors, order) are byte-identical
    /// to [`SkylineSearch::lsa`]; only the work/timing statistics may differ
    /// because workers can run slightly ahead of the coordinator.
    pub fn lsa_parallel(store: Arc<S>, location: NetworkLocation) -> Self {
        Self::new_parallel(Arc::new(DirectAccess::new(store)), location, "LSA-par")
    }
}

/// Builds the `d` seeded expansions shared by both constructors.
fn make_expansions<A: NetworkAccess>(
    access: &Arc<A>,
    location: NetworkLocation,
) -> Vec<Expansion<A>> {
    let seeds = seeds_for_location(access.as_ref(), location);
    (0..access.num_cost_types())
        .map(|i| Expansion::new(access.clone(), i, &seeds, FacilityMode::All))
        .collect()
}

impl<A: NetworkAccess> SkylineSearch<A> {
    /// Starts a skyline computation over an arbitrary access discipline.
    pub fn new(access: Arc<A>, location: NetworkLocation, algorithm: &'static str) -> Self {
        let start_io = access.io_stats();
        let started = Instant::now();
        let expansions = make_expansions(&access, location);
        Self::with_driver(
            access,
            SerialDriver::new(expansions),
            algorithm,
            start_io,
            started,
        )
    }
}

impl<A: NetworkAccess + Send + Sync + 'static> SkylineSearch<A, ParallelDriver> {
    /// Starts a skyline computation whose expansions run on worker threads.
    pub fn new_parallel(
        access: Arc<A>,
        location: NetworkLocation,
        algorithm: &'static str,
    ) -> Self {
        let start_io = access.io_stats();
        let started = Instant::now();
        let expansions = make_expansions(&access, location);
        Self::with_driver(
            access,
            ParallelDriver::spawn(expansions),
            algorithm,
            start_io,
            started,
        )
    }
}

impl<A: NetworkAccess, D: ExpansionDriver> SkylineSearch<A, D> {
    fn with_driver(
        access: Arc<A>,
        driver: D,
        algorithm: &'static str,
        start_io: IoStats,
        started: Instant,
    ) -> Self {
        let d = driver.d();
        Self {
            access,
            driver,
            active: vec![true; d],
            next_probe: 0,
            stage: Stage::Growing,
            candidates: CandidateSet::new(d),
            emitted: Vec::new(),
            pending: VecDeque::new(),
            finished: false,
            algorithm,
            dominance_checks: 0,
            start_io,
            started,
        }
    }

    fn d(&self) -> usize {
        self.active.len()
    }

    /// Switches the search to the shrinking stage: admission to the candidate
    /// set is closed, the candidates' edges are looked up in the facility tree
    /// and the expansions stop touching the facility file (Section IV-A).
    fn enter_shrinking(&mut self) {
        self.stage = Stage::Shrinking;
        let mut by_edge: HashMap<EdgeId, Vec<(FacilityId, f64)>> = HashMap::new();
        for cand in self.candidates.iter() {
            if let Some(info) = self.access.facility_info(cand.facility) {
                by_edge
                    .entry(info.edge)
                    .or_default()
                    .push((cand.facility, info.position));
            }
        }
        self.driver
            .set_facility_mode(FacilityMode::CandidatesOnly(Arc::new(by_edge)));
    }

    /// Handles a pinned facility: emits it and prunes the candidate set.
    fn pin(&mut self, facility: FacilityId, costs: CostVec) {
        if self.stage == Stage::Growing {
            self.enter_shrinking();
        }
        let (_, checks) = self.candidates.eliminate_dominated(&costs);
        self.dominance_checks += checks;
        let member = SkylineFacility { facility, costs };
        self.emitted.push(member.clone());
        self.pending.push_back(member);
        if self.candidates.is_empty() {
            self.finished = true;
        }
    }

    /// Resolves the candidates left when every expansion is exhausted (only
    /// possible when parts of the network are unreachable w.r.t. some cost
    /// type, e.g. with directed edges): unknown costs are `+∞` and the usual
    /// dominance rules apply.
    fn resolve_leftovers(&mut self) {
        let d = self.d();
        let leftovers: Vec<(FacilityId, CostVec)> = self
            .candidates
            .iter()
            .map(|c| {
                let mut cv = CostVec::zeros(d);
                for i in 0..d {
                    cv[i] = c.known[i].unwrap_or(f64::INFINITY);
                }
                (c.facility, cv)
            })
            .collect();
        for (facility, costs) in &leftovers {
            let dominated_by_emitted = self
                .emitted
                .iter()
                .any(|s| dominates_weak(&s.costs, costs) && s.costs.as_slice() != costs.as_slice());
            let dominated_by_peer = leftovers
                .iter()
                .any(|(other, oc)| other != facility && mcn_graph::dominates(oc, costs));
            self.dominance_checks += self.emitted.len() + leftovers.len();
            if !dominated_by_emitted && !dominated_by_peer {
                let member = SkylineFacility {
                    facility: *facility,
                    costs: *costs,
                };
                self.emitted.push(member.clone());
                self.pending.push_back(member);
            }
        }
        self.candidates = CandidateSet::new(d);
        self.finished = true;
    }

    /// Performs one round-robin probe. Returns `false` once the search has
    /// finished.
    fn step(&mut self) -> bool {
        if self.finished {
            return false;
        }
        if self.active.iter().all(|a| !a) {
            // Every expansion is exhausted or was stopped early. If candidates
            // remain it is either because the early-stop optimisation turned
            // everything off (all their costs are known — resolve them) or
            // because parts of the network are unreachable.
            self.resolve_leftovers();
            return false;
        }
        let d = self.d();
        let i = self.next_probe;
        self.next_probe = (self.next_probe + 1) % d;
        if !self.active[i] {
            return true;
        }
        // Early-stop optimisation (Section IV-A): once every remaining
        // candidate knows its i-th cost, the i-th expansion contributes
        // nothing further.
        if self.stage == Stage::Shrinking
            && (self.candidates.is_empty() || self.candidates.all_know_cost(i))
        {
            self.active[i] = false;
            self.driver.retire(i);
            return true;
        }
        // In the shrinking stage, facilities that are not (or no longer)
        // candidates may still surface from the frontier — they were
        // en-heaped during the growing stage, or by a parallel worker that
        // ran ahead of the mode switch. Recording them would be a no-op, so
        // they are skipped without consuming this probe turn; this keeps the
        // per-turn candidate streams identical between the serial and
        // parallel drivers.
        let hit = loop {
            match self.driver.next_nearest(i) {
                None => break None,
                Some((facility, cost)) => {
                    if self.stage == Stage::Shrinking && !self.candidates.contains(facility) {
                        continue;
                    }
                    break Some((facility, cost));
                }
            }
        };
        match hit {
            None => {
                self.active[i] = false;
                self.driver.retire(i);
            }
            Some((facility, cost)) => {
                let admit = self.stage == Stage::Growing;
                if let Some(cand) = self.candidates.record(facility, i, cost, admit) {
                    if cand.is_pinned() {
                        let costs = cand.cost_vector();
                        self.candidates.remove(facility);
                        self.pin(facility, costs);
                    }
                }
            }
        }
        true
    }

    /// Runs the search to completion and returns the full result.
    pub fn into_result(mut self) -> SkylineResult {
        while self.step() {}
        // Retire every expansion (the search can finish while some are still
        // running, e.g. when the candidate set empties) so a parallel driver
        // joins its workers and reports exact final counters.
        for i in 0..self.d() {
            self.active[i] = false;
            self.driver.retire(i);
        }
        // Drain anything still pending so `emitted` is the single source of
        // truth for the result.
        self.pending.clear();
        let stats = self.collect_stats();
        SkylineResult {
            facilities: self.emitted,
            stats,
        }
    }

    /// Execution statistics gathered so far.
    ///
    /// With the parallel driver the expansion work counters reflect what the
    /// workers have *reported*; after the search finishes they are exact but
    /// may exceed the serial counters (workers run slightly ahead).
    pub fn collect_stats(&self) -> QueryStats {
        let s = self.driver.stats_total();
        QueryStats {
            algorithm: self.algorithm.to_string(),
            elapsed: self.started.elapsed(),
            io: self.access.io_stats() - self.start_io,
            nodes_settled: s.nodes_settled,
            heap_pushes: s.heap_pushes,
            heap_pops: s.heap_pops,
            candidates: self.candidates.admitted(),
            pinned: self.emitted.len(),
            dominance_checks: self.dominance_checks,
            result_size: self.emitted.len(),
        }
    }
}

impl<A: NetworkAccess, D: ExpansionDriver> Iterator for SkylineSearch<A, D> {
    type Item = SkylineFacility;

    /// Yields the next skyline facility as soon as it is pinned (progressive
    /// output).
    fn next(&mut self) -> Option<SkylineFacility> {
        loop {
            if let Some(member) = self.pending.pop_front() {
                return Some(member);
            }
            if !self.step() && self.pending.is_empty() {
                return None;
            }
        }
    }
}

/// Computes the complete skyline of `location` with the chosen algorithm,
/// over any [`StoreView`] (monolithic or partitioned — identical results).
pub fn skyline_query<S: StoreView + ?Sized>(
    store: &Arc<S>,
    location: NetworkLocation,
    algorithm: Algorithm,
) -> SkylineResult {
    match algorithm {
        Algorithm::Lsa => SkylineSearch::lsa(store.clone(), location).into_result(),
        Algorithm::Cea => SkylineSearch::cea(store.clone(), location).into_result(),
    }
}

/// Computes the complete skyline of `location` with LSA's access discipline,
/// running the `d` per-cost-type expansions on worker threads.
///
/// The result (facilities, cost vectors, emission order) is identical to
/// `skyline_query(store, location, Algorithm::Lsa)`; the parallelism
/// overlaps the expansions' page fetches and heap work across cores.
pub fn parallel_lsa_skyline<S: StoreView + ?Sized>(
    store: &Arc<S>,
    location: NetworkLocation,
) -> SkylineResult {
    SkylineSearch::lsa_parallel(store.clone(), location).into_result()
}

/// The straightforward baseline of Section IV: run `d` complete network
/// expansions to compute every facility's cost vector, then apply a
/// conventional main-memory skyline algorithm (BNL).
///
/// Facilities unreachable w.r.t. some cost type keep `+∞` for that component.
pub fn baseline_skyline<S: StoreView + ?Sized>(
    store: &Arc<S>,
    location: NetworkLocation,
) -> SkylineResult {
    let started = Instant::now();
    let access = Arc::new(DirectAccess::new(store.clone()));
    let start_io = access.io_stats();
    let d = access.num_cost_types();
    let seeds = seeds_for_location(access.as_ref(), location);

    let mut costs: HashMap<FacilityId, Vec<f64>> = HashMap::new();
    let mut nodes_settled = 0;
    let mut heap_pushes = 0;
    let mut heap_pops = 0;
    for i in 0..d {
        let mut ex = Expansion::new(access.clone(), i, &seeds, FacilityMode::All);
        while let Some((facility, cost)) = ex.next_nearest() {
            costs
                .entry(facility)
                .or_insert_with(|| vec![f64::INFINITY; d])[i] = cost;
        }
        let s = ex.stats();
        nodes_settled += s.nodes_settled;
        heap_pushes += s.heap_pushes;
        heap_pops += s.heap_pops;
    }

    let items: Vec<(FacilityId, CostVec)> = costs
        .into_iter()
        .map(|(fid, v)| (fid, CostVec::from_slice(&v)))
        .collect();
    let skyline_idx = mcn_skyline::block_nested_loops(&items);
    let mut facilities: Vec<SkylineFacility> = skyline_idx
        .into_iter()
        .map(|i| SkylineFacility {
            facility: items[i].0,
            costs: items[i].1,
        })
        .collect();
    facilities.sort_by_key(|f| f.facility);

    let stats = QueryStats {
        algorithm: "Baseline".to_string(),
        elapsed: started.elapsed(),
        io: access.io_stats() - start_io,
        nodes_settled,
        heap_pushes,
        heap_pops,
        candidates: items.len(),
        pinned: items.len(),
        dominance_checks: 0,
        result_size: facilities.len(),
        ..Default::default()
    };
    SkylineResult { facilities, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{paper_figure1_store, random_store, skyline_oracle};
    use mcn_graph::NodeId;
    use mcn_storage::BufferConfig;

    fn result_set(r: &SkylineResult) -> Vec<(FacilityId, Vec<u64>)> {
        let mut v: Vec<(FacilityId, Vec<u64>)> = r
            .facilities
            .iter()
            .map(|f| {
                (
                    f.facility,
                    f.costs.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
                )
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn paper_figure1_both_warehouses_are_skyline() {
        // Figure 1: p1 = (20 min, 0 $), p2 = (10 min, 1 $): both are skyline.
        let (store, q, _) = paper_figure1_store();
        let store = Arc::new(store);
        for algo in [Algorithm::Lsa, Algorithm::Cea] {
            let result = skyline_query(&store, q, algo);
            assert_eq!(result.facilities.len(), 2, "{}", algo.name());
            assert_eq!(result.stats.result_size, 2);
        }
    }

    #[test]
    fn lsa_cea_and_baseline_agree_on_random_networks() {
        for seed in 0..6 {
            let (store, graph, q) = random_store(seed, 150, 80, 60, 3);
            let store = Arc::new(store);
            let expected = skyline_oracle(&graph, q);
            let lsa = skyline_query(&store, q, Algorithm::Lsa);
            let cea = skyline_query(&store, q, Algorithm::Cea);
            let base = baseline_skyline(&store, q);
            let lsa_ids: Vec<FacilityId> = {
                let mut v: Vec<_> = lsa.facilities.iter().map(|f| f.facility).collect();
                v.sort();
                v
            };
            assert_eq!(lsa_ids, expected, "LSA mismatch, seed {seed}");
            assert_eq!(
                result_set(&lsa),
                result_set(&cea),
                "LSA/CEA mismatch, seed {seed}"
            );
            assert_eq!(
                result_set(&lsa),
                result_set(&base),
                "LSA/baseline mismatch, seed {seed}"
            );
        }
    }

    #[test]
    fn lsa_and_cea_report_in_the_same_order() {
        // CEA pins facilities in exactly the same order as LSA (Section IV-B).
        let (store, _, q) = random_store(42, 200, 120, 80, 4);
        let store = Arc::new(store);
        let lsa: Vec<FacilityId> = SkylineSearch::lsa(store.clone(), q)
            .map(|f| f.facility)
            .collect();
        let cea: Vec<FacilityId> = SkylineSearch::cea(store.clone(), q)
            .map(|f| f.facility)
            .collect();
        assert_eq!(lsa, cea);
    }

    #[test]
    fn progressive_iterator_matches_batch_result() {
        let (store, _, q) = random_store(7, 120, 60, 50, 2);
        let store = Arc::new(store);
        let batch = skyline_query(&store, q, Algorithm::Cea);
        let streamed: Vec<SkylineFacility> = SkylineSearch::cea(store.clone(), q).collect();
        assert_eq!(batch.facilities, streamed);
    }

    #[test]
    fn cea_never_does_more_io_than_lsa() {
        for seed in [1u64, 5, 9] {
            let (store, _, q) = random_store(seed, 300, 200, 120, 4);
            let store = Arc::new(store);
            store.set_buffer(BufferConfig::Pages(8)); // small buffer, like 1 %
            store.buffer().clear();
            let lsa = skyline_query(&store, q, Algorithm::Lsa);
            store.buffer().clear();
            let cea = skyline_query(&store, q, Algorithm::Cea);
            assert!(
                cea.stats.io.buffer_misses <= lsa.stats.io.buffer_misses,
                "seed {seed}: CEA misses {} > LSA misses {}",
                cea.stats.io.buffer_misses,
                lsa.stats.io.buffer_misses
            );
        }
    }

    #[test]
    fn baseline_reads_far_more_than_lsa_on_local_queries() {
        let (store, _, q) = random_store(3, 400, 300, 200, 2);
        let store = Arc::new(store);
        store.buffer().clear();
        let lsa = skyline_query(&store, q, Algorithm::Lsa);
        store.buffer().clear();
        let base = baseline_skyline(&store, q);
        // The baseline expands the whole network d times; LSA stays local.
        assert!(base.stats.nodes_settled >= lsa.stats.nodes_settled);
    }

    #[test]
    fn query_on_edge_interior_works() {
        let (store, graph, _) = random_store(11, 100, 60, 40, 3);
        let store = Arc::new(store);
        let q = NetworkLocation::on_edge(mcn_graph::EdgeId::new(5), 0.3);
        let expected = skyline_oracle(&graph, q);
        let mut got: Vec<FacilityId> = skyline_query(&store, q, Algorithm::Cea)
            .facilities
            .iter()
            .map(|f| f.facility)
            .collect();
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn skyline_members_are_mutually_incomparable() {
        let (store, _, q) = random_store(21, 200, 150, 100, 4);
        let store = Arc::new(store);
        let result = skyline_query(&store, q, Algorithm::Lsa);
        for a in &result.facilities {
            for b in &result.facilities {
                if a.facility != b.facility {
                    assert!(
                        !mcn_graph::dominates(&a.costs, &b.costs),
                        "{} dominates {}",
                        a.facility,
                        b.facility
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_lsa_matches_serial_lsa_exactly() {
        // The tentpole determinism guarantee: the threaded LSA mode must
        // reproduce the serial result bit for bit — same facilities, same
        // cost bits, same emission order — across varied networks.
        for seed in 0..8 {
            let (store, _, q) = random_store(seed, 180, 110, 70, 3);
            let store = Arc::new(store);
            let serial = skyline_query(&store, q, Algorithm::Lsa);
            let parallel = parallel_lsa_skyline(&store, q);
            assert_eq!(
                serial.facilities, parallel.facilities,
                "parallel LSA diverged from serial LSA, seed {seed}"
            );
        }
    }

    #[test]
    fn parallel_lsa_progressive_iterator_matches_batch() {
        let (store, _, q) = random_store(17, 150, 90, 60, 4);
        let store = Arc::new(store);
        let batch = parallel_lsa_skyline(&store, q);
        let streamed: Vec<SkylineFacility> =
            SkylineSearch::lsa_parallel(store.clone(), q).collect();
        assert_eq!(batch.facilities, streamed);
    }

    #[test]
    fn parallel_lsa_handles_directed_unreachable_parts() {
        // Exercises the resolve_leftovers path (exhausted expansions with
        // candidates remaining) under the parallel driver.
        let mut b = mcn_graph::GraphBuilder::new(2);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        let d = b.add_node(2.0, 0.0);
        let e0 = b
            .add_directed_edge(a, c, mcn_graph::CostVec::from_slice(&[1.0, 2.0]))
            .unwrap();
        let e1 = b
            .add_edge(c, d, mcn_graph::CostVec::from_slice(&[1.0, 2.0]))
            .unwrap();
        b.add_facility(e0, 0.5).unwrap();
        b.add_facility(e1, 0.5).unwrap();
        let g = b.build().unwrap();
        let store =
            Arc::new(mcn_storage::MCNStore::build_in_memory(&g, BufferConfig::Pages(8)).unwrap());
        let q = NetworkLocation::Node(c);
        let serial = skyline_query(&store, q, Algorithm::Lsa);
        let parallel = parallel_lsa_skyline(&store, q);
        assert_eq!(serial.facilities, parallel.facilities);
    }

    #[test]
    fn stats_are_populated() {
        let (store, _, _) = random_store(2, 100, 60, 40, 2);
        let store = Arc::new(store);
        let result = skyline_query(
            &store,
            NetworkLocation::Node(NodeId::new(0)),
            Algorithm::Lsa,
        );
        assert_eq!(result.stats.algorithm, "LSA");
        assert!(result.stats.nodes_settled > 0);
        assert!(result.stats.io.logical_reads > 0);
        assert!(result.stats.pinned >= result.stats.result_size);
        assert_eq!(result.stats.result_size, result.facilities.len());
    }
}
