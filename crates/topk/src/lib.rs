//! # mcn-topk
//!
//! The **threshold-algorithm family** (Fagin, Lotem & Naor) for top-k retrieval
//! over sorted attribute lists, as surveyed in Section II-B of the paper.
//!
//! These algorithms operate in a middleware setting: each of the `d`
//! attributes of a relation is available as a list sorted in *ascending* cost
//! order (best first, since lower cost is preferred throughout this
//! workspace). [`threshold_algorithm`] (TA) performs sorted accesses
//! round-robin and random accesses to complete each seen object;
//! [`no_random_access`] (NRA) never performs random accesses and instead
//! maintains lower/upper bounds per object.
//!
//! In the MCN setting the "sorted lists" are the incremental nearest-facility
//! streams of the per-cost network expansions, and random accesses are
//! impossible (computing one missing cost requires a full expansion). The MCN
//! top-k algorithms of `mcn-core` therefore resemble NRA; this crate exists
//! both as the classic reference point and as an oracle for tests: running NRA
//! over the brute-force cost vectors must give the same result set as the MCN
//! algorithms.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod nra;
pub mod ta;

pub use nra::no_random_access;
pub use ta::threshold_algorithm;

/// A monotone aggregate over `d` per-attribute costs. Lower is better.
pub trait Aggregate {
    /// Combines one cost per attribute into a single score.
    fn combine(&self, costs: &[f64]) -> f64;
}

/// Weighted sum aggregate `f(c) = Σ αᵢ·cᵢ` with non-negative weights — the
/// aggregate used throughout the paper's evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedSum {
    weights: Vec<f64>,
}

impl WeightedSum {
    /// Creates a weighted sum with the given non-negative weights.
    ///
    /// # Panics
    /// Panics if any weight is negative or non-finite, or if `weights` is empty.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "at least one weight required");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be non-negative and finite"
        );
        Self { weights }
    }

    /// Equal weights `1/d` for `d` attributes.
    pub fn uniform(d: usize) -> Self {
        Self::new(vec![1.0 / d as f64; d])
    }

    /// The weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Aggregate for WeightedSum {
    fn combine(&self, costs: &[f64]) -> f64 {
        assert_eq!(costs.len(), self.weights.len(), "arity mismatch");
        self.weights.iter().zip(costs).map(|(w, c)| w * c).sum()
    }
}

/// A relation presented as `d` sorted lists, the input format of TA/NRA.
///
/// `lists[i]` holds `(object, cost_i)` pairs sorted by ascending `cost_i`.
/// Every object must appear in every list exactly once.
#[derive(Clone, Debug)]
pub struct SortedLists {
    lists: Vec<Vec<(usize, f64)>>,
    num_objects: usize,
}

impl SortedLists {
    /// Builds sorted lists from a dense cost matrix: `costs[obj][attr]`.
    ///
    /// # Panics
    /// Panics if rows have inconsistent arity or the matrix is empty in either
    /// dimension.
    pub fn from_matrix(costs: &[Vec<f64>]) -> Self {
        assert!(!costs.is_empty(), "empty relation");
        let d = costs[0].len();
        assert!(d > 0, "relation must have at least one attribute");
        assert!(
            costs.iter().all(|row| row.len() == d),
            "inconsistent attribute count"
        );
        let mut lists = Vec::with_capacity(d);
        for attr in 0..d {
            let mut list: Vec<(usize, f64)> = costs
                .iter()
                .enumerate()
                .map(|(i, row)| (i, row[attr]))
                .collect();
            list.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            lists.push(list);
        }
        Self {
            lists,
            num_objects: costs.len(),
        }
    }

    /// Number of attributes `d`.
    pub fn num_attributes(&self) -> usize {
        self.lists.len()
    }

    /// Number of objects in the relation.
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// The `i`-th sorted list.
    pub fn list(&self, i: usize) -> &[(usize, f64)] {
        &self.lists[i]
    }
}

/// Brute-force top-k used as the reference implementation in tests: scores all
/// objects and returns the `k` best `(object, score)` pairs, ties broken by
/// object id.
pub fn naive_topk<A: Aggregate>(costs: &[Vec<f64>], aggregate: &A, k: usize) -> Vec<(usize, f64)> {
    let mut scored: Vec<(usize, f64)> = costs
        .iter()
        .enumerate()
        .map(|(i, row)| (i, aggregate.combine(row)))
        .collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_sum_combines() {
        let f = WeightedSum::new(vec![0.9, 0.1]);
        assert!((f.combine(&[10.0, 20.0]) - 11.0).abs() < 1e-12);
        let u = WeightedSum::uniform(4);
        assert!((u.combine(&[4.0, 4.0, 4.0, 4.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn negative_weight_rejected() {
        let _ = WeightedSum::new(vec![0.5, -0.1]);
    }

    #[test]
    fn sorted_lists_are_sorted() {
        let costs = vec![vec![3.0, 1.0], vec![1.0, 2.0], vec![2.0, 3.0]];
        let lists = SortedLists::from_matrix(&costs);
        assert_eq!(lists.num_attributes(), 2);
        assert_eq!(lists.num_objects(), 3);
        assert_eq!(lists.list(0), &[(1, 1.0), (2, 2.0), (0, 3.0)]);
        assert_eq!(lists.list(1), &[(0, 1.0), (1, 2.0), (2, 3.0)]);
    }

    #[test]
    fn naive_topk_orders_by_score() {
        let costs = vec![vec![3.0, 1.0], vec![1.0, 2.0], vec![2.0, 3.0]];
        let f = WeightedSum::new(vec![1.0, 1.0]);
        let top = naive_topk(&costs, &f, 2);
        assert_eq!(top[0].0, 1);
        assert_eq!(top.len(), 2);
    }
}
