//! # mcn-graph
//!
//! In-memory model of a **multi-cost transportation network** (MCN) as defined by
//! Mouratidis, Lin and Yiu, *"Preference Queries in Large Multi-Cost Transportation
//! Networks"*, ICDE 2010.
//!
//! An MCN is a graph `G = {V, E, W}` whose edges carry a *d*-dimensional,
//! non-negative **cost vector** (e.g. Euclidean length, driving time, walking time,
//! toll fee). A set of **facilities** (points of interest) lies on the edges of the
//! network; queries originate from a **network location** which may be a node or a
//! point in the interior of an edge.
//!
//! This crate contains only the logical model: identifiers, cost vectors and
//! dominance tests, nodes/edges/facilities, network locations, paths, and a
//! validated [`GraphBuilder`]. The disk-resident representation used by the query
//! algorithms lives in `mcn-storage`; the algorithms themselves live in `mcn-core`.
//!
//! ## Quick example
//!
//! ```
//! use mcn_graph::{GraphBuilder, CostVec, NodeId};
//!
//! // A triangle network with two cost types (say, minutes and dollars).
//! let mut b = GraphBuilder::new(2);
//! let a = b.add_node(0.0, 0.0);
//! let c = b.add_node(1.0, 0.0);
//! let d = b.add_node(0.0, 1.0);
//! b.add_edge(a, c, CostVec::from_slice(&[10.0, 0.0])).unwrap();
//! b.add_edge(c, d, CostVec::from_slice(&[5.0, 1.0])).unwrap();
//! b.add_edge(a, d, CostVec::from_slice(&[20.0, 0.0])).unwrap();
//! let g = b.build().unwrap();
//! assert_eq!(g.num_nodes(), 3);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.num_cost_types(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod cost;
pub mod dominance;
pub mod edge;
pub mod error;
pub mod facility;
pub mod front2;
pub mod graph;
pub mod ids;
pub mod location;
pub mod node;
pub mod partition;
pub mod path;

pub use builder::GraphBuilder;
pub use cost::{CostVec, MAX_COST_TYPES};
pub use dominance::{dominates, dominates_weak, incomparable, DominanceRelation};
pub use edge::Edge;
pub use error::GraphError;
pub use facility::Facility;
pub use front2::Front2;
pub use graph::MultiCostGraph;
pub use ids::{EdgeId, FacilityId, NodeId, RegionId};
pub use location::NetworkLocation;
pub use node::Node;
pub use partition::{partition_graph, PartitionMap, PartitionSpec};
pub use path::Path;

/// Compile-time thread-safety proof: instantiated in a `const _` next to
/// each shared type, so the build fails the moment a field change makes the
/// type lose `Send`/`Sync` (the `missing-send-sync-assert` lint requires
/// one such assertion per concurrency-facing type, outside `cfg(test)`).
pub(crate) const fn assert_send_sync<T: Send + Sync>() {}
