//! Offline ChaCha8 random generator for the vendored `rand` traits.
//!
//! A faithful ChaCha8 keystream (Bernstein's quarter-round, 4 double
//! rounds, 64-byte blocks, little-endian output) keyed by a 32-byte seed.
//! The stream does not bit-match the upstream `rand_chacha` crate's word
//! ordering guarantees, but it is a real cryptographic-quality PRNG and is
//! fully deterministic per seed, which is what the workload generators and
//! benchmarks need.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha8-based deterministic random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key + constant + counter state fed to the block function.
    state: [u32; 16],
    /// Current 16-word keystream block.
    block: [u32; 16],
    /// Next unread word within `block` (16 = exhausted).
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" sigma constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Words 12..16: block counter and nonce, all zero initially.
        Self {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(2010);
        let mut b = ChaCha8Rng::seed_from_u64(2010);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_keystream_is_nontrivial() {
        // First block of ChaCha8 with an all-zero key/nonce must not be zero
        // and must differ from the second block.
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert!(first.iter().any(|&w| w != 0));
        assert_ne!(first, second);
    }

    #[test]
    fn range_sampling_composes_with_rand() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mean: f64 = (0..4096).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }
}
