//! Sort-filter-skyline (SFS): skyline with presorting.

use crate::SkylineItem;
use mcn_graph::dominates;

/// Computes the skyline of `items` with the sort-filter-skyline approach of
/// Chomicki et al. (presorting, Section II-A of the paper).
///
/// The input is first sorted by a monotone *entropy* score (here the sum of
/// the components, ties broken lexicographically). Because any tuple can only
/// be dominated by tuples with a strictly smaller score, a single pass that
/// compares each tuple against the already-admitted skyline suffices, and
/// every admitted tuple is immediately final — the algorithm is *progressive*.
///
/// Returns indices into `items`, ordered by ascending score.
pub fn sort_filter_skyline<T: SkylineItem>(items: &[T]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| {
        let (ca, cb) = (items[a].costs(), items[b].costs());
        ca.total()
            .total_cmp(&cb.total())
            .then_with(|| ca.lex_cmp(cb))
    });

    let mut skyline: Vec<usize> = Vec::new();
    'outer: for &i in &order {
        for &s in &skyline {
            if dominates(items[s].costs(), items[i].costs()) {
                continue 'outer;
            }
        }
        skyline.push(i);
    }
    skyline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{block_nested_loops, is_valid_skyline};
    use mcn_graph::CostVec;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn cv(v: &[f64]) -> CostVec {
        CostVec::from_slice(v)
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<CostVec> = vec![];
        assert!(sort_filter_skyline(&empty).is_empty());
        assert_eq!(sort_filter_skyline(&[cv(&[1.0, 2.0])]), vec![0]);
    }

    #[test]
    fn output_sorted_by_entropy() {
        let items = vec![
            cv(&[4.0, 4.0]), // total 8, dominated
            cv(&[1.0, 2.0]), // total 3
            cv(&[0.0, 9.0]), // total 9, incomparable
            cv(&[2.0, 0.5]), // total 2.5
        ];
        let got = sort_filter_skyline(&items);
        assert_eq!(got, vec![3, 1, 2]);
    }

    #[test]
    fn equal_vectors_kept() {
        let items = vec![cv(&[2.0, 2.0]), cv(&[2.0, 2.0])];
        assert_eq!(sort_filter_skyline(&items).len(), 2);
    }

    #[test]
    fn agrees_with_bnl_on_random_data() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for d in 2..=5 {
            let items: Vec<CostVec> = (0..400)
                .map(|_| {
                    let v: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..10.0)).collect();
                    cv(&v)
                })
                .collect();
            let mut a = sort_filter_skyline(&items);
            let mut b = block_nested_loops(&items);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "SFS and BNL disagree at d={d}");
        }
    }

    proptest! {
        #[test]
        fn prop_sfs_is_valid_skyline(
            points in proptest::collection::vec(
                proptest::collection::vec(0.0f64..20.0, 4), 0..60),
        ) {
            let items: Vec<CostVec> = points.iter().map(|p| cv(p)).collect();
            let got = sort_filter_skyline(&items);
            prop_assert!(is_valid_skyline(&items, &got));
        }

        #[test]
        fn prop_sfs_output_monotone_in_entropy(
            points in proptest::collection::vec(
                proptest::collection::vec(0.0f64..20.0, 3), 1..50),
        ) {
            let items: Vec<CostVec> = points.iter().map(|p| cv(p)).collect();
            let got = sort_filter_skyline(&items);
            for w in got.windows(2) {
                prop_assert!(items[w[0]].total() <= items[w[1]].total() + 1e-9);
            }
        }
    }
}
