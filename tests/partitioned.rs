//! Partitioned-store equivalence: the whole query stack must produce
//! **byte-identical** results over a region-partitioned store — at any
//! region count, under any algorithm, and under the concurrent engine —
//! compared to the monolithic store the paper's algorithms were built on.
//!
//! Fingerprints ([`QueryOutput::fingerprint`]) encode facility ids plus the
//! raw IEEE-754 bits of every cost, so equality here is bit-exact result
//! equality, not approximate agreement.

use mcn_core::{parallel_lsa_skyline, skyline_query, topk_query, Algorithm, WeightedSum};
use mcn_engine::{QueryEngine, QueryOutput, QueryRequest};
use mcn_gen::{generate_workload, WorkloadSpec};
use mcn_graph::{partition_graph, NetworkLocation, PartitionSpec, RegionId};
use mcn_storage::{BufferConfig, MCNStore, PartitionedStore, StoreView};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Region counts every equivalence property is checked at.
const REGION_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn fixture(seed: u64) -> (mcn_graph::MultiCostGraph, Vec<NetworkLocation>, usize) {
    let workload = generate_workload(&WorkloadSpec::tiny(seed));
    let d = workload.spec.cost_types;
    (workload.graph, workload.queries, d)
}

fn partitioned(
    graph: &mcn_graph::MultiCostGraph,
    regions: usize,
    seed: u64,
) -> Arc<PartitionedStore> {
    let map = partition_graph(graph, &PartitionSpec { regions, seed });
    Arc::new(PartitionedStore::build_in_memory(graph, map, BufferConfig::Fraction(0.02)).unwrap())
}

fn skyline_fingerprint<S: StoreView + ?Sized>(
    store: &Arc<S>,
    q: NetworkLocation,
    algorithm: Algorithm,
) -> String {
    QueryOutput::Skyline(skyline_query(store, q, algorithm).facilities).fingerprint()
}

fn topk_fingerprint<S: StoreView + ?Sized>(
    store: &Arc<S>,
    q: NetworkLocation,
    weights: Vec<f64>,
    k: usize,
    algorithm: Algorithm,
) -> String {
    QueryOutput::TopK(topk_query(store, q, WeightedSum::new(weights), k, algorithm).entries)
        .fingerprint()
}

#[test]
fn skyline_fingerprints_match_the_monolithic_store_at_every_region_count() {
    let (graph, queries, _) = fixture(42);
    let mono = Arc::new(MCNStore::build_in_memory(&graph, BufferConfig::Fraction(0.02)).unwrap());
    for regions in REGION_COUNTS {
        let part = partitioned(&graph, regions, 42);
        for &q in &queries {
            for algorithm in [Algorithm::Lsa, Algorithm::Cea] {
                assert_eq!(
                    skyline_fingerprint(&mono, q, algorithm),
                    skyline_fingerprint(&part, q, algorithm),
                    "{regions} regions, {} diverged at {q:?}",
                    algorithm.name()
                );
            }
            // The worker-thread LSA mode stays byte-identical too.
            assert_eq!(
                QueryOutput::Skyline(parallel_lsa_skyline(&mono, q).facilities).fingerprint(),
                QueryOutput::Skyline(parallel_lsa_skyline(&part, q).facilities).fingerprint(),
                "{regions} regions: parallel LSA diverged at {q:?}"
            );
        }
    }
}

#[test]
fn topk_fingerprints_match_the_monolithic_store_at_every_region_count() {
    let (graph, queries, d) = fixture(7);
    let mono = Arc::new(MCNStore::build_in_memory(&graph, BufferConfig::Fraction(0.02)).unwrap());
    let mut rng = ChaCha8Rng::seed_from_u64(70);
    for regions in REGION_COUNTS {
        let part = partitioned(&graph, regions, 7);
        for &q in &queries {
            let weights: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
            let k = rng.gen_range(1..=8);
            for algorithm in [Algorithm::Lsa, Algorithm::Cea] {
                assert_eq!(
                    topk_fingerprint(&mono, q, weights.clone(), k, algorithm),
                    topk_fingerprint(&part, q, weights.clone(), k, algorithm),
                    "{regions} regions, {} top-{k} diverged at {q:?}",
                    algorithm.name()
                );
            }
        }
    }
}

#[test]
fn four_worker_engine_over_partitioned_store_matches_monolithic_serial() {
    let (graph, queries, d) = fixture(11);
    let mono = Arc::new(MCNStore::build_in_memory(&graph, BufferConfig::Fraction(0.02)).unwrap());
    let mut rng = ChaCha8Rng::seed_from_u64(1100);
    let requests: Vec<QueryRequest> = queries
        .iter()
        .cycle()
        .take(15)
        .enumerate()
        .map(|(i, &location)| {
            let weights: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
            let algorithm = if i % 2 == 0 {
                Algorithm::Cea
            } else {
                Algorithm::Lsa
            };
            match i % 3 {
                0 => QueryRequest::Skyline {
                    location,
                    algorithm,
                },
                1 => QueryRequest::TopK {
                    location,
                    weights,
                    k: 5,
                    algorithm,
                },
                _ => QueryRequest::TopKIncremental {
                    location,
                    weights,
                    take: 4,
                    algorithm,
                },
            }
        })
        .collect();
    let serial = QueryEngine::new(mono, 1).run_batch(&requests);
    let serial_prints: Vec<String> = serial
        .outcomes
        .iter()
        .map(|o| o.output.fingerprint())
        .collect();

    for regions in REGION_COUNTS {
        let map = partition_graph(&graph, &PartitionSpec { regions, seed: 11 });
        let tags: Vec<RegionId> = requests
            .iter()
            .map(|r| map.region_of_location(&graph, r.location()))
            .collect();
        let part = Arc::new(
            PartitionedStore::build_in_memory(&graph, map, BufferConfig::Fraction(0.02)).unwrap(),
        );
        let engine = QueryEngine::new(part, 4);
        for affine in [false, true] {
            let result = engine.run_batch_with_regions(&requests, &tags, affine);
            let prints: Vec<String> = result
                .outcomes
                .iter()
                .map(|o| o.output.fingerprint())
                .collect();
            assert_eq!(
                serial_prints, prints,
                "{regions} regions (affine = {affine}) diverged from monolithic serial"
            );
        }
    }
}

#[test]
fn reopened_partitioned_store_stays_equivalent() {
    // build → manifest → open on the same disks → identical fingerprints:
    // the open path reads everything through the persisted headers.
    let (graph, queries, _) = fixture(23);
    let map = partition_graph(&graph, &PartitionSpec::new(4));
    let disks: Vec<Arc<dyn mcn_storage::DiskManager>> = (0..4)
        .map(|_| Arc::new(mcn_storage::InMemoryDisk::new()) as Arc<dyn mcn_storage::DiskManager>)
        .collect();
    let built = Arc::new(
        PartitionedStore::build_on(&graph, map, disks.clone(), BufferConfig::Pages(32)).unwrap(),
    );
    let manifest = built.manifest();
    let manifest =
        mcn_storage::PartitionManifest::from_json(&manifest.to_json()).expect("sidecar parses");
    let reopened =
        Arc::new(PartitionedStore::open(disks, &manifest, BufferConfig::Pages(16)).unwrap());
    for &q in &queries {
        assert_eq!(
            skyline_fingerprint(&built, q, Algorithm::Cea),
            skyline_fingerprint(&reopened, q, Algorithm::Cea),
        );
    }
}
