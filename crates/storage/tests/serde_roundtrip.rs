//! JSON round-trip properties for the `mcn-storage` types with derives
//! (`IoStats`, `PageId`, `StaticBTree`) and for the `StorageMeta` JSON
//! sidecar, which must agree with the binary page-0 codec.

use mcn_storage::{IoStats, PageId, StaticBTree, StorageMeta};
use proptest::prelude::*;
use serde::json::{from_str, to_string};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    from_str(&to_string(value)).expect("round-trip parse")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn io_stats_roundtrip(
        logical_reads in any::<u64>(),
        buffer_hits in any::<u64>(),
        buffer_misses in any::<u64>(),
        physical_reads in any::<u64>(),
        physical_writes in any::<u64>(),
    ) {
        // Full-width u64 counters: the JSON integers must not pass through
        // f64 on either side.
        let stats = IoStats {
            logical_reads,
            buffer_hits,
            buffer_misses,
            physical_reads,
            physical_writes,
        };
        prop_assert_eq!(roundtrip(&stats), stats);
    }

    #[test]
    fn page_id_roundtrip(raw in any::<u32>()) {
        // PageId is a newtype struct: it serializes transparently as its
        // raw index.
        let id = PageId::new(raw);
        prop_assert_eq!(roundtrip(&id), id);
        prop_assert_eq!(to_string(&id), raw.to_string());
    }

    #[test]
    fn static_btree_roundtrip(
        root in any::<u32>(),
        num_pages in any::<u32>(),
        num_entries in any::<u32>(),
    ) {
        let tree = StaticBTree {
            root: PageId::new(root),
            num_pages,
            num_entries,
        };
        prop_assert_eq!(roundtrip(&tree), tree);
    }

    #[test]
    fn storage_meta_sidecar_agrees_with_binary_codec(
        num_cost_types in 1u32..=8,
        num_nodes in 1u32..1_000_000,
        num_edges in 1u32..1_000_000,
        num_facilities in 0u32..1_000_000,
        tree_pages in 0u32..1000,
        file_pages in 1u32..1000,
    ) {
        let meta = StorageMeta {
            num_cost_types,
            num_nodes,
            num_edges,
            num_facilities,
            adjacency_tree: StaticBTree {
                root: PageId::new(1),
                num_pages: tree_pages,
                num_entries: num_nodes,
            },
            facility_tree: StaticBTree {
                root: PageId::new(1),
                num_pages: tree_pages,
                num_entries: num_facilities,
            },
            edge_index: StaticBTree {
                root: PageId::new(1),
                num_pages: tree_pages,
                num_entries: num_edges,
            },
            adjacency_file_pages: file_pages,
            facility_file_pages: file_pages,
            data_pages: 3 * tree_pages + 2 * file_pages,
        };
        // Derive-driven JSON round-trip.
        prop_assert_eq!(roundtrip(&meta), meta);
        // The sidecar helpers and the binary page codec agree on the value.
        prop_assert_eq!(StorageMeta::from_json(&meta.to_json()).unwrap(), meta);
        prop_assert_eq!(StorageMeta::decode(&meta.encode()).unwrap(), meta);
    }
}
