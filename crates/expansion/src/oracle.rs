//! In-memory brute-force oracle: exact cost vectors of every facility.
//!
//! This module runs `d` plain Dijkstra expansions over the *in-memory* graph
//! (no storage layer) and returns, for every facility, the full cost vector
//! `⃗c(q, p) = (c₁(q, p), …, c_d(q, p))`. It is the reference implementation
//! used by tests (LSA and CEA must agree with it exactly) and by the
//! straightforward baseline's correctness checks.

use mcn_graph::{CostVec, MultiCostGraph, NetworkLocation, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The exact network distance from `location` to every node of `graph`
/// according to cost type `cost_type`. Unreachable nodes get `+∞`.
pub fn node_distances(
    graph: &MultiCostGraph,
    location: NetworkLocation,
    cost_type: usize,
) -> Vec<f64> {
    assert!(cost_type < graph.num_cost_types(), "cost type out of range");
    let mut dist = vec![f64::INFINITY; graph.num_nodes()];
    let mut heap: BinaryHeap<DijkstraEntry> = BinaryHeap::new();
    let access = graph.location_access(location);
    for (node, costs) in &access.node_costs {
        let key = costs[cost_type];
        if key < dist[node.index()] {
            dist[node.index()] = key;
            heap.push(DijkstraEntry { key, node: *node });
        }
    }
    while let Some(DijkstraEntry { key, node }) = heap.pop() {
        if key > dist[node.index()] {
            continue;
        }
        for n in graph.neighbors(node) {
            let next = key + n.costs[cost_type];
            if next < dist[n.node.index()] {
                dist[n.node.index()] = next;
                heap.push(DijkstraEntry {
                    key: next,
                    node: n.node,
                });
            }
        }
    }
    dist
}

/// The exact network distance from `location` to every facility according to
/// cost type `cost_type`. Unreachable facilities get `+∞`.
pub fn facility_distances(
    graph: &MultiCostGraph,
    location: NetworkLocation,
    cost_type: usize,
) -> Vec<f64> {
    let node_dist = node_distances(graph, location, cost_type);
    let mut out = vec![f64::INFINITY; graph.num_facilities()];

    // Reach each facility through the end-nodes of its edge.
    for f in graph.facilities() {
        let e = graph.edge(f.edge);
        let w = e.costs[cost_type];
        let via_source = node_dist[e.source.index()] + f.position * w;
        let mut best = via_source;
        if !e.directed {
            let via_target = node_dist[e.target.index()] + (1.0 - f.position) * w;
            best = best.min(via_target);
        }
        out[f.id.index()] = best;
    }

    // Facilities on the query's own edge may be reachable directly.
    let access = graph.location_access(location);
    for (fid, costs) in &access.direct_facilities {
        let direct = costs[cost_type];
        if direct < out[fid.index()] {
            out[fid.index()] = direct;
        }
    }
    out
}

/// The full cost vector of every facility: `d` Dijkstra runs.
pub fn facility_cost_vectors(graph: &MultiCostGraph, location: NetworkLocation) -> Vec<CostVec> {
    let d = graph.num_cost_types();
    let per_type: Vec<Vec<f64>> = (0..d)
        .map(|i| facility_distances(graph, location, i))
        .collect();
    (0..graph.num_facilities())
        .map(|p| {
            let mut cv = CostVec::zeros(d);
            for i in 0..d {
                cv[i] = per_type[i][p];
            }
            cv
        })
        .collect()
}

struct DijkstraEntry {
    key: f64,
    node: NodeId,
}

impl PartialEq for DijkstraEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for DijkstraEntry {}
impl Ord for DijkstraEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.node.raw().cmp(&self.node.raw()))
    }
}
impl PartialOrd for DijkstraEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcn_graph::{CostVec, EdgeId, GraphBuilder};

    /// Square network with a diagonal shortcut for one cost type.
    ///
    /// ```text
    ///   v0 --(1,9)-- v1
    ///    |            |
    ///  (9,1)        (1,1)
    ///    |            |
    ///   v3 --(1,1)-- v2
    /// ```
    fn square() -> MultiCostGraph {
        let mut b = GraphBuilder::new(2);
        let v: Vec<_> = (0..4).map(|i| b.add_node(i as f64, 0.0)).collect();
        let e01 = b
            .add_edge(v[0], v[1], CostVec::from_slice(&[1.0, 9.0]))
            .unwrap();
        b.add_edge(v[1], v[2], CostVec::from_slice(&[1.0, 1.0]))
            .unwrap();
        b.add_edge(v[2], v[3], CostVec::from_slice(&[1.0, 1.0]))
            .unwrap();
        b.add_edge(v[3], v[0], CostVec::from_slice(&[9.0, 1.0]))
            .unwrap();
        b.add_facility(e01, 1.0).unwrap(); // p0 exactly at v1
        b.add_facility(EdgeId::new(2), 0.5).unwrap(); // p1 mid of v2–v3
        b.build().unwrap()
    }

    #[test]
    fn node_distances_match_hand_computation() {
        let g = square();
        let d0 = node_distances(&g, NetworkLocation::Node(NodeId::new(0)), 0);
        assert_eq!(d0, vec![0.0, 1.0, 2.0, 3.0]);
        let d1 = node_distances(&g, NetworkLocation::Node(NodeId::new(0)), 1);
        assert_eq!(d1, vec![0.0, 3.0, 2.0, 1.0]);
    }

    #[test]
    fn facility_distances_use_best_end_node() {
        let g = square();
        let q = NetworkLocation::Node(NodeId::new(0));
        let f0 = facility_distances(&g, q, 0);
        // p0 at v1: distance 1 (via edge 0). p1 mid of v2–v3: min(2+0.5, 3+0.5)=2.5.
        assert_eq!(f0, vec![1.0, 2.5]);
        let f1 = facility_distances(&g, q, 1);
        // Cost type 1: to v1 = 3, so p0 = 3 (position 1.0 on edge 0 adds 9·0? —
        // p0 sits at the far end of edge 0, i.e. exactly at v1: min(0+9·1, 3+0)=3).
        // p1: min(d(v2)=2 + 0.5, d(v3)=1 + 0.5) = 1.5.
        assert_eq!(f1, vec![3.0, 1.5]);
    }

    #[test]
    fn query_on_edge_reaches_local_facility_directly() {
        let g = square();
        let q = NetworkLocation::on_edge(EdgeId::new(2), 0.25);
        let f0 = facility_distances(&g, q, 0);
        // p1 is at 0.5 on the same edge: 0.25 of the edge away = 0.25.
        assert!((f0[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cost_vectors_combine_all_types() {
        let g = square();
        let cvs = facility_cost_vectors(&g, NetworkLocation::Node(NodeId::new(0)));
        assert_eq!(cvs.len(), 2);
        assert_eq!(cvs[0].as_slice(), &[1.0, 3.0]);
        assert_eq!(cvs[1].as_slice(), &[2.5, 1.5]);
    }

    #[test]
    fn disconnected_facilities_are_infinite() {
        let mut b = GraphBuilder::new(1);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        let d = b.add_node(5.0, 0.0);
        let e = b.add_node(6.0, 0.0);
        b.add_edge(a, c, CostVec::from_slice(&[1.0])).unwrap();
        let far = b.add_edge(d, e, CostVec::from_slice(&[1.0])).unwrap();
        b.add_facility(far, 0.5).unwrap();
        let g = b.build().unwrap();
        let f = facility_distances(&g, NetworkLocation::Node(a), 0);
        assert!(f[0].is_infinite());
    }

    #[test]
    fn directed_edge_facility_only_reachable_forward() {
        let mut b = GraphBuilder::new(1);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        let e = b
            .add_directed_edge(a, c, CostVec::from_slice(&[10.0]))
            .unwrap();
        b.add_facility(e, 0.5).unwrap();
        let g = b.build().unwrap();
        // From a (the source) the facility is 5 away.
        let fa = facility_distances(&g, NetworkLocation::Node(a), 0);
        assert_eq!(fa[0], 5.0);
        // From c (the target) it cannot be reached at all (no way back).
        let fc = facility_distances(&g, NetworkLocation::Node(c), 0);
        assert!(fc[0].is_infinite());
    }
}
