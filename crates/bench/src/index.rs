//! The `index` experiment: the hierarchical partial-path route index
//! (`mcn-index`) against the prep-backed serving tier.
//!
//! For every swept point — cost dimensions × network sizes — the experiment
//! builds a [`RouteIndex`] over the seeded workload graph (build time and
//! size are part of the row), then answers the same seeded (pair, α)
//! queries two ways:
//!
//! * **prep tier** — a [`PrepTable`] backward scan per target followed by
//!   `scalarized_path_astar` per user (the existing serving tier; the scan
//!   is the tier's per-target cold cost);
//! * **index tier** — [`RouteIndex::alpha_path`], a bidirectional upward
//!   search over the hierarchy, no per-target precomputation at all.
//!
//! The full path skyline runs the same comparison:
//! `pareto_paths_prepped` vs [`RouteIndex::skyline_paths`].
//!
//! Asserted on every run (not just reported):
//!
//! * every (pair, α) index route is **byte-identical** to the prep-backed
//!   A* route (edge list and the raw bits of the scalarized total), and
//!   every index skyline equals the prepped skyline label-for-label;
//! * the index is exact (no shortcut bundle was truncated);
//! * with `assert_improvements` (the default): a cold α-query through the
//!   index settles at least [`MIN_INDEX_REDUCTION`]× fewer nodes than the
//!   prep tier's scan + A* for the same fresh target.

use crate::report::json_safe;
use mcn_alpha::{scalarized_path_astar, Preference};
use mcn_gen::{
    generate_preferences, generate_workload, CostDistribution, PreferenceSpec, WorkloadSpec,
};
use mcn_graph::{MultiCostGraph, NodeId};
use mcn_index::{IndexConfig, RouteIndex};
use mcn_mcpp::pareto_paths_prepped;
use mcn_obs::default_clock;
use mcn_prep::PrepTable;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Identifier of the index experiment in the `experiments` binary and its
/// report file name (`<id>.json`).
pub const INDEX_ID: &str = "index";

/// Minimum factor between the prep tier's cold per-target cost (backward
/// scan + one A* query) and one index query's settled nodes — the
/// acceptance bar of the route index.
pub const MIN_INDEX_REDUCTION: f64 = 10.0;

/// Configuration of an index experiment run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IndexExperimentConfig {
    /// Network sizes (node counts) swept; ignored when the topology comes
    /// from a file.
    pub nodes: Vec<usize>,
    /// Cost dimensions swept.
    pub dims: Vec<usize>,
    /// Source/target pairs measured per point.
    pub pairs: usize,
    /// Per-user preference vectors; every pair is queried once per user.
    pub users: usize,
    /// Build regions of the index (1 = sequential contraction).
    pub regions: usize,
    /// Master seed for the workload, pair and α draws.
    pub seed: u64,
    /// Assert the cold settled-node reduction (disable for timing-hostile
    /// unit-test environments; identity assertions always run).
    pub assert_improvements: bool,
    /// Where the network came from: `"synthetic"` or a loaded file path.
    pub source: String,
}

impl Default for IndexExperimentConfig {
    fn default() -> Self {
        Self {
            nodes: vec![200, 250],
            dims: vec![2, 3, 4],
            pairs: 6,
            users: 6,
            regions: 1,
            seed: 2010,
            assert_improvements: true,
            source: "synthetic".to_string(),
        }
    }
}

/// One row of the index table: one cost dimension × one network size.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IndexRow {
    /// Cost dimensions of this row.
    pub dims: usize,
    /// Nodes of the swept network.
    pub nodes: usize,
    /// Source/target pairs behind the means.
    pub pairs: usize,
    /// Preference vectors per pair.
    pub users: usize,
    /// Wall-clock seconds of the index build.
    pub build_secs: f64,
    /// Shortcut entries the contraction inserted.
    pub shortcuts: u64,
    /// Upward-arc entries over both directions (the index's size).
    pub arc_entries: u64,
    /// Fragments in the partial-path arena.
    pub fragments: u64,
    /// Mean nodes settled per (pair, α) query by the index.
    pub index_settled: f64,
    /// Mean nodes settled per (pair, α) query by prep-backed A* (scan
    /// excluded — the warm tier).
    pub astar_settled: f64,
    /// Mean queue pops of one prep backward scan (the tier's per-target
    /// cold cost).
    pub prep_scan_settled: f64,
    /// `(prep_scan_settled + astar_settled) / index_settled` — one cold
    /// query to a fresh target, tier vs index.
    pub cold_reduction: f64,
    /// `astar_settled / index_settled` — the amortized (warm-table)
    /// comparison.
    pub warm_reduction: f64,
    /// Mean labels the prepped path skyline created per pair.
    pub skyline_labels: f64,
    /// Mean labels the index skyline settled per pair.
    pub index_sky_settled: f64,
    /// Index α-query throughput (queries / wall).
    pub index_qps: f64,
    /// Prep-tier α-query throughput with the scan paid once per pair
    /// (queries / wall).
    pub prep_qps: f64,
    /// Median per-query latency of the index α-queries, in milliseconds
    /// (deterministic log2 histogram over a dedicated measurement pass).
    pub p50_ms: f64,
    /// 95th-percentile per-query index latency (ms).
    pub p95_ms: f64,
    /// 99th-percentile per-query index latency (ms).
    pub p99_ms: f64,
}

/// The persisted index report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IndexReport {
    /// Always [`INDEX_ID`].
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The configuration that produced the rows.
    pub config: IndexExperimentConfig,
    /// One row per (dims × network size) point.
    pub rows: Vec<IndexRow>,
}

impl IndexReport {
    /// Serializes the report as indented JSON (the `--out` report format).
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a report from its JSON representation.
    ///
    /// # Errors
    /// Returns the underlying JSON error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde::json::from_str(text).map_err(|e| e.to_string())
    }
}

/// The deterministic half of one point: mean settled nodes of the index vs
/// the prep tier on the same seeded queries, byte-identical answers
/// asserted throughout. Shared by the experiment rows and the index
/// regression gate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexMetrics {
    /// Mean nodes settled per (pair, α) query by the index.
    pub index_settled: f64,
    /// Mean nodes settled per (pair, α) query by prep-backed A*.
    pub astar_settled: f64,
    /// Mean queue pops of one prep backward scan.
    pub prep_scan_settled: f64,
    /// Mean labels the prepped skyline created per pair.
    pub skyline_labels: f64,
    /// Mean labels the index skyline settled per pair.
    pub index_sky_settled: f64,
    /// Wall-clock seconds of the index α-queries.
    pub index_secs: f64,
    /// Wall-clock seconds of the prep-tier α-queries (scan included once
    /// per pair).
    pub prep_secs: f64,
}

/// Draws `pairs` deterministic source/target pairs (its own stream, so the
/// index sweep does not share routes with the alpha experiment's).
fn seeded_pairs(graph: &MultiCostGraph, pairs: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x1DE8_CAFE);
    let n = graph.num_nodes();
    (0..pairs)
        .map(|_| {
            let s = NodeId::from(rng.gen_range(0..n));
            let mut t = NodeId::from(rng.gen_range(0..n));
            if t == s {
                t = NodeId::from((t.raw() as usize + 1) % n);
            }
            (s, t)
        })
        .collect()
}

/// The seeded per-user α pool of one point.
fn user_pool(d: usize, users: usize, seed: u64) -> Vec<Preference> {
    generate_preferences(&PreferenceSpec::uniform(users.max(1), d, seed ^ 0x1DE8))
        .iter()
        .map(|w| Preference::new(w).expect("generated weights are valid"))
        .collect()
}

/// Runs every (pair, α) query through both tiers plus the skyline per pair
/// and returns the metrics.
///
/// # Panics
/// Panics if any index answer differs from the prep-backed tier's — the
/// index must never change a result, only the work done finding it.
pub fn measure_index(
    graph: &MultiCostGraph,
    index: &RouteIndex,
    pairs: usize,
    users: usize,
    seed: u64,
) -> IndexMetrics {
    let pair_list = seeded_pairs(graph, pairs, seed);
    let pool = user_pool(graph.num_cost_types(), users, seed);
    let mut index_settled = 0u64;
    let mut astar_settled = 0u64;
    let mut prep_scan_settled = 0u64;
    let mut skyline_labels = 0u64;
    let mut index_sky_settled = 0u64;
    let mut index_secs = 0.0f64;
    let mut prep_secs = 0.0f64;
    let clock = default_clock();
    for &(s, t) in &pair_list {
        let started = clock.now_ns();
        for alpha in &pool {
            let run = index.alpha_path(graph, s, t, alpha);
            index_settled += run.stats.settled;
        }
        index_secs += clock.elapsed(started).as_secs_f64();

        let started = clock.now_ns();
        let prep = PrepTable::build(graph, t);
        for alpha in &pool {
            let run = scalarized_path_astar(graph, s, t, alpha, &prep);
            astar_settled += run.stats.settled;
        }
        prep_secs += clock.elapsed(started).as_secs_f64();
        prep_scan_settled += prep.settled();

        // Answers must be identical query by query — re-run one pass
        // outside the timed loops so the timing numbers stay honest.
        for alpha in &pool {
            let tier = scalarized_path_astar(graph, s, t, alpha, &prep);
            let via = index.alpha_path(graph, s, t, alpha);
            match (tier.path, via.path) {
                (Some(p), Some(i)) => {
                    assert_eq!(
                        p.edges,
                        i.edges,
                        "the index changed the {s} → {t} route for α = {:?}",
                        alpha.weights()
                    );
                    assert_eq!(
                        p.total.to_bits(),
                        i.total.to_bits(),
                        "the index changed the {s} → {t} scalarized total"
                    );
                }
                (None, None) => {}
                other => panic!("index and prep tier disagree on reachability: {other:?}"),
            }
        }

        let tier_sky = pareto_paths_prepped(graph, s, t, &prep);
        let via_sky = index.skyline_paths(graph, s, t);
        assert_eq!(
            tier_sky.paths, via_sky.paths,
            "the index changed the {s} → {t} path skyline"
        );
        skyline_labels += tier_sky.stats.labels_created;
        index_sky_settled += via_sky.stats.settled;
    }
    let queries = (pair_list.len() * pool.len()).max(1) as f64;
    let n = pair_list.len().max(1) as f64;
    IndexMetrics {
        index_settled: index_settled as f64 / queries,
        astar_settled: astar_settled as f64 / queries,
        prep_scan_settled: prep_scan_settled as f64 / n,
        skyline_labels: skyline_labels as f64 / n,
        index_sky_settled: index_sky_settled as f64 / n,
        index_secs,
        prep_secs,
    }
}

/// The build configuration of one point.
fn build_config(config: &IndexExperimentConfig) -> IndexConfig {
    IndexConfig {
        regions: config.regions.max(1),
        seed: config.seed,
        ..IndexConfig::default()
    }
}

/// The workload spec of one synthetic point (same shape as the alpha
/// experiment's, so rows are comparable across the two reports).
fn point_spec(nodes: usize, d: usize, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        nodes,
        facilities: (nodes / 5).max(10),
        cost_types: d,
        distribution: CostDistribution::AntiCorrelated,
        clusters: 4,
        queries: 4,
        seed,
    }
}

/// Builds the index over one graph and measures its row.
fn measure_point(graph: &MultiCostGraph, config: &IndexExperimentConfig) -> IndexRow {
    let d = graph.num_cost_types();
    let clock = default_clock();
    let started = clock.now_ns();
    let index = RouteIndex::build(graph, &build_config(config));
    let build_secs = clock.elapsed(started).as_secs_f64();
    assert!(
        index.exact(),
        "index build went inexact at {} nodes / d = {d} — raise max_bundle or \
         the witness budget",
        graph.num_nodes()
    );
    let metrics = measure_index(graph, &index, config.pairs, config.users, config.seed);
    // A dedicated per-query latency pass over the same seeded queries (the
    // aggregate loops above time whole pools, which hides tail behaviour).
    let latency = mcn_obs::Histogram::new();
    for &(s, t) in &seeded_pairs(graph, config.pairs, config.seed) {
        for alpha in &user_pool(d, config.users, config.seed) {
            let t0 = clock.now_ns();
            let run = index.alpha_path(graph, s, t, alpha);
            latency.record(clock.now_ns().saturating_sub(t0));
            std::hint::black_box(run.stats.settled);
        }
    }
    let latency = latency.snapshot("index.latency_ns", Vec::new());
    let queries = (config.pairs * config.users) as f64;
    let row = IndexRow {
        dims: d,
        nodes: graph.num_nodes(),
        pairs: config.pairs,
        users: config.users,
        build_secs: json_safe(build_secs),
        shortcuts: index.shortcuts(),
        arc_entries: index.arc_entries(),
        fragments: index.num_fragments() as u64,
        index_settled: json_safe(metrics.index_settled),
        astar_settled: json_safe(metrics.astar_settled),
        prep_scan_settled: json_safe(metrics.prep_scan_settled),
        cold_reduction: json_safe(
            (metrics.prep_scan_settled + metrics.astar_settled) / metrics.index_settled.max(1.0),
        ),
        warm_reduction: json_safe(metrics.astar_settled / metrics.index_settled.max(1.0)),
        skyline_labels: json_safe(metrics.skyline_labels),
        index_sky_settled: json_safe(metrics.index_sky_settled),
        index_qps: json_safe(queries / metrics.index_secs.max(1e-12)),
        prep_qps: json_safe(queries / metrics.prep_secs.max(1e-12)),
        p50_ms: json_safe(latency.p50 as f64 / 1e6),
        p95_ms: json_safe(latency.p95 as f64 / 1e6),
        p99_ms: json_safe(latency.p99 as f64 / 1e6),
    };
    if config.assert_improvements {
        assert!(
            row.cold_reduction >= MIN_INDEX_REDUCTION,
            "a cold index query settled only {:.2}× fewer nodes than the prep \
             tier's scan + A* (< {MIN_INDEX_REDUCTION}×) at {} nodes / d = {d}",
            row.cold_reduction,
            row.nodes
        );
    }
    row
}

/// Runs the index sweep on seeded synthetic workloads.
pub fn run_index(config: &IndexExperimentConfig) -> IndexReport {
    assert!(!config.dims.is_empty(), "no cost dimensions to sweep");
    assert!(!config.nodes.is_empty(), "no network sizes to sweep");
    let mut rows = Vec::with_capacity(config.dims.len() * config.nodes.len());
    for &d in &config.dims {
        for &nodes in &config.nodes {
            let workload = generate_workload(&point_spec(nodes, d, config.seed));
            rows.push(measure_point(&workload.graph, config));
        }
    }
    report(config, rows)
}

/// Runs the index sweep over an explicit network topology (e.g. a DIMACS
/// road network loaded through [`crate::prep::dimacs_graph`]): each swept
/// dimension re-draws costs via [`mcn_gen::workload_on_graph`]; the `nodes`
/// sweep is ignored (the file defines the topology).
pub fn run_index_on_graph(config: &IndexExperimentConfig, graph: &MultiCostGraph) -> IndexReport {
    assert!(!config.dims.is_empty(), "no cost dimensions to sweep");
    let mut rows = Vec::with_capacity(config.dims.len());
    for &d in &config.dims {
        let spec = WorkloadSpec {
            cost_types: d,
            facilities: (graph.num_nodes() / 5).clamp(10, 100_000),
            queries: 4,
            seed: config.seed,
            ..WorkloadSpec::paper_default()
        };
        let workload = mcn_gen::workload_on_graph(graph, &spec);
        rows.push(measure_point(&workload.graph, config));
    }
    report(config, rows)
}

fn report(config: &IndexExperimentConfig, rows: Vec<IndexRow>) -> IndexReport {
    IndexReport {
        id: INDEX_ID.to_string(),
        title: format!(
            "Hierarchical partial-path route index — contraction shortcuts vs \
             the prep-backed serving tier, over {}",
            config.source
        ),
        config: config.clone(),
        rows,
    }
}

/// Renders an index report in the fixed-width style of the other reports.
pub fn render_index_table(table: &IndexReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {} [{}]\n", table.title, table.id));
    out.push_str(&format!(
        "({} pairs × {} users per point; {} build regions)\n",
        table.config.pairs, table.config.users, table.config.regions
    ));
    out.push_str(&format!(
        "{:<4} {:>7} {:>9} {:>10} {:>11} {:>11} {:>10} {:>9} {:>9} {:>11} {:>11} {:>9} {:>9}\n",
        "d",
        "nodes",
        "build s",
        "entries",
        "idx settle",
        "A* settle",
        "scan pops",
        "cold",
        "warm",
        "idx QPS",
        "prep QPS",
        "p50(ms)",
        "p95(ms)"
    ));
    for r in &table.rows {
        out.push_str(&format!(
            "{:<4} {:>7} {:>9.3} {:>10} {:>11.1} {:>11.1} {:>10.1} {:>8.1}x {:>8.2}x \
             {:>11.1} {:>11.1} {:>9.3} {:>9.3}\n",
            r.dims,
            r.nodes,
            r.build_secs,
            r.arc_entries,
            r.index_settled,
            r.astar_settled,
            r.prep_scan_settled,
            r.cold_reduction,
            r.warm_reduction,
            r.index_qps,
            r.prep_qps,
            r.p50_ms,
            r.p95_ms
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> IndexExperimentConfig {
        IndexExperimentConfig {
            nodes: vec![100],
            dims: vec![2, 3],
            pairs: 3,
            users: 3,
            regions: 2,
            // Unit tests run in debug on loaded machines; the ratio
            // assertions belong to the release-mode experiment runs.
            assert_improvements: false,
            ..Default::default()
        }
    }

    #[test]
    fn index_sweep_reports_identical_answers_and_size() {
        let table = run_index(&tiny_config());
        assert_eq!(table.rows.len(), 2);
        for row in &table.rows {
            // The in-run assertions already proved byte-identical answers.
            assert!(row.build_secs >= 0.0);
            assert!(row.arc_entries > 0);
            assert!(row.fragments > 0);
            assert!(row.index_settled > 0.0);
            assert!(row.cold_reduction >= 1.0);
            assert!(row.index_qps > 0.0 && row.prep_qps > 0.0);
        }
    }

    #[test]
    fn index_metrics_are_deterministic() {
        let config = tiny_config();
        let workload = generate_workload(&point_spec(100, 2, config.seed));
        let index = RouteIndex::build(&workload.graph, &build_config(&config));
        let a = measure_index(
            &workload.graph,
            &index,
            config.pairs,
            config.users,
            config.seed,
        );
        let b = measure_index(
            &workload.graph,
            &index,
            config.pairs,
            config.users,
            config.seed,
        );
        assert_eq!(a.index_settled, b.index_settled);
        assert_eq!(a.astar_settled, b.astar_settled);
        assert_eq!(a.prep_scan_settled, b.prep_scan_settled);
        assert!(a.index_settled > 0.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let table = run_index(&IndexExperimentConfig {
            dims: vec![2],
            ..tiny_config()
        });
        let json = table.to_json();
        let parsed = IndexReport::from_json(&json).unwrap();
        assert_eq!(parsed, table);
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn rendered_table_mentions_the_columns() {
        let table = run_index(&IndexExperimentConfig {
            dims: vec![2],
            ..tiny_config()
        });
        let text = render_index_table(&table);
        assert!(text.contains("idx settle"));
        assert!(text.contains("scan pops"));
        assert!(text.contains("build s"));
    }

    #[test]
    fn index_runs_on_an_explicit_graph() {
        let workload = generate_workload(&point_spec(90, 2, 7));
        let config = IndexExperimentConfig {
            dims: vec![2, 3],
            source: "explicit".into(),
            ..tiny_config()
        };
        let table = run_index_on_graph(&config, &workload.graph);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.rows[0].nodes, workload.graph.num_nodes());
        assert_eq!(table.rows[0].dims, 2);
        assert_eq!(table.rows[1].dims, 3);
        assert!(table.title.contains("explicit"));
    }
}
