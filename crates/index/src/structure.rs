//! The index data model: ranks, upward arcs, shortcut bundles and the
//! append-only fragment arena.

use mcn_graph::{CostVec, EdgeId, MultiCostGraph};
use serde::{Deserialize, Serialize};

/// One partial path stored in the fragment arena: either an original graph
/// edge or the concatenation of two earlier fragments. Fragments are
/// append-only — Pareto evictions drop *references* to fragments but never
/// invalidate the arena — so every surviving shortcut entry unpacks to its
/// original edge sequence at query time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fragment {
    /// An original edge, stored by raw [`EdgeId`]. Unpacks to itself; the
    /// travel direction is implied by the arc the fragment hangs off.
    Edge(u32),
    /// Two fragments traversed in order (first, then second).
    Concat(u32, u32),
}

/// One member of a shortcut bundle: a witness-path cost vector plus the
/// arena fragment that reconstructs its edge sequence.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArcEntry {
    /// Cost vector of the underlying path, summed shortcut-first (query
    /// code recomputes final answers edge-by-edge in path order, so this
    /// summation order never leaks into results).
    pub costs: CostVec,
    /// Arena id of the fragment reconstructing the path.
    pub frag: u32,
}

/// An upward arc of the hierarchy: the bundle of Pareto-optimal partial
/// paths between one node and a higher-ranked endpoint.
///
/// In `up_out[v]` the arc travels `v → head`; in `up_in[v]` it travels
/// `head → v`. Either way `rank(head) > rank(v)`, and either way the
/// fragments unpack in *travel* order. Entries are kept sorted
/// lexicographically by cost vector — which at `d == 2` doubles as the
/// sorted-sweep Pareto-front order (first component ascending, second
/// strictly descending).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UpArc {
    /// The higher-ranked endpoint (raw node id).
    pub head: u32,
    /// The Pareto bundle, lexicographically sorted.
    pub entries: Vec<ArcEntry>,
}

/// The hierarchical partial-path route index over one multi-cost graph.
///
/// Built once by [`RouteIndex::build`], then shared immutably (the engine
/// holds it in an `Arc`); queries allocate only their own search state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouteIndex {
    /// Node count of the indexed graph.
    pub(crate) num_nodes: usize,
    /// Edge count of the indexed graph (shape check for serving/loading).
    pub(crate) num_edges: usize,
    /// Cost dimensionality `d` of the indexed graph.
    pub(crate) dims: usize,
    /// Contraction rank per node id; higher = contracted later.
    pub(crate) rank: Vec<u32>,
    /// Upward arcs traversed *away from* each node (travel `v → head`).
    pub(crate) up_out: Vec<Vec<UpArc>>,
    /// Upward arcs traversed *towards* each node (travel `head → v`).
    pub(crate) up_in: Vec<Vec<UpArc>>,
    /// The append-only fragment arena.
    pub(crate) fragments: Vec<Fragment>,
    /// Shortcut entries inserted during contraction (on top of the
    /// original edges).
    pub(crate) shortcuts: u64,
    /// True iff no bundle was ever truncated: every Pareto set survived
    /// whole, so queries are exact. When false the engine must fall back.
    pub(crate) exact: bool,
    /// Number of build regions (1 = sequential).
    pub(crate) regions: usize,
}

const _: () = crate::assert_send_sync::<RouteIndex>();

impl RouteIndex {
    /// Node count of the indexed graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Edge count of the indexed graph.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Cost dimensionality `d` the index was built for.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Contraction rank of a node (0-based, dense).
    pub fn rank_of(&self, node: u32) -> u32 {
        self.rank[node as usize]
    }

    /// Shortcut entries the contraction inserted.
    pub fn shortcuts(&self) -> u64 {
        self.shortcuts
    }

    /// True iff no shortcut bundle was truncated — queries through the
    /// index are exact. A non-exact index is still structurally valid but
    /// the engine refuses to serve from it.
    pub fn exact(&self) -> bool {
        self.exact
    }

    /// Number of regions the build used.
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// Number of fragments in the arena.
    pub fn num_fragments(&self) -> usize {
        self.fragments.len()
    }

    /// Total upward-arc entries (original + shortcut) over both
    /// directions — the index's size metric in the `index` experiment.
    pub fn arc_entries(&self) -> u64 {
        let count = |side: &[Vec<UpArc>]| -> u64 {
            side.iter()
                .flat_map(|arcs| arcs.iter())
                .map(|a| a.entries.len() as u64)
                .sum()
        };
        count(&self.up_out) + count(&self.up_in)
    }

    /// True iff this index can serve queries over `graph` exactly: the
    /// shape matches (node/edge counts, cost dimensionality) and no bundle
    /// was truncated. The engine's fallback predicate.
    pub fn serves(&self, graph: &MultiCostGraph) -> bool {
        self.exact
            && self.num_nodes == graph.num_nodes()
            && self.num_edges == graph.num_edges()
            && self.dims == graph.num_cost_types()
    }

    /// Appends the original-edge sequence of `frag` to `out`, in travel
    /// order.
    pub(crate) fn unpack_into(&self, frag: u32, out: &mut Vec<EdgeId>) {
        match self.fragments[frag as usize] {
            Fragment::Edge(e) => out.push(EdgeId::new(e)),
            Fragment::Concat(a, b) => {
                self.unpack_into(a, out);
                self.unpack_into(b, out);
            }
        }
    }

    /// Serializes the index as indented JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses an index from its JSON representation.
    ///
    /// # Errors
    /// Returns the underlying JSON error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde::json::from_str(text).map_err(|e| e.to_string())
    }
}

/// True iff some entry of the (lexicographically sorted) Pareto `bundle`
/// weakly dominates `costs`. At `d == 2` the sorted order doubles as the
/// sorted-sweep front of [`mcn_graph::Front2`], so one binary search
/// decides; general `d` scans.
pub(crate) fn bundle_dominates_weak(bundle: &[ArcEntry], costs: &CostVec) -> bool {
    if costs.len() == 2 {
        let idx = bundle.partition_point(|e| e.costs[0].total_cmp(&costs[0]).is_le());
        idx > 0 && bundle[idx - 1].costs[1] <= costs[1]
    } else {
        bundle
            .iter()
            .any(|e| mcn_graph::dominates_weak(&e.costs, costs))
    }
}

/// Merges `(costs, frag)` into the sorted Pareto `bundle`: rejected when
/// weakly dominated, otherwise evicts what it strictly dominates and keeps
/// the bundle lexicographically sorted. Returns true iff inserted.
pub(crate) fn bundle_merge(bundle: &mut Vec<ArcEntry>, costs: CostVec, frag: u32) -> bool {
    if bundle_dominates_weak(bundle, &costs) {
        return false;
    }
    bundle.retain(|e| !mcn_graph::dominates(&costs, &e.costs));
    let pos = bundle.partition_point(|e| e.costs.lex_cmp(&costs).is_lt());
    bundle.insert(pos, ArcEntry { costs, frag });
    true
}

/// [`bundle_dominates_weak`] generalized to any payload: true iff some
/// member of the (lexicographically sorted) Pareto `set` weakly dominates
/// `costs`.
pub(crate) fn pareto_dominates_weak<T>(set: &[(CostVec, T)], costs: &CostVec) -> bool {
    if costs.len() == 2 {
        let idx = set.partition_point(|(c, _)| c[0].total_cmp(&costs[0]).is_le());
        idx > 0 && set[idx - 1].0[1] <= costs[1]
    } else {
        set.iter().any(|(c, _)| mcn_graph::dominates_weak(c, costs))
    }
}

/// [`bundle_merge`] generalized to any payload. Returns true iff inserted.
pub(crate) fn pareto_merge<T>(set: &mut Vec<(CostVec, T)>, costs: CostVec, payload: T) -> bool {
    if pareto_dominates_weak(set, &costs) {
        return false;
    }
    set.retain(|(c, _)| !mcn_graph::dominates(&costs, c));
    let pos = set.partition_point(|(c, _)| c.lex_cmp(&costs).is_lt());
    set.insert(pos, (costs, payload));
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcn_graph::Front2;

    fn v2(a: f64, b: f64) -> CostVec {
        CostVec::from_slice(&[a, b])
    }

    #[test]
    fn bundle_merge_matches_front2_at_d2() {
        let mut bundle: Vec<ArcEntry> = Vec::new();
        let mut front = Front2::new();
        let mut lcg = 77u64;
        for i in 0..500u32 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = ((lcg >> 33) % 32) as f64 * 0.5;
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = ((lcg >> 33) % 32) as f64 * 0.5;
            let p = v2(a, b);
            assert_eq!(
                bundle_dominates_weak(&bundle, &p),
                front.dominates_weak(a, b),
                "query diverged at ({a}, {b})"
            );
            assert_eq!(bundle_merge(&mut bundle, p, i), front.insert(a, b));
            assert_eq!(bundle.len(), front.len());
        }
    }

    #[test]
    fn bundle_merge_scans_at_d3() {
        let mut bundle: Vec<ArcEntry> = Vec::new();
        assert!(bundle_merge(
            &mut bundle,
            CostVec::from_slice(&[1.0, 2.0, 3.0]),
            0
        ));
        assert!(bundle_merge(
            &mut bundle,
            CostVec::from_slice(&[2.0, 3.0, 1.0]),
            1
        ));
        // Weakly dominated by the first entry.
        assert!(!bundle_merge(
            &mut bundle,
            CostVec::from_slice(&[1.0, 2.0, 3.0]),
            2
        ));
        // Dominates both: evicts them.
        assert!(bundle_merge(
            &mut bundle,
            CostVec::from_slice(&[0.5, 1.0, 0.5]),
            3
        ));
        assert_eq!(bundle.len(), 1);
        assert_eq!(bundle[0].frag, 3);
    }
}
