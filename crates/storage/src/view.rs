//! `StoreView`: the read API shared by every store shape.
//!
//! The expansion / query layers only ever *read* a network: adjacency
//! records, facility runs, the two id indexes, and I/O counters. This trait
//! captures exactly that surface so the whole query stack — LSA, CEA, top-k,
//! the multi-query engine — runs unchanged (and byte-identically) over
//! either a monolithic [`MCNStore`] or a region-sharded
//! [`PartitionedStore`](crate::partitioned::PartitionedStore).
//!
//! The generic layers take `S: StoreView + ?Sized` with `MCNStore` as the
//! default type parameter, so existing `Arc<MCNStore>` call sites compile
//! unchanged while `Arc<PartitionedStore>` (or a trait object) slots in
//! transparently.

use crate::records::{AdjacencyList, FacilityRun};
use crate::stats::IoStats;
use crate::store::{BufferConfig, EdgeEndpoints, FacilityInfo, MCNStore};
use mcn_graph::{EdgeId, FacilityId, NodeId};

/// Read interface of a disk-resident multi-cost network, buffer management
/// included. All implementations are immutable network views: two stores
/// built from the same graph return identical records, whatever their page
/// layout, which is what makes query results independent of partitioning.
pub trait StoreView: Send + Sync + 'static {
    /// Number of cost types `d`.
    fn num_cost_types(&self) -> usize;

    /// Number of nodes of the whole network.
    fn num_nodes(&self) -> usize;

    /// Number of edges of the whole network.
    fn num_edges(&self) -> usize;

    /// Number of facilities of the whole network.
    fn num_facilities(&self) -> usize;

    /// Pages occupied by MCN data (summed over shards for a partitioned
    /// store) — the basis for percentage-sized buffers.
    fn data_pages(&self) -> usize;

    /// Reads the adjacency record of `node`.
    ///
    /// # Panics
    /// Panics if the node does not exist in the store.
    fn adjacency(&self, node: NodeId) -> AdjacencyList;

    /// Reads the facilities of a run referenced from an adjacency entry
    /// returned by [`StoreView::adjacency`] **of the same store view** (a
    /// partitioned store hands out globally rebased run pointers that only
    /// it can resolve).
    fn facilities_in_run(&self, run: &FacilityRun) -> Vec<(FacilityId, f64)>;

    /// Facility-tree lookup.
    fn facility_info(&self, facility: FacilityId) -> Option<FacilityInfo>;

    /// Edge-index lookup.
    fn edge_endpoints(&self, edge: EdgeId) -> Option<EdgeEndpoints>;

    /// Snapshot of the I/O counters (aggregated over shards).
    fn io_stats(&self) -> IoStats;

    /// Publish the current I/O counters into a metrics registry
    /// (absolute values; see [`IoStats::publish`] for the reconciliation
    /// guarantees). A partitioned store additionally publishes per-region
    /// counters and home/cross traffic.
    fn publish_metrics(&self, registry: &mcn_obs::MetricsRegistry) {
        self.io_stats().publish(registry, &[]);
    }

    /// Empties every buffer pool and resets its hit/miss counters.
    fn clear_buffers(&self);

    /// Reconfigures the buffer capacity (applied per shard for a partitioned
    /// store; clears the cached pages).
    fn set_buffer(&self, buffer: BufferConfig);
}

impl StoreView for MCNStore {
    fn num_cost_types(&self) -> usize {
        MCNStore::num_cost_types(self)
    }

    fn num_nodes(&self) -> usize {
        MCNStore::num_nodes(self)
    }

    fn num_edges(&self) -> usize {
        MCNStore::num_edges(self)
    }

    fn num_facilities(&self) -> usize {
        MCNStore::num_facilities(self)
    }

    fn data_pages(&self) -> usize {
        MCNStore::data_pages(self)
    }

    fn adjacency(&self, node: NodeId) -> AdjacencyList {
        MCNStore::adjacency(self, node)
    }

    fn facilities_in_run(&self, run: &FacilityRun) -> Vec<(FacilityId, f64)> {
        MCNStore::facilities_in_run(self, run)
    }

    fn facility_info(&self, facility: FacilityId) -> Option<FacilityInfo> {
        MCNStore::facility_info(self, facility)
    }

    fn edge_endpoints(&self, edge: EdgeId) -> Option<EdgeEndpoints> {
        MCNStore::edge_endpoints(self, edge)
    }

    fn io_stats(&self) -> IoStats {
        MCNStore::io_stats(self)
    }

    fn clear_buffers(&self) {
        self.buffer().clear();
    }

    fn set_buffer(&self, buffer: BufferConfig) {
        MCNStore::set_buffer(self, buffer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcn_graph::{CostVec, GraphBuilder};
    use std::sync::Arc;

    const fn assert_object_safe(_: &dyn StoreView) {}

    #[test]
    fn mcn_store_implements_the_view() {
        let mut b = GraphBuilder::new(2);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        let e = b.add_edge(a, c, CostVec::from_slice(&[1.0, 2.0])).unwrap();
        b.add_facility(e, 0.5).unwrap();
        let g = b.build().unwrap();
        let store = MCNStore::build_in_memory(&g, BufferConfig::Pages(4)).unwrap();
        // Trait and inherent methods agree.
        assert_eq!(StoreView::num_cost_types(&store), store.num_cost_types());
        assert_eq!(StoreView::num_nodes(&store), 2);
        let adj = StoreView::adjacency(&store, a);
        assert_eq!(adj.entries.len(), 1);
        let run = adj.entries[0].facilities.unwrap();
        assert_eq!(StoreView::facilities_in_run(&store, &run).len(), 1);
        assert!(StoreView::facility_info(&store, FacilityId::new(0)).is_some());
        assert!(StoreView::edge_endpoints(&store, EdgeId::new(0)).is_some());
        StoreView::clear_buffers(&store);
        assert_eq!(StoreView::io_stats(&store).buffer_hits, 0);
        // The trait is object safe: `Arc<dyn StoreView>` is a valid handle.
        let dynamic: Arc<dyn StoreView> = Arc::new(store);
        assert_object_safe(dynamic.as_ref());
        assert_eq!(dynamic.num_edges(), 1);
    }
}
