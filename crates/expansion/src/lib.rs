//! # mcn-expansion
//!
//! **Incremental network expansion** over the disk-resident multi-cost
//! network: the Dijkstra-based nearest-facility search primitive (Papadias et
//! al., VLDB'03) that the paper's LSA and CEA algorithms are built on.
//!
//! * [`Expansion`] — a single-cost incremental expansion that yields the
//!   nearest facilities in increasing distance order, with fine-grained
//!   stepping and frontier bounds for the top-k algorithms.
//! * [`DirectAccess`] / [`SharedAccess`] — the two access disciplines that
//!   distinguish LSA (independent reads) from CEA (each adjacency record and
//!   facility list fetched at most once per query).
//! * [`seeds_for_location`] — turns a query location (node or edge interior)
//!   into expansion seeds with partial-weight costs.
//! * [`ExpansionDriver`] — how a query's `d` expansions are advanced:
//!   inline ([`SerialDriver`]) or pipelined on worker threads
//!   ([`ParallelDriver`]), with identical emission streams.
//! * [`oracle`] — in-memory brute-force cost vectors used as the ground truth
//!   in tests and by the straightforward baseline.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod access;
pub mod driver;
pub mod expansion;
pub mod oracle;
pub mod seeds;

pub use access::{DirectAccess, NetworkAccess, SharedAccess, SharingStats};
pub use driver::{ExpansionDriver, ParallelDriver, SerialDriver};
pub use expansion::{Expansion, ExpansionStats, ExpansionStep, FacilityMode};
pub use seeds::{seeds_for_location, Seeds};

/// Compile-time thread-safety proof: instantiated in a `const _` next to
/// each shared type, so the build fails the moment a field change makes the
/// type lose `Send`/`Sync` (the `missing-send-sync-assert` lint requires
/// one such assertion per concurrency-facing type, outside `cfg(test)`).
pub(crate) const fn assert_send_sync<T: Send + Sync>() {}
