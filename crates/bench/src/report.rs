//! Plain-text rendering of experiment tables.

use crate::measure::PointMeasurement;
use serde::{Deserialize, Serialize};

/// One rendered row of an experiment table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// The x-axis label of the data point.
    pub label: String,
    /// LSA charged seconds.
    pub lsa_time: f64,
    /// CEA charged seconds.
    pub cea_time: f64,
    /// LSA physical page reads.
    pub lsa_reads: f64,
    /// CEA physical page reads.
    pub cea_reads: f64,
    /// LSA/CEA speedup on charged time.
    pub speedup: f64,
    /// Mean result cardinality.
    pub result_size: f64,
}

/// A complete experiment table: one row per x-axis value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentTable {
    /// Experiment identifier (e.g. `"fig08a"`).
    pub id: String,
    /// Human-readable title (e.g. `"Fig. 8(a) — skyline, effect of |P|"`).
    pub title: String,
    /// The parameter that varies along the rows.
    pub x_axis: String,
    /// The rows.
    pub rows: Vec<Row>,
    /// Latency (seconds per physical read) used to compute charged time.
    pub latency: f64,
}

impl ExperimentTable {
    /// Builds a table from raw measurements.
    pub fn from_points(
        id: impl Into<String>,
        title: impl Into<String>,
        x_axis: impl Into<String>,
        points: &[PointMeasurement],
        latency: f64,
    ) -> Self {
        let rows = points
            .iter()
            .map(|p| Row {
                label: p.label.clone(),
                lsa_time: json_safe(p.lsa.charged_seconds(latency)),
                cea_time: json_safe(p.cea.charged_seconds(latency)),
                lsa_reads: json_safe(p.lsa.physical_reads),
                cea_reads: json_safe(p.cea.physical_reads),
                speedup: json_safe(p.speedup(latency)),
                result_size: json_safe(p.lsa.result_size),
            })
            .collect();
        Self {
            id: id.into(),
            title: title.into(),
            x_axis: x_axis.into(),
            rows,
            latency,
        }
    }

    /// Serializes the table as indented JSON (the `--out` report format).
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a table from its JSON report representation.
    ///
    /// # Errors
    /// Returns the underlying JSON error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde::json::from_str(text).map_err(|e| e.to_string())
    }
}

/// Clamps a measurement into the finite range so persisted reports contain
/// no `inf`/`NaN` (a corrupted measurement maps to 0, an overflowed one to
/// `f64::MAX` with its sign). Shared by every report module in this crate.
pub(crate) fn json_safe(v: f64) -> f64 {
    if v.is_nan() {
        0.0
    } else {
        v.clamp(f64::MIN, f64::MAX)
    }
}

/// Renders a table in a fixed-width text layout suitable for EXPERIMENTS.md.
pub fn render_table(table: &ExperimentTable) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {} [{}]\n", table.title, table.id));
    out.push_str(&format!(
        "(charged time = CPU + physical reads x {:.0} ms)\n",
        table.latency * 1000.0
    ));
    out.push_str(&format!(
        "{:<18} {:>12} {:>12} {:>10} {:>10} {:>9} {:>9}\n",
        table.x_axis, "LSA time(s)", "CEA time(s)", "LSA reads", "CEA reads", "speedup", "|result|"
    ));
    for r in &table.rows {
        out.push_str(&format!(
            "{:<18} {:>12.4} {:>12.4} {:>10.1} {:>10.1} {:>8.2}x {:>9.1}\n",
            r.label, r.lsa_time, r.cea_time, r.lsa_reads, r.cea_reads, r.speedup, r.result_size
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::AlgoMeasurement;

    fn point(label: &str, lsa_reads: f64, cea_reads: f64) -> PointMeasurement {
        PointMeasurement {
            label: label.to_string(),
            lsa: AlgoMeasurement {
                cpu_seconds: 0.001,
                physical_reads: lsa_reads,
                result_size: 7.0,
                ..Default::default()
            },
            cea: AlgoMeasurement {
                cpu_seconds: 0.001,
                physical_reads: cea_reads,
                result_size: 7.0,
                ..Default::default()
            },
            queries: 10,
        }
    }

    #[test]
    fn degenerate_points_produce_finite_rows() {
        // Regression test: an all-zero CEA measurement used to put
        // f64::INFINITY into the speedup column, which no JSON consumer can
        // represent. Every row value must come out finite.
        let mut p = point("zero", 300.0, 100.0);
        p.cea = AlgoMeasurement::default();
        p.lsa.cpu_seconds = f64::NAN; // corrupted timer reading
        let table = ExperimentTable::from_points("x", "t", "|P|", &[p], 0.005);
        let row = &table.rows[0];
        for v in [
            row.lsa_time,
            row.cea_time,
            row.lsa_reads,
            row.cea_reads,
            row.speedup,
            row.result_size,
        ] {
            assert!(v.is_finite(), "non-finite value {v} escaped into a row");
        }
        // And the table round-trips through the report format.
        assert_eq!(ExperimentTable::from_json(&table.to_json()).unwrap(), table);
    }

    #[test]
    fn table_rows_follow_points() {
        let points = vec![
            point("|P| = 500", 300.0, 100.0),
            point("|P| = 1000", 200.0, 80.0),
        ];
        let table = ExperimentTable::from_points("fig08a", "Fig. 8(a)", "|P|", &points, 0.005);
        assert_eq!(table.rows.len(), 2);
        assert!(table.rows[0].speedup > 2.5 && table.rows[0].speedup < 3.5);
        let text = render_table(&table);
        assert!(text.contains("Fig. 8(a)"));
        assert!(text.contains("|P| = 500"));
        assert!(text.contains('x'));
    }
}
