//! On-disk persistence: the index body plus a manifest whose checksum
//! detects corruption before a bad index ever serves a query.

use crate::structure::RouteIndex;
use mcn_graph::MultiCostGraph;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// File name of the serialized index body inside an index directory.
pub const INDEX_FILE: &str = "index.json";
/// File name of the manifest inside an index directory.
pub const MANIFEST_FILE: &str = "index-manifest.json";

/// The manifest written next to a persisted index: the shape of the graph
/// it was built for plus an FNV-1a checksum of the index JSON bytes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IndexManifest {
    /// Node count of the indexed graph.
    pub num_nodes: usize,
    /// Edge count of the indexed graph.
    pub num_edges: usize,
    /// Cost dimensionality of the indexed graph.
    pub dims: usize,
    /// Whether the persisted index is exact (serves queries).
    pub exact: bool,
    /// Shortcut entries the build inserted.
    pub shortcuts: u64,
    /// FNV-1a hash of the serialized index body.
    pub checksum: u64,
}

/// 64-bit FNV-1a over `bytes`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

impl RouteIndex {
    /// Persists the index into `dir` as [`INDEX_FILE`] plus
    /// [`MANIFEST_FILE`], creating the directory if needed. Returns the
    /// manifest that was written.
    ///
    /// # Errors
    /// Returns a message naming the file on any I/O failure.
    pub fn save(&self, dir: &Path) -> Result<IndexManifest, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let body = self.to_json();
        let manifest = IndexManifest {
            num_nodes: self.num_nodes,
            num_edges: self.num_edges,
            dims: self.dims,
            exact: self.exact,
            shortcuts: self.shortcuts,
            checksum: fnv1a(body.as_bytes()),
        };
        let body_path = dir.join(INDEX_FILE);
        std::fs::write(&body_path, &body)
            .map_err(|e| format!("write {}: {e}", body_path.display()))?;
        let manifest_path = dir.join(MANIFEST_FILE);
        std::fs::write(&manifest_path, serde::json::to_string_pretty(&manifest))
            .map_err(|e| format!("write {}: {e}", manifest_path.display()))?;
        Ok(manifest)
    }

    /// Loads a persisted index from `dir`, verifying the manifest checksum
    /// against the body bytes and the recorded shape against both the
    /// parsed index and `graph`.
    ///
    /// # Errors
    /// Returns a message on I/O failure, a checksum mismatch ("corrupted"),
    /// a manifest/body disagreement, or a shape mismatch with `graph`.
    pub fn load(dir: &Path, graph: &MultiCostGraph) -> Result<Self, String> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let manifest_text = std::fs::read_to_string(&manifest_path)
            .map_err(|e| format!("read {}: {e}", manifest_path.display()))?;
        let manifest: IndexManifest = serde::json::from_str(&manifest_text)
            .map_err(|e| format!("parse {}: {e}", manifest_path.display()))?;
        let body_path = dir.join(INDEX_FILE);
        let body = std::fs::read_to_string(&body_path)
            .map_err(|e| format!("read {}: {e}", body_path.display()))?;
        if fnv1a(body.as_bytes()) != manifest.checksum {
            return Err(format!(
                "{} is corrupted: checksum does not match the manifest",
                body_path.display()
            ));
        }
        let index =
            Self::from_json(&body).map_err(|e| format!("parse {}: {e}", body_path.display()))?;
        if index.num_nodes != manifest.num_nodes
            || index.num_edges != manifest.num_edges
            || index.dims != manifest.dims
            || index.exact != manifest.exact
            || index.shortcuts != manifest.shortcuts
        {
            return Err(format!(
                "{} does not match its manifest",
                body_path.display()
            ));
        }
        if index.num_nodes != graph.num_nodes()
            || index.num_edges != graph.num_edges()
            || index.dims != graph.num_cost_types()
        {
            return Err(format!(
                "index at {} was built for a different graph ({} nodes, {} edges, d = {})",
                dir.display(),
                index.num_nodes,
                index.num_edges,
                index.dims
            ));
        }
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexConfig;
    use mcn_graph::{CostVec, GraphBuilder};

    fn grid() -> MultiCostGraph {
        let mut b = GraphBuilder::new(2);
        let nodes: Vec<_> = (0..6).map(|i| b.add_node(i as f64, 0.0)).collect();
        for w in nodes.windows(2) {
            b.add_edge(w[0], w[1], CostVec::from_slice(&[1.0, 2.0]))
                .unwrap();
        }
        b.add_edge(nodes[0], nodes[5], CostVec::from_slice(&[9.0, 1.0]))
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn save_and_load_round_trip_bit_for_bit() {
        let g = grid();
        let idx = RouteIndex::build(&g, &IndexConfig::default());
        let dir = std::env::temp_dir().join(format!("mcn-index-rt-{}", std::process::id()));
        let manifest = idx.save(&dir).unwrap();
        assert_eq!(manifest.num_nodes, 6);
        assert!(manifest.exact);
        let loaded = RouteIndex::load(&dir, &g).unwrap();
        assert_eq!(loaded, idx);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_bodies_and_foreign_graphs_are_rejected() {
        let g = grid();
        let idx = RouteIndex::build(&g, &IndexConfig::default());
        let dir = std::env::temp_dir().join(format!("mcn-index-bad-{}", std::process::id()));
        idx.save(&dir).unwrap();

        // Flip one byte of the body: the checksum must catch it.
        let body_path = dir.join(INDEX_FILE);
        let mut body = std::fs::read_to_string(&body_path).unwrap();
        body.push(' ');
        std::fs::write(&body_path, &body).unwrap();
        let err = RouteIndex::load(&dir, &g).unwrap_err();
        assert!(err.contains("corrupted"), "got: {err}");

        // Restore, then load against a graph of a different shape.
        idx.save(&dir).unwrap();
        let mut b = GraphBuilder::new(2);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        b.add_edge(a, c, CostVec::from_slice(&[1.0, 1.0])).unwrap();
        let other = b.build().unwrap();
        let err = RouteIndex::load(&dir, &other).unwrap_err();
        assert!(err.contains("different graph"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
