//! Build knobs for the route index.

use serde::{Deserialize, Serialize};

/// Parameters of a [`crate::RouteIndex`] build.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IndexConfig {
    /// Maximum Pareto-set size per shortcut bundle. A contraction that
    /// would exceed the cap truncates the (lexicographically sorted)
    /// bundle and clears the index's `exact` flag, which makes the engine
    /// fall back to the prep-backed tier — correctness is never traded for
    /// size silently.
    pub max_bundle: usize,
    /// Hop limit of the witness search run per candidate shortcut. Larger
    /// values drop more shortcuts (smaller index, slower build); an
    /// inconclusive search just keeps the candidate.
    pub witness_hops: usize,
    /// Label budget of one witness search; exhaustion keeps the candidate.
    pub witness_budget: usize,
    /// Number of partition regions contracted in parallel. `1` builds the
    /// whole hierarchy sequentially; `> 1` partitions the graph with
    /// [`mcn_graph::partition_graph`], contracts each region's interior on
    /// its own thread, and contracts the boundary overlay sequentially on
    /// top. The resulting index depends only on the inputs, never on
    /// thread scheduling.
    pub regions: usize,
    /// Seed forwarded to the region partitioner.
    pub seed: u64,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self {
            max_bundle: 256,
            witness_hops: 5,
            witness_budget: 4096,
            regions: 1,
            seed: 2010,
        }
    }
}

impl IndexConfig {
    /// The default configuration with `regions` parallel build regions.
    pub fn with_regions(regions: usize) -> Self {
        Self {
            regions: regions.max(1),
            ..Self::default()
        }
    }
}
