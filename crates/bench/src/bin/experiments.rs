//! Command-line experiment runner.
//!
//! Reproduces the paper's Section VI figures as text tables:
//!
//! ```text
//! experiments all                    # every figure at the default 1/50 scale
//! experiments sky-p topk-k           # selected figures
//! experiments all --scale 10         # closer to the paper's full size
//! experiments all --queries 50       # more query locations per data point
//! experiments all --latency-ms 10    # charge 10 ms per physical page read
//! experiments all --out results/     # persist each table as JSON
//! experiments all --check results/   # re-parse persisted tables, no re-run
//! ```
//!
//! `--out DIR` writes one `<id>.json` per selected experiment and verifies
//! the write by reading the file back and comparing the parsed table with
//! the in-memory one. `--check DIR` loads previously written tables without
//! re-running anything, verifies that re-serializing the parsed value
//! reproduces the file byte-for-byte (the serializer is deterministic, so
//! this proves a lossless round-trip across the process restart), and
//! renders them. Both exit non-zero on any write, parse or mismatch
//! failure.

use mcn_bench::{render_table, Experiment, ExperimentConfig, ExperimentTable};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        print_usage();
        return ExitCode::SUCCESS;
    }

    let mut config = ExperimentConfig::default();
    let mut selected: Vec<Experiment> = Vec::new();
    let mut run_all = false;
    let mut out_dir: Option<PathBuf> = None;
    let mut check_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "all" => run_all = true,
            "--scale" => {
                config.scale = expect_value(&args, &mut i, "--scale");
            }
            "--queries" => {
                config.queries = Some(expect_value(&args, &mut i, "--queries"));
            }
            "--latency-ms" => {
                let ms: f64 = expect_value(&args, &mut i, "--latency-ms");
                config.latency = ms / 1000.0;
            }
            "--seed" => {
                config.seed = expect_value(&args, &mut i, "--seed");
            }
            "--out" => {
                out_dir = Some(expect_value(&args, &mut i, "--out"));
            }
            "--check" => {
                check_dir = Some(expect_value(&args, &mut i, "--check"));
            }
            other => match Experiment::from_id(other) {
                Some(e) => selected.push(e),
                None => {
                    eprintln!("unknown experiment or flag: {other}");
                    print_usage();
                    return ExitCode::from(2);
                }
            },
        }
        i += 1;
    }
    if run_all {
        selected = Experiment::all().to_vec();
    }
    if selected.is_empty() {
        eprintln!("nothing to run");
        print_usage();
        return ExitCode::from(2);
    }

    if out_dir.is_some() && check_dir.is_some() {
        eprintln!("--out and --check are mutually exclusive (write first, then check)");
        return ExitCode::from(2);
    }
    if let Some(dir) = check_dir {
        return check_tables(&dir, &selected);
    }

    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    println!(
        "# MCN preference-query experiments (scale 1/{}, {} ms per physical read, seed {})",
        config.scale,
        config.latency * 1000.0,
        config.seed
    );
    println!(
        "# Paper defaults scaled: {} nodes, {} facilities, d = {}, anti-correlated, {} queries/point\n",
        config.base_spec().nodes,
        config.base_spec().facilities,
        config.base_spec().cost_types,
        config.base_spec().queries
    );
    for experiment in selected {
        let table = experiment.run(&config);
        println!("{}", render_table(&table));
        if let Some(dir) = &out_dir {
            if let Err(e) = persist_table(dir, &table) {
                eprintln!("failed to persist table {}: {e}", table.id);
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Writes `table` to `DIR/<id>.json` and proves the write lossless by
/// reading the file back and comparing the re-parsed table.
fn persist_table(dir: &Path, table: &ExperimentTable) -> Result<(), String> {
    let path = dir.join(format!("{}.json", table.id));
    std::fs::write(&path, table.to_json()).map_err(|e| format!("write {}: {e}", path.display()))?;
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("read back {}: {e}", path.display()))?;
    let reparsed = ExperimentTable::from_json(&text)
        .map_err(|e| format!("re-parse {}: {e}", path.display()))?;
    if &reparsed != table {
        return Err(format!(
            "round-trip mismatch: {} differs from the in-memory table",
            path.display()
        ));
    }
    eprintln!("wrote {}", path.display());
    Ok(())
}

/// Loads each selected table from `DIR/<id>.json`, verifies that the parsed
/// value re-serializes to the identical bytes, and renders it.
fn check_tables(dir: &Path, selected: &[Experiment]) -> ExitCode {
    let mut failures = 0u32;
    for experiment in selected {
        let path = dir.join(format!("{}.json", experiment.id()));
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        let table = match ExperimentTable::from_json(&text) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot parse {}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        if table.id != experiment.id() {
            eprintln!(
                "{} holds table `{}`, expected `{}`",
                path.display(),
                table.id,
                experiment.id()
            );
            failures += 1;
            continue;
        }
        if table.to_json() != text {
            eprintln!(
                "{}: re-serializing the parsed table does not reproduce the file",
                path.display()
            );
            failures += 1;
            continue;
        }
        println!("{}", render_table(&table));
    }
    if failures > 0 {
        eprintln!("{failures} table(s) failed the check");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn expect_value<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str) -> T {
    *i += 1;
    args.get(*i)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
}

fn print_usage() {
    eprintln!(
        "usage: experiments [all | <ids>...] [--scale N] [--queries N] [--latency-ms MS] [--seed S]\n\
         \x20                [--out DIR] [--check DIR]\n\
         experiment ids: {}\n\
         --out DIR    run the experiments, persist each table to DIR/<id>.json and\n\
         \x20            verify the written file re-parses to the in-memory table\n\
         --check DIR  skip running; load DIR/<id>.json for each selected experiment,\n\
         \x20            verify a lossless round-trip and render the stored tables",
        Experiment::all()
            .iter()
            .map(|e| e.id())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
