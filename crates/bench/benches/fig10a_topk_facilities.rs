//! Criterion benchmark for Fig. 10(a) — top-k vs |P|.
//!
//! Benchmarks a single top-k query (LSA vs CEA) at each x-axis value of
//! the figure, on a workload scaled down from the paper's parameters. The full
//! parameter sweep with averaged I/O tables is produced by the `experiments`
//! binary (`cargo run -p mcn-bench --release --bin experiments -- topk-p`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcn_bench::measure::{bench_fixture, run_single, QueryKind};
use mcn_core::Algorithm;
use mcn_gen::{CostDistribution, WorkloadSpec};

fn base_spec() -> WorkloadSpec {
    WorkloadSpec {
        nodes: 3600,
        facilities: 2000,
        cost_types: 4,
        distribution: CostDistribution::AntiCorrelated,
        clusters: 10,
        queries: 4,
        seed: 2010,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10a_topk_facilities");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (label, spec, buffer, kind) in points() {
        let (store, queries, d) = bench_fixture(&spec, buffer);
        for algo in [Algorithm::Lsa, Algorithm::Cea] {
            group.bench_with_input(BenchmarkId::new(algo.name(), &label), &algo, |b, &algo| {
                let mut i = 0usize;
                b.iter(|| {
                    let q = queries[i % queries.len()];
                    i += 1;
                    run_single(&store, q, d, kind, algo)
                })
            });
        }
    }
    group.finish();
}

/// The x-axis values of Fig. 10(a): (label, workload, buffer fraction, query kind).
fn points() -> Vec<(String, WorkloadSpec, f64, QueryKind)> {
    let base = base_spec();
    [500usize, 1000, 2000, 4000]
        .into_iter()
        .map(|p| {
            (
                format!("P{p}"),
                WorkloadSpec {
                    facilities: p,
                    ..base.clone()
                },
                0.01,
                QueryKind::TopK(4),
            )
        })
        .collect()
}

criterion_group!(benches, bench);
criterion_main!(benches);
