//! The threshold algorithm (TA) of Fagin, Lotem and Naor.

use crate::{Aggregate, SortedLists};
use std::collections::{BTreeMap, HashSet};

/// Statistics describing how much work a TA/NRA run performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Number of sorted (sequential) accesses performed.
    pub sorted_accesses: usize,
    /// Number of random accesses performed (always zero for NRA).
    pub random_accesses: usize,
}

/// Runs the threshold algorithm over `lists` and returns the `k` objects with
/// the smallest aggregate score, together with access statistics.
///
/// TA pops the head of each sorted list round-robin (one *sorted access* per
/// list per round). Each newly seen object is completed via *random accesses*
/// to the remaining lists (modelled by reading the full cost row from
/// `cost_row`), and its exact score computed. The algorithm stops when the
/// k-th best score found so far is no larger than the threshold
/// `T = f(t₁,…,t_d)`, where `tᵢ` is the cost at the current frontier of list
/// `i` (for minimisation, no unseen object can score below `T`).
///
/// Results are `(object, score)` pairs in ascending score order, ties broken by
/// object id.
pub fn threshold_algorithm<A, F>(
    lists: &SortedLists,
    aggregate: &A,
    k: usize,
    mut cost_row: F,
) -> (Vec<(usize, f64)>, AccessStats)
where
    A: Aggregate,
    F: FnMut(usize) -> Vec<f64>,
{
    let d = lists.num_attributes();
    let n = lists.num_objects();
    let k = k.min(n);
    let mut stats = AccessStats::default();
    if k == 0 {
        return (Vec::new(), stats);
    }

    let mut seen: HashSet<usize> = HashSet::new();
    // BTreeMap keyed by (score bits, object id) keeps the best-k ordered.
    let mut best: BTreeMap<(u64, usize), f64> = BTreeMap::new();
    let mut frontier = vec![0.0f64; d];
    let mut depth = 0usize;

    loop {
        let mut any_access = false;
        for i in 0..d {
            let list = lists.list(i);
            if depth >= list.len() {
                continue;
            }
            any_access = true;
            stats.sorted_accesses += 1;
            let (obj, cost) = list[depth];
            frontier[i] = cost;
            if seen.insert(obj) {
                // Random accesses to the other d-1 attributes.
                stats.random_accesses += d - 1;
                let row = cost_row(obj);
                debug_assert_eq!(row.len(), d);
                let score = aggregate.combine(&row);
                best.insert((score.to_bits(), obj), score);
                if best.len() > k {
                    best.pop_last();
                }
            }
        }
        depth += 1;

        let threshold = aggregate.combine(&frontier);
        let kth_score = best.iter().next_back().map(|((_, _), s)| *s);
        let have_k = best.len() == k;
        if (have_k && kth_score.is_some_and(|s| s <= threshold)) || !any_access {
            break;
        }
    }

    let result = best
        .into_iter()
        .map(|((_, obj), score)| (obj, score))
        .collect();
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{naive_topk, WeightedSum};
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn run_ta(costs: &[Vec<f64>], weights: Vec<f64>, k: usize) -> (Vec<(usize, f64)>, AccessStats) {
        let lists = SortedLists::from_matrix(costs);
        let f = WeightedSum::new(weights);
        threshold_algorithm(&lists, &f, k, |obj| costs[obj].clone())
    }

    #[test]
    fn finds_exact_topk_small() {
        let costs = vec![
            vec![1.0, 9.0],
            vec![2.0, 2.0],
            vec![9.0, 1.0],
            vec![5.0, 5.0],
        ];
        let (top, _) = run_ta(&costs, vec![1.0, 1.0], 2);
        assert_eq!(top[0].0, 1); // total 4
        assert_eq!(top.len(), 2);
        let expected = naive_topk(&costs, &WeightedSum::new(vec![1.0, 1.0]), 2);
        assert_eq!(
            top.iter().map(|t| t.0).collect::<Vec<_>>(),
            expected.iter().map(|t| t.0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn k_larger_than_relation_returns_all() {
        let costs = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let (top, _) = run_ta(&costs, vec![0.5, 0.5], 10);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn k_zero_returns_empty() {
        let costs = vec![vec![1.0, 2.0]];
        let (top, stats) = run_ta(&costs, vec![0.5, 0.5], 0);
        assert!(top.is_empty());
        assert_eq!(stats.sorted_accesses, 0);
    }

    #[test]
    fn early_termination_saves_accesses_on_correlated_data() {
        // Strongly correlated data: the best object is at the top of every
        // list, so TA should stop long before scanning everything.
        let n = 1000;
        let costs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, i as f64 + 0.5]).collect();
        let (top, stats) = run_ta(&costs, vec![1.0, 1.0], 1);
        assert_eq!(top[0].0, 0);
        assert!(
            stats.sorted_accesses < 2 * n,
            "TA should terminate early, used {} sorted accesses",
            stats.sorted_accesses
        );
    }

    #[test]
    fn skewed_weights_change_winner() {
        let costs = vec![vec![1.0, 100.0], vec![50.0, 1.0]];
        let (t1, _) = run_ta(&costs, vec![1.0, 0.0], 1);
        assert_eq!(t1[0].0, 0);
        let (t2, _) = run_ta(&costs, vec![0.0, 1.0], 1);
        assert_eq!(t2[0].0, 1);
    }

    #[test]
    fn matches_naive_on_random_matrices() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..20 {
            let n = rng.gen_range(1..200);
            let d = rng.gen_range(2..=5);
            let costs: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..d).map(|_| rng.gen_range(0.0..100.0)).collect())
                .collect();
            let weights: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..1.0)).collect();
            let k = rng.gen_range(1..=16.min(n));
            let f = WeightedSum::new(weights.clone());
            let (top, _) = run_ta(&costs, weights, k);
            let expected = naive_topk(&costs, &f, k);
            // Compare score multisets (ties may be resolved differently).
            let got_scores: Vec<f64> = top.iter().map(|t| t.1).collect();
            let exp_scores: Vec<f64> = expected.iter().map(|t| t.1).collect();
            for (g, e) in got_scores.iter().zip(&exp_scores) {
                assert!((g - e).abs() < 1e-9, "score mismatch: {g} vs {e}");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_ta_scores_match_naive(
            rows in proptest::collection::vec(
                proptest::collection::vec(0.0f64..50.0, 3), 1..80),
            k in 1usize..10,
        ) {
            let f = WeightedSum::uniform(3);
            let lists = SortedLists::from_matrix(&rows);
            let (top, _) = threshold_algorithm(&lists, &f, k, |o| rows[o].clone());
            let expected = naive_topk(&rows, &f, k);
            prop_assert_eq!(top.len(), expected.len());
            for (g, e) in top.iter().zip(&expected) {
                prop_assert!((g.1 - e.1).abs() < 1e-9);
            }
        }
    }
}
