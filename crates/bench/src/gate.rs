//! The bench regression gate: mean logical page reads per figure point,
//! compared against a checked-in baseline.
//!
//! Wall-clock benchmarks are too noisy for CI, but **logical page reads are
//! deterministic**: the workload generator, the query locations and the
//! algorithms are all seeded, so every figure point requests exactly the
//! same pages run after run and machine after machine. The gate exploits
//! that: it re-runs the (small, fixed) gate configuration of every figure
//! sweep, extracts each point's mean logical reads for LSA and CEA, and
//! fails when any point regressed by more than [`GATE_TOLERANCE`] against
//! the baseline JSON checked into the repository.
//!
//! `experiments gate --baseline FILE` runs the comparison;
//! `--update` rewrites the baseline after an intentional change (the diff
//! then documents the cost shift in review).
//!
//! The same idea guards the ParetoPrep path-skyline subsystem: **labels
//! created are deterministic** just like logical reads, so a sibling
//! baseline (`labels.json`, see [`LabelBaseline`]) stores the mean label
//! counts of the prep experiment's seeded pairs — exhaustive and prepped —
//! and `experiments gate --labels FILE` fails when either regresses by
//! more than the tolerance (a prepped regression means the pruning got
//! weaker, an exhaustive one that the baseline search got more wasteful).
//!
//! The scalarized serving tier gets the same treatment: **nodes settled
//! are deterministic** for the seeded (pair, α) queries, so a third
//! baseline (`alpha_settled.json`, see [`AlphaSettledBaseline`]) stores
//! the mean settled counts of plain Dijkstra and prep-backed A* plus the
//! skyline's labels on the same pairs, and `experiments gate --alpha FILE`
//! fails when any of them regresses (an A* regression means the α·L(v)
//! heuristic got weaker).
//!
//! The route index rides the same rails: **its settled counts and its size
//! are deterministic** (the build and both query kinds are pure functions
//! of the seeded inputs), so a fourth baseline (`index_latency.json`, see
//! [`IndexLatencyBaseline`]) stores the index's per-query settled nodes —
//! the wall-latency proxy — and its arc-entry count per dimension, and
//! `experiments gate --index FILE` fails when either regresses (a settled
//! regression means queries got slower, an arc-entry one that contraction
//! got more wasteful).

use crate::alpha::{measure_scalarized, ScalarMetrics};
use crate::experiments::{Experiment, ExperimentConfig};
use crate::index::{measure_index, IndexMetrics};
use crate::prep::{measure_labels, LabelMetrics};
use mcn_gen::{generate_workload, CostDistribution, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// Allowed relative increase of any point's logical reads (2 %).
pub const GATE_TOLERANCE: f64 = 0.02;

/// The fixed, fast configuration the gate always runs (the baseline is only
/// comparable at the exact same configuration, so it is stored in the file
/// and cross-checked).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GateConfig {
    /// Scale-down divider of the paper workload.
    pub scale: usize,
    /// Query locations per data point.
    pub queries: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            scale: 2000,
            queries: 2,
            seed: 2010,
        }
    }
}

impl GateConfig {
    fn experiment_config(&self) -> ExperimentConfig {
        ExperimentConfig {
            scale: self.scale,
            queries: Some(self.queries),
            seed: self.seed,
            ..Default::default()
        }
    }
}

/// One figure point's deterministic I/O cost.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GatePoint {
    /// The point's x-axis label (e.g. `"d = 3"`).
    pub label: String,
    /// Mean logical page reads per LSA query.
    pub lsa_logical_reads: f64,
    /// Mean logical page reads per CEA query.
    pub cea_logical_reads: f64,
}

/// One figure's points.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GateTable {
    /// The experiment id (e.g. `"sky-p"`).
    pub id: String,
    /// One entry per swept x-axis value.
    pub points: Vec<GatePoint>,
}

/// The whole baseline: the configuration it was measured at plus every
/// figure's points.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GateBaseline {
    /// The configuration the numbers belong to.
    pub config: GateConfig,
    /// One table per figure experiment, in paper order.
    pub tables: Vec<GateTable>,
}

impl GateBaseline {
    /// Serializes the baseline as indented JSON (the checked-in format).
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a baseline from its JSON representation.
    ///
    /// # Errors
    /// Returns the underlying JSON error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde::json::from_str(text).map_err(|e| e.to_string())
    }
}

/// Runs every figure sweep at the gate configuration and collects the mean
/// logical reads per point.
pub fn run_gate(config: &GateConfig) -> GateBaseline {
    let experiment_config = config.experiment_config();
    let tables = Experiment::all()
        .iter()
        .map(|experiment| GateTable {
            id: experiment.id().to_string(),
            points: experiment
                .run_points(&experiment_config)
                .into_iter()
                .map(|p| GatePoint {
                    label: p.label,
                    lsa_logical_reads: p.lsa.logical_reads,
                    cea_logical_reads: p.cea.logical_reads,
                })
                .collect(),
        })
        .collect();
    GateBaseline {
        config: config.clone(),
        tables,
    }
}

/// Compares a fresh run against the checked-in baseline. Returns one message
/// per violation (empty = gate passed): configuration or shape mismatches,
/// and any point whose logical reads grew by more than `tolerance`.
/// Improvements never fail the gate — refresh the baseline with `--update`
/// to lock them in.
pub fn compare_gate(
    current: &GateBaseline,
    baseline: &GateBaseline,
    tolerance: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    if current.config != baseline.config {
        violations.push(format!(
            "gate configuration changed: baseline {:?} vs current {:?} (re-create the baseline)",
            baseline.config, current.config
        ));
        return violations;
    }
    if current.tables.len() != baseline.tables.len() {
        violations.push(format!(
            "figure count changed: baseline {} vs current {} (re-create the baseline)",
            baseline.tables.len(),
            current.tables.len()
        ));
        return violations;
    }
    for (cur, base) in current.tables.iter().zip(&baseline.tables) {
        if cur.id != base.id || cur.points.len() != base.points.len() {
            violations.push(format!(
                "table shape changed: baseline {} ({} points) vs current {} ({} points)",
                base.id,
                base.points.len(),
                cur.id,
                cur.points.len()
            ));
            continue;
        }
        for (cp, bp) in cur.points.iter().zip(&base.points) {
            if cp.label != bp.label {
                violations.push(format!(
                    "{}: point label changed: `{}` vs `{}`",
                    cur.id, bp.label, cp.label
                ));
                continue;
            }
            for (algo, current_reads, baseline_reads) in [
                ("LSA", cp.lsa_logical_reads, bp.lsa_logical_reads),
                ("CEA", cp.cea_logical_reads, bp.cea_logical_reads),
            ] {
                if current_reads > baseline_reads * (1.0 + tolerance) {
                    violations.push(format!(
                        "{} [{}] {algo}: {current_reads:.1} logical reads vs baseline \
                         {baseline_reads:.1} (+{:.1}% > {:.0}% allowed)",
                        cur.id,
                        cp.label,
                        (current_reads / baseline_reads - 1.0) * 100.0,
                        tolerance * 100.0
                    ));
                }
            }
        }
    }
    violations
}

/// The fixed configuration of the label gate (like [`GateConfig`], stored
/// in the baseline file and cross-checked before comparing numbers).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LabelGateConfig {
    /// Nodes of the seeded gate network.
    pub nodes: usize,
    /// Cost dimensions measured.
    pub dims: Vec<usize>,
    /// Source/target pairs per dimension.
    pub pairs: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for LabelGateConfig {
    fn default() -> Self {
        Self {
            nodes: 150,
            dims: vec![2, 3, 4],
            pairs: 3,
            seed: 2010,
        }
    }
}

/// One dimension's deterministic label cost.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LabelGatePoint {
    /// The point's label (e.g. `"d = 3"`).
    pub label: String,
    /// Mean labels created per pair by the exhaustive baseline.
    pub exhaustive_labels: f64,
    /// Mean labels created per pair by the ParetoPrep-pruned search.
    pub prepped_labels: f64,
}

/// The checked-in label baseline: configuration plus one point per
/// dimension.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LabelBaseline {
    /// The configuration the numbers belong to.
    pub config: LabelGateConfig,
    /// One entry per swept dimension.
    pub points: Vec<LabelGatePoint>,
}

impl LabelBaseline {
    /// Serializes the baseline as indented JSON (the checked-in format).
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a baseline from its JSON representation.
    ///
    /// # Errors
    /// Returns the underlying JSON error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde::json::from_str(text).map_err(|e| e.to_string())
    }
}

/// Re-measures the label gate: mean labels created per seeded pair, with
/// and without prep, per cost dimension. Byte-identical skylines are
/// asserted inside [`measure_labels`] on every run.
pub fn run_label_gate(config: &LabelGateConfig) -> LabelBaseline {
    let points = config
        .dims
        .iter()
        .map(|&d| {
            let workload = generate_workload(&WorkloadSpec {
                nodes: config.nodes,
                facilities: (config.nodes / 5).max(10),
                cost_types: d,
                distribution: CostDistribution::AntiCorrelated,
                clusters: 4,
                queries: 4,
                seed: config.seed,
            });
            let metrics: LabelMetrics = measure_labels(&workload.graph, config.pairs, config.seed);
            LabelGatePoint {
                label: format!("d = {d}"),
                exhaustive_labels: metrics.exhaustive_labels,
                prepped_labels: metrics.prepped_labels,
            }
        })
        .collect();
    LabelBaseline {
        config: config.clone(),
        points,
    }
}

/// Compares a fresh label-gate run against the checked-in baseline.
/// Returns one message per violation (empty = gate passed); improvements
/// never fail (refresh with `--update` to lock them in).
pub fn compare_label_gate(
    current: &LabelBaseline,
    baseline: &LabelBaseline,
    tolerance: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    if current.config != baseline.config {
        violations.push(format!(
            "label gate configuration changed: baseline {:?} vs current {:?} \
             (re-create the baseline)",
            baseline.config, current.config
        ));
        return violations;
    }
    if current.points.len() != baseline.points.len() {
        violations.push(format!(
            "label gate point count changed: baseline {} vs current {} \
             (re-create the baseline)",
            baseline.points.len(),
            current.points.len()
        ));
        return violations;
    }
    for (cp, bp) in current.points.iter().zip(&baseline.points) {
        if cp.label != bp.label {
            violations.push(format!(
                "label gate point label changed: `{}` vs `{}`",
                bp.label, cp.label
            ));
            continue;
        }
        for (kind, current_labels, baseline_labels) in [
            ("exhaustive", cp.exhaustive_labels, bp.exhaustive_labels),
            ("prepped", cp.prepped_labels, bp.prepped_labels),
        ] {
            if current_labels > baseline_labels * (1.0 + tolerance) {
                violations.push(format!(
                    "labels [{}] {kind}: {current_labels:.1} labels vs baseline \
                     {baseline_labels:.1} (+{:.1}% > {:.0}% allowed)",
                    cp.label,
                    (current_labels / baseline_labels - 1.0) * 100.0,
                    tolerance * 100.0
                ));
            }
        }
    }
    violations
}

/// The fixed configuration of the alpha settled-node gate (stored in the
/// baseline file and cross-checked before comparing numbers).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlphaGateConfig {
    /// Nodes of the seeded gate network.
    pub nodes: usize,
    /// Cost dimensions measured.
    pub dims: Vec<usize>,
    /// Source/target pairs per dimension.
    pub pairs: usize,
    /// Preference vectors per pair.
    pub users: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for AlphaGateConfig {
    fn default() -> Self {
        Self {
            nodes: 150,
            dims: vec![2, 3, 4],
            pairs: 3,
            users: 3,
            seed: 2010,
        }
    }
}

/// One dimension's deterministic scalarized-search cost.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlphaGatePoint {
    /// The point's label (e.g. `"d = 3"`).
    pub label: String,
    /// Mean nodes settled per (pair, α) query by heuristic-free Dijkstra.
    pub dijkstra_settled: f64,
    /// Mean nodes settled per (pair, α) query by prep-backed A*.
    pub astar_settled: f64,
    /// Mean labels created per pair by the prepped path skyline on the
    /// same pairs (pins the serving tier's advantage over the explore
    /// tier).
    pub skyline_labels: f64,
}

/// The checked-in alpha baseline: configuration plus one point per
/// dimension.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlphaSettledBaseline {
    /// The configuration the numbers belong to.
    pub config: AlphaGateConfig,
    /// One entry per swept dimension.
    pub points: Vec<AlphaGatePoint>,
}

impl AlphaSettledBaseline {
    /// Serializes the baseline as indented JSON (the checked-in format).
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a baseline from its JSON representation.
    ///
    /// # Errors
    /// Returns the underlying JSON error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde::json::from_str(text).map_err(|e| e.to_string())
    }
}

/// Re-measures the alpha gate: mean nodes settled per seeded (pair, α)
/// query with and without the prep heuristic, per cost dimension.
/// Byte-identical A*/Dijkstra routes are asserted inside
/// [`measure_scalarized`] on every run.
pub fn run_alpha_gate(config: &AlphaGateConfig) -> AlphaSettledBaseline {
    let points = config
        .dims
        .iter()
        .map(|&d| {
            let workload = generate_workload(&WorkloadSpec {
                nodes: config.nodes,
                facilities: (config.nodes / 5).max(10),
                cost_types: d,
                distribution: CostDistribution::AntiCorrelated,
                clusters: 4,
                queries: 4,
                seed: config.seed,
            });
            let metrics: ScalarMetrics =
                measure_scalarized(&workload.graph, config.pairs, config.users, config.seed);
            AlphaGatePoint {
                label: format!("d = {d}"),
                dijkstra_settled: metrics.dijkstra_settled,
                astar_settled: metrics.astar_settled,
                skyline_labels: metrics.skyline_labels,
            }
        })
        .collect();
    AlphaSettledBaseline {
        config: config.clone(),
        points,
    }
}

/// Compares a fresh alpha-gate run against the checked-in baseline.
/// Returns one message per violation (empty = gate passed); improvements
/// never fail (refresh with `--update` to lock them in).
pub fn compare_alpha_gate(
    current: &AlphaSettledBaseline,
    baseline: &AlphaSettledBaseline,
    tolerance: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    if current.config != baseline.config {
        violations.push(format!(
            "alpha gate configuration changed: baseline {:?} vs current {:?} \
             (re-create the baseline)",
            baseline.config, current.config
        ));
        return violations;
    }
    if current.points.len() != baseline.points.len() {
        violations.push(format!(
            "alpha gate point count changed: baseline {} vs current {} \
             (re-create the baseline)",
            baseline.points.len(),
            current.points.len()
        ));
        return violations;
    }
    for (cp, bp) in current.points.iter().zip(&baseline.points) {
        if cp.label != bp.label {
            violations.push(format!(
                "alpha gate point label changed: `{}` vs `{}`",
                bp.label, cp.label
            ));
            continue;
        }
        for (kind, current_cost, baseline_cost) in [
            ("dijkstra settled", cp.dijkstra_settled, bp.dijkstra_settled),
            ("astar settled", cp.astar_settled, bp.astar_settled),
            ("skyline labels", cp.skyline_labels, bp.skyline_labels),
        ] {
            if current_cost > baseline_cost * (1.0 + tolerance) {
                violations.push(format!(
                    "alpha [{}] {kind}: {current_cost:.1} vs baseline \
                     {baseline_cost:.1} (+{:.1}% > {:.0}% allowed)",
                    cp.label,
                    (current_cost / baseline_cost - 1.0) * 100.0,
                    tolerance * 100.0
                ));
            }
        }
    }
    violations
}

/// The fixed configuration of the index gate (stored in the baseline file
/// and cross-checked before comparing numbers).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IndexGateConfig {
    /// Nodes of the seeded gate network.
    pub nodes: usize,
    /// Cost dimensions measured.
    pub dims: Vec<usize>,
    /// Source/target pairs per dimension.
    pub pairs: usize,
    /// Preference vectors per pair.
    pub users: usize,
    /// Build regions of the gated index build.
    pub regions: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for IndexGateConfig {
    fn default() -> Self {
        Self {
            nodes: 150,
            dims: vec![2, 3, 4],
            pairs: 3,
            users: 3,
            regions: 1,
            seed: 2010,
        }
    }
}

/// One dimension's deterministic index cost.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IndexGatePoint {
    /// The point's label (e.g. `"d = 3"`).
    pub label: String,
    /// Mean nodes settled per (pair, α) query by the index — the
    /// wall-latency proxy.
    pub index_settled: f64,
    /// Mean labels the index skyline settled per pair.
    pub index_sky_settled: f64,
    /// Upward-arc entries of the built index (its size).
    pub arc_entries: f64,
}

/// The checked-in index baseline: configuration plus one point per
/// dimension.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IndexLatencyBaseline {
    /// The configuration the numbers belong to.
    pub config: IndexGateConfig,
    /// One entry per swept dimension.
    pub points: Vec<IndexGatePoint>,
}

impl IndexLatencyBaseline {
    /// Serializes the baseline as indented JSON (the checked-in format).
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a baseline from its JSON representation.
    ///
    /// # Errors
    /// Returns the underlying JSON error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde::json::from_str(text).map_err(|e| e.to_string())
    }
}

/// Re-measures the index gate: the index's settled nodes per seeded query
/// and its size, per cost dimension. Byte-identical answers against the
/// prep tier are asserted inside [`measure_index`] on every run.
pub fn run_index_gate(config: &IndexGateConfig) -> IndexLatencyBaseline {
    let points = config
        .dims
        .iter()
        .map(|&d| {
            let workload = generate_workload(&WorkloadSpec {
                nodes: config.nodes,
                facilities: (config.nodes / 5).max(10),
                cost_types: d,
                distribution: CostDistribution::AntiCorrelated,
                clusters: 4,
                queries: 4,
                seed: config.seed,
            });
            let index = mcn_index::RouteIndex::build(
                &workload.graph,
                &mcn_index::IndexConfig {
                    regions: config.regions.max(1),
                    seed: config.seed,
                    ..mcn_index::IndexConfig::default()
                },
            );
            let metrics: IndexMetrics = measure_index(
                &workload.graph,
                &index,
                config.pairs,
                config.users,
                config.seed,
            );
            IndexGatePoint {
                label: format!("d = {d}"),
                index_settled: metrics.index_settled,
                index_sky_settled: metrics.index_sky_settled,
                arc_entries: index.arc_entries() as f64,
            }
        })
        .collect();
    IndexLatencyBaseline {
        config: config.clone(),
        points,
    }
}

/// Compares a fresh index-gate run against the checked-in baseline.
/// Returns one message per violation (empty = gate passed); improvements
/// never fail (refresh with `--update` to lock them in).
pub fn compare_index_gate(
    current: &IndexLatencyBaseline,
    baseline: &IndexLatencyBaseline,
    tolerance: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    if current.config != baseline.config {
        violations.push(format!(
            "index gate configuration changed: baseline {:?} vs current {:?} \
             (re-create the baseline)",
            baseline.config, current.config
        ));
        return violations;
    }
    if current.points.len() != baseline.points.len() {
        violations.push(format!(
            "index gate point count changed: baseline {} vs current {} \
             (re-create the baseline)",
            baseline.points.len(),
            current.points.len()
        ));
        return violations;
    }
    for (cp, bp) in current.points.iter().zip(&baseline.points) {
        if cp.label != bp.label {
            violations.push(format!(
                "index gate point label changed: `{}` vs `{}`",
                bp.label, cp.label
            ));
            continue;
        }
        for (kind, current_cost, baseline_cost) in [
            ("index settled", cp.index_settled, bp.index_settled),
            (
                "index sky settled",
                cp.index_sky_settled,
                bp.index_sky_settled,
            ),
            ("arc entries", cp.arc_entries, bp.arc_entries),
        ] {
            if current_cost > baseline_cost * (1.0 + tolerance) {
                violations.push(format!(
                    "index [{}] {kind}: {current_cost:.1} vs baseline \
                     {baseline_cost:.1} (+{:.1}% > {:.0}% allowed)",
                    cp.label,
                    (current_cost / baseline_cost - 1.0) * 100.0,
                    tolerance * 100.0
                ));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A single-figure baseline for fast tests (run_gate over all nine
    /// figures is exercised by the binary in CI).
    fn small_baseline() -> GateBaseline {
        let config = GateConfig::default();
        let table = GateTable {
            id: "sky-d".into(),
            points: vec![
                GatePoint {
                    label: "d = 2".into(),
                    lsa_logical_reads: 100.0,
                    cea_logical_reads: 80.0,
                },
                GatePoint {
                    label: "d = 3".into(),
                    lsa_logical_reads: 150.0,
                    cea_logical_reads: 110.0,
                },
            ],
        };
        GateBaseline {
            config,
            tables: vec![table],
        }
    }

    #[test]
    fn identical_runs_pass() {
        let b = small_baseline();
        assert!(compare_gate(&b, &b, GATE_TOLERANCE).is_empty());
    }

    #[test]
    fn small_improvements_and_jitter_pass_regressions_fail() {
        let base = small_baseline();
        let mut current = base.clone();
        current.tables[0].points[0].lsa_logical_reads = 101.9; // +1.9 %
        current.tables[0].points[1].cea_logical_reads = 90.0; // improvement
        assert!(compare_gate(&current, &base, GATE_TOLERANCE).is_empty());
        current.tables[0].points[0].lsa_logical_reads = 103.0; // +3 %
        let violations = compare_gate(&current, &base, GATE_TOLERANCE);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("sky-d"));
        assert!(violations[0].contains("LSA"));
    }

    #[test]
    fn shape_and_config_changes_are_reported() {
        let base = small_baseline();
        let mut current = base.clone();
        current.config.scale = 50;
        assert!(compare_gate(&current, &base, GATE_TOLERANCE)[0].contains("configuration"));
        let mut current = base.clone();
        current.tables[0].points.pop();
        assert!(compare_gate(&current, &base, GATE_TOLERANCE)[0].contains("shape"));
        let mut current = base.clone();
        current.tables[0].points[1].label = "d = 9".into();
        assert!(compare_gate(&current, &base, GATE_TOLERANCE)[0].contains("label"));
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let b = small_baseline();
        let json = b.to_json();
        let parsed = GateBaseline::from_json(&json).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.to_json(), json);
    }

    /// A two-point label baseline for the comparison tests.
    fn small_label_baseline() -> LabelBaseline {
        LabelBaseline {
            config: LabelGateConfig::default(),
            points: vec![
                LabelGatePoint {
                    label: "d = 2".into(),
                    exhaustive_labels: 500.0,
                    prepped_labels: 120.0,
                },
                LabelGatePoint {
                    label: "d = 3".into(),
                    exhaustive_labels: 900.0,
                    prepped_labels: 300.0,
                },
            ],
        }
    }

    #[test]
    fn label_gate_passes_jitter_fails_regressions() {
        let base = small_label_baseline();
        assert!(compare_label_gate(&base, &base, GATE_TOLERANCE).is_empty());
        let mut current = base.clone();
        current.points[0].prepped_labels = 121.9; // +1.6 %
        current.points[1].exhaustive_labels = 850.0; // improvement
        assert!(compare_label_gate(&current, &base, GATE_TOLERANCE).is_empty());
        current.points[1].prepped_labels = 320.0; // +6.7 %
        let violations = compare_label_gate(&current, &base, GATE_TOLERANCE);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("d = 3"));
        assert!(violations[0].contains("prepped"));
    }

    #[test]
    fn label_gate_reports_config_and_shape_changes() {
        let base = small_label_baseline();
        let mut current = base.clone();
        current.config.nodes = 99;
        assert!(compare_label_gate(&current, &base, GATE_TOLERANCE)[0].contains("configuration"));
        let mut current = base.clone();
        current.points.pop();
        assert!(compare_label_gate(&current, &base, GATE_TOLERANCE)[0].contains("point count"));
        let mut current = base.clone();
        current.points[0].label = "d = 9".into();
        assert!(compare_label_gate(&current, &base, GATE_TOLERANCE)[0].contains("label changed"));
    }

    #[test]
    fn label_baseline_round_trips_through_json() {
        let b = small_label_baseline();
        let json = b.to_json();
        let parsed = LabelBaseline::from_json(&json).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn run_label_gate_is_deterministic() {
        let config = LabelGateConfig {
            nodes: 80,
            dims: vec![2],
            pairs: 2,
            seed: 2010,
        };
        let a = run_label_gate(&config);
        let b = run_label_gate(&config);
        assert_eq!(a, b);
        assert!(a.points[0].prepped_labels <= a.points[0].exhaustive_labels);
        assert!(a.points[0].prepped_labels > 0.0);
    }

    /// A two-point alpha baseline for the comparison tests.
    fn small_alpha_baseline() -> AlphaSettledBaseline {
        AlphaSettledBaseline {
            config: AlphaGateConfig::default(),
            points: vec![
                AlphaGatePoint {
                    label: "d = 2".into(),
                    dijkstra_settled: 100.0,
                    astar_settled: 30.0,
                    skyline_labels: 600.0,
                },
                AlphaGatePoint {
                    label: "d = 3".into(),
                    dijkstra_settled: 110.0,
                    astar_settled: 40.0,
                    skyline_labels: 1400.0,
                },
            ],
        }
    }

    #[test]
    fn alpha_gate_passes_jitter_fails_regressions() {
        let base = small_alpha_baseline();
        assert!(compare_alpha_gate(&base, &base, GATE_TOLERANCE).is_empty());
        let mut current = base.clone();
        current.points[0].astar_settled = 30.5; // +1.7 %
        current.points[1].dijkstra_settled = 100.0; // improvement
        assert!(compare_alpha_gate(&current, &base, GATE_TOLERANCE).is_empty());
        current.points[1].astar_settled = 44.0; // +10 %
        let violations = compare_alpha_gate(&current, &base, GATE_TOLERANCE);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("d = 3"));
        assert!(violations[0].contains("astar settled"));
    }

    #[test]
    fn alpha_gate_reports_config_and_shape_changes() {
        let base = small_alpha_baseline();
        let mut current = base.clone();
        current.config.users = 9;
        assert!(compare_alpha_gate(&current, &base, GATE_TOLERANCE)[0].contains("configuration"));
        let mut current = base.clone();
        current.points.pop();
        assert!(compare_alpha_gate(&current, &base, GATE_TOLERANCE)[0].contains("point count"));
        let mut current = base.clone();
        current.points[0].label = "d = 9".into();
        assert!(compare_alpha_gate(&current, &base, GATE_TOLERANCE)[0].contains("label changed"));
    }

    #[test]
    fn alpha_baseline_round_trips_through_json() {
        let b = small_alpha_baseline();
        let json = b.to_json();
        let parsed = AlphaSettledBaseline::from_json(&json).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn run_alpha_gate_is_deterministic() {
        let config = AlphaGateConfig {
            nodes: 80,
            dims: vec![2],
            pairs: 2,
            users: 2,
            seed: 2010,
        };
        let a = run_alpha_gate(&config);
        let b = run_alpha_gate(&config);
        assert_eq!(a, b);
        assert!(a.points[0].astar_settled <= a.points[0].dijkstra_settled);
        assert!(a.points[0].astar_settled > 0.0);
        assert!(a.points[0].skyline_labels > 0.0);
    }

    /// A two-point index baseline for the comparison tests.
    fn small_index_baseline() -> IndexLatencyBaseline {
        IndexLatencyBaseline {
            config: IndexGateConfig::default(),
            points: vec![
                IndexGatePoint {
                    label: "d = 2".into(),
                    index_settled: 20.0,
                    index_sky_settled: 60.0,
                    arc_entries: 2000.0,
                },
                IndexGatePoint {
                    label: "d = 3".into(),
                    index_settled: 25.0,
                    index_sky_settled: 150.0,
                    arc_entries: 3500.0,
                },
            ],
        }
    }

    #[test]
    fn index_gate_passes_jitter_fails_regressions() {
        let base = small_index_baseline();
        assert!(compare_index_gate(&base, &base, GATE_TOLERANCE).is_empty());
        let mut current = base.clone();
        current.points[0].index_settled = 20.3; // +1.5 %
        current.points[1].arc_entries = 3300.0; // improvement
        assert!(compare_index_gate(&current, &base, GATE_TOLERANCE).is_empty());
        current.points[1].index_settled = 27.0; // +8 %
        let violations = compare_index_gate(&current, &base, GATE_TOLERANCE);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("d = 3"));
        assert!(violations[0].contains("index settled"));
    }

    #[test]
    fn index_gate_reports_config_and_shape_changes() {
        let base = small_index_baseline();
        let mut current = base.clone();
        current.config.regions = 9;
        assert!(compare_index_gate(&current, &base, GATE_TOLERANCE)[0].contains("configuration"));
        let mut current = base.clone();
        current.points.pop();
        assert!(compare_index_gate(&current, &base, GATE_TOLERANCE)[0].contains("point count"));
        let mut current = base.clone();
        current.points[0].label = "d = 9".into();
        assert!(compare_index_gate(&current, &base, GATE_TOLERANCE)[0].contains("label changed"));
    }

    #[test]
    fn index_baseline_round_trips_through_json() {
        let b = small_index_baseline();
        let json = b.to_json();
        let parsed = IndexLatencyBaseline::from_json(&json).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn run_index_gate_is_deterministic() {
        let config = IndexGateConfig {
            nodes: 80,
            dims: vec![2],
            pairs: 2,
            users: 2,
            regions: 2,
            seed: 2010,
        };
        let a = run_index_gate(&config);
        let b = run_index_gate(&config);
        assert_eq!(a, b);
        assert!(a.points[0].index_settled > 0.0);
        assert!(a.points[0].arc_entries > 0.0);
    }

    #[test]
    fn run_gate_is_deterministic_for_one_figure() {
        // The property the whole gate rests on: identical config ⇒ identical
        // logical reads. Checked here for one figure (cheap); CI checks all
        // nine through the binary.
        let config = GateConfig::default().experiment_config();
        let a = Experiment::SkylineCostTypes.run_points(&config);
        let b = Experiment::SkylineCostTypes.run_points(&config);
        let reads = |points: &[crate::measure::PointMeasurement]| {
            points
                .iter()
                .map(|p| (p.lsa.logical_reads, p.cea.logical_reads))
                .collect::<Vec<_>>()
        };
        assert_eq!(reads(&a), reads(&b));
        assert!(a.iter().all(|p| p.lsa.logical_reads > 0.0));
    }
}
