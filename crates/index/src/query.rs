//! Index-served queries: bidirectional upward searches that answer both
//! query kinds byte-identically to the prep-backed tier.

use crate::structure::{pareto_merge, RouteIndex, UpArc};
use mcn_alpha::{Preference, ScalarPath};
use mcn_graph::{CostVec, EdgeId, MultiCostGraph};
use mcn_mcpp::ParetoLabel;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Search counters of one index-served query, comparable to the settled /
/// pushed / pruned counters of the prep-backed tier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexQueryStats {
    /// Nodes (alpha) or labels (skyline) taken from the frontier.
    pub settled: u64,
    /// Heap pushes (alpha) or labels inserted (skyline).
    pub pushed: u64,
    /// Upward-arc bundle entries examined.
    pub relaxed: u64,
    /// Stale pops, non-improving relaxations and dominance rejections.
    pub pruned: u64,
}

/// Outcome of [`RouteIndex::alpha_path`]: the α-optimal path (None iff the
/// target is unreachable) plus the search counters.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexAlphaResult {
    /// The α-optimal path, byte-identical to
    /// [`mcn_alpha::scalarized_path`]'s.
    pub path: Option<ScalarPath>,
    /// Search counters.
    pub stats: IndexQueryStats,
}

/// Outcome of [`RouteIndex::skyline_paths`]: the full path skyline plus the
/// search counters.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexSkylineResult {
    /// The path skyline in lexicographic cost order, byte-identical to
    /// `mcn_mcpp::pareto_paths_prepped`'s.
    pub paths: Vec<ParetoLabel>,
    /// Search counters.
    pub stats: IndexQueryStats,
}

/// Heap entry of the scalarized upward Dijkstra — the same reversed
/// `total_cmp` ordering with node-id tie-break as `mcn-alpha`, so the pop
/// order (hence the surviving parent on ties) is deterministic.
#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    key: f64,
    node: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// One direction of the bidirectional scalarized search.
struct Side {
    dist: Vec<f64>,
    parent_node: Vec<u32>,
    parent_frag: Vec<u32>,
    settled: Vec<bool>,
    heap: BinaryHeap<HeapEntry>,
    stopped: bool,
}

impl Side {
    fn new(n: usize, start: u32) -> Self {
        let mut side = Self {
            dist: vec![f64::INFINITY; n],
            parent_node: vec![u32::MAX; n],
            parent_frag: vec![u32::MAX; n],
            settled: vec![false; n],
            heap: BinaryHeap::new(),
            stopped: false,
        };
        side.dist[start as usize] = 0.0;
        side.heap.push(HeapEntry {
            key: 0.0,
            node: start,
        });
        side
    }

    fn top_key(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.key)
    }
}

/// Settles one node of `side`, relaxing its upward arcs; updates the
/// tentative best meeting `(cost, node)` when the node is settled in both
/// directions.
///
/// `stall_arcs` is the *opposite* upward adjacency (`up_in` for the
/// forward search, `up_out` for the backward one): a strictly cheaper
/// arrival at the popped node through one of those downward arcs proves
/// the node cannot be the apex of an optimal up-down path, so its own
/// arcs are never relaxed (stall-on-demand). The popped distance is still
/// the exact upward-search distance, so marking the node settled keeps
/// every remaining meet candidate a real — merely non-optimal — path.
#[allow(clippy::too_many_arguments)]
fn alpha_step(
    side: &mut Side,
    other: &Side,
    arcs: &[Vec<UpArc>],
    stall_arcs: &[Vec<UpArc>],
    pref: &Preference,
    best: &mut f64,
    meet: &mut Option<u32>,
    stats: &mut IndexQueryStats,
) {
    let Some(top) = side.heap.peek().copied() else {
        side.stopped = true;
        return;
    };
    if top.key >= *best {
        // Upward keys only grow: nothing beyond the frontier can improve
        // the best meeting found so far.
        side.stopped = true;
        return;
    }
    side.heap.pop();
    let v = top.node as usize;
    if side.settled[v] {
        stats.pruned += 1;
        return;
    }
    side.settled[v] = true;
    for arc in &stall_arcs[v] {
        let head = arc.head as usize;
        if !side.dist[head].is_finite() {
            continue;
        }
        let mut w = f64::INFINITY;
        for e in &arc.entries {
            let c = pref.cost_of(&e.costs);
            if c < w {
                w = c;
            }
        }
        if side.dist[head] + w < side.dist[v] {
            // Stalled: a downward detour through `head` reaches this node
            // strictly cheaper, so no optimal up-down path peaks here.
            stats.pruned += 1;
            return;
        }
    }
    stats.settled += 1;
    if other.settled[v] {
        let through = side.dist[v] + other.dist[v];
        if through < *best {
            *best = through;
            *meet = Some(top.node);
        }
    }
    let dv = side.dist[v];
    for arc in &arcs[v] {
        let head = arc.head as usize;
        if side.settled[head] {
            stats.pruned += 1;
            continue;
        }
        // The cheapest scalarization over the bundle; strict `<` keeps the
        // first of equals in the deterministic lexicographic order.
        let mut best_w = f64::INFINITY;
        let mut best_frag = u32::MAX;
        for e in &arc.entries {
            stats.relaxed += 1;
            let w = pref.cost_of(&e.costs);
            if w < best_w {
                best_w = w;
                best_frag = e.frag;
            }
        }
        let cand = dv + best_w;
        if cand < side.dist[head] {
            side.dist[head] = cand;
            side.parent_node[head] = top.node;
            side.parent_frag[head] = best_frag;
            side.heap.push(HeapEntry {
                key: cand,
                node: arc.head,
            });
            stats.pushed += 1;
        } else {
            stats.pruned += 1;
        }
    }
}

impl RouteIndex {
    /// The α-optimal `source → target` path through the hierarchy: a
    /// bidirectional upward Dijkstra (forward over `up_out`, backward over
    /// `up_in`) meeting at the apex of the optimal up-down path. The
    /// returned totals and cost vectors are recomputed edge-by-edge in path
    /// order after unpacking, so the result is byte-identical to
    /// [`mcn_alpha::scalarized_path`] (up to the exact-ties caveat on the
    /// crate docs).
    ///
    /// # Panics
    /// Panics if the index shape does not match `graph`/`pref` or an
    /// endpoint is out of range.
    pub fn alpha_path(
        &self,
        graph: &MultiCostGraph,
        source: mcn_graph::NodeId,
        target: mcn_graph::NodeId,
        pref: &Preference,
    ) -> IndexAlphaResult {
        assert_eq!(self.num_nodes, graph.num_nodes(), "index/graph node count");
        assert_eq!(self.dims, graph.num_cost_types(), "index/graph dims");
        assert_eq!(pref.cost_types(), self.dims, "preference dims");
        assert!(source.index() < self.num_nodes && target.index() < self.num_nodes);
        let mut stats = IndexQueryStats::default();
        if source == target {
            stats.settled = 1;
            return IndexAlphaResult {
                path: Some(ScalarPath {
                    total: 0.0,
                    costs: CostVec::zeros(self.dims),
                    edges: Vec::new(),
                }),
                stats,
            };
        }

        let mut fwd = Side::new(self.num_nodes, source.raw());
        let mut bwd = Side::new(self.num_nodes, target.raw());
        let mut best = f64::INFINITY;
        let mut meet: Option<u32> = None;
        while !(fwd.stopped && bwd.stopped) {
            // Alternate by the smaller frontier key, forward on ties.
            let fwd_turn = match (fwd.stopped, bwd.stopped) {
                (true, _) => false,
                (_, true) => true,
                (false, false) => {
                    let fk = fwd.top_key().unwrap_or(f64::INFINITY);
                    let bk = bwd.top_key().unwrap_or(f64::INFINITY);
                    fk <= bk
                }
            };
            if fwd_turn {
                alpha_step(
                    &mut fwd,
                    &bwd,
                    &self.up_out,
                    &self.up_in,
                    pref,
                    &mut best,
                    &mut meet,
                    &mut stats,
                );
            } else {
                alpha_step(
                    &mut bwd,
                    &fwd,
                    &self.up_in,
                    &self.up_out,
                    pref,
                    &mut best,
                    &mut meet,
                    &mut stats,
                );
            }
        }

        let Some(m) = meet else {
            return IndexAlphaResult { path: None, stats };
        };

        // Unpack: forward fragments walk meet → source (each travels
        // parent → child), backward fragments walk meet → target (each
        // travels child → parent); both end up in travel order.
        let mut frags: Vec<u32> = Vec::new();
        let mut cur = m;
        while cur != source.raw() {
            frags.push(fwd.parent_frag[cur as usize]);
            cur = fwd.parent_node[cur as usize];
        }
        frags.reverse();
        let mut cur = m;
        while cur != target.raw() {
            frags.push(bwd.parent_frag[cur as usize]);
            cur = bwd.parent_node[cur as usize];
        }
        let mut edges: Vec<EdgeId> = Vec::new();
        for f in frags {
            self.unpack_into(f, &mut edges);
        }
        // Recompute in path order: the same left fold as the prep-backed
        // A*, so the bits match — the shortcut-order sums never leak out.
        let mut total = 0.0;
        let mut costs = CostVec::zeros(self.dims);
        for &eid in &edges {
            let e = graph.edge(eid);
            total += pref.cost_of(&e.costs);
            costs += e.costs;
        }
        IndexAlphaResult {
            path: Some(ScalarPath {
                total,
                costs,
                edges,
            }),
            stats,
        }
    }

    /// The full `source → target` path skyline through the hierarchy:
    /// Pareto label-correcting searches over both upward directions,
    /// dominance-merged at every meeting node. Costs are recomputed
    /// edge-by-edge in path order, so the result is byte-identical to
    /// `mcn_mcpp::pareto_paths_prepped` (same ties caveat as
    /// [`RouteIndex::alpha_path`]).
    ///
    /// # Panics
    /// Panics if the index shape does not match `graph` or an endpoint is
    /// out of range.
    pub fn skyline_paths(
        &self,
        graph: &MultiCostGraph,
        source: mcn_graph::NodeId,
        target: mcn_graph::NodeId,
    ) -> IndexSkylineResult {
        assert_eq!(self.num_nodes, graph.num_nodes(), "index/graph node count");
        assert_eq!(self.dims, graph.num_cost_types(), "index/graph dims");
        assert!(source.index() < self.num_nodes && target.index() < self.num_nodes);
        let mut stats = IndexQueryStats::default();
        if source == target {
            stats.settled = 1;
            return IndexSkylineResult {
                paths: vec![ParetoLabel {
                    node: target,
                    costs: CostVec::zeros(self.dims),
                    edges: Vec::new(),
                }],
                stats,
            };
        }

        let fwd = self.upward_labels(source.raw(), &self.up_out, &mut stats);
        let bwd = self.upward_labels(target.raw(), &self.up_in, &mut stats);

        // Dominance-merge the combinations at every node reached from both
        // sides. The pre-filter uses the label sums; survivors are
        // re-filtered on path-order costs below, so the final skyline is
        // decided by exactly the arithmetic the prep-backed tier uses.
        let mut combos: Vec<(CostVec, (u32, usize, usize))> = Vec::new();
        for v in 0..self.num_nodes {
            if fwd[v].is_empty() || bwd[v].is_empty() {
                continue;
            }
            for (i, (cf, _)) in fwd[v].iter().enumerate() {
                for (j, (cb, _)) in bwd[v].iter().enumerate() {
                    if !pareto_merge(&mut combos, *cf + *cb, (v as u32, i, j)) {
                        stats.pruned += 1;
                    }
                }
            }
        }

        let mut skyline: Vec<(CostVec, ParetoLabel)> = Vec::new();
        for (_, (v, i, j)) in combos {
            let mut edges: Vec<EdgeId> = Vec::new();
            for &f in &fwd[v as usize][i].1 {
                self.unpack_into(f, &mut edges);
            }
            // Backward fragment lists are stored in reverse travel order.
            for &f in bwd[v as usize][j].1.iter().rev() {
                self.unpack_into(f, &mut edges);
            }
            let mut costs = CostVec::zeros(self.dims);
            for &eid in &edges {
                costs += graph.edge(eid).costs;
            }
            let label = ParetoLabel {
                node: target,
                costs,
                edges,
            };
            if !pareto_merge(&mut skyline, costs, label) {
                stats.pruned += 1;
            }
        }
        let mut paths: Vec<ParetoLabel> = skyline.into_iter().map(|(_, l)| l).collect();
        paths.sort_by(|a, b| a.costs.lex_cmp(&b.costs));
        IndexSkylineResult { paths, stats }
    }

    /// FIFO Pareto label-correcting over one upward direction. Returns the
    /// per-node Pareto sets of `(costs, fragments)`; forward fragment lists
    /// are in travel order, backward ones in reverse travel order (the arc
    /// into the start comes first).
    fn upward_labels(
        &self,
        start: u32,
        arcs: &[Vec<UpArc>],
        stats: &mut IndexQueryStats,
    ) -> Vec<Vec<(CostVec, Vec<u32>)>> {
        let mut labels: Vec<Vec<(CostVec, Vec<u32>)>> = vec![Vec::new(); self.num_nodes];
        labels[start as usize].push((CostVec::zeros(self.dims), Vec::new()));
        let mut queue: VecDeque<(u32, CostVec, Vec<u32>)> = VecDeque::new();
        queue.push_back((start, CostVec::zeros(self.dims), Vec::new()));
        while let Some((node, costs, frags)) = queue.pop_front() {
            // Stale labels — evicted from the node's Pareto set since they
            // were queued — are skipped. Equal cost vectors never co-exist
            // in a set, so membership of the costs identifies the label.
            let set = &labels[node as usize];
            let pos = set.partition_point(|(c, _)| c.lex_cmp(&costs).is_lt());
            if set.get(pos).map(|(c, _)| *c != costs).unwrap_or(true) {
                stats.pruned += 1;
                continue;
            }
            stats.settled += 1;
            for arc in &arcs[node as usize] {
                for e in &arc.entries {
                    stats.relaxed += 1;
                    let nc = costs + e.costs;
                    let mut nf = frags.clone();
                    nf.push(e.frag);
                    if pareto_merge(&mut labels[arc.head as usize], nc, nf.clone()) {
                        stats.pushed += 1;
                        queue.push_back((arc.head, nc, nf));
                    } else {
                        stats.pruned += 1;
                    }
                }
            }
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexConfig;
    use mcn_graph::{GraphBuilder, NodeId};

    fn diamond() -> (MultiCostGraph, NodeId, NodeId) {
        let mut b = GraphBuilder::new(2);
        let s = b.add_node(0.0, 0.0);
        let up = b.add_node(1.0, 1.0);
        let down = b.add_node(1.0, -1.0);
        let t = b.add_node(2.0, 0.0);
        b.add_edge(s, up, CostVec::from_slice(&[1.0, 10.0]))
            .unwrap();
        b.add_edge(up, t, CostVec::from_slice(&[1.0, 10.0]))
            .unwrap();
        b.add_edge(s, down, CostVec::from_slice(&[10.0, 1.0]))
            .unwrap();
        b.add_edge(down, t, CostVec::from_slice(&[10.0, 1.0]))
            .unwrap();
        (b.build().unwrap(), s, t)
    }

    #[test]
    fn diamond_alpha_and_skyline_match_the_direct_algorithms() {
        let (g, s, t) = diamond();
        let idx = RouteIndex::build(&g, &IndexConfig::default());
        for (w0, w1) in [(1.0, 0.0), (0.7, 0.3), (0.5, 0.5), (0.1, 0.9)] {
            let pref = Preference::new(&[w0, w1]).unwrap();
            let direct = mcn_alpha::scalarized_path(&g, s, t, &pref);
            let via = idx.alpha_path(&g, s, t, &pref);
            assert_eq!(via.path, direct.path, "alpha ({w0}, {w1})");
        }
        let direct = mcn_mcpp::pareto_paths(&g, s, t);
        let via = idx.skyline_paths(&g, s, t);
        assert_eq!(via.paths, direct);
        assert_eq!(via.paths.len(), 2);
    }

    #[test]
    fn identical_endpoints_answer_immediately() {
        let (g, s, _) = diamond();
        let idx = RouteIndex::build(&g, &IndexConfig::default());
        let pref = Preference::uniform(2);
        let via = idx.alpha_path(&g, s, s, &pref);
        assert_eq!(via.path.as_ref().unwrap().total, 0.0);
        assert!(via.path.unwrap().edges.is_empty());
        assert_eq!(via.stats.settled, 1);
        let sky = idx.skyline_paths(&g, s, s);
        assert_eq!(sky.paths.len(), 1);
        assert!(sky.paths[0].edges.is_empty());
    }

    #[test]
    fn unreachable_targets_return_empty_results() {
        let mut b = GraphBuilder::new(2);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        let lone = b.add_node(9.0, 9.0);
        b.add_edge(a, c, CostVec::from_slice(&[1.0, 1.0])).unwrap();
        let g = b.build().unwrap();
        let idx = RouteIndex::build(&g, &IndexConfig::default());
        let via = idx.alpha_path(&g, a, lone, &Preference::uniform(2));
        assert!(via.path.is_none());
        assert!(idx.skyline_paths(&g, a, lone).paths.is_empty());
    }

    #[test]
    fn directed_line_routes_one_way_only() {
        let mut b = GraphBuilder::new(2);
        let a = b.add_node(0.0, 0.0);
        let m = b.add_node(1.0, 0.0);
        let c = b.add_node(2.0, 0.0);
        b.add_directed_edge(a, m, CostVec::from_slice(&[1.0, 2.0]))
            .unwrap();
        b.add_directed_edge(m, c, CostVec::from_slice(&[2.0, 1.0]))
            .unwrap();
        let g = b.build().unwrap();
        let idx = RouteIndex::build(&g, &IndexConfig::default());
        let pref = Preference::uniform(2);
        let fwd = idx.alpha_path(&g, a, c, &pref);
        let direct = mcn_alpha::scalarized_path(&g, a, c, &pref);
        assert_eq!(fwd.path, direct.path);
        assert_eq!(fwd.path.unwrap().edges.len(), 2);
        assert!(idx.alpha_path(&g, c, a, &pref).path.is_none());
        assert!(idx.skyline_paths(&g, c, a).paths.is_empty());
    }
}
