//! On-disk record formats for the adjacency and facility files.
//!
//! The layout follows the paper's Figure 2:
//!
//! * The **adjacency file** stores, per node, one record listing its incident
//!   edges: opposite node, edge identifier, the `d`-dimensional cost vector,
//!   and a pointer into the facility file for the facilities lying on that
//!   edge.
//! * The **facility file** stores, per edge, a contiguous run of facility
//!   entries (facility identifier + fractional position along the edge, from
//!   which the partial weights to the end-nodes are computed).
//!
//! Records never straddle a page boundary; facility *runs* may span multiple
//! consecutive pages, but individual 12-byte entries never do.

use crate::codec::{RecordReader, RecordWriter};
use crate::page::PageId;
use mcn_graph::{CostVec, EdgeId, FacilityId, NodeId};

/// Location of a record inside the database: page and in-page byte offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RecordPtr {
    /// The page holding the record.
    pub page: PageId,
    /// Byte offset of the record within the page.
    pub offset: u16,
}

/// Pointer to the facilities of one edge inside the facility file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FacilityRun {
    /// First entry of the run.
    pub start: RecordPtr,
    /// Number of facility entries in the run.
    pub count: u16,
}

/// One entry of a node's adjacency record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdjacencyEntry {
    /// The node at the other end of the edge.
    pub neighbor: NodeId,
    /// The connecting edge.
    pub edge: EdgeId,
    /// Whether the edge can be traversed starting from the record's node
    /// (false for the reverse direction of a directed edge).
    pub traversable: bool,
    /// The edge's cost vector.
    pub costs: CostVec,
    /// Facilities lying on the edge, if any.
    pub facilities: Option<FacilityRun>,
}

/// A node's full adjacency record.
#[derive(Clone, Debug, PartialEq)]
pub struct AdjacencyList {
    /// The node the record belongs to.
    pub node: NodeId,
    /// One entry per incident edge.
    pub entries: Vec<AdjacencyEntry>,
}

const _: () = crate::assert_send_sync::<AdjacencyList>();

/// Size in bytes of one facility entry (facility id + position).
pub const FACILITY_ENTRY_SIZE: usize = 4 + 8;

/// Size in bytes of one adjacency entry for a graph with `d` cost types.
pub const fn adjacency_entry_size(d: usize) -> usize {
    // neighbor + edge + flags + facility (page, offset, count) + d costs
    4 + 4 + 1 + 4 + 2 + 2 + 8 * d
}

/// Size in bytes of a whole adjacency record with the given degree.
pub const fn adjacency_record_size(degree: usize, d: usize) -> usize {
    2 + degree * adjacency_entry_size(d)
}

const FLAG_TRAVERSABLE: u8 = 0b0000_0001;
const FLAG_HAS_FACILITIES: u8 = 0b0000_0010;

/// Encodes an adjacency record into `buf` (which must be large enough; see
/// [`adjacency_record_size`]).
pub fn encode_adjacency_record(buf: &mut [u8], entries: &[AdjacencyEntry]) {
    let mut w = RecordWriter::new(buf);
    w.put_u16(entries.len() as u16);
    for e in entries {
        w.put_u32(e.neighbor.raw());
        w.put_u32(e.edge.raw());
        let mut flags = 0u8;
        if e.traversable {
            flags |= FLAG_TRAVERSABLE;
        }
        if e.facilities.is_some() {
            flags |= FLAG_HAS_FACILITIES;
        }
        w.put_u8(flags);
        let run = e.facilities.unwrap_or(FacilityRun {
            start: RecordPtr {
                page: PageId::new(0),
                offset: 0,
            },
            count: 0,
        });
        w.put_u32(run.start.page.raw());
        w.put_u16(run.start.offset);
        w.put_u16(run.count);
        for c in e.costs.iter() {
            w.put_f64(c);
        }
    }
}

/// Decodes an adjacency record for `node` from `bytes` starting at `offset`.
///
/// `d` is the number of cost types of the store (needed to know the entry
/// width).
pub fn decode_adjacency_record(
    bytes: &[u8],
    offset: usize,
    node: NodeId,
    d: usize,
) -> AdjacencyList {
    let mut r = RecordReader::new(bytes, offset);
    let degree = r.get_u16() as usize;
    let mut entries = Vec::with_capacity(degree);
    for _ in 0..degree {
        let neighbor = NodeId::new(r.get_u32());
        let edge = EdgeId::new(r.get_u32());
        let flags = r.get_u8();
        let fac_page = r.get_u32();
        let fac_offset = r.get_u16();
        let fac_count = r.get_u16();
        let mut costs = CostVec::zeros(d);
        for i in 0..d {
            costs[i] = r.get_f64();
        }
        let facilities = if flags & FLAG_HAS_FACILITIES != 0 {
            Some(FacilityRun {
                start: RecordPtr {
                    page: PageId::new(fac_page),
                    offset: fac_offset,
                },
                count: fac_count,
            })
        } else {
            None
        };
        entries.push(AdjacencyEntry {
            neighbor,
            edge,
            traversable: flags & FLAG_TRAVERSABLE != 0,
            costs,
            facilities,
        });
    }
    AdjacencyList { node, entries }
}

/// Encodes one facility entry at the start of `buf`.
pub fn encode_facility_entry(buf: &mut [u8], facility: FacilityId, position: f64) {
    let mut w = RecordWriter::new(buf);
    w.put_u32(facility.raw());
    w.put_f64(position);
}

/// Decodes one facility entry from `bytes` at `offset`.
pub fn decode_facility_entry(bytes: &[u8], offset: usize) -> (FacilityId, f64) {
    let mut r = RecordReader::new(bytes, offset);
    let id = FacilityId::new(r.get_u32());
    let position = r.get_f64();
    (id, position)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;

    fn sample_entries(d: usize) -> Vec<AdjacencyEntry> {
        vec![
            AdjacencyEntry {
                neighbor: NodeId::new(7),
                edge: EdgeId::new(3),
                traversable: true,
                costs: CostVec::from_slice(&vec![1.5; d]),
                facilities: Some(FacilityRun {
                    start: RecordPtr {
                        page: PageId::new(12),
                        offset: 48,
                    },
                    count: 5,
                }),
            },
            AdjacencyEntry {
                neighbor: NodeId::new(9),
                edge: EdgeId::new(4),
                traversable: false,
                costs: CostVec::from_slice(&vec![2.25; d]),
                facilities: None,
            },
        ]
    }

    #[test]
    fn adjacency_record_roundtrip() {
        for d in [2usize, 4, 5, 8] {
            let entries = sample_entries(d);
            let size = adjacency_record_size(entries.len(), d);
            let mut buf = vec![0u8; size + 16];
            encode_adjacency_record(&mut buf, &entries);
            let decoded = decode_adjacency_record(&buf, 0, NodeId::new(1), d);
            assert_eq!(decoded.node, NodeId::new(1));
            assert_eq!(decoded.entries, entries, "d = {d}");
        }
    }

    #[test]
    fn record_sizes_fit_typical_road_network_degrees() {
        // With the maximum d = 8 a degree-40 intersection still fits one page.
        assert!(adjacency_record_size(40, 8) < PAGE_SIZE);
        assert_eq!(adjacency_entry_size(4), 17 + 32);
        assert_eq!(adjacency_record_size(0, 4), 2);
    }

    #[test]
    fn facility_entry_roundtrip() {
        let mut buf = vec![0u8; 2 * FACILITY_ENTRY_SIZE];
        encode_facility_entry(&mut buf, FacilityId::new(17), 0.375);
        encode_facility_entry(&mut buf[FACILITY_ENTRY_SIZE..], FacilityId::new(18), 1.0);
        assert_eq!(decode_facility_entry(&buf, 0), (FacilityId::new(17), 0.375));
        assert_eq!(
            decode_facility_entry(&buf, FACILITY_ENTRY_SIZE),
            (FacilityId::new(18), 1.0)
        );
    }

    #[test]
    fn empty_adjacency_record_roundtrip() {
        let mut buf = vec![0u8; 4];
        encode_adjacency_record(&mut buf, &[]);
        let decoded = decode_adjacency_record(&buf, 0, NodeId::new(0), 4);
        assert!(decoded.entries.is_empty());
    }
}
