//! Bottom-up contraction: deterministic importance ordering, bounded
//! witness search, shortcut insertion, and the per-region parallel build.

use crate::config::IndexConfig;
use crate::structure::{
    bundle_dominates_weak, bundle_merge, ArcEntry, Fragment, RouteIndex, UpArc,
};
use mcn_graph::{dominates_weak, partition_graph, CostVec, MultiCostGraph, PartitionSpec};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

/// The mutable contraction state: the *core* graph (arcs between
/// not-yet-contracted nodes, as per-node `BTreeMap`s so every iteration
/// order is deterministic) plus the growing fragment arena.
struct Contractor<'a> {
    cfg: &'a IndexConfig,
    d: usize,
    /// Travel direction `v → head`: `out[v][head]` is the Pareto bundle.
    out: Vec<BTreeMap<u32, Vec<ArcEntry>>>,
    /// Travel direction `tail → v`: `inn[v][tail]` mirrors `out[tail][v]`.
    inn: Vec<BTreeMap<u32, Vec<ArcEntry>>>,
    fragments: Vec<Fragment>,
    deleted_neighbors: Vec<u32>,
    shortcuts: u64,
    exact: bool,
}

/// Min-heap entry of the lazy importance queue: smaller score pops first,
/// tie-broken on the smaller node id so the contraction order is a pure
/// function of the input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct OrderEntry {
    score: i64,
    node: u32,
}

impl PartialOrd for OrderEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest score.
        other
            .score
            .cmp(&self.score)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// One contracted node, in contraction order: `(node, up_out, up_in)`.
type ContractedNode = (u32, Vec<UpArc>, Vec<UpArc>);

impl<'a> Contractor<'a> {
    fn new(cfg: &'a IndexConfig, d: usize, n: usize, fragments: Vec<Fragment>) -> Self {
        Self {
            cfg,
            d,
            out: vec![BTreeMap::new(); n],
            inn: vec![BTreeMap::new(); n],
            fragments,
            deleted_neighbors: vec![0; n],
            shortcuts: 0,
            exact: true,
        }
    }

    /// Adds one directed core arc `tail → head`, Pareto-merging into the
    /// existing bundle (parallel edges collapse here).
    fn seed_arc(&mut self, tail: u32, head: u32, costs: CostVec, frag: u32) {
        let bundle = self.out[tail as usize].entry(head).or_default();
        if bundle_merge(bundle, costs, frag) {
            if bundle.len() > self.cfg.max_bundle {
                bundle.truncate(self.cfg.max_bundle);
                self.exact = false;
            }
            let mirrored = bundle.clone();
            self.inn[head as usize].insert(tail, mirrored);
        }
    }

    /// Importance of contracting `v` *now*: simulated shortcut pairs minus
    /// removed arcs (edge difference) plus the contracted-neighbor count.
    fn score(&self, v: u32) -> i64 {
        let inn = &self.inn[v as usize];
        let out = &self.out[v as usize];
        let loops = out.keys().filter(|k| inn.contains_key(k)).count();
        let pairs = inn.len() * out.len() - loops;
        pairs as i64 - (inn.len() + out.len()) as i64 + self.deleted_neighbors[v as usize] as i64
    }

    /// Bounded Pareto BFS `u → w` over the current core avoiding `skip`:
    /// true iff some path's cost vector weakly dominates `cand`, proving
    /// the candidate shortcut redundant. Labels above `cand` in any
    /// component are cut (costs are non-negative, so they can never come
    /// back down); running out of hops or label budget returns `false`,
    /// which *keeps* the candidate — always safe.
    fn witness_dominates(&self, u: u32, w: u32, skip: u32, cand: &CostVec) -> bool {
        let mut budget = self.cfg.witness_budget;
        let mut frontier: Vec<(u32, CostVec)> = vec![(u, CostVec::zeros(self.d))];
        for _ in 0..self.cfg.witness_hops {
            let mut next: Vec<(u32, CostVec)> = Vec::new();
            for (node, costs) in &frontier {
                for (head, bundle) in &self.out[*node as usize] {
                    if *head == skip || *head == u {
                        continue;
                    }
                    for e in bundle {
                        let c = *costs + e.costs;
                        if !dominates_weak(&c, cand) {
                            continue;
                        }
                        if *head == w {
                            return true;
                        }
                        if budget == 0 {
                            return false;
                        }
                        budget -= 1;
                        next.push((*head, c));
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            frontier = next;
        }
        false
    }

    /// Inserts one surviving shortcut entry `u → w`, creating its `Concat`
    /// fragment only now (rejected candidates never pollute the arena).
    fn insert_shortcut(&mut self, u: u32, w: u32, costs: CostVec, f1: u32, f2: u32) {
        let bundle = self.out[u as usize].entry(w).or_default();
        if bundle_dominates_weak(bundle, &costs) {
            return;
        }
        let frag = self.fragments.len() as u32;
        self.fragments.push(Fragment::Concat(f1, f2));
        bundle_merge(bundle, costs, frag);
        self.shortcuts += 1;
        if bundle.len() > self.cfg.max_bundle {
            bundle.truncate(self.cfg.max_bundle);
            self.exact = false;
        }
        let mirrored = bundle.clone();
        self.inn[w as usize].insert(u, mirrored);
    }

    /// Contracts `v`: for every in/out neighbor pair, Pareto-combines the
    /// bundles, drops candidates a witness path dominates, inserts the
    /// rest as shortcuts, then detaches `v` and returns its upward arcs.
    fn contract(&mut self, v: u32) -> (Vec<UpArc>, Vec<UpArc>) {
        let in_arcs: Vec<(u32, Vec<ArcEntry>)> = self.inn[v as usize]
            .iter()
            .map(|(k, b)| (*k, b.clone()))
            .collect();
        let out_arcs: Vec<(u32, Vec<ArcEntry>)> = self.out[v as usize]
            .iter()
            .map(|(k, b)| (*k, b.clone()))
            .collect();
        for (u, ub) in &in_arcs {
            for (w, wb) in &out_arcs {
                if u == w {
                    continue;
                }
                // Pareto set of the pairwise combinations first, so the
                // witness search runs once per *surviving* candidate.
                let mut cands: Vec<(CostVec, (u32, u32))> = Vec::new();
                for e1 in ub {
                    for e2 in wb {
                        let c = e1.costs + e2.costs;
                        crate::structure::pareto_merge(&mut cands, c, (e1.frag, e2.frag));
                    }
                }
                for (c, (f1, f2)) in cands {
                    if self.witness_dominates(*u, *w, v, &c) {
                        continue;
                    }
                    self.insert_shortcut(*u, *w, c, f1, f2);
                }
            }
        }
        let to_up = |arcs: &[(u32, Vec<ArcEntry>)]| -> Vec<UpArc> {
            arcs.iter()
                .map(|(h, b)| UpArc {
                    head: *h,
                    entries: b.clone(),
                })
                .collect()
        };
        let up_out_v = to_up(&out_arcs);
        let up_in_v = to_up(&in_arcs);
        for (w, _) in &out_arcs {
            self.inn[*w as usize].remove(&v);
            self.deleted_neighbors[*w as usize] += 1;
        }
        for (u, _) in &in_arcs {
            self.out[*u as usize].remove(&v);
            self.deleted_neighbors[*u as usize] += 1;
        }
        self.out[v as usize].clear();
        self.inn[v as usize].clear();
        (up_out_v, up_in_v)
    }

    /// Contracts every node of `nodes` bottom-up by lazily re-evaluated
    /// importance, returning them in contraction order.
    fn contract_set(&mut self, nodes: &[u32]) -> Vec<ContractedNode> {
        let mut heap = BinaryHeap::with_capacity(nodes.len());
        for &v in nodes {
            heap.push(OrderEntry {
                score: self.score(v),
                node: v,
            });
        }
        let mut contracted = vec![false; self.out.len()];
        let mut order = Vec::with_capacity(nodes.len());
        while let Some(entry) = heap.pop() {
            if contracted[entry.node as usize] {
                continue;
            }
            let fresh = self.score(entry.node);
            if fresh > entry.score {
                // Lazy update: the neighborhood changed since this entry
                // was queued; requeue with the fresh score.
                heap.push(OrderEntry {
                    score: fresh,
                    node: entry.node,
                });
                continue;
            }
            let (up_out_v, up_in_v) = self.contract(entry.node);
            contracted[entry.node as usize] = true;
            order.push((entry.node, up_out_v, up_in_v));
        }
        order
    }
}

impl RouteIndex {
    /// Builds the hierarchy over `graph`. With `config.regions > 1` the
    /// interior of each partition region is contracted on its own thread
    /// and the boundary overlay sequentially on top; the result depends
    /// only on the inputs, never on scheduling.
    pub fn build(graph: &MultiCostGraph, config: &IndexConfig) -> Self {
        let n = graph.num_nodes();
        let regions = config.regions.clamp(1, n.max(1));
        if regions > 1 {
            build_partitioned(graph, config, regions)
        } else {
            build_sequential(graph, config)
        }
    }
}

/// Seeds every core arc of `graph` whose endpoints satisfy `keep`,
/// creating one `Edge` fragment per used edge (shared by both directions
/// of an undirected edge).
fn seed_edges(c: &mut Contractor<'_>, graph: &MultiCostGraph, keep: impl Fn(u32, u32) -> bool) {
    for e in graph.edges() {
        let (s, t) = (e.source.raw(), e.target.raw());
        if s == t || !keep(s, t) {
            continue;
        }
        let frag = c.fragments.len() as u32;
        c.fragments.push(Fragment::Edge(e.id.raw()));
        c.seed_arc(s, t, e.costs, frag);
        if !e.directed {
            c.seed_arc(t, s, e.costs, frag);
        }
    }
}

fn build_sequential(graph: &MultiCostGraph, config: &IndexConfig) -> RouteIndex {
    let n = graph.num_nodes();
    let d = graph.num_cost_types();
    let mut c = Contractor::new(config, d, n, Vec::new());
    seed_edges(&mut c, graph, |_, _| true);
    let nodes: Vec<u32> = (0..n as u32).collect();
    let order = c.contract_set(&nodes);
    let mut index = empty_index(graph, 1);
    let mut next_rank = 0u32;
    install(&mut index, order, &mut next_rank, 0);
    index.fragments = c.fragments;
    index.shortcuts = c.shortcuts;
    index.exact = c.exact;
    index
}

fn build_partitioned(graph: &MultiCostGraph, config: &IndexConfig, regions: usize) -> RouteIndex {
    let n = graph.num_nodes();
    let d = graph.num_cost_types();
    let spec = PartitionSpec {
        regions,
        seed: config.seed,
    };
    let partition = partition_graph(graph, &spec);

    // Boundary nodes: any endpoint of a region-crossing edge. Interior
    // nodes of distinct regions never share an arc, so each region's
    // interior contracts independently; the boundary forms the overlay.
    let mut is_boundary = vec![false; n];
    for e in graph.edges() {
        if partition.region_of(e.source) != partition.region_of(e.target) {
            is_boundary[e.source.index()] = true;
            is_boundary[e.target.index()] = true;
        }
    }
    let mut interiors: Vec<Vec<u32>> = vec![Vec::new(); regions];
    for v in 0..n {
        if !is_boundary[v] {
            let r = partition.region_of(mcn_graph::NodeId::from(v)).index();
            interiors[r].push(v as u32);
        }
    }

    /// Everything one region thread hands back.
    struct RegionOutcome {
        order: Vec<ContractedNode>,
        /// Boundary-to-boundary arcs left in the region core.
        remaining: Vec<(u32, u32, Vec<ArcEntry>)>,
        fragments: Vec<Fragment>,
        shortcuts: u64,
        exact: bool,
    }

    // mcn-lint: allow(raw-spawn, reason = "per-region contraction workers joined in region order inside this scope; the build is a one-shot precomputation, not engine query work, and the deterministic merge below is independent of scheduling")
    let outcomes: Vec<RegionOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..regions)
            .map(|r| {
                let interior = &interiors[r];
                let partition = &partition;
                s.spawn(move || {
                    let mut c = Contractor::new(config, d, n, Vec::new());
                    seed_edges(&mut c, graph, |a, b| {
                        partition.region_of(mcn_graph::NodeId::new(a)).index() == r
                            && partition.region_of(mcn_graph::NodeId::new(b)).index() == r
                    });
                    let order = c.contract_set(interior);
                    let mut remaining = Vec::new();
                    for v in 0..n {
                        for (w, bundle) in &c.out[v] {
                            remaining.push((v as u32, *w, bundle.clone()));
                        }
                    }
                    RegionOutcome {
                        order,
                        remaining,
                        fragments: c.fragments,
                        shortcuts: c.shortcuts,
                        exact: c.exact,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("region contraction thread panicked"))
            .collect()
    });

    // Deterministic merge in region order: append each region's fragment
    // arena at a fresh offset and remap its fragment references.
    let mut index = empty_index(graph, regions);
    let mut fragments: Vec<Fragment> = Vec::new();
    let mut shortcuts = 0u64;
    let mut exact = true;
    let mut next_rank = 0u32;
    let mut overlay_seed: Vec<(u32, u32, Vec<ArcEntry>)> = Vec::new();
    for outcome in outcomes {
        let offset = fragments.len() as u32;
        for frag in &outcome.fragments {
            fragments.push(match *frag {
                Fragment::Edge(e) => Fragment::Edge(e),
                Fragment::Concat(a, b) => Fragment::Concat(a + offset, b + offset),
            });
        }
        shortcuts += outcome.shortcuts;
        exact &= outcome.exact;
        install(&mut index, outcome.order, &mut next_rank, offset);
        for (u, w, mut bundle) in outcome.remaining {
            for e in &mut bundle {
                e.frag += offset;
            }
            overlay_seed.push((u, w, bundle));
        }
    }

    // The boundary overlay: remaining intra-region arcs plus the crossing
    // edges, contracted sequentially with the top ranks.
    let mut overlay = Contractor::new(config, d, n, fragments);
    overlay.exact = exact;
    overlay.shortcuts = shortcuts;
    for (u, w, bundle) in overlay_seed {
        for e in bundle {
            overlay.seed_arc(u, w, e.costs, e.frag);
        }
    }
    seed_edges(&mut overlay, graph, |a, b| {
        partition.region_of(mcn_graph::NodeId::new(a))
            != partition.region_of(mcn_graph::NodeId::new(b))
    });
    let boundary: Vec<u32> = (0..n as u32).filter(|&v| is_boundary[v as usize]).collect();
    let order = overlay.contract_set(&boundary);
    install(&mut index, order, &mut next_rank, 0);

    debug_assert_eq!(next_rank as usize, n, "every node receives one rank");
    index.fragments = overlay.fragments;
    index.shortcuts = overlay.shortcuts;
    index.exact = overlay.exact;
    index
}

fn empty_index(graph: &MultiCostGraph, regions: usize) -> RouteIndex {
    let n = graph.num_nodes();
    RouteIndex {
        num_nodes: n,
        num_edges: graph.num_edges(),
        dims: graph.num_cost_types(),
        rank: vec![0; n],
        up_out: vec![Vec::new(); n],
        up_in: vec![Vec::new(); n],
        fragments: Vec::new(),
        shortcuts: 0,
        exact: true,
        regions,
    }
}

/// Installs a contraction order into the index: consecutive ranks from
/// `next_rank`, fragment references shifted by `frag_offset`.
fn install(
    index: &mut RouteIndex,
    order: Vec<ContractedNode>,
    next_rank: &mut u32,
    frag_offset: u32,
) {
    for (node, mut up_out, mut up_in) in order {
        if frag_offset != 0 {
            for arc in up_out.iter_mut().chain(up_in.iter_mut()) {
                for e in &mut arc.entries {
                    e.frag += frag_offset;
                }
            }
        }
        index.rank[node as usize] = *next_rank;
        *next_rank += 1;
        index.up_out[node as usize] = up_out;
        index.up_in[node as usize] = up_in;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcn_graph::{GraphBuilder, NodeId};

    fn diamond() -> (MultiCostGraph, NodeId, NodeId) {
        let mut b = GraphBuilder::new(2);
        let s = b.add_node(0.0, 0.0);
        let up = b.add_node(1.0, 1.0);
        let down = b.add_node(1.0, -1.0);
        let t = b.add_node(2.0, 0.0);
        b.add_edge(s, up, CostVec::from_slice(&[1.0, 10.0]))
            .unwrap();
        b.add_edge(up, t, CostVec::from_slice(&[1.0, 10.0]))
            .unwrap();
        b.add_edge(s, down, CostVec::from_slice(&[10.0, 1.0]))
            .unwrap();
        b.add_edge(down, t, CostVec::from_slice(&[10.0, 1.0]))
            .unwrap();
        (b.build().unwrap(), s, t)
    }

    #[test]
    fn diamond_builds_an_exact_hierarchy() {
        let (g, _, _) = diamond();
        let idx = RouteIndex::build(&g, &IndexConfig::default());
        assert!(idx.exact());
        assert_eq!(idx.num_nodes(), 4);
        assert_eq!(idx.dims(), 2);
        // Ranks are a permutation of 0..n.
        let mut ranks: Vec<u32> = (0..4).map(|v| idx.rank_of(v)).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2, 3]);
        // Upward arcs only point to strictly higher ranks.
        for v in 0..4u32 {
            for arc in idx.up_out[v as usize].iter().chain(&idx.up_in[v as usize]) {
                assert!(idx.rank_of(arc.head) > idx.rank_of(v));
            }
        }
    }

    #[test]
    fn witness_search_prunes_dominated_shortcuts() {
        // Line a-b-c plus a direct a-c arc cheaper in both costs: the
        // shortcut a→c created by contracting b is dominated by the direct
        // edge and must be dropped.
        let mut b = GraphBuilder::new(2);
        let a = b.add_node(0.0, 0.0);
        let m = b.add_node(1.0, 0.0);
        let c = b.add_node(2.0, 0.0);
        b.add_edge(a, m, CostVec::from_slice(&[2.0, 2.0])).unwrap();
        b.add_edge(m, c, CostVec::from_slice(&[2.0, 2.0])).unwrap();
        b.add_edge(a, c, CostVec::from_slice(&[1.0, 1.0])).unwrap();
        let g = b.build().unwrap();
        let idx = RouteIndex::build(&g, &IndexConfig::default());
        assert!(idx.exact());
        assert_eq!(
            idx.shortcuts(),
            0,
            "the dominated shortcut was witnessed away"
        );
    }

    #[test]
    fn tiny_bundle_cap_clears_the_exact_flag() {
        // Many incomparable parallel paths force bundles beyond a cap of 1.
        let mut b = GraphBuilder::new(2);
        let s = b.add_node(0.0, 0.0);
        let t = b.add_node(1.0, 0.0);
        let mids: Vec<NodeId> = (0..4).map(|i| b.add_node(0.5, i as f64)).collect();
        for (i, &m) in mids.iter().enumerate() {
            let c = CostVec::from_slice(&[1.0 + i as f64, 4.0 - i as f64]);
            b.add_edge(s, m, c).unwrap();
            b.add_edge(m, t, c).unwrap();
        }
        let g = b.build().unwrap();
        let cfg = IndexConfig {
            max_bundle: 1,
            ..IndexConfig::default()
        };
        let idx = RouteIndex::build(&g, &cfg);
        assert!(!idx.exact(), "a cap of 1 must truncate some bundle");
        // The default cap keeps everything.
        assert!(RouteIndex::build(&g, &IndexConfig::default()).exact());
    }

    #[test]
    fn partitioned_build_is_deterministic_and_complete() {
        let (g, _, _) = diamond();
        let cfg = IndexConfig::with_regions(2);
        let a = RouteIndex::build(&g, &cfg);
        let b = RouteIndex::build(&g, &cfg);
        assert_eq!(a, b, "two builds of the same input must be identical");
        let mut ranks: Vec<u32> = (0..4).map(|v| a.rank_of(v)).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }
}
