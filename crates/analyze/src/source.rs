//! Per-file analysis context: the token stream plus the derived structure
//! rules need — function spans, `#[cfg(test)]` regions, brace matching and
//! parsed `mcn-lint:` suppression directives.

use crate::lexer::{self, LexOutput, Token};

/// A parsed `// mcn-lint: allow(rule, reason = "...")` directive.
#[derive(Clone, Debug)]
pub struct Allow {
    /// Line the directive comment sits on.
    pub line: u32,
    /// The rule it suppresses.
    pub rule: String,
    /// The mandatory human-readable reason.
    pub reason: String,
    /// Lines the suppression covers: the directive's own line and the
    /// first following code line (so the comment can trail a statement or
    /// sit on its own line above one).
    pub covers: Vec<u32>,
}

/// The span of one `fn` item in the token stream.
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub start: usize,
    /// Token index of the body's opening `{` (== `end` when the item has
    /// no body, e.g. a trait method declaration).
    pub body_start: usize,
    /// Token index one past the body's closing `}`.
    pub end: usize,
    /// Line of the `fn` keyword.
    pub line: u32,
}

impl FnSpan {
    /// True if the token index falls inside this function's body.
    pub fn contains(&self, idx: usize) -> bool {
        idx >= self.body_start && idx < self.end
    }
}

/// One malformed `mcn-lint:` comment, reported as an `allow-syntax` finding.
#[derive(Clone, Debug)]
pub struct BadDirective {
    /// Line of the comment.
    pub line: u32,
    /// What was wrong with it.
    pub message: String,
}

/// A lexed and structurally indexed source file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Name of the crate directory the file belongs to (`analyze`,
    /// `storage`, …; the workspace root package is `mcn`).
    pub crate_name: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Raw source lines, for excerpts.
    pub lines: Vec<String>,
    /// Parsed suppression directives.
    pub allows: Vec<Allow>,
    /// Malformed directives (surfaced as findings by the driver).
    pub bad_directives: Vec<BadDirective>,
    /// Top-level `fn` spans, in source order.
    pub fns: Vec<FnSpan>,
    /// Token ranges `[start, end)` that are test-only code
    /// (`#[cfg(test)] mod … { … }` bodies; the whole file when it lives
    /// under `tests/` or `benches/`).
    pub test_ranges: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Builds a `SourceFile` from raw text. `path` should be
    /// workspace-relative; it is used for crate attribution and for the
    /// tests/-directory heuristic.
    pub fn from_str(path: &str, text: &str) -> SourceFile {
        let path = path.replace('\\', "/");
        let crate_name = crate_name_of(&path);
        let LexOutput { tokens, directives } = lexer::lex(text);
        let lines: Vec<String> = text.lines().map(|l| l.to_string()).collect();

        let mut allows = Vec::new();
        let mut bad_directives = Vec::new();
        for d in directives {
            match parse_directive(&d.text) {
                Ok((rule, reason)) => {
                    let covers = covered_lines(d.line, &tokens);
                    allows.push(Allow {
                        line: d.line,
                        rule,
                        reason,
                        covers,
                    });
                }
                Err(message) => bad_directives.push(BadDirective {
                    line: d.line,
                    message,
                }),
            }
        }

        let fns = find_fns(&tokens);
        let whole_file_is_test =
            path.contains("/tests/") || path.contains("/benches/") || path.starts_with("tests/");
        let test_ranges = if whole_file_is_test {
            vec![(0, tokens.len())]
        } else {
            find_test_ranges(&tokens)
        };

        SourceFile {
            path,
            crate_name,
            tokens,
            lines,
            allows,
            bad_directives,
            fns,
            test_ranges,
        }
    }

    /// True if a finding of `rule` at `line` is suppressed by an allow.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && a.covers.contains(&line))
    }

    /// True if the token index lies in test-only code.
    pub fn in_test_code(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| idx >= s && idx < e)
    }

    /// The trimmed source text of a 1-based line, for finding excerpts.
    pub fn excerpt(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// The innermost function span containing the token index.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnSpan> {
        // Nested fns appear after their parent in `fns` with a tighter
        // range; take the last match for the innermost one.
        self.fns.iter().filter(|f| f.contains(idx)).next_back()
    }

    /// Token index one past the `}` matching the `{` at `open`.
    pub fn matching_close(&self, open: usize) -> usize {
        matching_close(&self.tokens, open)
    }
}

fn crate_name_of(path: &str) -> String {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("unknown").to_string(),
        _ => "mcn".to_string(),
    }
}

/// Parses the text of a `mcn-lint:` comment into `(rule, reason)`.
fn parse_directive(text: &str) -> Result<(String, String), String> {
    let rest = match text.split_once("mcn-lint:") {
        Some((_, rest)) => rest.trim(),
        None => return Err("missing mcn-lint: prefix".to_string()),
    };
    let inner = rest
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('('))
        .and_then(|r| r.rfind(')').map(|i| &r[..i]))
        .ok_or_else(|| format!("expected `allow(rule, reason = \"...\")`, got `{rest}`"))?;
    let (rule, reason_part) = inner
        .split_once(',')
        .ok_or_else(|| "allow() needs both a rule and a reason".to_string())?;
    let rule = rule.trim().to_string();
    if rule.is_empty() {
        return Err("empty rule name in allow()".to_string());
    }
    let reason = reason_part
        .trim()
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .ok_or_else(|| "allow() reason must be written `reason = \"...\"`".to_string())?;
    let reason = reason.trim_matches('"').trim().to_string();
    if reason.is_empty() {
        return Err("allow() reason must not be empty".to_string());
    }
    Ok((rule, reason))
}

/// The lines a directive at `line` suppresses: its own line plus the first
/// line after it that has any code on it.
fn covered_lines(line: u32, tokens: &[Token]) -> Vec<u32> {
    let mut covers = vec![line];
    if let Some(next) = tokens.iter().map(|t| t.line).filter(|&l| l > line).min() {
        covers.push(next);
    }
    covers
}

/// Token index one past the `}` matching the `{` at `open`; tolerant of
/// truncated streams (returns `tokens.len()`).
pub(crate) fn matching_close(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_op("{") {
            depth += 1;
        } else if t.is_op("}") {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
    }
    tokens.len()
}

/// Finds every `fn` item span. Handles return types, where clauses and
/// bodiless trait-method declarations.
fn find_fns(tokens: &[Token]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            if let Some(name_tok) = tokens.get(i + 1) {
                if let Some(name) = name_tok.ident() {
                    let mut j = i + 2;
                    // Skip to the body `{`, or a `;` for declarations.
                    // Generic params / argument parens / return types can
                    // contain braces only inside closures in const generic
                    // exprs — not present in this codebase; a simple scan
                    // that respects paren depth suffices.
                    let mut paren = 0i32;
                    let mut bracket = 0i32;
                    let (mut body_start, mut end) = (tokens.len(), tokens.len());
                    while j < tokens.len() {
                        let t = &tokens[j];
                        if t.is_op("(") {
                            paren += 1;
                        } else if t.is_op(")") {
                            paren -= 1;
                        } else if t.is_op("[") {
                            bracket += 1;
                        } else if t.is_op("]") {
                            bracket -= 1;
                        } else if paren == 0 && bracket == 0 {
                            if t.is_op("{") {
                                body_start = j;
                                end = matching_close(tokens, j);
                                break;
                            }
                            if t.is_op(";") {
                                body_start = j;
                                end = j;
                                break;
                            }
                        }
                        j += 1;
                    }
                    fns.push(FnSpan {
                        name: name.to_string(),
                        start: i,
                        body_start,
                        end,
                        line: tokens[i].line,
                    });
                }
            }
        }
        i += 1;
    }
    fns
}

/// Finds `#[cfg(test)] mod name { … }` body ranges.
fn find_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].is_op("#")
            && tokens[i + 1].is_op("[")
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_op("(")
            && tokens[i + 4].is_ident("test")
            && tokens[i + 5].is_op(")")
            && tokens[i + 6].is_op("]");
        if is_cfg_test {
            // Allow further attributes between the cfg and the mod.
            let mut j = i + 7;
            while j < tokens.len() && tokens[j].is_op("#") {
                // Skip `#[...]`.
                let mut depth = 0i32;
                j += 1;
                while j < tokens.len() {
                    if tokens[j].is_op("[") {
                        depth += 1;
                    } else if tokens[j].is_op("]") {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            if tokens.get(j).is_some_and(|t| t.is_ident("mod")) {
                // `mod name {` or `mod name;` (the latter has no inline
                // range; the referenced file is caught by path rules).
                let mut k = j + 1;
                while k < tokens.len() && !tokens[k].is_op("{") && !tokens[k].is_op(";") {
                    k += 1;
                }
                if tokens.get(k).is_some_and(|t| t.is_op("{")) {
                    ranges.push((k, matching_close(tokens, k)));
                }
            }
        }
        i += 1;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_spans_and_test_ranges() {
        let f = SourceFile::from_str(
            "crates/x/src/lib.rs",
            concat!(
                "pub fn alpha(a: u32) -> u32 { a + 1 }\n",
                "fn beta() { alpha(2); }\n",
                "#[cfg(test)]\n",
                "mod tests {\n",
                "    #[test]\n",
                "    fn gamma() { beta(); }\n",
                "}\n",
            ),
        );
        assert_eq!(f.crate_name, "x");
        let names: Vec<&str> = f.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta", "gamma"]);
        let gamma = &f.fns[2];
        assert!(f.in_test_code(gamma.start));
        let alpha = &f.fns[0];
        assert!(!f.in_test_code(alpha.start));
    }

    #[test]
    fn tests_directory_is_all_test_code() {
        let f = SourceFile::from_str("crates/x/tests/t.rs", "fn helper() {}\n");
        assert!(f.in_test_code(0));
        let root = SourceFile::from_str("tests/t.rs", "fn helper() {}\n");
        assert_eq!(root.crate_name, "mcn");
        assert!(root.in_test_code(0));
    }

    #[test]
    fn allow_parsing_and_coverage() {
        let f = SourceFile::from_str(
            "crates/x/src/lib.rs",
            concat!(
                "// mcn-lint: allow(float-eq, reason = \"exact sentinel compare\")\n",
                "fn guard(v: f64) -> bool { v == 0.0 }\n",
                "fn other(v: f64) -> bool { v == 1.0 }\n",
            ),
        );
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rule, "float-eq");
        assert!(f.allowed("float-eq", 2));
        assert!(!f.allowed("float-eq", 3));
        assert!(!f.allowed("lock-across-io", 2));
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let f = SourceFile::from_str(
            "crates/x/src/lib.rs",
            "fn guard(v: f64) -> bool { v == 0.0 } // mcn-lint: allow(float-eq, reason = \"ok\")\n",
        );
        assert!(f.allowed("float-eq", 1));
    }

    #[test]
    fn malformed_allow_is_reported() {
        let f = SourceFile::from_str(
            "crates/x/src/lib.rs",
            concat!(
                "// mcn-lint: allow(float-eq)\n",
                "// mcn-lint: deny(float-eq, reason = \"x\")\n",
                "// mcn-lint: allow(float-eq, reason = \"\")\n",
            ),
        );
        assert!(f.allows.is_empty());
        assert_eq!(f.bad_directives.len(), 3);
    }

    #[test]
    fn enclosing_fn_prefers_innermost() {
        let f = SourceFile::from_str(
            "crates/x/src/lib.rs",
            "fn outer() {\n    fn inner() { let _x = 1; }\n}\n",
        );
        let one = f
            .tokens
            .iter()
            .position(|t| matches!(t.kind, crate::lexer::TokenKind::Number { .. }))
            .unwrap();
        assert_eq!(f.enclosing_fn(one).unwrap().name, "inner");
    }
}
