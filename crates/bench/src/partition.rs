//! The `partition` experiment: region-partitioned storage × region-affine
//! scheduling.
//!
//! For each swept region count `R` the experiment partitions the workload
//! graph (`mcn_graph::partition_graph`), builds a
//! [`PartitionedStore`] — one disk + buffer pool per region — and pushes the
//! same shuffled batch of skyline/top-k queries through the
//! [`QueryEngine`] twice: once with plain FIFO claiming and once with
//! **region-affine** claiming ([`QueryEngine::run_batch_with_regions`]).
//! Reported per row: QPS, logical/physical reads, buffer hit ratio, the
//! cross-region read fraction, and the partition's boundary-edge fraction.
//!
//! Two facts are *asserted* on every run, not just reported:
//!
//! * every region count and both scheduling modes produce **byte-identical
//!   per-query results** (fingerprint comparison against a monolithic
//!   baseline store), and
//! * at each region count, affine and FIFO scheduling issue **exactly the
//!   same logical page reads** — scheduling only changes *where* the pages
//!   are cached, never what is read.
//!
//! Affinity pays off through the buffer pools: per-region pools are small,
//! and two workers co-running queries of the *same* region evict each
//! other's pages. Affine claiming keeps one worker per region while other
//! regions have pending work, so the pools stay hot — fewer physical reads,
//! which (with a non-zero simulated read latency) is wall-clock QPS.

use crate::report::json_safe;
use mcn_engine::{QueryEngine, QueryRequest};
use mcn_gen::{generate_workload, workload_on_graph, Workload, WorkloadSpec};
use mcn_graph::{partition_graph, PartitionSpec, RegionId};
use mcn_storage::{BufferConfig, MCNStore, PartitionedStore, StoreView};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// Identifier of the partition experiment in the `experiments` binary and
/// its report file name (`<id>.json`).
pub const PARTITION_ID: &str = "partition";

/// Configuration of a partition run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// Scale-down divider applied to the paper's default workload (ignored
    /// when the workload comes from a file).
    pub scale: usize,
    /// Number of queries in the batch.
    pub batch: usize,
    /// Region counts to sweep.
    pub regions: Vec<usize>,
    /// Worker threads for the concurrent runs.
    pub workers: usize,
    /// Buffer size as a fraction of each region store's data pages.
    pub buffer: f64,
    /// `k` used for the top-k members of the batch.
    pub k: usize,
    /// Simulated blocking latency per physical page read, in microseconds —
    /// what turns saved buffer misses into measurable QPS.
    pub read_latency_us: u64,
    /// Master seed for the workload, the partition and the batch.
    pub seed: u64,
    /// Where the network came from: `"synthetic"` or a loaded file path.
    pub source: String,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        Self {
            // 1/100 of the paper workload: queries expand a neighbourhood
            // rather than half the network, which is the locality a
            // region-partitioned deployment presumes (at 1/50 the default
            // anti-correlated skylines sweep most pages of every region and
            // no scheduler can matter).
            scale: 100,
            batch: 64,
            regions: vec![1, 2, 4, 8],
            workers: 4,
            // Large enough that one query's working set stays cached but two
            // co-running same-region queries evict each other — the regime
            // region-affine scheduling is built for. (The paper's 0–2 %
            // settings are swept by the figure experiments instead.)
            buffer: 0.2,
            k: 4,
            read_latency_us: 100,
            seed: 2010,
            source: "synthetic".to_string(),
        }
    }
}

/// One row of the partition table: one region count × one scheduling mode.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PartitionRow {
    /// Region count of this row.
    pub regions: usize,
    /// `true` for region-affine claiming, `false` for plain FIFO.
    pub affine: bool,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Queries per second of wall-clock time.
    pub qps: f64,
    /// QPS relative to the FIFO row at the same region count (1.0 for the
    /// FIFO rows themselves).
    pub qps_vs_fifo: f64,
    /// Total logical page requests over the batch (asserted equal between
    /// the two modes at each region count).
    pub logical_reads: u64,
    /// Total physical page reads over the batch.
    pub physical_reads: u64,
    /// Aggregate buffer hit ratio over the batch.
    pub hit_ratio: f64,
    /// Fraction of classified adjacency/facility reads that left the
    /// querying thread's seed region.
    pub cross_read_fraction: f64,
    /// Fraction of network edges cut by the partition.
    pub boundary_edge_fraction: f64,
    /// Claims where a worker stayed on its previous region (affine only).
    pub affine_hits: u64,
    /// FIFO-fallback claims onto an already-served region (affine only).
    pub affine_steals: u64,
}

/// The persisted partition report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PartitionTable {
    /// Always [`PARTITION_ID`].
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The configuration that produced the rows.
    pub config: PartitionConfig,
    /// Queries in the batch.
    pub queries: usize,
    /// Logical reads of the monolithic baseline run (single store).
    pub monolithic_logical_reads: u64,
    /// Two rows (FIFO, affine) per swept region count.
    pub rows: Vec<PartitionRow>,
}

impl PartitionTable {
    /// Serializes the table as indented JSON (the `--out` report format).
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a table from its JSON report representation.
    ///
    /// # Errors
    /// Returns the underlying JSON error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde::json::from_str(text).map_err(|e| e.to_string())
    }
}

/// Builds the shuffled mixed batch for the partition experiment: skyline and
/// batch top-k queries cycling over the workload's locations, then
/// deterministically shuffled so that consecutive requests rarely share a
/// region (the scheduling-unfriendly arrival order a live service sees).
fn build_batch(workload: &Workload, config: &PartitionConfig) -> Vec<QueryRequest> {
    let mut requests = crate::requests::mixed_request_batch(
        &workload.queries,
        workload.spec.cost_types,
        config.batch,
        config.seed ^ 0x0AFF_17E5,
        |i, location, weights, algorithm| {
            if i % 3 == 0 {
                QueryRequest::Skyline {
                    location,
                    algorithm,
                }
            } else {
                QueryRequest::TopK {
                    location,
                    weights,
                    k: config.k,
                    algorithm,
                }
            }
        },
    );
    // Deterministic Fisher–Yates so consecutive requests rarely share a
    // region (a separate stream from the weight draws).
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x5471_FF1E);
    for i in (1..requests.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        requests.swap(i, j);
    }
    requests
}

/// Runs the partition sweep on the paper-scaled synthetic workload at
/// `config.scale` (the default 1/100 keeps expansions regional — see
/// [`PartitionConfig::default`]).
pub fn run_partition(config: &PartitionConfig) -> PartitionTable {
    let mut spec = WorkloadSpec::paper_scaled(config.scale);
    spec.seed = config.seed;
    run_partition_on(config, &generate_workload(&spec))
}

/// Runs the partition sweep on an explicit workload (e.g. derived from a
/// DIMACS network via [`dimacs_workload`]).
///
/// # Panics
/// Panics if any region count or scheduling mode changes a query result, or
/// if affine scheduling changes the logical read count — either would mean
/// partitioned execution is not equivalent to the monolithic store.
pub fn run_partition_on(config: &PartitionConfig, workload: &Workload) -> PartitionTable {
    assert!(!config.regions.is_empty(), "no region counts to sweep");
    let latency = Duration::from_micros(config.read_latency_us);
    let requests = build_batch(workload, config);

    // Monolithic baseline: the ground truth for byte-identical results.
    let mono = Arc::new(
        MCNStore::build_on(
            &workload.graph,
            Arc::new(mcn_storage::InMemoryDisk::with_read_latency(latency)),
            BufferConfig::Fraction(config.buffer),
        )
        .expect("monolithic store builds"),
    );
    let mono_result = QueryEngine::new(mono.clone(), 1).run_batch(&requests);
    let mono_prints: Vec<String> = mono_result
        .outcomes
        .iter()
        .map(|o| o.output.fingerprint())
        .collect();

    let mut rows = Vec::with_capacity(config.regions.len() * 2);
    for &region_count in &config.regions {
        let map = partition_graph(
            &workload.graph,
            &PartitionSpec {
                regions: region_count,
                seed: config.seed,
            },
        );
        let boundary_fraction = map.boundary_edges() as f64 / workload.graph.num_edges() as f64;
        let tags: Vec<RegionId> = requests
            .iter()
            .map(|r| map.region_of_location(&workload.graph, r.location()))
            .collect();
        let store = Arc::new(
            PartitionedStore::build_in_memory_with_latency(
                &workload.graph,
                map,
                BufferConfig::Fraction(config.buffer),
                latency,
            )
            .expect("partitioned store builds"),
        );
        let engine = QueryEngine::new(store.clone(), config.workers);

        let mut fifo_logical = 0u64;
        let mut fifo_qps = 0.0f64;
        for affine in [false, true] {
            // Identical starting conditions for every run.
            store.clear_buffers();
            store.reset_region_traffic();
            let result = engine.run_batch_with_regions(&requests, &tags, affine);
            let prints: Vec<String> = result
                .outcomes
                .iter()
                .map(|o| o.output.fingerprint())
                .collect();
            assert_eq!(
                mono_prints, prints,
                "{region_count} regions (affine = {affine}) changed query results"
            );
            let logical = result.stats.io.logical_reads;
            if affine {
                assert_eq!(
                    fifo_logical, logical,
                    "{region_count} regions: affine scheduling changed the logical reads"
                );
            } else {
                fifo_logical = logical;
                fifo_qps = result.stats.qps;
            }
            let traffic = store.region_traffic();
            rows.push(PartitionRow {
                regions: region_count,
                affine,
                wall_seconds: json_safe(result.stats.wall.as_secs_f64()),
                qps: json_safe(result.stats.qps),
                qps_vs_fifo: json_safe(if affine && fifo_qps > 0.0 {
                    result.stats.qps / fifo_qps
                } else {
                    1.0
                }),
                logical_reads: logical,
                physical_reads: result.stats.io.physical_reads,
                hit_ratio: json_safe(result.stats.io.hit_ratio()),
                cross_read_fraction: json_safe(traffic.cross_fraction()),
                boundary_edge_fraction: json_safe(boundary_fraction),
                affine_hits: result.stats.affine_hits,
                affine_steals: result.stats.affine_steals,
            });
        }
    }

    PartitionTable {
        id: PARTITION_ID.to_string(),
        title: format!(
            "Region-partitioned storage — {} mixed queries over {}, affinity off/on",
            requests.len(),
            config.source
        ),
        config: config.clone(),
        queries: requests.len(),
        monolithic_logical_reads: mono_result.stats.io.logical_reads,
        rows,
    }
}

/// Loads a DIMACS `.gr` network and derives a partition-experiment workload
/// from it: `d = 4` anti-correlated costs around the arc weights, clustered
/// facilities and seeded query locations (see
/// [`mcn_gen::workload_on_graph`]). The sizes scale with the loaded network
/// so small test fixtures stay cheap.
///
/// # Errors
/// Returns a message when the file cannot be read or parsed.
pub fn dimacs_workload(path: &str, config: &PartitionConfig) -> Result<Workload, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let graph = mcn_io::load_dimacs_gr(std::io::BufReader::new(file))
        .map_err(|e| format!("cannot parse {path}: {e}"))?;
    if graph.num_edges() == 0 {
        return Err(format!("{path}: network has no arcs"));
    }
    let spec = WorkloadSpec {
        nodes: graph.num_nodes(),
        facilities: (graph.num_nodes() / 2).clamp(10, 100_000),
        cost_types: 4,
        queries: 16.min(graph.num_nodes()),
        seed: config.seed,
        ..WorkloadSpec::paper_default()
    };
    Ok(workload_on_graph(&graph, &spec))
}

/// Renders a partition table in the fixed-width style of the other reports.
pub fn render_partition_table(table: &PartitionTable) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {} [{}]\n", table.title, table.id));
    out.push_str(&format!(
        "(batch of {} queries, {} workers, buffer {:.1}% per region, {} µs per physical read; \
         monolithic baseline: {} logical reads)\n",
        table.queries,
        table.config.workers,
        table.config.buffer * 100.0,
        table.config.read_latency_us,
        table.monolithic_logical_reads
    ));
    out.push_str(&format!(
        "{:<8} {:<9} {:>9} {:>9} {:>13} {:>14} {:>9} {:>8} {:>9}\n",
        "regions",
        "schedule",
        "QPS",
        "vs FIFO",
        "logical reads",
        "physical reads",
        "hit",
        "cross",
        "boundary"
    ));
    for r in &table.rows {
        out.push_str(&format!(
            "{:<8} {:<9} {:>9.1} {:>8.2}x {:>13} {:>14} {:>9.3} {:>7.1}% {:>8.1}%\n",
            r.regions,
            if r.affine { "affine" } else { "fifo" },
            r.qps,
            r.qps_vs_fifo,
            r.logical_reads,
            r.physical_reads,
            r.hit_ratio,
            r.cross_read_fraction * 100.0,
            r.boundary_edge_fraction * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> PartitionConfig {
        PartitionConfig {
            scale: 2000,
            batch: 12,
            regions: vec![1, 2, 4],
            workers: 2,
            read_latency_us: 0, // keep unit tests fast
            ..Default::default()
        }
    }

    #[test]
    fn partition_sweep_is_equivalent_and_consistent() {
        let table = run_partition(&tiny_config());
        // Two rows (fifo, affine) per region count; the in-run assertions
        // already proved fingerprint equality with the monolithic store.
        assert_eq!(table.rows.len(), 6);
        for pair in table.rows.chunks(2) {
            assert!(!pair[0].affine && pair[1].affine);
            assert_eq!(pair[0].regions, pair[1].regions);
            assert_eq!(pair[0].logical_reads, pair[1].logical_reads);
            assert!(pair[0].qps > 0.0 && pair[1].qps > 0.0);
        }
        // One region cuts nothing and never crosses.
        assert_eq!(table.rows[0].boundary_edge_fraction, 0.0);
        assert_eq!(table.rows[0].cross_read_fraction, 0.0);
        // More regions cut more edges and cross-region reads appear.
        let four = &table.rows[4];
        assert!(four.boundary_edge_fraction > 0.0);
        assert!(four.cross_read_fraction > 0.0);
        assert!(four.cross_read_fraction < 1.0);
    }

    #[test]
    fn table_round_trips_through_json() {
        let table = run_partition(&PartitionConfig {
            regions: vec![1, 2],
            batch: 6,
            ..tiny_config()
        });
        let json = table.to_json();
        let parsed = PartitionTable::from_json(&json).unwrap();
        assert_eq!(parsed, table);
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn batch_is_deterministic_and_shuffled() {
        let config = tiny_config();
        let mut spec = WorkloadSpec::paper_scaled(config.scale);
        spec.seed = config.seed;
        let workload = generate_workload(&spec);
        let a = build_batch(&workload, &config);
        let b = build_batch(&workload, &config);
        assert_eq!(a, b);
        assert!(a.iter().any(|r| r.kind() == "skyline"));
        assert!(a.iter().any(|r| r.kind() == "topk"));
    }

    #[test]
    fn dimacs_workload_loads_and_runs_the_sweep() {
        // A small two-way grid as a DIMACS fixture.
        let mut gr = String::from("c tiny fixture\np sp 9 24\n");
        for y in 0..3u32 {
            for x in 0..3u32 {
                let v = y * 3 + x + 1;
                if x < 2 {
                    gr.push_str(&format!("a {v} {} {}\n", v + 1, 3 + x + y));
                    gr.push_str(&format!("a {} {v} {}\n", v + 1, 3 + x + y));
                }
                if y < 2 {
                    gr.push_str(&format!("a {v} {} {}\n", v + 3, 4 + x + y));
                    gr.push_str(&format!("a {} {v} {}\n", v + 3, 4 + x + y));
                }
            }
        }
        let dir = std::env::temp_dir().join("mcn-partition-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.gr");
        std::fs::write(&path, gr).unwrap();

        let mut config = PartitionConfig {
            regions: vec![1, 2],
            batch: 6,
            workers: 2,
            source: path.display().to_string(),
            ..tiny_config()
        };
        config.read_latency_us = 0;
        let workload = dimacs_workload(path.to_str().unwrap(), &config).unwrap();
        assert_eq!(workload.graph.num_nodes(), 9);
        assert_eq!(workload.graph.num_cost_types(), 4);
        assert!(workload.graph.num_facilities() >= 4);
        let table = run_partition_on(&config, &workload);
        assert_eq!(table.rows.len(), 4);
        assert!(table.title.contains("tiny.gr"));

        // Errors are reported, not panicked.
        assert!(dimacs_workload("/nonexistent/road.gr", &config).is_err());
    }

    #[test]
    fn rendered_table_mentions_the_columns() {
        let table = run_partition(&PartitionConfig {
            regions: vec![2],
            batch: 6,
            ..tiny_config()
        });
        let text = render_partition_table(&table);
        assert!(text.contains("regions"));
        assert!(text.contains("affine"));
        assert!(text.contains("cross"));
    }
}
