//! Block nested loops (BNL) skyline computation.

use crate::SkylineItem;
use mcn_graph::{dominates, dominates_weak};

/// Computes the skyline of `items` with the block-nested-loops algorithm of
/// Börzsönyi et al. (ICDE 2001).
///
/// A *window* of currently non-dominated items is maintained; every input item
/// is compared against the window and either discarded (dominated by a window
/// entry), inserted (possibly evicting window entries it dominates), or both
/// kept as incomparable. Because the whole window is kept in memory (no
/// temporary-file overflow is modelled), the result is complete after a single
/// pass.
///
/// Returns indices into `items` in the order the items were admitted to the
/// window. Items whose cost vector is *equal* to an already-admitted item are
/// retained as well (dominance is strict).
pub fn block_nested_loops<T: SkylineItem>(items: &[T]) -> Vec<usize> {
    let mut window: Vec<usize> = Vec::new();
    'outer: for (i, item) in items.iter().enumerate() {
        let mut w = 0;
        while w < window.len() {
            let other = &items[window[w]];
            if dominates_weak(other.costs(), item.costs()) {
                // The window entry dominates (or equals) the incoming item…
                if dominates(other.costs(), item.costs()) {
                    continue 'outer;
                }
                // …equal vectors: keep both, nothing to evict.
                w += 1;
            } else if dominates(item.costs(), other.costs()) {
                // The incoming item dominates the window entry: evict it.
                window.swap_remove(w);
            } else {
                w += 1;
            }
        }
        window.push(i);
    }
    window
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{is_valid_skyline, naive_skyline};
    use mcn_graph::CostVec;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn cv(v: &[f64]) -> CostVec {
        CostVec::from_slice(v)
    }

    #[test]
    fn empty_input() {
        let items: Vec<CostVec> = vec![];
        assert!(block_nested_loops(&items).is_empty());
    }

    #[test]
    fn single_item_is_skyline() {
        let items = vec![cv(&[3.0, 4.0])];
        assert_eq!(block_nested_loops(&items), vec![0]);
    }

    #[test]
    fn dominated_items_are_removed() {
        let items = vec![
            cv(&[5.0, 5.0]),
            cv(&[1.0, 1.0]), // dominates everything else
            cv(&[2.0, 3.0]),
            cv(&[0.5, 4.0]), // incomparable with [1,1]
        ];
        let mut got = block_nested_loops(&items);
        got.sort_unstable();
        assert_eq!(got, vec![1, 3]);
    }

    #[test]
    fn equal_vectors_are_all_kept() {
        let items = vec![cv(&[1.0, 2.0]), cv(&[1.0, 2.0]), cv(&[0.0, 9.0])];
        let mut got = block_nested_loops(&items);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn anti_correlated_data_has_large_skyline() {
        // Points on the line x + y = 10 are mutually incomparable.
        let items: Vec<CostVec> = (0..=10).map(|i| cv(&[i as f64, 10.0 - i as f64])).collect();
        assert_eq!(block_nested_loops(&items).len(), 11);
    }

    #[test]
    fn correlated_data_has_small_skyline() {
        // Points on the line y = x: only the minimum survives.
        let items: Vec<CostVec> = (0..100).map(|i| cv(&[i as f64, i as f64])).collect();
        assert_eq!(block_nested_loops(&items), vec![0]);
    }

    #[test]
    fn matches_naive_on_random_clusters() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for d in 2..=5 {
            let items: Vec<CostVec> = (0..300)
                .map(|_| {
                    let v: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..100.0)).collect();
                    cv(&v)
                })
                .collect();
            let got = block_nested_loops(&items);
            assert!(is_valid_skyline(&items, &got), "mismatch at d={d}");
            assert_eq!(got.len(), naive_skyline(&items).len());
        }
    }

    proptest! {
        #[test]
        fn prop_bnl_equals_naive(
            points in proptest::collection::vec(
                proptest::collection::vec(0.0f64..50.0, 3), 0..60),
        ) {
            let items: Vec<CostVec> = points.iter().map(|p| cv(p)).collect();
            let got = block_nested_loops(&items);
            prop_assert!(is_valid_skyline(&items, &got));
        }
    }
}
