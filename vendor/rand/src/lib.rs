//! Offline shim for the slice of `rand` 0.8 this workspace uses.
//!
//! Provides [`RngCore`], [`SeedableRng`] (with the `seed_from_u64`
//! SplitMix64 expansion, matching rand's documented behaviour in spirit),
//! and the [`Rng`] extension trait with `gen_range` over half-open and
//! inclusive integer/float ranges plus `gen_bool`. Generators themselves
//! live in sibling vendored crates (`rand_chacha`).
//!
//! Integer range sampling uses Lemire-style widening multiply rejection so
//! small ranges are unbiased; float ranges use a 53-bit mantissa lerp.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-width seed accepted by [`SeedableRng::from_seed`].
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 and constructs the
    /// generator from it.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea & Flood): one round per 8 seed bytes.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` using 53 bits.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1]` (both ends reachable).
fn unit_f64_inclusive(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

/// Types `gen_range` can produce, with per-type uniform-draw routines.
///
/// Mirroring rand's `SampleUniform` with blanket `SampleRange` impls over
/// it (rather than per-type range impls) is what lets inference resolve
/// expressions like `base + rng.gen_range(-0.1..0.1)`: selecting the single
/// generic impl unifies the range's element type with the output type.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws a uniform value in `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Draws a uniform value in `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

/// Draws a uniform integer in `[0, bound)` (widening-multiply rejection).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let word = rng.next_u64();
        let (hi, lo) = {
            let wide = (word as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        // Reject the partial final stripe to stay exactly uniform.
        if lo >= bound.wrapping_neg() % bound {
            return hi;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u64;
                start.wrapping_add(sample_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(sample_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "cannot sample from empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = start + (end - start) * u;
                // The lerp can round up to `end` (e.g. when `u` rounds to
                // 1.0 in this type's precision); keep the bound excluded.
                if v >= end {
                    end.next_down()
                } else {
                    v
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start <= end, "cannot sample from empty range");
                let u = unit_f64_inclusive(rng.next_u64()) as $t;
                // Clamp against lerp overshoot so the result stays in range.
                let v = start + (end - start) * u;
                if v > end {
                    end
                } else {
                    v
                }
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// A range from which a single value can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // Weyl sequence through a SplitMix64 mix: cheap but well spread.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Counter(11);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&v));
        }
    }

    #[test]
    fn float_half_open_excludes_end_even_when_lerp_rounds_up() {
        struct MaxRng;
        impl RngCore for MaxRng {
            fn next_u32(&mut self) -> u32 {
                u32::MAX
            }
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let mut rng = MaxRng;
        // f32: unit_f64's 53-bit fraction rounds to 1.0 in f32 precision.
        let v: f32 = rng.gen_range(0.0f32..1.0);
        assert!(v < 1.0);
        // f64: a coarse range where start + span * u rounds up to end.
        let w: f64 = rng.gen_range(1e16..1e16 + 2.0);
        assert!(w < 1e16 + 2.0);
        // Inclusive float ranges reach (and never exceed) the upper bound.
        let x: f64 = rng.gen_range(0.0f64..=1.0);
        assert_eq!(x, 1.0);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = Counter(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
