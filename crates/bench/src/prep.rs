//! The `prep` experiment: ParetoPrep precomputation for path-skyline
//! queries.
//!
//! For every swept point — cost dimensions d = 2..4 × network sizes — the
//! experiment draws seeded source/target pairs and runs the multi-criteria
//! path-skyline search three ways:
//!
//! * **exhaustive** — the classic label-correcting baseline
//!   (`pareto_paths_exhaustive`), no pruning beyond node-level dominance;
//! * **prepped** — `pareto_paths_prepped` with a fresh [`PrepTable`]
//!   backward scan per pair (the "with prep, cold" single-query cost,
//!   scan included);
//! * **engine** — a batch of [`QueryRequest::PathSkyline`] requests over a
//!   small pool of repeated targets, served by the [`QueryEngine`] through
//!   a [`PathContext`]'s bounded [`mcn_prep::PrepCache`], once with a cold
//!   cache and once warm.
//!
//! Reported per row: mean labels created with and without prep, the label
//! reduction factor and prune fraction, single-query QPS with/without prep,
//! and engine QPS cold vs warm cache. Three facts are **asserted** on every
//! run, not just reported:
//!
//! * every pair's pruned path skyline is **byte-identical** to the
//!   exhaustive baseline (fingerprint comparison; the workloads draw
//!   continuous costs, so the exact-tie representative caveat on
//!   `mcn_mcpp::pareto_paths` cannot trigger);
//! * cold-cache and warm-cache engine batches are fingerprint-identical;
//! * with `assert_improvements` (the default): every d = 3 row shows at
//!   least a [`MIN_LABEL_REDUCTION`]× reduction in labels created, and
//!   every row serves the warm-cache batch at higher QPS than the cold one.

use crate::report::json_safe;
use mcn_engine::{PathContext, QueryEngine, QueryOutput, QueryRequest};
use mcn_gen::{generate_workload, CostDistribution, WorkloadSpec};
use mcn_graph::{MultiCostGraph, NodeId};
use mcn_mcpp::{pareto_paths_exhaustive, pareto_paths_prepped};
use mcn_obs::default_clock;
use mcn_prep::PrepTable;
use mcn_storage::{BufferConfig, MCNStore};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Identifier of the prep experiment in the `experiments` binary and its
/// report file name (`<id>.json`).
pub const PREP_ID: &str = "prep";

/// Minimum factor by which prep must shrink the mean labels created at
/// d = 3 (the acceptance bar of the precomputation subsystem).
pub const MIN_LABEL_REDUCTION: f64 = 2.0;

/// Configuration of a prep run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PrepConfig {
    /// Network sizes (node counts) swept; ignored when the topology comes
    /// from a file.
    pub nodes: Vec<usize>,
    /// Cost dimensions swept.
    pub dims: Vec<usize>,
    /// Source/target pairs measured per point (the label metrics).
    pub pairs: usize,
    /// Requests in the engine batch.
    pub batch: usize,
    /// Distinct targets the engine batch cycles over (the cache's reuse).
    pub targets: usize,
    /// Worker threads of the engine runs.
    pub workers: usize,
    /// Capacity of the engine's prep-table cache.
    pub cache_capacity: usize,
    /// Master seed for the workload and the pair/batch draws.
    pub seed: u64,
    /// Assert the ≥ [`MIN_LABEL_REDUCTION`]× label reduction at d = 3 and
    /// warm > cold QPS (disable for timing-hostile unit-test environments;
    /// equality assertions always run).
    pub assert_improvements: bool,
    /// Where the network came from: `"synthetic"` or a loaded file path.
    pub source: String,
}

impl Default for PrepConfig {
    fn default() -> Self {
        Self {
            nodes: vec![250, 500],
            dims: vec![2, 3, 4],
            pairs: 6,
            // Triple within-batch reuse per target, and a cache large
            // enough to hold the whole target pool: the cold run pays one
            // backward scan per target, the warm run none — which is the
            // regime the cache exists for. (A capacity below the pool size
            // degrades the warm run towards the cold one; sweep
            // --prep-cache to see the cliff.)
            batch: 72,
            targets: 24,
            workers: 4,
            cache_capacity: 32,
            seed: 2010,
            assert_improvements: true,
            source: "synthetic".to_string(),
        }
    }
}

/// One row of the prep table: one cost dimension × one network size.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PrepRow {
    /// Cost dimensions of this row.
    pub dims: usize,
    /// Nodes of the swept network.
    pub nodes: usize,
    /// Source/target pairs behind the label means.
    pub pairs: usize,
    /// Mean path-skyline size over the pairs.
    pub skyline_size: f64,
    /// Mean labels created per pair by the exhaustive baseline.
    pub exhaustive_labels: f64,
    /// Mean labels created per pair by the prepped search.
    pub prepped_labels: f64,
    /// `exhaustive_labels / prepped_labels`.
    pub label_reduction: f64,
    /// Mean fraction of created candidates removed by bound pruning.
    pub prune_fraction: f64,
    /// Single-query throughput of the exhaustive baseline (pairs / wall).
    pub exhaustive_qps: f64,
    /// Single-query throughput of the prepped search, backward scan
    /// included (pairs / wall).
    pub prepped_qps: f64,
    /// Engine batch throughput with a cold prep cache.
    pub cold_qps: f64,
    /// Engine batch throughput re-running the same batch warm.
    pub warm_qps: f64,
    /// `warm_qps / cold_qps`.
    pub warm_speedup: f64,
    /// Cache hits over one cold + warm cycle (`clear_cache` resets the
    /// counters before each measured repeat; the last repeat is reported).
    pub cache_hits: u64,
    /// Cache misses — backward scans actually executed — over the same
    /// cold + warm cycle as [`PrepRow::cache_hits`].
    pub cache_misses: u64,
    /// `hits / (hits + misses)` of the same cold + warm cycle.
    pub cache_hit_ratio: f64,
}

/// The persisted prep report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PrepReport {
    /// Always [`PREP_ID`].
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The configuration that produced the rows.
    pub config: PrepConfig,
    /// One row per (dims × network size) point.
    pub rows: Vec<PrepRow>,
}

impl PrepReport {
    /// Serializes the report as indented JSON (the `--out` report format).
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a report from its JSON representation.
    ///
    /// # Errors
    /// Returns the underlying JSON error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde::json::from_str(text).map_err(|e| e.to_string())
    }
}

/// The deterministic half of one point: mean labels with/without prep over
/// seeded pairs, asserted byte-identical. Shared by the experiment rows and
/// the label regression gate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LabelMetrics {
    /// Mean labels created per pair, exhaustive.
    pub exhaustive_labels: f64,
    /// Mean labels created per pair, prepped.
    pub prepped_labels: f64,
    /// Mean bound-prune fraction.
    pub prune_fraction: f64,
    /// Mean skyline size.
    pub skyline_size: f64,
    /// Wall-clock seconds of the exhaustive runs.
    pub exhaustive_secs: f64,
    /// Wall-clock seconds of the prepped runs (scan included).
    pub prepped_secs: f64,
}

/// Draws `pairs` deterministic source/target pairs over the graph's nodes.
fn seeded_pairs(graph: &MultiCostGraph, pairs: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9E37_79B9);
    let n = graph.num_nodes();
    (0..pairs)
        .map(|_| {
            let s = NodeId::from(rng.gen_range(0..n));
            let mut t = NodeId::from(rng.gen_range(0..n));
            if t == s {
                t = NodeId::from((t.raw() as usize + 1) % n);
            }
            (s, t)
        })
        .collect()
}

/// Runs the exhaustive and prepped searches over seeded pairs and returns
/// the label metrics.
///
/// # Panics
/// Panics if any pair's pruned skyline differs from the exhaustive one —
/// prep pruning must never change a result.
pub fn measure_labels(graph: &MultiCostGraph, pairs: usize, seed: u64) -> LabelMetrics {
    let pair_list = seeded_pairs(graph, pairs, seed);
    let mut exhaustive_labels = 0u64;
    let mut prepped_labels = 0u64;
    let mut prune_fraction = 0.0f64;
    let mut skyline_size = 0usize;
    let mut exhaustive_secs = 0.0f64;
    let mut prepped_secs = 0.0f64;
    let clock = default_clock();
    for &(s, t) in &pair_list {
        let started = clock.now_ns();
        let exhaustive = pareto_paths_exhaustive(graph, s, t);
        exhaustive_secs += clock.elapsed(started).as_secs_f64();

        let started = clock.now_ns();
        let prep = PrepTable::build(graph, t);
        let prepped = pareto_paths_prepped(graph, s, t, &prep);
        prepped_secs += clock.elapsed(started).as_secs_f64();

        assert_eq!(
            QueryOutput::Paths(exhaustive.paths.clone()).fingerprint(),
            QueryOutput::Paths(prepped.paths.clone()).fingerprint(),
            "prep pruning changed the {s} → {t} path skyline"
        );
        exhaustive_labels += exhaustive.stats.labels_created;
        prepped_labels += prepped.stats.labels_created;
        prune_fraction += prepped.stats.prune_fraction();
        skyline_size += prepped.paths.len();
    }
    let n = pair_list.len().max(1) as f64;
    LabelMetrics {
        exhaustive_labels: exhaustive_labels as f64 / n,
        prepped_labels: prepped_labels as f64 / n,
        prune_fraction: prune_fraction / n,
        skyline_size: skyline_size as f64 / n,
        exhaustive_secs,
        prepped_secs,
    }
}

/// Builds the engine batch: `batch` path-skyline requests cycling over
/// `targets` distinct seeded targets, each queried from a source a few hops
/// away (repeated queries towards popular destinations — the workload shape
/// a prep cache exists for).
fn build_path_batch(
    graph: &MultiCostGraph,
    batch: usize,
    targets: usize,
    seed: u64,
) -> Vec<QueryRequest> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0B67_57A7);
    let n = graph.num_nodes();
    let pool: Vec<NodeId> = (0..targets.max(1))
        .map(|_| NodeId::from(rng.gen_range(0..n)))
        .collect();
    (0..batch)
        .map(|i| {
            let target = pool[i % pool.len()];
            // A short seeded walk away from the target keeps the forward
            // search local while the backward scan still covers the graph.
            let mut source = target;
            for _ in 0..4 {
                let neighbors: Vec<NodeId> = graph.neighbors(source).map(|nb| nb.node).collect();
                if neighbors.is_empty() {
                    break;
                }
                source = neighbors[rng.gen_range(0..neighbors.len())];
            }
            QueryRequest::PathSkyline { source, target }
        })
        .collect()
}

/// One engine measurement: the batch with a cold prep cache (every target
/// scanned) vs warm (every table served from the cache), fingerprints
/// asserted identical. One throwaway warm-up batch pages the engine in
/// first, then each mode is measured [`ENGINE_REPEATS`] times and the best
/// wall time kept — the standard defence against one-off scheduler noise
/// in a milliseconds-scale measurement (the *results* are deterministic
/// either way and asserted on every repeat).
const ENGINE_REPEATS: usize = 3;

fn measure_engine(
    graph: &Arc<MultiCostGraph>,
    config: &PrepConfig,
    seed: u64,
) -> (f64, f64, u64, u64) {
    let store =
        Arc::new(MCNStore::build_in_memory(graph, BufferConfig::Pages(32)).expect("store builds"));
    let ctx = Arc::new(PathContext::new(graph.clone(), config.cache_capacity));
    let engine = QueryEngine::new(store, config.workers).with_path_context(ctx.clone());
    let requests = build_path_batch(graph, config.batch, config.targets, seed);
    let prints = |r: &mcn_engine::BatchResult| {
        r.outcomes
            .iter()
            .map(|o| o.output.fingerprint())
            .collect::<Vec<_>>()
    };

    // Warm-up: first-touch page faults and allocator growth hit this run.
    let reference = prints(&engine.run_batch(&requests));

    let mut cold_qps = 0.0f64;
    let mut warm_qps = 0.0f64;
    let mut hits = 0u64;
    let mut misses = 0u64;
    for _ in 0..ENGINE_REPEATS {
        ctx.clear_cache();
        let cold = engine.run_batch(&requests);
        let warm = engine.run_batch(&requests);
        assert_eq!(
            reference,
            prints(&cold),
            "cold-cache engine run changed path-skyline results"
        );
        assert_eq!(
            reference,
            prints(&warm),
            "warm-cache engine run changed path-skyline results"
        );
        cold_qps = cold_qps.max(cold.stats.qps);
        warm_qps = warm_qps.max(warm.stats.qps);
        // `clear_cache` zeroed the counters at the top of this repeat, so
        // this snapshot covers exactly one cold + warm cycle.
        let stats = ctx.cache_stats();
        hits = stats.hits;
        misses = stats.misses;
    }
    (cold_qps, warm_qps, hits, misses)
}

/// The workload spec of one synthetic point: `nodes` network nodes with `d`
/// anti-correlated costs (facility/query counts only matter to the store
/// build, so they stay small).
fn point_spec(nodes: usize, d: usize, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        nodes,
        facilities: (nodes / 5).max(10),
        cost_types: d,
        distribution: CostDistribution::AntiCorrelated,
        clusters: 4,
        queries: 4,
        seed,
    }
}

/// Runs one point over an explicit graph and returns its row.
fn measure_point(graph: Arc<MultiCostGraph>, config: &PrepConfig) -> PrepRow {
    let d = graph.num_cost_types();
    let labels = measure_labels(&graph, config.pairs, config.seed);
    let (cold_qps, warm_qps, cache_hits, cache_misses) =
        measure_engine(&graph, config, config.seed);
    let row = PrepRow {
        dims: d,
        nodes: graph.num_nodes(),
        pairs: config.pairs,
        skyline_size: json_safe(labels.skyline_size),
        exhaustive_labels: json_safe(labels.exhaustive_labels),
        prepped_labels: json_safe(labels.prepped_labels),
        label_reduction: json_safe(labels.exhaustive_labels / labels.prepped_labels.max(1.0)),
        prune_fraction: json_safe(labels.prune_fraction),
        exhaustive_qps: json_safe(config.pairs as f64 / labels.exhaustive_secs.max(1e-12)),
        prepped_qps: json_safe(config.pairs as f64 / labels.prepped_secs.max(1e-12)),
        cold_qps: json_safe(cold_qps),
        warm_qps: json_safe(warm_qps),
        warm_speedup: json_safe(if cold_qps > 0.0 {
            warm_qps / cold_qps
        } else {
            1.0
        }),
        cache_hits,
        cache_misses,
        cache_hit_ratio: json_safe(
            mcn_prep::PrepCacheStats {
                hits: cache_hits,
                misses: cache_misses,
                evictions: 0,
            }
            .hit_ratio(),
        ),
    };
    if config.assert_improvements {
        if d == 3 {
            assert!(
                row.label_reduction >= MIN_LABEL_REDUCTION,
                "prep reduced d = 3 labels only {:.2}× (< {MIN_LABEL_REDUCTION}×) \
                 at {} nodes",
                row.label_reduction,
                row.nodes
            );
        }
        assert!(
            row.warm_qps > row.cold_qps,
            "warm prep cache served {} nodes / d = {d} at {:.1} QPS, \
             cold at {:.1} QPS",
            row.nodes,
            row.warm_qps,
            row.cold_qps
        );
    }
    row
}

/// Runs the prep sweep on seeded synthetic workloads.
pub fn run_prep(config: &PrepConfig) -> PrepReport {
    assert!(!config.dims.is_empty(), "no cost dimensions to sweep");
    assert!(!config.nodes.is_empty(), "no network sizes to sweep");
    let mut rows = Vec::with_capacity(config.dims.len() * config.nodes.len());
    for &d in &config.dims {
        for &nodes in &config.nodes {
            let workload = generate_workload(&point_spec(nodes, d, config.seed));
            rows.push(measure_point(Arc::new(workload.graph), config));
        }
    }
    report(config, rows)
}

/// Runs the prep sweep over an explicit network topology (e.g. a DIMACS
/// road network loaded through `mcn-io`): each swept dimension re-draws
/// costs around the graph's first cost type via
/// [`mcn_gen::workload_on_graph`]; the `nodes` sweep is ignored (the file
/// defines the topology).
pub fn run_prep_on_graph(config: &PrepConfig, graph: &MultiCostGraph) -> PrepReport {
    assert!(!config.dims.is_empty(), "no cost dimensions to sweep");
    let mut rows = Vec::with_capacity(config.dims.len());
    for &d in &config.dims {
        let spec = WorkloadSpec {
            cost_types: d,
            facilities: (graph.num_nodes() / 5).clamp(10, 100_000),
            queries: 4,
            seed: config.seed,
            ..WorkloadSpec::paper_default()
        };
        let workload = mcn_gen::workload_on_graph(graph, &spec);
        rows.push(measure_point(Arc::new(workload.graph), config));
    }
    report(config, rows)
}

/// Loads a DIMACS `.gr` network for [`run_prep_on_graph`] (the same format
/// the partition experiment's `--dimacs` flag reads).
///
/// # Errors
/// Returns a message when the file cannot be read or parsed, or has no
/// arcs.
pub fn dimacs_graph(path: &str) -> Result<MultiCostGraph, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let graph = mcn_io::load_dimacs_gr(std::io::BufReader::new(file))
        .map_err(|e| format!("cannot parse {path}: {e}"))?;
    if graph.num_edges() == 0 {
        return Err(format!("{path}: network has no arcs"));
    }
    Ok(graph)
}

fn report(config: &PrepConfig, rows: Vec<PrepRow>) -> PrepReport {
    PrepReport {
        id: PREP_ID.to_string(),
        title: format!(
            "ParetoPrep path-skyline precomputation — labels with/without prep, \
             engine cold vs warm cache, over {}",
            config.source
        ),
        config: config.clone(),
        rows,
    }
}

/// Renders a prep report in the fixed-width style of the other reports.
pub fn render_prep_table(table: &PrepReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {} [{}]\n", table.title, table.id));
    out.push_str(&format!(
        "({} pairs per point; engine batch of {} over {} targets, {} workers, \
         cache capacity {})\n",
        table.config.pairs,
        table.config.batch,
        table.config.targets,
        table.config.workers,
        table.config.cache_capacity
    ));
    out.push_str(&format!(
        "{:<4} {:>7} {:>9} {:>14} {:>12} {:>8} {:>7} {:>10} {:>10} {:>9}\n",
        "d",
        "nodes",
        "skyline",
        "labels (exh.)",
        "labels (prep)",
        "reduce",
        "pruned",
        "cold QPS",
        "warm QPS",
        "speedup"
    ));
    for r in &table.rows {
        out.push_str(&format!(
            "{:<4} {:>7} {:>9.1} {:>14.1} {:>12.1} {:>7.2}x {:>6.1}% {:>10.1} {:>10.1} {:>8.2}x\n",
            r.dims,
            r.nodes,
            r.skyline_size,
            r.exhaustive_labels,
            r.prepped_labels,
            r.label_reduction,
            r.prune_fraction * 100.0,
            r.cold_qps,
            r.warm_qps,
            r.warm_speedup
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> PrepConfig {
        PrepConfig {
            nodes: vec![120],
            dims: vec![2, 3],
            pairs: 3,
            batch: 8,
            targets: 4,
            workers: 2,
            cache_capacity: 4,
            // Unit tests run in debug on loaded machines; the timing
            // assertion belongs to the release-mode experiment runs.
            assert_improvements: false,
            ..Default::default()
        }
    }

    #[test]
    fn prep_sweep_reports_reductions_and_identical_results() {
        let table = run_prep(&tiny_config());
        assert_eq!(table.rows.len(), 2);
        for row in &table.rows {
            // The in-run assertions already proved byte-identical skylines;
            // pruning must show up even at toy scale.
            assert!(row.prepped_labels <= row.exhaustive_labels);
            assert!(row.prune_fraction > 0.0);
            assert!(row.label_reduction >= 1.0);
            assert!(row.cold_qps > 0.0 && row.warm_qps > 0.0);
            assert!(row.cache_hits > 0);
        }
    }

    #[test]
    fn label_metrics_are_deterministic() {
        let config = tiny_config();
        let workload = generate_workload(&point_spec(120, 3, config.seed));
        let a = measure_labels(&workload.graph, config.pairs, config.seed);
        let b = measure_labels(&workload.graph, config.pairs, config.seed);
        assert_eq!(a.exhaustive_labels, b.exhaustive_labels);
        assert_eq!(a.prepped_labels, b.prepped_labels);
        assert_eq!(a.prune_fraction, b.prune_fraction);
        assert!(a.prepped_labels < a.exhaustive_labels);
    }

    #[test]
    fn report_round_trips_through_json() {
        let table = run_prep(&PrepConfig {
            dims: vec![2],
            ..tiny_config()
        });
        let json = table.to_json();
        let parsed = PrepReport::from_json(&json).unwrap();
        assert_eq!(parsed, table);
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn rendered_table_mentions_the_columns() {
        let table = run_prep(&PrepConfig {
            dims: vec![2],
            ..tiny_config()
        });
        let text = render_prep_table(&table);
        assert!(text.contains("labels (exh.)"));
        assert!(text.contains("warm QPS"));
        assert!(text.contains("reduce"));
    }

    #[test]
    fn prep_runs_on_an_explicit_graph() {
        let workload = generate_workload(&point_spec(100, 2, 7));
        let config = PrepConfig {
            dims: vec![2, 3],
            source: "explicit".into(),
            ..tiny_config()
        };
        let table = run_prep_on_graph(&config, &workload.graph);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.rows[0].nodes, workload.graph.num_nodes());
        assert_eq!(table.rows[0].dims, 2);
        assert_eq!(table.rows[1].dims, 3);
        assert!(table.title.contains("explicit"));
    }
}
