//! Runtime lock-order witness: the dynamic half of the `lock-order` lint.
//!
//! The static pass in `mcn-analyze` computes the acquisition-order graph
//! from source; this crate records the edges a real run *observes*.
//! Instrumented lock sites register every acquisition under a stable
//! class id — the same `crate::Type.field` / `crate::fn.var` strings the
//! static pass derives — and whenever a thread acquires class `B` while
//! holding class `A`, the edge `A → B` lands in a process-global set.
//! The cross-check test then asserts observed ⊆ static: a runtime edge
//! the static graph missed means the analyzer lost track of a guard.
//!
//! Everything here is gated on `cfg(debug_assertions)`. In release builds
//! [`acquire`] returns a zero-sized token and records nothing, so the
//! instrumented hot paths (buffer pool, disk, engine workers) pay no
//! cost. The CI concurrency job re-enables the witness in release via
//! `CARGO_PROFILE_RELEASE_DEBUG_ASSERTIONS=true`.
//!
//! The crate is deliberately dependency-free (`std::sync` only): it is
//! linked from the storage layer upward and must not drag `parking_lot`
//! into a dependency cycle.

/// RAII token for one witnessed acquisition. Dropping it pops the class
/// from the thread's held stack — declare it immediately after the real
/// guard so it drops *before* the guard, keeping the held stack a
/// conservative subset of reality.
///
/// The token is `!Send`: the held stack is thread-local, so moving a
/// token across threads would unwind the wrong stack.
pub struct LockToken {
    #[cfg(debug_assertions)]
    class: &'static str,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for LockToken {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        imp::release(self.class);
    }
}

/// Records an acquisition of `class`: every class currently held by this
/// thread gains an observed edge to `class`. Returns the RAII token that
/// ends the hold. No-op without debug assertions.
pub fn acquire(class: &'static str) -> LockToken {
    #[cfg(debug_assertions)]
    imp::record(class);
    #[cfg(not(debug_assertions))]
    let _ = class;
    LockToken {
        #[cfg(debug_assertions)]
        class,
        _not_send: std::marker::PhantomData,
    }
}

/// True when the witness actually records (debug assertions on).
pub fn is_active() -> bool {
    cfg!(debug_assertions)
}

/// Every observed `(from, to)` edge so far, sorted. Empty in release.
pub fn observed_edges() -> Vec<(String, String)> {
    #[cfg(debug_assertions)]
    {
        imp::observed()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// Clears the observed-edge set. Test isolation only.
pub fn reset() {
    #[cfg(debug_assertions)]
    imp::reset();
}

/// The observed edges as a deterministic JSON array, ready to diff
/// against the static `lock-order.json`:
///
/// ```json
/// [
///   { "from": "storage::BufferPool.shards", "to": "storage::ShardSet.shards" }
/// ]
/// ```
pub fn dump_json() -> String {
    let edges = observed_edges();
    if edges.is_empty() {
        return "[]".to_string();
    }
    let body: Vec<String> = edges
        .iter()
        .map(|(f, t)| {
            format!(
                "  {{ \"from\": \"{}\", \"to\": \"{}\" }}",
                escape(f),
                escape(t)
            )
        })
        .collect();
    format!("[\n{}\n]", body.join(",\n"))
}

/// Minimal JSON string escaping; class ids are plain identifiers but the
/// dump must stay valid JSON for any input.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(debug_assertions)]
mod imp {
    use std::cell::RefCell;
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};

    static REGISTRY: OnceLock<Mutex<BTreeSet<(&'static str, &'static str)>>> = OnceLock::new();

    fn registry() -> &'static Mutex<BTreeSet<(&'static str, &'static str)>> {
        REGISTRY.get_or_init(|| Mutex::new(BTreeSet::new()))
    }

    thread_local! {
        /// Classes this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    pub(crate) fn record(class: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if !held.is_empty() {
                // A witness panic must not poison the observed set.
                let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
                for &from in held.iter() {
                    reg.insert((from, class));
                }
            }
            held.push(class);
        });
    }

    pub(crate) fn release(class: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            // rposition: with re-entrant same-class holds, the innermost
            // (latest) acquisition releases first.
            if let Some(pos) = held.iter().rposition(|&c| c == class) {
                held.remove(pos);
            }
        });
    }

    pub(crate) fn observed() -> Vec<(String, String)> {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.iter()
            .map(|&(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    pub(crate) fn reset() {
        registry().lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;

    #[test]
    fn nested_holds_record_an_edge() {
        let _a = acquire("t1::A.x");
        let _b = acquire("t1::B.y");
        assert!(observed_edges().contains(&("t1::A.x".to_string(), "t1::B.y".to_string())));
    }

    #[test]
    fn sequential_holds_record_nothing() {
        {
            let _a = acquire("t2::A.x");
        }
        let _b = acquire("t2::B.y");
        let edges = observed_edges();
        assert!(!edges
            .iter()
            .any(|(f, t)| f.starts_with("t2::") && t.starts_with("t2::")));
    }

    #[test]
    fn drop_order_unwinds_the_held_stack() {
        let a = acquire("t3::A.x");
        let b = acquire("t3::B.y");
        drop(b);
        drop(a);
        // With the stack unwound, a fresh hold records no t3 edge from
        // the earlier tokens.
        let _c = acquire("t3::C.z");
        let edges = observed_edges();
        assert!(!edges.iter().any(|(_, t)| t == "t3::C.z"));
    }

    #[test]
    fn transitive_holds_record_every_pair() {
        let _a = acquire("t4::A.x");
        let _b = acquire("t4::B.y");
        let _c = acquire("t4::C.z");
        let edges = observed_edges();
        assert!(edges.contains(&("t4::A.x".to_string(), "t4::C.z".to_string())));
        assert!(edges.contains(&("t4::B.y".to_string(), "t4::C.z".to_string())));
    }

    #[test]
    fn dump_json_is_valid_and_sorted() {
        let _a = acquire("t5::A.x");
        let _b = acquire("t5::B.y");
        let json = dump_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\"from\": \"t5::A.x\""));
        // BTreeSet iteration keeps the dump deterministic.
        let again = dump_json();
        assert_eq!(json, again);
    }
}
