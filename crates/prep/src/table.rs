//! The ParetoPrep precomputation table: per-cost lower bounds to a target.

use mcn_graph::{CostVec, EdgeId, MultiCostGraph, NodeId};
use serde::{Deserialize, Serialize};

/// Sentinel stored in the parent array for "no parent edge".
const NO_PARENT: u32 = u32::MAX;

/// Per-cost-type lower bounds from every network node to one **target**
/// node, produced by a single backward multi-criteria scan (ParetoPrep,
/// Shekelyan et al.).
///
/// For each node `v` the table stores the vector `L(v)` whose `i`-th
/// component is the single-criterion shortest-path distance from `v` to the
/// target under cost type `i`. Because every component is an independent
/// shortest distance, `L(v)` is **admissible**: any `v → target` path has a
/// cost vector `c` with `L(v) ≤ c` component-wise. The pruned path-skyline
/// search in `mcn-mcpp` exploits that: a partial path with accumulated cost
/// `a` at node `v` can only complete to cost vectors dominating-or-equal to
/// `a + L(v)`, so the whole subtree can be cut as soon as that *bound
/// vector* is dominated.
///
/// The scan also records, per node and cost type, the first edge of a
/// concrete `v → target` path achieving the component's shortest distance.
/// Following those parent edges from a query source yields up to `d` real
/// paths whose full cost vectors are **global upper bounds** — see
/// [`PrepTable::upper_bound_cuts`].
///
/// A table is immutable once built and independent of the query source, so
/// one scan serves every query towards the same target (the `PrepCache` in
/// this crate caches tables per target for exactly that reason).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PrepTable {
    target: NodeId,
    cost_types: usize,
    /// `L(v)` per node id; `∞` in every component when the target is
    /// unreachable from `v` (or `v` lies outside a restricted scan).
    bounds: Vec<CostVec>,
    /// Flattened `num_nodes × d` array: `parents[v·d + i]` is the raw id of
    /// the first edge of a `v → target` path realising `L(v)[i]`
    /// ([`NO_PARENT`] when none).
    parents: Vec<u32>,
    /// True iff the scan was restricted to a node subset.
    restricted: bool,
    /// Edge relaxations performed by the scan (a deterministic cost metric).
    relaxations: u64,
    /// Queue pops performed by the scan — the "nodes settled" analogue the
    /// serving tiers compare their own settle counts against.
    settled: u64,
}

const _: () = crate::assert_send_sync::<PrepTable>();

impl PrepTable {
    /// Runs the backward scan over the whole graph.
    ///
    /// # Panics
    /// Panics if `target` is out of range.
    pub fn build(graph: &MultiCostGraph, target: NodeId) -> Self {
        Self::scan(graph, target, None)
    }

    /// Runs the backward scan restricted to the sub-network induced by
    /// `nodes` (which must contain `target`): only nodes of the set are
    /// relaxed, every other node keeps `∞` bounds.
    ///
    /// The resulting bounds are admissible for paths that stay **inside**
    /// the node set — the contract under which repeated queries over a fixed
    /// region (e.g. one partition shard) reuse a single cheap scan. The
    /// pruned search treats `∞`-bound nodes as unreachable, so running it
    /// with a restricted table computes the path skyline of the induced
    /// sub-network.
    ///
    /// # Panics
    /// Panics if `target` is not a member of `nodes` or any id is out of
    /// range.
    pub fn build_restricted(graph: &MultiCostGraph, target: NodeId, nodes: &[NodeId]) -> Self {
        let mut allowed = vec![false; graph.num_nodes()];
        for &n in nodes {
            allowed[n.index()] = true;
        }
        assert!(
            allowed[target.index()],
            "restricted scan requires the target {target} to be in the node set"
        );
        Self::scan(graph, target, Some(&allowed))
    }

    /// The shared backward label-correcting scan. One pass computes all `d`
    /// per-component shortest distances simultaneously: a FIFO queue of
    /// nodes whose bound vector improved, relaxing every edge that can be
    /// traversed *towards* the queue node. Deterministic: iteration order is
    /// the graph's adjacency order and the queue is FIFO.
    fn scan(graph: &MultiCostGraph, target: NodeId, allowed: Option<&[bool]>) -> Self {
        let n = graph.num_nodes();
        let d = graph.num_cost_types();
        assert!(target.index() < n, "target {target} out of range");
        let mut bounds = vec![CostVec::infinity(d); n];
        let mut parents = vec![NO_PARENT; n * d];
        let mut relaxations = 0u64;
        let mut settled = 0u64;
        bounds[target.index()] = CostVec::zeros(d);

        let mut queue = std::collections::VecDeque::with_capacity(n);
        let mut queued = vec![false; n];
        queue.push_back(target);
        queued[target.index()] = true;

        while let Some(u) = queue.pop_front() {
            queued[u.index()] = false;
            settled += 1;
            let reached = bounds[u.index()];
            for &eid in graph.incident_edges(u) {
                let e = graph.edge(eid);
                let v = e.opposite(u);
                if let Some(allowed) = allowed {
                    if !allowed[v.index()] {
                        continue;
                    }
                }
                // The forward search travels v → u, so the edge must be
                // traversable from v.
                if !e.traversable_from(v) {
                    continue;
                }
                relaxations += 1;
                let mut improved = false;
                for i in 0..d {
                    let candidate = e.costs[i] + reached[i];
                    if candidate < bounds[v.index()][i] {
                        bounds[v.index()][i] = candidate;
                        parents[v.index() * d + i] = eid.raw();
                        improved = true;
                    }
                }
                if improved && !queued[v.index()] {
                    queued[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }

        Self {
            target,
            cost_types: d,
            bounds,
            parents,
            restricted: allowed.is_some(),
            relaxations,
            settled,
        }
    }

    /// The target node the scan ran towards.
    #[inline]
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// Number of cost types `d`.
    #[inline]
    pub fn cost_types(&self) -> usize {
        self.cost_types
    }

    /// Number of nodes the table covers (the graph's node count).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.bounds.len()
    }

    /// True iff the scan was restricted to a node subset.
    #[inline]
    pub fn is_restricted(&self) -> bool {
        self.restricted
    }

    /// Edge relaxations the scan performed — a deterministic cost metric
    /// for the precomputation itself.
    #[inline]
    pub fn relaxations(&self) -> u64 {
        self.relaxations
    }

    /// Queue pops the scan performed — the scan's settled-node count. A
    /// cold-cache query pays this on top of its own search, which is what
    /// the `index` experiment charges the prep-backed tier per cold target.
    #[inline]
    pub fn settled(&self) -> u64 {
        self.settled
    }

    /// The lower-bound vector `L(v)`: component `i` is the cost-`i`
    /// shortest-path distance from `v` to the target (`∞` when
    /// unreachable).
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn bound(&self, v: NodeId) -> &CostVec {
        &self.bounds[v.index()]
    }

    /// True iff the target is reachable from `v` (within the restriction,
    /// if any).
    #[inline]
    pub fn reaches(&self, v: NodeId) -> bool {
        // Per-component distances share reachability: either every
        // component is finite or none is.
        self.bounds[v.index()][0].is_finite()
    }

    /// Number of nodes that reach the target.
    pub fn reachable_nodes(&self) -> usize {
        (0..self.bounds.len())
            .filter(|&i| self.bounds[i][0].is_finite())
            .count()
    }

    /// The **per-edge forward bound**: the minimum possible cost vector of
    /// any path to the target that leaves `from` through `edge`, i.e.
    /// `w(edge) + L(other end)`. Every component is `∞` when the edge leads
    /// away from the target for good.
    ///
    /// # Panics
    /// Panics if `edge` is not traversable from `from` (respecting
    /// direction) or ids are out of range.
    pub fn forward_bound(&self, graph: &MultiCostGraph, edge: EdgeId, from: NodeId) -> CostVec {
        let e = graph.edge(edge);
        assert!(
            e.traversable_from(from),
            "edge {edge} is not traversable from {from}"
        );
        let next = e.opposite(from);
        let mut out = *self.bound(next);
        for i in 0..self.cost_types {
            out[i] += e.costs[i];
        }
        out
    }

    /// Reconstructs up to `d` concrete `source → target` paths — one per
    /// cost type, following the per-component parent edges — and returns
    /// their **full** cost vectors, deduplicated. Each is the cost of a real
    /// path, so each is a *global upper bound*: the final path skyline
    /// weakly dominates every returned vector. The pruned search uses them
    /// as cut lines before the first label even reaches the target.
    ///
    /// Returns an empty vector when the target is unreachable from
    /// `source`. Paths are abandoned defensively if reconstruction exceeds
    /// `num_nodes` hops (possible only through zero-cost cycles).
    pub fn upper_bound_cuts(&self, graph: &MultiCostGraph, source: NodeId) -> Vec<CostVec> {
        let d = self.cost_types;
        let mut cuts: Vec<CostVec> = Vec::with_capacity(d);
        if !self.reaches(source) {
            return cuts;
        }
        'component: for i in 0..d {
            let mut node = source;
            let mut total = CostVec::zeros(d);
            let mut hops = 0usize;
            while node != self.target {
                let raw = self.parents[node.index() * d + i];
                if raw == NO_PARENT {
                    // Finite bound always has a parent chain; defensive.
                    continue 'component;
                }
                let e = graph.edge(EdgeId::new(raw));
                total += e.costs;
                node = e.opposite(node);
                hops += 1;
                if hops > self.num_nodes() {
                    // Zero-cost cycle in the parent pointers; skip the cut.
                    continue 'component;
                }
            }
            if !cuts.contains(&total) {
                cuts.push(total);
            }
        }
        cuts
    }

    /// Serializes the table as indented JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a table from its JSON representation.
    ///
    /// # Errors
    /// Returns the underlying JSON error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde::json::from_str(text).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcn_graph::GraphBuilder;

    /// Diamond network with a cheap-slow and an expensive-fast side.
    fn diamond() -> (MultiCostGraph, NodeId, NodeId) {
        let mut b = GraphBuilder::new(2);
        let s = b.add_node(0.0, 0.0);
        let up = b.add_node(1.0, 1.0);
        let down = b.add_node(1.0, -1.0);
        let t = b.add_node(2.0, 0.0);
        b.add_edge(s, up, CostVec::from_slice(&[1.0, 10.0]))
            .unwrap();
        b.add_edge(up, t, CostVec::from_slice(&[1.0, 10.0]))
            .unwrap();
        b.add_edge(s, down, CostVec::from_slice(&[10.0, 1.0]))
            .unwrap();
        b.add_edge(down, t, CostVec::from_slice(&[10.0, 1.0]))
            .unwrap();
        (b.build().unwrap(), s, t)
    }

    #[test]
    fn diamond_bounds_are_per_component_shortest_distances() {
        let (g, s, t) = diamond();
        let prep = PrepTable::build(&g, t);
        assert_eq!(prep.target(), t);
        assert_eq!(prep.cost_types(), 2);
        // From the source: cost 0 via the upper branch (1+1), cost 1 via the
        // lower branch (1+1) — the component-wise minimum over both paths.
        assert_eq!(prep.bound(s).as_slice(), &[2.0, 2.0]);
        assert_eq!(prep.bound(t).as_slice(), &[0.0, 0.0]);
        assert!(prep.reaches(s));
        assert_eq!(prep.reachable_nodes(), 4);
        assert!(prep.relaxations() > 0);
        // Every node improves at least once, so every node pops at least once.
        assert!(prep.settled() >= 4);
        assert!(!prep.is_restricted());
    }

    #[test]
    fn upper_bound_cuts_are_real_path_costs() {
        let (g, s, t) = diamond();
        let prep = PrepTable::build(&g, t);
        let cuts = prep.upper_bound_cuts(&g, s);
        // One concrete path per component: upper branch (2, 20) for cost 0,
        // lower branch (20, 2) for cost 1.
        assert_eq!(cuts.len(), 2);
        assert!(cuts.contains(&CostVec::from_slice(&[2.0, 20.0])));
        assert!(cuts.contains(&CostVec::from_slice(&[20.0, 2.0])));
    }

    #[test]
    fn unreachable_nodes_have_infinite_bounds_and_no_cuts() {
        let mut b = GraphBuilder::new(1);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        let isolated = b.add_node(5.0, 5.0);
        b.add_edge(a, c, CostVec::from_slice(&[1.0])).unwrap();
        let g = b.build().unwrap();
        let prep = PrepTable::build(&g, c);
        assert!(!prep.reaches(isolated));
        assert!(prep.bound(isolated)[0].is_infinite());
        assert!(prep.upper_bound_cuts(&g, isolated).is_empty());
        assert_eq!(prep.reachable_nodes(), 2);
    }

    #[test]
    fn directed_edges_bound_in_travel_direction_only() {
        let mut b = GraphBuilder::new(1);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        b.add_directed_edge(a, c, CostVec::from_slice(&[3.0]))
            .unwrap();
        let g = b.build().unwrap();
        let towards_c = PrepTable::build(&g, c);
        assert_eq!(towards_c.bound(a).as_slice(), &[3.0]);
        // The edge cannot be traversed c → a, so a target of `a` is
        // unreachable from c.
        let towards_a = PrepTable::build(&g, a);
        assert!(!towards_a.reaches(c));
    }

    #[test]
    fn forward_bound_adds_the_edge_cost() {
        let (g, s, t) = diamond();
        let prep = PrepTable::build(&g, t);
        let first_edge = g.incident_edges(s)[0];
        let bound = prep.forward_bound(&g, first_edge, s);
        // Via the upper middle node: edge (1, 10) + L(up) = (1, 10).
        assert_eq!(bound.as_slice(), &[2.0, 20.0]);
    }

    #[test]
    fn restricted_scan_ignores_nodes_outside_the_set() {
        let (g, s, t) = diamond();
        let up = NodeId::new(1);
        let down = NodeId::new(2);
        // Without the upper branch the only s → t path is the lower one.
        let prep = PrepTable::build_restricted(&g, t, &[s, down, t]);
        assert!(prep.is_restricted());
        assert_eq!(prep.bound(s).as_slice(), &[20.0, 2.0]);
        assert!(!prep.reaches(up));
        // Restricting to every node reproduces the full scan's bounds.
        let all: Vec<NodeId> = (0..g.num_nodes() as u32).map(NodeId::new).collect();
        let full = PrepTable::build(&g, t);
        let restricted_all = PrepTable::build_restricted(&g, t, &all);
        for v in &all {
            assert_eq!(full.bound(*v), restricted_all.bound(*v));
        }
    }

    #[test]
    #[should_panic]
    fn restricted_scan_requires_the_target_in_the_set() {
        let (g, s, t) = diamond();
        let _ = PrepTable::build_restricted(&g, t, &[s]);
    }

    #[test]
    fn table_round_trips_through_json() {
        let (g, _, t) = diamond();
        let prep = PrepTable::build(&g, t);
        let parsed = PrepTable::from_json(&prep.to_json()).unwrap();
        assert_eq!(parsed, prep);
    }
}
