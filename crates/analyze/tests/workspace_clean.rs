//! The self-check the CI job relies on: the real workspace must analyze
//! clean against the checked-in baseline, and the baseline must be
//! *minimal* — every entry still fires (a stale entry is a failure, so
//! fixed debt cannot silently linger in the accepted list).

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze sits two levels under the workspace root")
}

#[test]
fn workspace_is_clean_against_minimal_baseline() {
    let root = workspace_root();
    let baseline = root.join("crates/analyze/analyze-baseline.json");
    let lock_order = root.join("crates/analyze/lock-order.json");
    let outcome = mcn_analyze::check(root, &baseline, &lock_order, false).expect("check runs");
    assert!(outcome.files > 20, "workspace walk looks truncated");
    let new: Vec<String> = outcome.diff.new.iter().map(|f| f.to_string()).collect();
    assert!(
        outcome.diff.new.is_empty(),
        "new findings not in the baseline:\n{}",
        new.join("\n")
    );
    let stale: Vec<String> = outcome
        .diff
        .stale
        .iter()
        .map(|e| format!("{}: {} (`{}`)", e.file, e.rule, e.excerpt))
        .collect();
    assert!(
        outcome.diff.stale.is_empty(),
        "baseline entries that no longer fire (baseline must stay minimal):\n{}",
        stale.join("\n")
    );
    let lock_new: Vec<String> = outcome
        .lock_new
        .iter()
        .map(|e| format!("{} -> {} ({}:{})", e.from, e.to, e.file, e.line))
        .collect();
    assert!(
        outcome.lock_new.is_empty(),
        "acquisition edges not in lock-order.json:\n{}",
        lock_new.join("\n")
    );
    let lock_stale: Vec<String> = outcome
        .lock_stale
        .iter()
        .map(|e| format!("{} -> {}", e.from, e.to))
        .collect();
    assert!(
        outcome.lock_stale.is_empty(),
        "lock-order.json edges that no longer occur:\n{}",
        lock_stale.join("\n")
    );
}

#[test]
fn every_allow_in_the_tree_names_a_real_rule() {
    use mcn_analyze::rules::ALL_RULES;
    use mcn_analyze::workspace::Workspace;
    let ws = Workspace::load(workspace_root()).expect("workspace loads");
    for file in &ws.files {
        for allow in &file.allows {
            assert!(
                ALL_RULES.contains(&allow.rule.as_str()),
                "{}:{}: allow() names unknown rule `{}`",
                file.path,
                allow.line,
                allow.rule
            );
        }
    }
}
