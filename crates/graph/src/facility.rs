//! Facilities (points of interest) lying on network edges.

use crate::cost::CostVec;
use crate::ids::{EdgeId, FacilityId};
use serde::{Deserialize, Serialize};

/// A facility (point of interest) lying on an edge of the MCN.
///
/// Following Section III of the paper, a facility falls between the end-nodes
/// of an edge; the *partial weight* from the facility to either end-node is
/// proportional to the Euclidean distance along the edge, and the two partial
/// weights sum to the edge's full cost vector. We store the proportion as
/// [`Facility::position`], the fraction `t ∈ [0, 1]` of the way from the
/// edge's `source` to its `target`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Facility {
    /// The facility identifier.
    pub id: FacilityId,
    /// The edge the facility lies on.
    pub edge: EdgeId,
    /// Fraction of the way from the edge's source to its target, in `[0, 1]`.
    pub position: f64,
}

impl Facility {
    /// Creates a facility at fraction `position` along `edge`.
    ///
    /// # Panics
    /// Panics if `position` is not within `[0, 1]` (with no tolerance).
    #[inline]
    pub fn new(id: FacilityId, edge: EdgeId, position: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&position),
            "facility position must lie within [0, 1], got {position}"
        );
        Self { id, edge, position }
    }

    /// Partial cost vector from the edge's **source** end-node to the facility.
    #[inline]
    pub fn partial_from_source(&self, edge_costs: &CostVec) -> CostVec {
        edge_costs.scale(self.position)
    }

    /// Partial cost vector from the edge's **target** end-node to the facility.
    #[inline]
    pub fn partial_from_target(&self, edge_costs: &CostVec) -> CostVec {
        edge_costs.scale(1.0 - self.position)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_weights_sum_to_edge_costs() {
        let f = Facility::new(FacilityId::new(0), EdgeId::new(3), 0.25);
        let w = CostVec::from_slice(&[8.0, 4.0]);
        let a = f.partial_from_source(&w);
        let b = f.partial_from_target(&w);
        assert_eq!(a.as_slice(), &[2.0, 1.0]);
        assert_eq!(b.as_slice(), &[6.0, 3.0]);
        assert_eq!((a + b).as_slice(), w.as_slice());
    }

    #[test]
    fn endpoints_are_allowed() {
        let at_source = Facility::new(FacilityId::new(1), EdgeId::new(0), 0.0);
        let at_target = Facility::new(FacilityId::new(2), EdgeId::new(0), 1.0);
        let w = CostVec::from_slice(&[10.0]);
        assert_eq!(at_source.partial_from_source(&w).as_slice(), &[0.0]);
        assert_eq!(at_target.partial_from_target(&w).as_slice(), &[0.0]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_position_panics() {
        let _ = Facility::new(FacilityId::new(0), EdgeId::new(0), 1.5);
    }
}
