//! The store header: global metadata persisted in page 0.

use crate::btree::StaticBTree;
use crate::codec::{RecordReader, RecordWriter};
use crate::error::StorageError;
use crate::page::{Page, PageId};

const MAGIC: u32 = 0x4D_43_4E_31; // "MCN1"

/// Global metadata of a disk-resident MCN store.
///
/// The header records the graph dimensions, the location of the three index
/// trees (adjacency tree, facility tree, edge index) and the number of pages
/// occupied by the MCN data. The latter is what the paper's buffer-size
/// parameter (0 %–2 %) is expressed against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageMeta {
    /// Number of cost types `d`.
    pub num_cost_types: u32,
    /// Number of nodes.
    pub num_nodes: u32,
    /// Number of edges.
    pub num_edges: u32,
    /// Number of facilities.
    pub num_facilities: u32,
    /// The adjacency tree (node id → adjacency record position).
    pub adjacency_tree: StaticBTree,
    /// The facility tree (facility id → containing edge + position).
    pub facility_tree: StaticBTree,
    /// The edge index (edge id → end nodes + direction flag).
    pub edge_index: StaticBTree,
    /// Pages of the adjacency file.
    pub adjacency_file_pages: u32,
    /// Pages of the facility file.
    pub facility_file_pages: u32,
    /// Total number of pages occupied by MCN information (files + trees),
    /// excluding the header page.
    pub data_pages: u32,
}

impl StorageMeta {
    /// Serialises the header into a page image.
    pub fn encode(&self) -> Page {
        let mut page = Page::zeroed();
        let mut w = RecordWriter::new(page.bytes_mut());
        w.put_u32(MAGIC);
        w.put_u32(self.num_cost_types);
        w.put_u32(self.num_nodes);
        w.put_u32(self.num_edges);
        w.put_u32(self.num_facilities);
        for tree in [&self.adjacency_tree, &self.facility_tree, &self.edge_index] {
            w.put_u32(tree.root.raw());
            w.put_u32(tree.num_pages);
            w.put_u32(tree.num_entries);
        }
        w.put_u32(self.adjacency_file_pages);
        w.put_u32(self.facility_file_pages);
        w.put_u32(self.data_pages);
        page
    }

    /// Parses a header from a page image.
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidHeader`] if the magic number is wrong.
    pub fn decode(page: &Page) -> Result<Self, StorageError> {
        let mut r = RecordReader::new(page.bytes(), 0);
        let magic = r.get_u32();
        if magic != MAGIC {
            return Err(StorageError::InvalidHeader(format!(
                "bad magic number 0x{magic:08x}"
            )));
        }
        let num_cost_types = r.get_u32();
        let num_nodes = r.get_u32();
        let num_edges = r.get_u32();
        let num_facilities = r.get_u32();
        let mut trees = [StaticBTree {
            root: PageId::new(0),
            num_pages: 0,
            num_entries: 0,
        }; 3];
        for tree in &mut trees {
            tree.root = PageId::new(r.get_u32());
            tree.num_pages = r.get_u32();
            tree.num_entries = r.get_u32();
        }
        let adjacency_file_pages = r.get_u32();
        let facility_file_pages = r.get_u32();
        let data_pages = r.get_u32();
        Ok(Self {
            num_cost_types,
            num_nodes,
            num_edges,
            num_facilities,
            adjacency_tree: trees[0],
            facility_tree: trees[1],
            edge_index: trees[2],
            adjacency_file_pages,
            facility_file_pages,
            data_pages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StorageMeta {
        StorageMeta {
            num_cost_types: 4,
            num_nodes: 1000,
            num_edges: 1500,
            num_facilities: 200,
            adjacency_tree: StaticBTree {
                root: PageId::new(10),
                num_pages: 5,
                num_entries: 1000,
            },
            facility_tree: StaticBTree {
                root: PageId::new(20),
                num_pages: 2,
                num_entries: 200,
            },
            edge_index: StaticBTree {
                root: PageId::new(30),
                num_pages: 7,
                num_entries: 1500,
            },
            adjacency_file_pages: 40,
            facility_file_pages: 3,
            data_pages: 57,
        }
    }

    #[test]
    fn header_roundtrip() {
        let meta = sample();
        let page = meta.encode();
        let decoded = StorageMeta::decode(&page).unwrap();
        assert_eq!(decoded, meta);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let page = Page::zeroed();
        assert!(matches!(
            StorageMeta::decode(&page),
            Err(StorageError::InvalidHeader(_))
        ));
    }
}
