//! Disk managers: the physical page store underneath the buffer pool.

use crate::page::{Page, PageId, PAGE_SIZE};
use parking_lot::RwLock;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Witness lock-class ids — the exact strings `mcn-analyze` derives
/// (`crate::Type.field`), so observed edges diff against the static graph.
const W_MEM: &str = "storage::InMemoryDisk.pages";
const W_FILE: &str = "storage::FileDisk.file";

/// A physical page store.
///
/// Two implementations are provided:
///
/// * [`InMemoryDisk`] — pages live in RAM; physical reads/writes are counted
///   so the benchmark harness can charge a synthetic latency per transfer.
///   This is the default substrate for experiments (see DESIGN.md §3 on the
///   substitution of the paper's real disk).
/// * [`FileDisk`] — pages live in an ordinary file; useful for persisting a
///   built store and for validating the layout end-to-end.
///
/// All implementations are thread-safe; counters are atomics.
pub trait DiskManager: Send + Sync {
    /// Reads page `id` into `out`.
    ///
    /// # Panics
    /// Panics if the page has never been allocated.
    fn read_page(&self, id: PageId, out: &mut Page);

    /// Writes `page` to page `id`.
    ///
    /// # Panics
    /// Panics if the page has never been allocated.
    fn write_page(&self, id: PageId, page: &Page);

    /// Allocates a fresh zeroed page at the end of the file and returns its id.
    fn allocate_page(&self) -> PageId;

    /// Number of allocated pages.
    fn num_pages(&self) -> usize;

    /// Number of physical page reads served so far.
    fn physical_reads(&self) -> u64;

    /// Number of physical page writes served so far.
    fn physical_writes(&self) -> u64;
}

/// An in-memory disk manager with physical-transfer accounting.
///
/// An optional **simulated read latency** turns the paper's *charged* I/O
/// model into real blocking time: every physical read sleeps for the
/// configured duration. The throughput experiment uses this to measure how
/// the multi-query engine overlaps I/O waits — with zero latency (the
/// default) reads are as fast as RAM and nothing sleeps.
pub struct InMemoryDisk {
    pages: RwLock<Vec<Page>>,
    read_latency: std::time::Duration,
    reads: AtomicU64,
    writes: AtomicU64,
}

const _: () = crate::assert_send_sync::<InMemoryDisk>();

impl InMemoryDisk {
    /// Creates an empty in-memory disk with no simulated latency.
    pub fn new() -> Self {
        Self::with_read_latency(std::time::Duration::ZERO)
    }

    /// Creates an empty in-memory disk whose physical reads each block for
    /// `latency`.
    pub fn with_read_latency(latency: std::time::Duration) -> Self {
        Self {
            pages: RwLock::new(Vec::new()),
            read_latency: latency,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// The simulated per-read latency.
    pub fn read_latency(&self) -> std::time::Duration {
        self.read_latency
    }
}

impl Default for InMemoryDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl DiskManager for InMemoryDisk {
    fn read_page(&self, id: PageId, out: &mut Page) {
        if !self.read_latency.is_zero() {
            // Simulate the seek outside any lock so concurrent reads overlap.
            std::thread::sleep(self.read_latency);
        }
        let pages = self.pages.read();
        let _pages_w = mcn_witness::acquire(W_MEM);
        let page = pages
            .get(id.index())
            .unwrap_or_else(|| panic!("read of unallocated {id}"));
        out.copy_from(page.bytes());
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    fn write_page(&self, id: PageId, page: &Page) {
        let mut pages = self.pages.write();
        let _pages_w = mcn_witness::acquire(W_MEM);
        let slot = pages
            .get_mut(id.index())
            .unwrap_or_else(|| panic!("write to unallocated {id}"));
        slot.copy_from(page.bytes());
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    fn allocate_page(&self) -> PageId {
        let mut pages = self.pages.write();
        let _pages_w = mcn_witness::acquire(W_MEM);
        let id = PageId::new(pages.len() as u32);
        pages.push(Page::zeroed());
        id
    }

    fn num_pages(&self) -> usize {
        self.pages.read().len()
    }

    fn physical_reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    fn physical_writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

/// A file-backed disk manager.
///
/// Pages are stored back to back in a single file. The file handle is wrapped
/// in a lock, so concurrent access serialises; this implementation exists for
/// persistence and end-to-end validation rather than performance.
pub struct FileDisk {
    file: RwLock<File>,
    num_pages: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
}

const _: () = crate::assert_send_sync::<FileDisk>();

impl FileDisk {
    /// Creates (or truncates) a database file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            file: RwLock::new(file),
            num_pages: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }

    /// Opens an existing database file at `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        assert!(
            len % PAGE_SIZE as u64 == 0,
            "database file length {len} is not a multiple of the page size"
        );
        Ok(Self {
            file: RwLock::new(file),
            num_pages: AtomicU64::new(len / PAGE_SIZE as u64),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }
}

impl DiskManager for FileDisk {
    fn read_page(&self, id: PageId, out: &mut Page) {
        assert!(
            (id.index() as u64) < self.num_pages.load(Ordering::SeqCst),
            "read of unallocated {id}"
        );
        let mut file = self.file.write();
        let _file_w = mcn_witness::acquire(W_FILE);
        // mcn-lint: allow(lock-across-io, reason = "the file-handle mutex IS the I/O serialization point; the seek/read pair must be atomic")
        file.seek(SeekFrom::Start(id.index() as u64 * PAGE_SIZE as u64))
            .expect("seek failed");
        // mcn-lint: allow(lock-across-io, reason = "paired with the seek above under the same handle lock")
        file.read_exact(out.bytes_mut()).expect("page read failed");
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    fn write_page(&self, id: PageId, page: &Page) {
        assert!(
            (id.index() as u64) < self.num_pages.load(Ordering::SeqCst),
            "write to unallocated {id}"
        );
        let mut file = self.file.write();
        let _file_w = mcn_witness::acquire(W_FILE);
        // mcn-lint: allow(lock-across-io, reason = "the file-handle mutex IS the I/O serialization point; the seek/write pair must be atomic")
        file.seek(SeekFrom::Start(id.index() as u64 * PAGE_SIZE as u64))
            .expect("seek failed");
        // mcn-lint: allow(lock-across-io, reason = "paired with the seek above under the same handle lock")
        file.write_all(page.bytes()).expect("page write failed");
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    fn allocate_page(&self) -> PageId {
        let id = self.num_pages.fetch_add(1, Ordering::SeqCst);
        let mut file = self.file.write();
        let _file_w = mcn_witness::acquire(W_FILE);
        // mcn-lint: allow(lock-across-io, reason = "allocation must extend the file atomically under the handle lock or concurrent allocators interleave their extents")
        file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))
            .expect("seek failed");
        // mcn-lint: allow(lock-across-io, reason = "paired with the seek above under the same handle lock")
        file.write_all(&[0u8; PAGE_SIZE])
            .expect("page extend failed");
        PageId::new(id as u32)
    }

    fn num_pages(&self) -> usize {
        self.num_pages.load(Ordering::SeqCst) as usize
    }

    fn physical_reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    fn physical_writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(disk: &dyn DiskManager) {
        let a = disk.allocate_page();
        let b = disk.allocate_page();
        assert_eq!(disk.num_pages(), 2);

        let mut p = Page::zeroed();
        p.bytes_mut()[0] = 42;
        p.bytes_mut()[100] = 7;
        disk.write_page(a, &p);

        let mut q = Page::zeroed();
        q.bytes_mut()[0] = 99;
        disk.write_page(b, &q);

        let mut out = Page::zeroed();
        disk.read_page(a, &mut out);
        assert_eq!(out.bytes()[0], 42);
        assert_eq!(out.bytes()[100], 7);
        disk.read_page(b, &mut out);
        assert_eq!(out.bytes()[0], 99);

        assert_eq!(disk.physical_reads(), 2);
        assert_eq!(disk.physical_writes(), 2);
    }

    #[test]
    fn in_memory_roundtrip() {
        roundtrip(&InMemoryDisk::new());
    }

    #[test]
    fn file_disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mcn-disk-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.db");
        {
            let disk = FileDisk::create(&path).unwrap();
            roundtrip(&disk);
        }
        // Re-open and verify persistence.
        let disk = FileDisk::open(&path).unwrap();
        assert_eq!(disk.num_pages(), 2);
        let mut out = Page::zeroed();
        disk.read_page(PageId::new(0), &mut out);
        assert_eq!(out.bytes()[0], 42);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic]
    fn reading_unallocated_page_panics() {
        let disk = InMemoryDisk::new();
        let mut out = Page::zeroed();
        disk.read_page(PageId::new(0), &mut out);
    }

    #[test]
    fn allocation_is_sequential() {
        let disk = InMemoryDisk::new();
        let ids: Vec<u32> = (0..5).map(|_| disk.allocate_page().raw()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
