//! A static, bulk-loaded B+-tree over `u32` keys with fixed-size values.
//!
//! The paper's storage scheme (its Figure 2) uses three disk-resident index
//! structures: the *adjacency tree* (node id → adjacency-file position), the
//! *facility tree* (facility id → containing edge and position) and — added in
//! this reproduction — an *edge index* (edge id → end-nodes) used to seed
//! queries whose location lies in the interior of an edge.
//!
//! The MCN is write-once/read-many, so the trees are bulk loaded bottom-up
//! from sorted `(key, value)` pairs and never updated in place. Lookups walk
//! from the root through the buffer pool, so index I/O is accounted exactly
//! like data I/O (as in the paper's experiments).

use crate::buffer::BufferPool;
use crate::codec::{RecordReader, RecordWriter};
use crate::disk::DiskManager;
use crate::page::{Page, PageId, PAGE_SIZE};
use serde::{Deserialize, Serialize};

/// Size in bytes of every value stored in a tree leaf.
pub const VALUE_SIZE: usize = 12;

/// A fixed-size value stored in tree leaves.
pub type Value = [u8; VALUE_SIZE];

const LEAF: u8 = 0;
const INTERNAL: u8 = 1;
const HEADER: usize = 1 + 2; // node type + entry count
const LEAF_ENTRY: usize = 4 + VALUE_SIZE;
const INTERNAL_ENTRY: usize = 4 + 4; // max key of child + child page id
const LEAF_CAPACITY: usize = (PAGE_SIZE - HEADER) / LEAF_ENTRY;
const INTERNAL_CAPACITY: usize = (PAGE_SIZE - HEADER) / INTERNAL_ENTRY;

/// Handle to a bulk-loaded static B+-tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticBTree {
    /// Root page of the tree.
    pub root: PageId,
    /// Number of pages the tree occupies (leaves + internal nodes).
    pub num_pages: u32,
    /// Number of key/value pairs stored.
    pub num_entries: u32,
}

impl StaticBTree {
    /// Bulk loads a tree from `entries`, which must be sorted by key with no
    /// duplicates, writing its pages through `disk`. Returns the tree handle.
    ///
    /// # Panics
    /// Panics if `entries` is empty or not strictly sorted by key.
    pub fn bulk_load(disk: &dyn DiskManager, entries: &[(u32, Value)]) -> Self {
        assert!(!entries.is_empty(), "cannot bulk load an empty tree");
        assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "bulk load input must be strictly sorted by key"
        );
        let mut pages_used = 0u32;

        // Level 0: leaves. Remember (max key, page id) per leaf.
        let mut level: Vec<(u32, PageId)> = Vec::new();
        for chunk in entries.chunks(LEAF_CAPACITY) {
            let id = disk.allocate_page();
            pages_used += 1;
            let mut page = Page::zeroed();
            {
                let mut w = RecordWriter::new(page.bytes_mut());
                w.put_u8(LEAF);
                w.put_u16(chunk.len() as u16);
                for (key, value) in chunk {
                    w.put_u32(*key);
                    for b in value {
                        w.put_u8(*b);
                    }
                }
            }
            disk.write_page(id, &page);
            level.push((chunk.last().unwrap().0, id));
        }

        // Upper levels until a single root remains.
        while level.len() > 1 {
            let mut next: Vec<(u32, PageId)> = Vec::new();
            for chunk in level.chunks(INTERNAL_CAPACITY) {
                let id = disk.allocate_page();
                pages_used += 1;
                let mut page = Page::zeroed();
                {
                    let mut w = RecordWriter::new(page.bytes_mut());
                    w.put_u8(INTERNAL);
                    w.put_u16(chunk.len() as u16);
                    for (max_key, child) in chunk {
                        w.put_u32(*max_key);
                        w.put_u32(child.raw());
                    }
                }
                disk.write_page(id, &page);
                next.push((chunk.last().unwrap().0, id));
            }
            level = next;
        }

        StaticBTree {
            root: level[0].1,
            num_pages: pages_used,
            num_entries: entries.len() as u32,
        }
    }

    /// Looks up `key`, reading pages through `pool`. Returns the stored value
    /// or `None` if the key is absent.
    pub fn lookup(&self, pool: &BufferPool, key: u32) -> Option<Value> {
        let mut current = self.root;
        loop {
            let step = pool.with_page(current, |bytes| {
                let mut r = RecordReader::new(bytes, 0);
                let node_type = r.get_u8();
                let count = r.get_u16() as usize;
                if node_type == LEAF {
                    // Binary search over fixed-size leaf entries.
                    let entries = &bytes[HEADER..HEADER + count * LEAF_ENTRY];
                    let (mut lo, mut hi) = (0usize, count);
                    while lo < hi {
                        let mid = (lo + hi) / 2;
                        let off = mid * LEAF_ENTRY;
                        let k = u32::from_le_bytes(entries[off..off + 4].try_into().unwrap());
                        if k < key {
                            lo = mid + 1;
                        } else {
                            hi = mid;
                        }
                    }
                    if lo < count {
                        let off = lo * LEAF_ENTRY;
                        let k = u32::from_le_bytes(entries[off..off + 4].try_into().unwrap());
                        if k == key {
                            let mut v = [0u8; VALUE_SIZE];
                            v.copy_from_slice(&entries[off + 4..off + 4 + VALUE_SIZE]);
                            return Step::Found(v);
                        }
                    }
                    Step::Missing
                } else {
                    // Internal node: first child whose max key is >= key.
                    let entries = &bytes[HEADER..HEADER + count * INTERNAL_ENTRY];
                    let (mut lo, mut hi) = (0usize, count);
                    while lo < hi {
                        let mid = (lo + hi) / 2;
                        let off = mid * INTERNAL_ENTRY;
                        let k = u32::from_le_bytes(entries[off..off + 4].try_into().unwrap());
                        if k < key {
                            lo = mid + 1;
                        } else {
                            hi = mid;
                        }
                    }
                    if lo == count {
                        return Step::Missing;
                    }
                    let off = lo * INTERNAL_ENTRY;
                    let child = u32::from_le_bytes(entries[off + 4..off + 8].try_into().unwrap());
                    Step::Descend(PageId::new(child))
                }
            });
            match step {
                Step::Found(v) => return Some(v),
                Step::Missing => return None,
                Step::Descend(child) => current = child,
            }
        }
    }

    /// Height of the tree (1 for a single leaf). Computed from the entry count.
    pub fn height(&self) -> u32 {
        let mut nodes = (self.num_entries as usize).div_ceil(LEAF_CAPACITY).max(1);
        let mut h = 1;
        while nodes > 1 {
            nodes = nodes.div_ceil(INTERNAL_CAPACITY);
            h += 1;
        }
        h
    }
}

enum Step {
    Found(Value),
    Missing,
    Descend(PageId),
}

/// Packs a `(u32, u16)` pair into a tree [`Value`] (used by the adjacency
/// index: page id + in-page offset).
pub fn pack_u32_u16(a: u32, b: u16) -> Value {
    let mut v = [0u8; VALUE_SIZE];
    v[..4].copy_from_slice(&a.to_le_bytes());
    v[4..6].copy_from_slice(&b.to_le_bytes());
    v
}

/// Unpacks a value created by [`pack_u32_u16`].
pub fn unpack_u32_u16(v: &Value) -> (u32, u16) {
    (
        u32::from_le_bytes(v[..4].try_into().unwrap()),
        u16::from_le_bytes(v[4..6].try_into().unwrap()),
    )
}

/// Packs a `(u32, f64)` pair into a tree [`Value`] (used by the facility tree:
/// containing edge + fractional position).
pub fn pack_u32_f64(a: u32, b: f64) -> Value {
    let mut v = [0u8; VALUE_SIZE];
    v[..4].copy_from_slice(&a.to_le_bytes());
    v[4..12].copy_from_slice(&b.to_le_bytes());
    v
}

/// Unpacks a value created by [`pack_u32_f64`].
pub fn unpack_u32_f64(v: &Value) -> (u32, f64) {
    (
        u32::from_le_bytes(v[..4].try_into().unwrap()),
        f64::from_le_bytes(v[4..12].try_into().unwrap()),
    )
}

/// Packs `(u32, u32, u8)` into a tree [`Value`] (used by the edge index:
/// source node, target node, flags).
pub fn pack_u32_u32_u8(a: u32, b: u32, c: u8) -> Value {
    let mut v = [0u8; VALUE_SIZE];
    v[..4].copy_from_slice(&a.to_le_bytes());
    v[4..8].copy_from_slice(&b.to_le_bytes());
    v[8] = c;
    v
}

/// Unpacks a value created by [`pack_u32_u32_u8`].
pub fn unpack_u32_u32_u8(v: &Value) -> (u32, u32, u8) {
    (
        u32::from_le_bytes(v[..4].try_into().unwrap()),
        u32::from_le_bytes(v[4..8].try_into().unwrap()),
        v[8],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;
    use std::sync::Arc;

    fn build_tree(n: u32, stride: u32) -> (Arc<InMemoryDisk>, StaticBTree) {
        let disk = Arc::new(InMemoryDisk::new());
        let entries: Vec<(u32, Value)> = (0..n)
            .map(|i| (i * stride, pack_u32_u16(i * 10, (i % 100) as u16)))
            .collect();
        let tree = StaticBTree::bulk_load(disk.as_ref(), &entries);
        (disk, tree)
    }

    #[test]
    fn single_leaf_tree() {
        let (disk, tree) = build_tree(10, 1);
        assert_eq!(tree.num_pages, 1);
        assert_eq!(tree.height(), 1);
        let pool = BufferPool::new(disk, 4);
        for i in 0..10u32 {
            let v = tree.lookup(&pool, i).expect("key present");
            assert_eq!(unpack_u32_u16(&v), (i * 10, i as u16));
        }
        assert!(tree.lookup(&pool, 10).is_none());
    }

    #[test]
    fn multi_level_tree_lookups() {
        // 200_000 keys force at least three levels (255 per leaf, 511 per node).
        let (disk, tree) = build_tree(200_000, 2);
        assert!(tree.height() >= 3, "height = {}", tree.height());
        let pool = BufferPool::new(disk, 64);
        for &probe in &[0u32, 2, 4, 399_998, 123_456, 199_999 * 2] {
            let v = tree.lookup(&pool, probe).expect("even keys present");
            assert_eq!(unpack_u32_u16(&v).0, probe / 2 * 10);
        }
        // Odd keys (between stored keys) and keys beyond the maximum are absent.
        assert!(tree.lookup(&pool, 1).is_none());
        assert!(tree.lookup(&pool, 131_071).is_none());
        assert!(tree.lookup(&pool, 1_000_000).is_none());
    }

    #[test]
    fn lookup_goes_through_buffer_pool_counters() {
        let (disk, tree) = build_tree(10_000, 1);
        let pool = BufferPool::new(disk, 128);
        pool.clear();
        let _ = tree.lookup(&pool, 5_000);
        let s = pool.stats();
        assert_eq!(s.logical_reads as u32, tree.height());
        // Repeating the same lookup is served from the buffer.
        let _ = tree.lookup(&pool, 5_000);
        let s2 = pool.stats();
        assert_eq!(s2.buffer_misses, s.buffer_misses);
    }

    #[test]
    #[should_panic]
    fn unsorted_input_is_rejected() {
        let disk = InMemoryDisk::new();
        let entries = vec![(2u32, [0u8; VALUE_SIZE]), (1u32, [0u8; VALUE_SIZE])];
        let _ = StaticBTree::bulk_load(&disk, &entries);
    }

    #[test]
    #[should_panic]
    fn empty_input_is_rejected() {
        let disk = InMemoryDisk::new();
        let _ = StaticBTree::bulk_load(&disk, &[]);
    }

    #[test]
    fn value_packing_roundtrips() {
        let v = pack_u32_u16(77, 13);
        assert_eq!(unpack_u32_u16(&v), (77, 13));
        let v = pack_u32_f64(9, 0.625);
        assert_eq!(unpack_u32_f64(&v), (9, 0.625));
        let v = pack_u32_u32_u8(1, 2, 3);
        assert_eq!(unpack_u32_u32_u8(&v), (1, 2, 3));
    }
}
