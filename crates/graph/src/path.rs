//! Paths through the network and their accumulated cost vectors.

use crate::cost::CostVec;
use crate::graph::MultiCostGraph;
use crate::ids::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};

/// A path through the network, represented as the sequence of traversed edges
/// together with the node sequence and the accumulated cost vector.
///
/// The paper's `s_i(q, p)` is the shortest path w.r.t. cost type `i`; its cost
/// `c_i(q, p)` is one component of the path's [`Path::costs`]. Paths are
/// produced by the Dijkstra / expansion engines (`mcn-expansion`) and by the
/// multi-criteria Pareto path algorithms (`mcn-mcpp`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Path {
    /// The visited nodes, in order. A path with a single node and no edges is
    /// the trivial path from a node to itself.
    pub nodes: Vec<NodeId>,
    /// The traversed edges, in order; `edges.len() == nodes.len() - 1`.
    pub edges: Vec<EdgeId>,
    /// The accumulated cost vector (sum of the edge cost vectors, plus any
    /// partial weights at the endpoints).
    pub costs: CostVec,
}

impl Path {
    /// The trivial path that starts and ends at `node` with zero cost.
    pub fn trivial(node: NodeId, num_cost_types: usize) -> Self {
        Self {
            nodes: vec![node],
            edges: Vec::new(),
            costs: CostVec::zeros(num_cost_types),
        }
    }

    /// Number of traversed edges (hops).
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True iff the path has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The first node of the path, if any.
    #[inline]
    pub fn source(&self) -> Option<NodeId> {
        self.nodes.first().copied()
    }

    /// The last node of the path, if any.
    #[inline]
    pub fn target(&self) -> Option<NodeId> {
        self.nodes.last().copied()
    }

    /// Appends an edge to the path, extending the node sequence and adding the
    /// edge's costs.
    ///
    /// # Panics
    /// Panics if the edge is not incident to the current last node or cannot be
    /// traversed from it.
    pub fn push_edge(&mut self, graph: &MultiCostGraph, edge: EdgeId) {
        let last = self
            .target()
            .expect("cannot extend an empty path; start from Path::trivial");
        let e = graph.edge(edge);
        assert!(
            e.traversable_from(last),
            "edge {edge} cannot be traversed from {last}"
        );
        self.nodes.push(e.opposite(last));
        self.edges.push(edge);
        self.costs += e.costs;
    }

    /// Checks that the path is structurally consistent with `graph`: the node
    /// and edge sequences interleave correctly, every edge is traversable in
    /// the direction used, and the recorded cost vector matches the sum of the
    /// edge costs (within `tolerance` per component).
    pub fn validate(&self, graph: &MultiCostGraph, tolerance: f64) -> bool {
        if self.nodes.is_empty() || self.nodes.len() != self.edges.len() + 1 {
            return false;
        }
        let mut acc = CostVec::zeros(graph.num_cost_types());
        for (i, &eid) in self.edges.iter().enumerate() {
            if eid.index() >= graph.num_edges() {
                return false;
            }
            let e = graph.edge(eid);
            let from = self.nodes[i];
            let to = self.nodes[i + 1];
            if !e.traversable_from(from) || e.opposite(from) != to {
                return false;
            }
            acc += e.costs;
        }
        acc.as_slice()
            .iter()
            .zip(self.costs.as_slice())
            .all(|(a, b)| (a - b).abs() <= tolerance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn chain() -> (MultiCostGraph, Vec<NodeId>, Vec<EdgeId>) {
        let mut b = GraphBuilder::new(2);
        let nodes: Vec<NodeId> = (0..4).map(|i| b.add_node(i as f64, 0.0)).collect();
        let mut edges = Vec::new();
        for w in nodes.windows(2) {
            edges.push(
                b.add_edge(w[0], w[1], CostVec::from_slice(&[1.0, 2.0]))
                    .unwrap(),
            );
        }
        (b.build().unwrap(), nodes, edges)
    }

    #[test]
    fn trivial_path() {
        let p = Path::trivial(NodeId::new(3), 2);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.source(), Some(NodeId::new(3)));
        assert_eq!(p.target(), Some(NodeId::new(3)));
        assert_eq!(p.costs.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn push_edges_accumulates_costs() {
        let (g, nodes, edges) = chain();
        let mut p = Path::trivial(nodes[0], 2);
        p.push_edge(&g, edges[0]);
        p.push_edge(&g, edges[1]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.target(), Some(nodes[2]));
        assert_eq!(p.costs.as_slice(), &[2.0, 4.0]);
        assert!(p.validate(&g, 1e-12));
    }

    #[test]
    #[should_panic]
    fn push_non_incident_edge_panics() {
        let (g, nodes, edges) = chain();
        let mut p = Path::trivial(nodes[0], 2);
        p.push_edge(&g, edges[2]); // edge 2 is not incident to node 0
    }

    #[test]
    fn validate_detects_corruption() {
        let (g, nodes, edges) = chain();
        let mut p = Path::trivial(nodes[0], 2);
        p.push_edge(&g, edges[0]);
        // Corrupt the cost vector.
        p.costs[0] += 1.0;
        assert!(!p.validate(&g, 1e-12));
        // Corrupt the node sequence.
        let mut p2 = Path::trivial(nodes[0], 2);
        p2.push_edge(&g, edges[0]);
        p2.nodes[1] = nodes[3];
        assert!(!p2.validate(&g, 1e-12));
    }

    #[test]
    fn directed_traversal_validated() {
        let mut b = GraphBuilder::new(1);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        let e = b
            .add_directed_edge(a, c, CostVec::from_slice(&[1.0]))
            .unwrap();
        let g = b.build().unwrap();
        // Walking the edge backwards is invalid.
        let p = Path {
            nodes: vec![c, a],
            edges: vec![e],
            costs: CostVec::from_slice(&[1.0]),
        };
        assert!(!p.validate(&g, 1e-12));
    }
}
