//! Network access abstraction: how expansions read the disk-resident MCN.
//!
//! The difference between the paper's two algorithms is *purely* an access
//! pattern:
//!
//! * **LSA** runs `d` independent expansions; each reads adjacency records and
//!   facility lists straight from the store, so the same page may be fetched
//!   up to `d` times (mitigated only by the LRU buffer).
//! * **CEA** shares the physically fetched information among the `d`
//!   expansions, guaranteeing that each node's adjacency record and each
//!   edge's facility list is read from the store **at most once** per query.
//!
//! Both are expressed here as implementations of [`NetworkAccess`]:
//! [`DirectAccess`] forwards every call to the store, while [`SharedAccess`]
//! memoises the decoded records in an in-memory cache keyed by node / run, so
//! a second request (from another expansion) never touches the buffer pool or
//! the disk.
//!
//! Both accessors are generic over the [`StoreView`] they read —
//! `MCNStore` by default, so existing call sites are unchanged, or a
//! region-partitioned store (`mcn_storage::PartitionedStore`), over which
//! every algorithm built on this layer produces byte-identical results.

use mcn_graph::{EdgeId, FacilityId, NodeId};
use mcn_storage::store::{EdgeEndpoints, FacilityInfo};
use mcn_storage::{AdjacencyList, FacilityRun, IoStats, MCNStore, StoreView};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Witness lock-class ids — the exact strings `mcn-analyze` derives
/// (`crate::Type.field`), so observed edges diff against the static graph.
const W_ADJ: &str = "expansion::SharedAccess.adjacency";
const W_RUNS: &str = "expansion::SharedAccess.runs";
const W_STATS: &str = "expansion::SharedAccess.stats";

/// Read interface used by the expansion engine.
pub trait NetworkAccess {
    /// Number of cost types `d` of the underlying network.
    fn num_cost_types(&self) -> usize;

    /// The adjacency record of `node`.
    fn adjacency(&self, node: NodeId) -> Arc<AdjacencyList>;

    /// The facilities referenced by `run` as `(facility, position)` pairs.
    fn facilities_in_run(&self, run: &FacilityRun) -> Arc<Vec<(FacilityId, f64)>>;

    /// Facility-tree lookup.
    fn facility_info(&self, facility: FacilityId) -> Option<FacilityInfo>;

    /// Edge-index lookup.
    fn edge_endpoints(&self, edge: EdgeId) -> Option<EdgeEndpoints>;

    /// Current I/O statistics of the underlying store.
    fn io_stats(&self) -> IoStats;
}

/// Pass-through access: every request goes to the store (LSA's behaviour).
pub struct DirectAccess<S: StoreView + ?Sized = MCNStore> {
    store: Arc<S>,
}

const _: () = crate::assert_send_sync::<DirectAccess>();

impl<S: StoreView + ?Sized> DirectAccess<S> {
    /// Creates a pass-through accessor over `store`.
    pub fn new(store: Arc<S>) -> Self {
        Self { store }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<S> {
        &self.store
    }
}

impl<S: StoreView + ?Sized> NetworkAccess for DirectAccess<S> {
    fn num_cost_types(&self) -> usize {
        self.store.num_cost_types()
    }

    fn adjacency(&self, node: NodeId) -> Arc<AdjacencyList> {
        Arc::new(self.store.adjacency(node))
    }

    fn facilities_in_run(&self, run: &FacilityRun) -> Arc<Vec<(FacilityId, f64)>> {
        Arc::new(self.store.facilities_in_run(run))
    }

    fn facility_info(&self, facility: FacilityId) -> Option<FacilityInfo> {
        self.store.facility_info(facility)
    }

    fn edge_endpoints(&self, edge: EdgeId) -> Option<EdgeEndpoints> {
        self.store.edge_endpoints(edge)
    }

    fn io_stats(&self) -> IoStats {
        self.store.io_stats()
    }
}

/// Counters describing how often the shared cache avoided a store access.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharingStats {
    /// Adjacency requests answered from the shared cache.
    pub adjacency_reuses: u64,
    /// Adjacency requests that had to go to the store.
    pub adjacency_fetches: u64,
    /// Facility-run requests answered from the shared cache.
    pub run_reuses: u64,
    /// Facility-run requests that had to go to the store.
    pub run_fetches: u64,
}

/// Information-sharing access: each node's adjacency record and each facility
/// run is fetched from the store at most once per query (CEA's behaviour).
///
/// The cache corresponds to the paper's notion of *expanded* nodes: once some
/// expansion has paid the I/O to expand a node, the decoded record is kept in
/// memory and every other expansion reuses it.
pub struct SharedAccess<S: StoreView + ?Sized = MCNStore> {
    adjacency: Mutex<HashMap<NodeId, Arc<AdjacencyList>>>,
    runs: Mutex<HashMap<(u32, u16), Arc<Vec<(FacilityId, f64)>>>>,
    stats: Mutex<SharingStats>,
    store: Arc<S>,
}

const _: () = crate::assert_send_sync::<SharedAccess>();

impl<S: StoreView + ?Sized> SharedAccess<S> {
    /// Creates a sharing accessor over `store` with an empty cache.
    pub fn new(store: Arc<S>) -> Self {
        Self {
            store,
            adjacency: Mutex::new(HashMap::new()),
            runs: Mutex::new(HashMap::new()),
            stats: Mutex::new(SharingStats::default()),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<S> {
        &self.store
    }

    /// Number of distinct nodes whose adjacency has been fetched ("expanded"
    /// nodes in the paper's terminology).
    pub fn expanded_nodes(&self) -> usize {
        self.adjacency.lock().len()
    }

    /// Cache reuse counters.
    pub fn sharing_stats(&self) -> SharingStats {
        *self.stats.lock()
    }
}

impl<S: StoreView + ?Sized> NetworkAccess for SharedAccess<S> {
    fn num_cost_types(&self) -> usize {
        self.store.num_cost_types()
    }

    fn adjacency(&self, node: NodeId) -> Arc<AdjacencyList> {
        let mut cache = self.adjacency.lock();
        let _cache_w = mcn_witness::acquire(W_ADJ);
        if let Some(hit) = cache.get(&node) {
            {
                let mut stats = self.stats.lock();
                let _stats_w = mcn_witness::acquire(W_STATS);
                stats.adjacency_reuses += 1;
            }
            // mcn-lint: allow(hot-path-alloc, reason = "Arc refcount bump — cache.get hands back &Arc<AdjacencyList>, no list data is copied")
            return hit.clone();
        }
        let record = Arc::new(self.store.adjacency(node));
        cache.insert(node, record.clone());
        let mut stats = self.stats.lock();
        let _stats_w = mcn_witness::acquire(W_STATS);
        stats.adjacency_fetches += 1;
        record
    }

    fn facilities_in_run(&self, run: &FacilityRun) -> Arc<Vec<(FacilityId, f64)>> {
        let key = (run.start.page.raw(), run.start.offset);
        let mut cache = self.runs.lock();
        let _cache_w = mcn_witness::acquire(W_RUNS);
        if let Some(hit) = cache.get(&key) {
            {
                let mut stats = self.stats.lock();
                let _stats_w = mcn_witness::acquire(W_STATS);
                stats.run_reuses += 1;
            }
            // mcn-lint: allow(hot-path-alloc, reason = "Arc refcount bump — cache.get hands back &Arc<Vec<…>>, no run data is copied")
            return hit.clone();
        }
        let facilities = Arc::new(self.store.facilities_in_run(run));
        cache.insert(key, facilities.clone());
        let mut stats = self.stats.lock();
        let _stats_w = mcn_witness::acquire(W_STATS);
        stats.run_fetches += 1;
        facilities
    }

    fn facility_info(&self, facility: FacilityId) -> Option<FacilityInfo> {
        self.store.facility_info(facility)
    }

    fn edge_endpoints(&self, edge: EdgeId) -> Option<EdgeEndpoints> {
        self.store.edge_endpoints(edge)
    }

    fn io_stats(&self) -> IoStats {
        self.store.io_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcn_graph::{CostVec, GraphBuilder};
    use mcn_storage::BufferConfig;

    fn store() -> Arc<MCNStore> {
        let mut b = GraphBuilder::new(2);
        let n: Vec<_> = (0..4).map(|i| b.add_node(i as f64, 0.0)).collect();
        for w in n.windows(2) {
            let e = b
                .add_edge(w[0], w[1], CostVec::from_slice(&[1.0, 2.0]))
                .unwrap();
            b.add_facility(e, 0.5).unwrap();
        }
        let g = b.build().unwrap();
        Arc::new(MCNStore::build_in_memory(&g, BufferConfig::Pages(16)).unwrap())
    }

    #[test]
    fn direct_access_hits_the_store_every_time() {
        let store = store();
        let access = DirectAccess::new(store.clone());
        store.buffer().clear();
        let _ = access.adjacency(NodeId::new(1));
        let _ = access.adjacency(NodeId::new(1));
        // Two logical reads of the data page (plus tree traversals).
        let stats = access.io_stats();
        assert!(stats.logical_reads >= 4);
    }

    #[test]
    fn shared_access_fetches_each_node_once() {
        let store = store();
        let access = SharedAccess::new(store.clone());
        store.buffer().clear();
        let a = access.adjacency(NodeId::new(1));
        let logical_after_first = access.io_stats().logical_reads;
        let b = access.adjacency(NodeId::new(1));
        let c = access.adjacency(NodeId::new(1));
        assert_eq!(access.io_stats().logical_reads, logical_after_first);
        assert!(Arc::ptr_eq(&a, &b) && Arc::ptr_eq(&b, &c));
        assert_eq!(access.expanded_nodes(), 1);
        let s = access.sharing_stats();
        assert_eq!(s.adjacency_fetches, 1);
        assert_eq!(s.adjacency_reuses, 2);
    }

    #[test]
    fn shared_access_caches_facility_runs() {
        let store = store();
        let access = SharedAccess::new(store.clone());
        let adj = access.adjacency(NodeId::new(0));
        let run = adj.entries[0].facilities.expect("edge 0 has a facility");
        let before = access.io_stats().logical_reads;
        let f1 = access.facilities_in_run(&run);
        let after_first = access.io_stats().logical_reads;
        assert!(after_first > before);
        let f2 = access.facilities_in_run(&run);
        assert_eq!(access.io_stats().logical_reads, after_first);
        assert_eq!(f1, f2);
        assert_eq!(f1.len(), 1);
    }

    #[test]
    fn both_accessors_expose_lookups() {
        let store = store();
        let direct = DirectAccess::new(store.clone());
        let shared = SharedAccess::new(store);
        assert_eq!(direct.num_cost_types(), 2);
        assert_eq!(shared.num_cost_types(), 2);
        assert_eq!(
            direct.facility_info(FacilityId::new(0)),
            shared.facility_info(FacilityId::new(0))
        );
        assert_eq!(
            direct.edge_endpoints(EdgeId::new(2)),
            shared.edge_endpoints(EdgeId::new(2))
        );
    }
}
