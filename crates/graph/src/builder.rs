//! Validated construction of [`MultiCostGraph`] instances.

use crate::cost::CostVec;
use crate::edge::Edge;
use crate::error::GraphError;
use crate::facility::Facility;
use crate::graph::MultiCostGraph;
use crate::ids::{EdgeId, FacilityId, NodeId};
use crate::node::Node;

/// Incremental, validating builder for [`MultiCostGraph`].
///
/// Nodes, edges and facilities receive dense, zero-based identifiers in the
/// order they are added. Every mutation is validated eagerly (unknown node,
/// wrong cost dimensionality, invalid facility position, …) so that
/// [`GraphBuilder::build`] can only fail on graph-global conditions.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_cost_types: usize,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    facilities: Vec<Facility>,
    allow_self_loops: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_cost_types` cost types.
    ///
    /// # Panics
    /// Panics if `num_cost_types` is zero or exceeds
    /// [`crate::MAX_COST_TYPES`].
    pub fn new(num_cost_types: usize) -> Self {
        // CostVec::zeros performs the range validation.
        let _ = CostVec::zeros(num_cost_types);
        Self {
            num_cost_types,
            nodes: Vec::new(),
            edges: Vec::new(),
            facilities: Vec::new(),
            allow_self_loops: false,
        }
    }

    /// Pre-allocates capacity for the given numbers of nodes, edges and
    /// facilities.
    pub fn with_capacity(
        num_cost_types: usize,
        nodes: usize,
        edges: usize,
        facilities: usize,
    ) -> Self {
        let mut b = Self::new(num_cost_types);
        b.nodes.reserve(nodes);
        b.edges.reserve(edges);
        b.facilities.reserve(facilities);
        b
    }

    /// Number of cost types the graph under construction will have.
    #[inline]
    pub fn num_cost_types(&self) -> usize {
        self.num_cost_types
    }

    /// Number of nodes added so far.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges added so far.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of facilities added so far.
    #[inline]
    pub fn num_facilities(&self) -> usize {
        self.facilities.len()
    }

    /// Permits self-loop edges (disallowed by default).
    pub fn allow_self_loops(&mut self, allow: bool) -> &mut Self {
        self.allow_self_loops = allow;
        self
    }

    /// Adds a node with coordinates and returns its identifier.
    pub fn add_node(&mut self, x: f64, y: f64) -> NodeId {
        let id = NodeId::from(self.nodes.len());
        self.nodes.push(Node::new(id, x, y));
        id
    }

    /// Adds a node without coordinates and returns its identifier.
    pub fn add_node_without_position(&mut self) -> NodeId {
        let id = NodeId::from(self.nodes.len());
        self.nodes.push(Node::without_position(id));
        id
    }

    fn validate_edge(
        &self,
        id: EdgeId,
        source: NodeId,
        target: NodeId,
        costs: &CostVec,
    ) -> Result<(), GraphError> {
        if source.index() >= self.nodes.len() {
            return Err(GraphError::UnknownNode(source));
        }
        if target.index() >= self.nodes.len() {
            return Err(GraphError::UnknownNode(target));
        }
        if source == target && !self.allow_self_loops {
            return Err(GraphError::SelfLoop(id));
        }
        if costs.len() != self.num_cost_types {
            return Err(GraphError::CostDimensionMismatch {
                edge: id,
                expected: self.num_cost_types,
                found: costs.len(),
            });
        }
        if !costs.is_valid() {
            return Err(GraphError::InvalidCost(id));
        }
        Ok(())
    }

    /// Adds an undirected edge and returns its identifier.
    pub fn add_edge(
        &mut self,
        source: NodeId,
        target: NodeId,
        costs: CostVec,
    ) -> Result<EdgeId, GraphError> {
        let id = EdgeId::from(self.edges.len());
        self.validate_edge(id, source, target, &costs)?;
        self.edges.push(Edge::new(id, source, target, costs));
        Ok(id)
    }

    /// Adds a directed edge (traversable only from `source` to `target`) and
    /// returns its identifier.
    pub fn add_directed_edge(
        &mut self,
        source: NodeId,
        target: NodeId,
        costs: CostVec,
    ) -> Result<EdgeId, GraphError> {
        let id = EdgeId::from(self.edges.len());
        self.validate_edge(id, source, target, &costs)?;
        self.edges
            .push(Edge::new_directed(id, source, target, costs));
        Ok(id)
    }

    /// Adds a facility at fraction `position` along `edge` and returns its
    /// identifier.
    pub fn add_facility(&mut self, edge: EdgeId, position: f64) -> Result<FacilityId, GraphError> {
        let id = FacilityId::from(self.facilities.len());
        if edge.index() >= self.edges.len() {
            return Err(GraphError::UnknownEdge(edge));
        }
        if !(0.0..=1.0).contains(&position) || !position.is_finite() {
            return Err(GraphError::InvalidFacilityPosition {
                facility: id,
                position,
            });
        }
        self.facilities.push(Facility { id, edge, position });
        Ok(id)
    }

    /// Finalizes the builder into an immutable [`MultiCostGraph`].
    ///
    /// # Errors
    /// Returns [`GraphError::EmptyGraph`] if no nodes were added.
    pub fn build(self) -> Result<MultiCostGraph, GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::EmptyGraph);
        }
        let mut adjacency = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            adjacency[e.source.index()].push(e.id);
            if e.source != e.target {
                adjacency[e.target.index()].push(e.id);
            }
        }
        let mut edge_facilities = vec![Vec::new(); self.edges.len()];
        for f in &self.facilities {
            edge_facilities[f.edge.index()].push(f.id);
        }
        Ok(MultiCostGraph {
            num_cost_types: self.num_cost_types,
            nodes: self.nodes,
            edges: self.edges,
            facilities: self.facilities,
            adjacency,
            edge_facilities,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_rejects_empty_graph() {
        let b = GraphBuilder::new(2);
        assert_eq!(b.build().unwrap_err(), GraphError::EmptyGraph);
    }

    #[test]
    fn edge_validation() {
        let mut b = GraphBuilder::new(2);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);

        // Unknown node.
        let err = b
            .add_edge(a, NodeId::new(9), CostVec::from_slice(&[1.0, 1.0]))
            .unwrap_err();
        assert_eq!(err, GraphError::UnknownNode(NodeId::new(9)));

        // Wrong dimensionality.
        let err = b.add_edge(a, c, CostVec::from_slice(&[1.0])).unwrap_err();
        assert!(matches!(err, GraphError::CostDimensionMismatch { .. }));

        // Negative cost.
        let err = b
            .add_edge(a, c, CostVec::from_slice(&[1.0, -3.0]))
            .unwrap_err();
        assert!(matches!(err, GraphError::InvalidCost(_)));

        // Self-loop rejected by default…
        let err = b
            .add_edge(a, a, CostVec::from_slice(&[1.0, 1.0]))
            .unwrap_err();
        assert!(matches!(err, GraphError::SelfLoop(_)));
        // …but allowed when opted in.
        b.allow_self_loops(true);
        assert!(b.add_edge(a, a, CostVec::from_slice(&[1.0, 1.0])).is_ok());
    }

    #[test]
    fn facility_validation() {
        let mut b = GraphBuilder::new(1);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        let e = b.add_edge(a, c, CostVec::from_slice(&[1.0])).unwrap();

        assert!(b.add_facility(e, 0.3).is_ok());
        assert!(matches!(
            b.add_facility(EdgeId::new(5), 0.3),
            Err(GraphError::UnknownEdge(_))
        ));
        assert!(matches!(
            b.add_facility(e, 1.5),
            Err(GraphError::InvalidFacilityPosition { .. })
        ));
        assert!(matches!(
            b.add_facility(e, f64::NAN),
            Err(GraphError::InvalidFacilityPosition { .. })
        ));
    }

    #[test]
    fn dense_identifiers_in_insertion_order() {
        let mut b = GraphBuilder::with_capacity(1, 4, 3, 2);
        let ids: Vec<NodeId> = (0..4).map(|i| b.add_node(i as f64, 0.0)).collect();
        assert_eq!(ids, (0..4).map(NodeId::new).collect::<Vec<_>>());
        let e0 = b
            .add_edge(ids[0], ids[1], CostVec::from_slice(&[1.0]))
            .unwrap();
        let e1 = b
            .add_edge(ids[1], ids[2], CostVec::from_slice(&[1.0]))
            .unwrap();
        assert_eq!((e0, e1), (EdgeId::new(0), EdgeId::new(1)));
        let p0 = b.add_facility(e0, 0.0).unwrap();
        let p1 = b.add_facility(e1, 1.0).unwrap();
        assert_eq!((p0, p1), (FacilityId::new(0), FacilityId::new(1)));
        assert_eq!(b.num_nodes(), 4);
        assert_eq!(b.num_edges(), 2);
        assert_eq!(b.num_facilities(), 2);
        let g = b.build().unwrap();
        assert_eq!(g.num_nodes(), 4);
    }

    #[test]
    fn adjacency_and_facility_lists_are_built() {
        let mut b = GraphBuilder::new(1);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        let d = b.add_node(2.0, 0.0);
        let e0 = b.add_edge(a, c, CostVec::from_slice(&[1.0])).unwrap();
        let e1 = b.add_edge(c, d, CostVec::from_slice(&[1.0])).unwrap();
        b.add_facility(e1, 0.5).unwrap();
        b.add_facility(e1, 0.7).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.incident_edges(c), &[e0, e1]);
        assert_eq!(g.facilities_on_edge(e1).len(), 2);
    }
}
