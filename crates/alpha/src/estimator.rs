//! Recovering a user's preference α from an observed route.

use crate::preference::Preference;
use crate::search::{scalarized_path, ScalarPath};
use mcn_graph::{CostVec, EdgeId, MultiCostGraph, NodeId};

/// Result of one [`PreferenceEstimator::estimate`] call.
#[derive(Clone, Debug, PartialEq)]
pub struct EstimateOutcome {
    /// A preference under which the observed route is α-optimal.
    pub preference: Preference,
    /// Outer feasibility rounds used (1 = the starting point already
    /// reproduced the route).
    pub rounds: u32,
    /// Shortest-path probes issued in total (outer rounds + bisection).
    pub probes: u64,
}

/// Learns a user's α from a route they actually took, Lesstat-style but
/// without an LP dependency: an iterative feasibility search against
/// [`scalarized_path`].
///
/// Starting from the uniform α, each round computes the α-optimal route.
/// If it reproduces the observation (identical edges, or equal scalarized
/// cost — the route is co-optimal), that α is the answer. Otherwise the
/// observation is strictly worse under the current α, and the *violated
/// component* — the cost type where the observation overpays the most
/// relative to the optimum — is telling us the user cares less about that
/// cost than the current α does. The round line-searches that component's
/// weight (scale factor in [0, 1], renormalizing the rest). The
/// **suboptimality gap** `α·c(observed) − min_routes α·c(route)` is convex
/// along the segment (a linear function minus a concave minimum of linear
/// route costs), so a golden-section search finds its minimum — including
/// *interior* feasible scales that endpoint bisection would miss. If the
/// minimum reaches (near) zero the observation is optimal there and a
/// final bisection widens back towards the *largest* feasible scale — the
/// least-committal α consistent with the evidence; otherwise the round
/// keeps the gap-minimizing scale as a coordinate-descent step and moves
/// on to the next violated component.
///
/// Not every route is α-optimal for *any* α (strictly dominated detours
/// are unexplainable by linear scalarization); `estimate` returns `None`
/// for those once the round budget is exhausted.
pub struct PreferenceEstimator<'g> {
    graph: &'g MultiCostGraph,
    /// Outer feasibility rounds before giving up.
    max_rounds: u32,
    /// Line-search refinement steps per round (golden-section and the
    /// widening bisection each get this many probes).
    bisect_steps: u32,
}

/// 1/φ, the golden-section shrink factor.
const INV_PHI: f64 = 0.618_033_988_749_894_9;

impl<'g> PreferenceEstimator<'g> {
    /// Estimator over `graph` with the default budgets (16 rounds × 12
    /// bisection steps — plenty for d ≤ 8).
    pub fn new(graph: &'g MultiCostGraph) -> Self {
        Self {
            graph,
            max_rounds: 16,
            bisect_steps: 12,
        }
    }

    /// Overrides the outer round budget (clamped to ≥ 1).
    pub fn with_max_rounds(mut self, rounds: u32) -> Self {
        self.max_rounds = rounds.max(1);
        self
    }

    /// Recovers an α that makes the observed `edges` (a route source →
    /// target) optimal, or `None` if the route cannot be explained by any
    /// linear scalarization within the round budget.
    pub fn estimate(
        &self,
        source: NodeId,
        target: NodeId,
        edges: &[EdgeId],
    ) -> Option<EstimateOutcome> {
        let d = self.graph.num_cost_types();
        let observed_costs = self.route_costs(source, target, edges);
        let mut weights = vec![1.0; d];
        let mut probes = 0u64;

        for round in 1..=self.max_rounds {
            let alpha = Preference::new(&weights).expect("weights stay valid");
            probes += 1;
            let best = match scalarized_path(self.graph, source, target, &alpha).path {
                Some(p) => p,
                None => return None, // target unreachable: nothing to explain
            };
            if Self::feasible(&alpha, &best, edges, &observed_costs) {
                return Some(EstimateOutcome {
                    preference: alpha,
                    rounds: round,
                    probes,
                });
            }

            // The component where the observation overpays the most is the
            // one the user evidently discounts.
            let violated = self.most_violated(&observed_costs, &best.costs);

            // One probe: the suboptimality gap at `scale` and whether the
            // observation is optimal there.
            let mut eval = |scale: f64, probes: &mut u64| -> Option<(f64, bool)> {
                let cand = Self::scaled(&weights, violated, scale);
                *probes += 1;
                let cand_best = scalarized_path(self.graph, source, target, &cand).path?;
                let feasible = Self::feasible(&cand, &cand_best, edges, &observed_costs);
                Some((cand.cost_of(&observed_costs) - cand_best.total, feasible))
            };

            // Golden-section search on the convex gap over scale ∈ [0, 1].
            let mut feasible_scale: Option<f64> = None;
            let (mut best_scale, mut best_gap) = (0.0f64, f64::INFINITY);
            let mut record = |scale: f64,
                              gap: f64,
                              ok: bool,
                              at: &mut Option<f64>,
                              bs: &mut f64,
                              bg: &mut f64| {
                if gap < *bg {
                    *bg = gap;
                    *bs = scale;
                }
                if ok && at.is_none() {
                    *at = Some(scale);
                }
            };
            let (gap0, ok0) = eval(0.0, &mut probes)?;
            record(
                0.0,
                gap0,
                ok0,
                &mut feasible_scale,
                &mut best_scale,
                &mut best_gap,
            );
            let (mut a, mut b) = (0.0f64, 1.0f64);
            let mut c = b - (b - a) * INV_PHI;
            let mut d_probe = a + (b - a) * INV_PHI;
            let (mut gap_c, ok_c) = eval(c, &mut probes)?;
            record(
                c,
                gap_c,
                ok_c,
                &mut feasible_scale,
                &mut best_scale,
                &mut best_gap,
            );
            let (mut gap_d, ok_d) = eval(d_probe, &mut probes)?;
            record(
                d_probe,
                gap_d,
                ok_d,
                &mut feasible_scale,
                &mut best_scale,
                &mut best_gap,
            );
            let mut steps = self.bisect_steps;
            while feasible_scale.is_none() && steps > 0 {
                steps -= 1;
                if gap_c <= gap_d {
                    b = d_probe;
                    d_probe = c;
                    gap_d = gap_c;
                    c = b - (b - a) * INV_PHI;
                    let (g, ok) = eval(c, &mut probes)?;
                    gap_c = g;
                    record(
                        c,
                        g,
                        ok,
                        &mut feasible_scale,
                        &mut best_scale,
                        &mut best_gap,
                    );
                } else {
                    a = c;
                    c = d_probe;
                    gap_c = gap_d;
                    d_probe = a + (b - a) * INV_PHI;
                    let (g, ok) = eval(d_probe, &mut probes)?;
                    gap_d = g;
                    record(
                        d_probe,
                        g,
                        ok,
                        &mut feasible_scale,
                        &mut best_scale,
                        &mut best_gap,
                    );
                }
            }

            let Some(found) = feasible_scale else {
                // The whole segment is infeasible: keep the gap-minimizing
                // scale as a coordinate-descent step (the gap never
                // increases) and let the next round pick the — possibly
                // different — most-violated component. A floor forces
                // progress when the minimizer sits at the current weight.
                weights[violated] *= best_scale.clamp(1e-3, 1.0 - 1e-3);
                continue;
            };

            // Widen back towards the *largest* feasible scale: the feasible
            // scales form an interval and scale 1 (the current α) is known
            // infeasible, so bisect [found, 1] with the lo-feasible /
            // hi-infeasible invariant.
            let (mut lo, mut hi) = (found, 1.0f64);
            for _ in 0..self.bisect_steps {
                let mid = 0.5 * (lo + hi);
                let (_, ok) = eval(mid, &mut probes)?;
                if ok {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            return Some(EstimateOutcome {
                preference: Self::scaled(&weights, violated, lo),
                rounds: round,
                probes,
            });
        }
        None
    }

    /// Validates the edge sequence as a route source → target and sums its
    /// cost vector in path order.
    fn route_costs(&self, source: NodeId, target: NodeId, edges: &[EdgeId]) -> CostVec {
        let mut costs = CostVec::zeros(self.graph.num_cost_types());
        let mut at = source;
        for &eid in edges {
            let e = self.graph.edge(eid);
            assert!(
                e.touches(at) && e.traversable_from(at),
                "observed route is not a connected traversable walk"
            );
            costs += e.costs;
            at = e.opposite(at);
        }
        assert_eq!(at, target, "observed route does not end at the target");
        costs
    }

    /// The observation is explained by `alpha` when the α-optimal route is
    /// the observation itself, or costs the same under α (co-optimal tie).
    fn feasible(
        alpha: &Preference,
        best: &ScalarPath,
        observed_edges: &[EdgeId],
        observed_costs: &CostVec,
    ) -> bool {
        if best.edges == observed_edges {
            return true;
        }
        let observed = alpha.cost_of(observed_costs);
        observed <= best.total * (1.0 + 1e-9) + 1e-12
    }

    /// Index of the cost type where the observation overpays the most over
    /// the current optimum (ties break to the smallest index).
    fn most_violated(&self, observed: &CostVec, best: &CostVec) -> usize {
        let mut worst = 0;
        let mut gap = f64::NEG_INFINITY;
        for i in 0..observed.len() {
            let g = observed[i] - best[i];
            if g > gap {
                gap = g;
                worst = i;
            }
        }
        worst
    }

    /// `weights` with component `i` scaled by `factor` (the simplex
    /// projection happens in `Preference::new`). A floor keeps the vector
    /// valid even when every other component is already pinned at ~0.
    fn scaled(weights: &[f64], i: usize, factor: f64) -> Preference {
        let mut w = weights.to_vec();
        w[i] = (w[i] * factor).max(1e-12);
        Preference::new(&w).expect("scaled weights stay valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcn_graph::GraphBuilder;

    fn diamond() -> (MultiCostGraph, NodeId, NodeId) {
        let mut b = GraphBuilder::new(2);
        let s = b.add_node(0.0, 0.0);
        let top = b.add_node(1.0, 1.0);
        let bot = b.add_node(1.0, -1.0);
        let t = b.add_node(2.0, 0.0);
        b.add_edge(s, top, CostVec::from_slice(&[1.0, 10.0]))
            .unwrap();
        b.add_edge(top, t, CostVec::from_slice(&[1.0, 10.0]))
            .unwrap();
        b.add_edge(s, bot, CostVec::from_slice(&[10.0, 1.0]))
            .unwrap();
        b.add_edge(bot, t, CostVec::from_slice(&[10.0, 1.0]))
            .unwrap();
        (b.build().unwrap(), s, t)
    }

    /// The recovered α must make the observed route optimal — the
    /// estimator's contract, checked by replaying the search.
    fn assert_explains(g: &MultiCostGraph, s: NodeId, t: NodeId, route: &ScalarPath) {
        let est = PreferenceEstimator::new(g);
        let out = est
            .estimate(s, t, &route.edges)
            .expect("route is explainable");
        let replay = scalarized_path(g, s, t, &out.preference).path.unwrap();
        let observed = out.preference.cost_of(&route.costs);
        assert!(
            replay.edges == route.edges || observed <= replay.total * (1.0 + 1e-9) + 1e-12,
            "recovered alpha {:?} does not explain the route",
            out.preference.weights()
        );
    }

    #[test]
    fn recovers_alpha_for_both_diamond_routes() {
        let (g, s, t) = diamond();
        for hidden in [[0.9, 0.1], [0.1, 0.9]] {
            let alpha = Preference::new(&hidden).unwrap();
            let route = scalarized_path(&g, s, t, &alpha).path.unwrap();
            assert_explains(&g, s, t, &route);
        }
    }

    #[test]
    fn uniform_route_is_explained_in_one_round() {
        let (g, s, t) = diamond();
        let route = scalarized_path(&g, s, t, &Preference::new(&[0.8, 0.2]).unwrap())
            .path
            .unwrap();
        let out = PreferenceEstimator::new(&g)
            .estimate(s, t, &route.edges)
            .unwrap();
        assert!(out.rounds >= 1 && out.probes >= 1);
    }

    #[test]
    fn dominated_detour_is_unexplainable() {
        // A strictly dominated detour s → a → t next to a direct edge that
        // is better in every component: no α makes the detour optimal.
        let mut b = GraphBuilder::new(2);
        let s = b.add_node(0.0, 0.0);
        let a = b.add_node(1.0, 1.0);
        let t = b.add_node(2.0, 0.0);
        b.add_edge(s, t, CostVec::from_slice(&[1.0, 1.0])).unwrap();
        let e1 = b.add_edge(s, a, CostVec::from_slice(&[5.0, 5.0])).unwrap();
        let e2 = b.add_edge(a, t, CostVec::from_slice(&[5.0, 5.0])).unwrap();
        let g = b.build().unwrap();
        let est = PreferenceEstimator::new(&g).with_max_rounds(4);
        assert!(est.estimate(s, t, &[e1, e2]).is_none());
    }

    #[test]
    #[should_panic(expected = "does not end at the target")]
    fn rejects_routes_that_miss_the_target() {
        let (g, s, t) = diamond();
        let est = PreferenceEstimator::new(&g);
        est.estimate(s, t, &[]);
    }
}
