//! Shared helpers for the unit tests of this crate (compiled only for tests).

use crate::aggregate::{AggregateCost, WeightedSum};
use mcn_expansion::oracle;
use mcn_graph::{CostVec, FacilityId, GraphBuilder, MultiCostGraph, NetworkLocation, NodeId};
use mcn_storage::{BufferConfig, MCNStore};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Builds the network of the paper's Figure 1: a port `q` and two candidate
/// warehouses, one fast-but-tolled and one slow-but-free.
///
/// Cost types: (driving time in minutes, toll fee in dollars). Returns the
/// store, the query location and the facility ids `(p1, p2)` where
/// `c(p1) = (20, 0)` and `c(p2) = (10, 1)`.
pub fn paper_figure1_store() -> (MCNStore, NetworkLocation, (FacilityId, FacilityId)) {
    let mut b = GraphBuilder::new(2);
    let q_node = b.add_node(0.0, 0.0);
    let a = b.add_node(1.0, 1.0);
    let c = b.add_node(1.0, -1.0);
    // Slow toll-free route to p1's edge, and a fast tolled route to p2's edge.
    let e_slow = b
        .add_edge(q_node, a, CostVec::from_slice(&[16.0, 0.0]))
        .unwrap();
    let e_fast = b
        .add_edge(q_node, c, CostVec::from_slice(&[8.0, 1.0]))
        .unwrap();
    // Stub edges carrying the facilities at their midpoints.
    let b1 = b.add_node(2.0, 1.0);
    let b2 = b.add_node(2.0, -1.0);
    let e_p1 = b.add_edge(a, b1, CostVec::from_slice(&[8.0, 0.0])).unwrap();
    let e_p2 = b.add_edge(c, b2, CostVec::from_slice(&[4.0, 0.0])).unwrap();
    let _ = e_slow;
    let _ = e_fast;
    let p1 = b.add_facility(e_p1, 0.5).unwrap(); // 16 + 4 = 20 min, 0 $
    let p2 = b.add_facility(e_p2, 0.5).unwrap(); // 8 + 2 = 10 min, 1 $
    let g = b.build().unwrap();
    let store = MCNStore::build_in_memory(&g, BufferConfig::Pages(16)).unwrap();
    (store, NetworkLocation::Node(q_node), (p1, p2))
}

/// Builds a random connected undirected network with clustered-ish facilities
/// and returns the store, the in-memory graph (for oracles) and a query
/// location at node 0.
pub fn random_store(
    seed: u64,
    nodes: usize,
    extra_edges: usize,
    facilities: usize,
    d: usize,
) -> (MCNStore, MultiCostGraph, NetworkLocation) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(d);
    let ids: Vec<NodeId> = (0..nodes)
        .map(|i| b.add_node(i as f64, rng.gen_range(0.0..100.0)))
        .collect();
    let mut edges = Vec::new();
    for w in ids.windows(2) {
        let costs: Vec<f64> = (0..d).map(|_| rng.gen_range(0.5..10.0)).collect();
        edges.push(b.add_edge(w[0], w[1], CostVec::from_slice(&costs)).unwrap());
    }
    for _ in 0..extra_edges {
        let a = ids[rng.gen_range(0..nodes)];
        let c = ids[rng.gen_range(0..nodes)];
        if a == c {
            continue;
        }
        let costs: Vec<f64> = (0..d).map(|_| rng.gen_range(0.5..10.0)).collect();
        edges.push(b.add_edge(a, c, CostVec::from_slice(&costs)).unwrap());
    }
    for _ in 0..facilities {
        let e = edges[rng.gen_range(0..edges.len())];
        b.add_facility(e, rng.gen_range(0.0..=1.0)).unwrap();
    }
    let g = b.build().unwrap();
    let store = MCNStore::build_in_memory(&g, BufferConfig::Pages(64)).unwrap();
    (store, g, NetworkLocation::Node(NodeId::new(0)))
}

/// Brute-force skyline oracle: exact cost vectors via in-memory Dijkstra, then
/// a naive quadratic skyline. Returns sorted facility identifiers.
pub fn skyline_oracle(graph: &MultiCostGraph, location: NetworkLocation) -> Vec<FacilityId> {
    let costs = oracle::facility_cost_vectors(graph, location);
    let items: Vec<(FacilityId, CostVec)> = costs
        .iter()
        .enumerate()
        .map(|(i, cv)| (FacilityId::from(i), *cv))
        .collect();
    let mut result: Vec<FacilityId> = mcn_skyline::naive_skyline(&items)
        .into_iter()
        .map(|i| items[i].0)
        .collect();
    result.sort();
    result
}

/// Brute-force top-k oracle: exact cost vectors, scored with `f`, sorted by
/// score (ties by facility id), truncated to `k`. Returns `(facility, score)`.
pub fn topk_oracle(
    graph: &MultiCostGraph,
    location: NetworkLocation,
    f: &WeightedSum,
    k: usize,
) -> Vec<(FacilityId, f64)> {
    let costs = oracle::facility_cost_vectors(graph, location);
    let mut scored: Vec<(FacilityId, f64)> = costs
        .iter()
        .enumerate()
        .map(|(i, cv)| (FacilityId::from(i), f.score(cv)))
        .collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}
