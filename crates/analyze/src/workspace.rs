//! Workspace discovery: finds every non-vendored Rust source file and
//! loads it as a [`SourceFile`]. Vendored crates (`vendor/`) and build
//! output (`target/`) are never analyzed — the rules encode *this*
//! repository's invariants, not the shims'.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::source::SourceFile;

/// The analyzed slice of the workspace: every `.rs` file of the root
/// package and of each `crates/*` member, in deterministic (sorted path)
/// order.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    /// Loaded files, sorted by workspace-relative path.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Builds a workspace from pre-lexed files (used by rule fixtures).
    pub fn from_files(mut files: Vec<SourceFile>) -> Workspace {
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Workspace { files }
    }

    /// Loads every analyzable file under `root` (a workspace checkout).
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut paths: Vec<PathBuf> = Vec::new();
        for dir in ["src", "tests", "examples", "benches"] {
            collect_rs(&root.join(dir), &mut paths)?;
        }
        let crates = root.join("crates");
        if crates.is_dir() {
            let mut members: Vec<PathBuf> = fs::read_dir(&crates)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            members.sort();
            for member in members {
                for dir in ["src", "tests", "examples", "benches"] {
                    collect_rs(&member.join(dir), &mut paths)?;
                }
            }
        }
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for path in paths {
            let text = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile::from_str(&rel, &text));
        }
        Ok(Workspace { files })
    }

    /// Finds the workspace root: walks up from `start` to the first
    /// directory holding both a `Cargo.toml` and a `crates/` directory.
    pub fn discover_root(start: &Path) -> Option<PathBuf> {
        let mut dir = Some(start.to_path_buf());
        while let Some(d) = dir {
            if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
                return Some(d);
            }
            dir = d.parent().map(Path::to_path_buf);
        }
        None
    }
}

/// Recursively collects `.rs` files under `dir` (which may not exist).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_this_workspace_without_vendor() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/analyze has a workspace root two levels up");
        let ws = Workspace::load(root).expect("workspace loads");
        assert!(
            ws.files
                .iter()
                .any(|f| f.path == "crates/analyze/src/workspace.rs"),
            "finds its own sources"
        );
        assert!(
            ws.files.iter().all(|f| !f.path.starts_with("vendor/")),
            "vendor/ is excluded"
        );
        // Deterministic order: sorted by path.
        let paths: Vec<&str> = ws.files.iter().map(|f| f.path.as_str()).collect();
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted);
    }
}
