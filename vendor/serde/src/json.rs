//! Hand-rolled JSON backend: the single in-tree realisation of the
//! [`Serializer`](crate::Serializer)/[`Deserializer`](crate::Deserializer)
//! data model.
//!
//! The mapping follows serde_json's externally-tagged conventions:
//!
//! * structs → objects with the fields in declaration order;
//! * newtype structs → the inner value, transparently;
//! * unit enum variants → `"VariantName"`;
//! * variants with a payload → `{"VariantName": payload}` (tuple payloads
//!   of two or more fields are arrays);
//! * `Option` → `null` or the value.
//!
//! Two deliberate deviations keep round-trips exact where serde_json is
//! lossy:
//!
//! * non-finite floats serialize as the strings `"NaN"`, `"inf"` and
//!   `"-inf"` (serde_json emits `null`, which does not round-trip);
//! * finite floats use Rust's shortest round-trip formatting, and
//!   integers never pass through `f64`, so `u64::MAX` survives.
//!
//! Output is deterministic: serializing the same value twice yields
//! byte-identical text, which the experiments binary exploits to verify
//! persisted reports (`--check` re-serializes the parsed file and compares
//! bytes).

use crate::{Deserialize, Deserializer, Error as SerdeError, Serialize, Serializer};
use std::fmt;

/// Error raised while writing or parsing JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset in the input at which the error occurred (parsing only).
    offset: Option<usize>,
}

impl Error {
    fn at(msg: impl fmt::Display, offset: usize) -> Self {
        Self {
            msg: msg.to_string(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} at byte {o}", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl SerdeError for Error {
    fn custom(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
            offset: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum Frame {
    Seq { first: bool },
    Struct { first: bool },
    Variant,
}

/// A [`Serializer`] writing JSON text into an owned `String`.
pub struct JsonSerializer {
    out: String,
    stack: Vec<Frame>,
    /// `None` = compact; `Some(n)` = pretty-print with `n`-space indent.
    indent: Option<usize>,
    depth: usize,
}

impl JsonSerializer {
    /// Creates a compact serializer.
    pub fn compact() -> Self {
        Self {
            out: String::new(),
            stack: Vec::new(),
            indent: None,
            depth: 0,
        }
    }

    /// Creates a pretty-printing serializer with two-space indentation.
    pub fn pretty() -> Self {
        Self {
            out: String::new(),
            stack: Vec::new(),
            indent: Some(2),
            depth: 0,
        }
    }

    /// Consumes the serializer and returns the JSON text.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unbalanced begin/end calls");
        self.out
    }

    fn newline(&mut self) {
        if let Some(width) = self.indent {
            self.out.push('\n');
            for _ in 0..self.depth * width {
                self.out.push(' ');
            }
        }
    }

    fn open(&mut self, bracket: char, frame: Frame) {
        self.out.push(bracket);
        self.depth += 1;
        self.stack.push(frame);
    }

    fn close(&mut self, bracket: char, was_empty: bool) {
        self.depth -= 1;
        if !was_empty {
            self.newline();
        }
        self.out.push(bracket);
    }

    fn element_separator(&mut self) -> Result<(), Error> {
        match self.stack.last_mut() {
            Some(Frame::Seq { first }) | Some(Frame::Struct { first }) => {
                if *first {
                    *first = false;
                } else {
                    self.out.push(',');
                }
                self.newline();
                Ok(())
            }
            _ => Err(Error::custom("element outside a sequence or struct")),
        }
    }

    fn write_escaped(&mut self, v: &str) {
        self.out.push('"');
        for c in v.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

impl Serializer for JsonSerializer {
    type Error = Error;

    fn write_null(&mut self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn write_bool(&mut self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn write_u64(&mut self, v: u64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn write_i64(&mut self, v: i64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn write_f64(&mut self, v: f64) -> Result<(), Error> {
        if v.is_nan() {
            self.out.push_str("\"NaN\"");
        } else if v == f64::INFINITY {
            self.out.push_str("\"inf\"");
        } else if v == f64::NEG_INFINITY {
            self.out.push_str("\"-inf\"");
        } else {
            // Rust's shortest-representation formatting parses back to the
            // same bits; ensure a decimal point or exponent survives so the
            // text stays recognisably a float.
            let text = v.to_string();
            self.out.push_str(&text);
            if !text.contains(['.', 'e', 'E']) {
                self.out.push_str(".0");
            }
        }
        Ok(())
    }

    fn write_str(&mut self, v: &str) -> Result<(), Error> {
        self.write_escaped(v);
        Ok(())
    }

    fn seq_begin(&mut self, _len: Option<usize>) -> Result<(), Error> {
        self.open('[', Frame::Seq { first: true });
        Ok(())
    }

    fn seq_element(&mut self) -> Result<(), Error> {
        self.element_separator()
    }

    fn seq_end(&mut self) -> Result<(), Error> {
        match self.stack.pop() {
            Some(Frame::Seq { first }) => {
                self.close(']', first);
                Ok(())
            }
            _ => Err(Error::custom("seq_end without matching seq_begin")),
        }
    }

    fn struct_begin(&mut self, _name: &'static str) -> Result<(), Error> {
        self.open('{', Frame::Struct { first: true });
        Ok(())
    }

    fn struct_field(&mut self, key: &'static str) -> Result<(), Error> {
        self.element_separator()?;
        self.write_escaped(key);
        self.out.push(':');
        if self.indent.is_some() {
            self.out.push(' ');
        }
        Ok(())
    }

    fn struct_end(&mut self) -> Result<(), Error> {
        match self.stack.pop() {
            Some(Frame::Struct { first }) => {
                self.close('}', first);
                Ok(())
            }
            _ => Err(Error::custom("struct_end without matching struct_begin")),
        }
    }

    fn unit_variant(&mut self, _name: &'static str, variant: &'static str) -> Result<(), Error> {
        self.write_escaped(variant);
        Ok(())
    }

    fn variant_begin(&mut self, _name: &'static str, variant: &'static str) -> Result<(), Error> {
        self.open('{', Frame::Variant);
        self.newline();
        self.write_escaped(variant);
        self.out.push(':');
        if self.indent.is_some() {
            self.out.push(' ');
        }
        Ok(())
    }

    fn variant_end(&mut self) -> Result<(), Error> {
        match self.stack.pop() {
            Some(Frame::Variant) => {
                self.close('}', false);
                Ok(())
            }
            _ => Err(Error::custom("variant_end without matching variant_begin")),
        }
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut s = JsonSerializer::compact();
    value
        .serialize(&mut s)
        .expect("writing JSON to a string cannot fail");
    s.finish()
}

/// Serializes `value` as indented, human-readable JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut s = JsonSerializer::pretty();
    value
        .serialize(&mut s)
        .expect("writing JSON to a string cannot fail");
    s.finish()
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

/// A [`Deserializer`] reading JSON text.
pub struct JsonDeserializer<'de> {
    input: &'de [u8],
    pos: usize,
    /// One "is this the first element?" flag per open `[` / `{`.
    firsts: Vec<bool>,
}

impl<'de> JsonDeserializer<'de> {
    /// Creates a deserializer over `input`.
    pub fn new(input: &'de str) -> Self {
        Self {
            input: input.as_bytes(),
            pos: 0,
            firsts: Vec::new(),
        }
    }

    /// Verifies that only whitespace remains.
    pub fn end(&mut self) -> Result<(), Error> {
        self.skip_ws();
        if self.pos < self.input.len() {
            Err(Error::at("trailing characters after JSON value", self.pos))
        } else {
            Ok(())
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.input.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), Error> {
        match self.peek() {
            Some(b) if b == want => {
                self.pos += 1;
                Ok(())
            }
            Some(b) => Err(Error::at(
                format!("expected `{}`, found `{}`", want as char, b as char),
                self.pos,
            )),
            None => Err(Error::at(
                format!("expected `{}`, found end of input", want as char),
                self.pos,
            )),
        }
    }

    fn consume_keyword(&mut self, word: &str) -> Result<(), Error> {
        if self.input[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::at(format!("expected `{word}`"), self.pos))
        }
    }

    /// Reads the raw text of a JSON number token.
    fn number_token(&mut self) -> Result<&'de str, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.input.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.input.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(Error::at("expected a number", start));
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| Error::at("invalid UTF-8 in number", start))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .input
                .get(self.pos)
                .ok_or_else(|| Error::at("unterminated string", self.pos))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .input
                        .get(self.pos)
                        .ok_or_else(|| Error::at("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .input
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::at("truncated \\u escape", self.pos))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::at("invalid \\u escape", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::at("invalid \\u escape", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // reject them rather than decode garbage.
                            let c = char::from_u32(code).ok_or_else(|| {
                                Error::at("\\u escape is not a scalar value", self.pos)
                            })?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::at(
                                format!("unknown escape `\\{}`", other as char),
                                self.pos,
                            ))
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len =
                        utf8_len(b).ok_or_else(|| Error::at("invalid UTF-8 in string", start))?;
                    let bytes = self
                        .input
                        .get(start..start + len)
                        .ok_or_else(|| Error::at("truncated UTF-8 in string", start))?;
                    let s = std::str::from_utf8(bytes)
                        .map_err(|_| Error::at("invalid UTF-8 in string", start))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    /// `seq_next`/`field_key` shared machinery: returns true if another
    /// element follows before `close`, consuming commas, and pops the
    /// `firsts` flag when the closing bracket is consumed.
    fn next_in(&mut self, close: u8) -> Result<bool, Error> {
        match self.peek() {
            Some(b) if b == close => {
                self.pos += 1;
                self.firsts.pop();
                Ok(false)
            }
            Some(b',') => {
                if self.firsts.last() == Some(&true) {
                    return Err(Error::at("unexpected `,` before first element", self.pos));
                }
                self.pos += 1;
                Ok(true)
            }
            Some(_) => {
                match self.firsts.last_mut() {
                    Some(first) if *first => *first = false,
                    _ => {
                        return Err(Error::at("expected `,` between elements", self.pos));
                    }
                }
                Ok(true)
            }
            None => Err(Error::at("unterminated sequence or object", self.pos)),
        }
    }
}

/// Length of the UTF-8 sequence introduced by `first` (None for
/// continuation or invalid lead bytes).
fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

impl<'de> Deserializer<'de> for JsonDeserializer<'de> {
    type Error = Error;

    fn read_bool(&mut self) -> Result<bool, Error> {
        match self.peek() {
            Some(b't') => {
                self.consume_keyword("true")?;
                Ok(true)
            }
            Some(b'f') => {
                self.consume_keyword("false")?;
                Ok(false)
            }
            _ => Err(Error::at("expected `true` or `false`", self.pos)),
        }
    }

    fn read_u64(&mut self) -> Result<u64, Error> {
        let start = self.pos;
        let text = self.number_token()?;
        text.parse::<u64>()
            .map_err(|_| Error::at(format!("`{text}` is not an unsigned integer"), start))
    }

    fn read_i64(&mut self) -> Result<i64, Error> {
        let start = self.pos;
        let text = self.number_token()?;
        text.parse::<i64>()
            .map_err(|_| Error::at(format!("`{text}` is not an integer"), start))
    }

    fn read_f64(&mut self) -> Result<f64, Error> {
        // Non-finite floats round-trip as strings (see the module docs).
        if self.peek() == Some(b'"') {
            let s = self.parse_string()?;
            return match s.as_str() {
                "NaN" => Ok(f64::NAN),
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                other => Err(Error::at(
                    format!("string `{other}` is not a float"),
                    self.pos,
                )),
            };
        }
        let start = self.pos;
        let text = self.number_token()?;
        text.parse::<f64>()
            .map_err(|_| Error::at(format!("`{text}` is not a number"), start))
    }

    fn read_string(&mut self) -> Result<String, Error> {
        self.parse_string()
    }

    fn read_null(&mut self) -> Result<bool, Error> {
        if self.peek() == Some(b'n') {
            self.consume_keyword("null")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn seq_begin(&mut self) -> Result<(), Error> {
        self.expect_byte(b'[')?;
        self.firsts.push(true);
        Ok(())
    }

    fn seq_next(&mut self) -> Result<bool, Error> {
        self.next_in(b']')
    }

    fn struct_begin(&mut self, _name: &'static str) -> Result<(), Error> {
        self.expect_byte(b'{')?;
        self.firsts.push(true);
        Ok(())
    }

    fn field_key(&mut self) -> Result<Option<String>, Error> {
        if !self.next_in(b'}')? {
            return Ok(None);
        }
        let key = self.parse_string()?;
        self.expect_byte(b':')?;
        Ok(Some(key))
    }

    fn skip_value(&mut self) -> Result<(), Error> {
        match self.peek() {
            Some(b'n') => self.consume_keyword("null"),
            Some(b't') => self.consume_keyword("true"),
            Some(b'f') => self.consume_keyword("false"),
            Some(b'"') => self.parse_string().map(|_| ()),
            Some(b'[') => {
                self.seq_begin()?;
                while self.seq_next()? {
                    self.skip_value()?;
                }
                Ok(())
            }
            Some(b'{') => {
                self.struct_begin("")?;
                while self.field_key()?.is_some() {
                    self.skip_value()?;
                }
                Ok(())
            }
            Some(_) => self.number_token().map(|_| ()),
            None => Err(Error::at("expected a value, found end of input", self.pos)),
        }
    }

    fn variant_begin(
        &mut self,
        name: &'static str,
        variants: &'static [&'static str],
    ) -> Result<(String, bool), Error> {
        match self.peek() {
            // Unit variant: a bare string tag.
            Some(b'"') => {
                let tag = self.parse_string()?;
                if !variants.contains(&tag.as_str()) {
                    return Err(Error::unknown_variant(name, &tag));
                }
                Ok((tag, false))
            }
            // Payload variant: a single-key object {"Tag": payload}.
            Some(b'{') => {
                self.pos += 1;
                let tag = self.parse_string()?;
                if !variants.contains(&tag.as_str()) {
                    return Err(Error::unknown_variant(name, &tag));
                }
                self.expect_byte(b':')?;
                Ok((tag, true))
            }
            _ => Err(Error::at(
                format!("expected enum `{name}` (string or single-key object)"),
                self.pos,
            )),
        }
    }

    fn variant_end(&mut self, had_payload: bool) -> Result<(), Error> {
        if had_payload {
            self.expect_byte(b'}')?;
        }
        Ok(())
    }
}

/// Parses a value of `T` from JSON text, requiring the whole input to be
/// consumed.
pub fn from_str<T: for<'de> Deserialize<'de>>(input: &str) -> Result<T, Error> {
    let mut d = JsonDeserializer::new(input);
    let value = T::deserialize(&mut d)?;
    d.end()?;
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&true), "true");
        assert_eq!(to_string(&42u64), "42");
        assert_eq!(to_string(&-7i32), "-7");
        assert_eq!(to_string(&1.5f64), "1.5");
        assert_eq!(to_string(&2.0f64), "2.0");
        assert_eq!(to_string(&"hi\n\"there\""), "\"hi\\n\\\"there\\\"\"");
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<u64>(" 42 ").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<String>("\"hi\\u0041\"").unwrap(), "hiA");
    }

    #[test]
    fn u64_does_not_pass_through_f64() {
        let v = u64::MAX - 1;
        assert_eq!(from_str::<u64>(&to_string(&v)).unwrap(), v);
    }

    #[test]
    fn nonfinite_floats_roundtrip() {
        assert_eq!(to_string(&f64::INFINITY), "\"inf\"");
        assert_eq!(to_string(&f64::NEG_INFINITY), "\"-inf\"");
        assert_eq!(to_string(&f64::NAN), "\"NaN\"");
        assert_eq!(from_str::<f64>("\"inf\"").unwrap(), f64::INFINITY);
        assert_eq!(from_str::<f64>("\"-inf\"").unwrap(), f64::NEG_INFINITY);
        assert!(from_str::<f64>("\"NaN\"").unwrap().is_nan());
    }

    #[test]
    fn vectors_options_tuples_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(to_string(&v), "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>("[1,2,3]").unwrap(), v);
        assert_eq!(from_str::<Vec<u32>>("[]").unwrap(), Vec::<u32>::new());

        assert_eq!(to_string(&Option::<u32>::None), "null");
        assert_eq!(to_string(&Some(5u32)), "5");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("5").unwrap(), Some(5));

        let t = (1u8, "x".to_string(), 2.5f64);
        let json = to_string(&t);
        assert_eq!(json, "[1,\"x\",2.5]");
        assert_eq!(from_str::<(u8, String, f64)>(&json).unwrap(), t);

        let arr = [1.0f64, 2.0, 3.0];
        assert_eq!(from_str::<[f64; 3]>(&to_string(&arr)).unwrap(), arr);
        assert!(from_str::<[f64; 3]>("[1.0,2.0]").is_err());
        assert!(from_str::<[f64; 3]>("[1.0,2.0,3.0,4.0]").is_err());
    }

    #[test]
    fn duration_roundtrips() {
        let d = std::time::Duration::new(12, 345_678_901);
        let json = to_string(&d);
        assert_eq!(json, "{\"secs\":12,\"nanos\":345678901}");
        assert_eq!(from_str::<std::time::Duration>(&json).unwrap(), d);
        // Hostile input whose nanos would carry into (and overflow) secs
        // must error, not panic inside Duration::new.
        let max = u64::MAX;
        let overflow = format!("{{\"secs\":{max},\"nanos\":1000000000}}");
        assert!(from_str::<std::time::Duration>(&overflow).is_err());
    }

    #[test]
    fn pretty_output_is_parseable_and_indented() {
        let v = vec![vec![1u32], vec![2, 3]];
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error_instead_of_panicking() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("-3").is_err());
        assert!(from_str::<u64>("1.5").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<Vec<u32>>("[1 2]").is_err());
        assert!(from_str::<Vec<u32>>("[,1]").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<bool>("maybe").is_err());
        assert!(from_str::<u64>("7 junk").is_err());
    }

    #[test]
    fn deterministic_output() {
        let v = (vec![1u8, 2], Some(3.5f64), "s".to_string());
        assert_eq!(to_string(&v), to_string(&v.clone()));
        assert_eq!(to_string_pretty(&v), to_string_pretty(&v.clone()));
    }
}
