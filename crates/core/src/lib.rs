//! # mcn-core
//!
//! The paper's contribution: **preference queries in multi-cost transportation
//! networks** — skyline and top-k queries over a facility set embedded in a
//! road network whose edges carry `d`-dimensional cost vectors
//! (Mouratidis, Lin & Yiu, ICDE 2010).
//!
//! * [`skyline::skyline_query`] / [`skyline::SkylineSearch`] — the **LSA** and
//!   **CEA** algorithms (Section IV); progressive output via the iterator.
//! * [`skyline::baseline_skyline`] — the straightforward baseline (`d` full
//!   expansions + a conventional skyline algorithm).
//! * [`topk::topk_query`] / [`topk::TopKIter`] — batch and **incremental**
//!   top-k processing (Section V), plus [`topk::baseline_topk`].
//! * [`aggregate::WeightedSum`] — the monotone aggregate used in the paper's
//!   evaluation.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use mcn_core::prelude::*;
//! use mcn_graph::{CostVec, GraphBuilder, NetworkLocation};
//! use mcn_storage::{BufferConfig, MCNStore};
//!
//! // Two cost types: travel time and toll fee.
//! let mut b = GraphBuilder::new(2);
//! let q = b.add_node(0.0, 0.0);
//! let v = b.add_node(1.0, 0.0);
//! let e = b.add_edge(q, v, CostVec::from_slice(&[10.0, 2.0])).unwrap();
//! b.add_facility(e, 0.5).unwrap();
//! let graph = b.build().unwrap();
//!
//! let store = Arc::new(MCNStore::build_in_memory(&graph, BufferConfig::Fraction(0.01)).unwrap());
//! let result = skyline_query(&store, NetworkLocation::Node(q), Algorithm::Cea);
//! assert_eq!(result.facilities.len(), 1);
//!
//! let top = topk_query(&store, NetworkLocation::Node(q), WeightedSum::uniform(2), 1, Algorithm::Cea);
//! assert_eq!(top.entries.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod candidate;
pub mod skyline;
pub mod stats;
pub mod topk;

#[cfg(test)]
pub(crate) mod test_support;

pub use aggregate::{AggregateCost, WeightedSum};
pub use candidate::{Candidate, CandidateSet};
pub use skyline::{
    baseline_skyline, parallel_lsa_skyline, skyline_query, Algorithm, SkylineFacility,
    SkylineResult, SkylineSearch,
};
pub use stats::QueryStats;
pub use topk::{baseline_topk, topk_query, TopKEntry, TopKIter, TopKResult};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::aggregate::{AggregateCost, WeightedSum};
    pub use crate::skyline::{
        baseline_skyline, parallel_lsa_skyline, skyline_query, Algorithm, SkylineFacility,
        SkylineResult, SkylineSearch,
    };
    pub use crate::stats::QueryStats;
    pub use crate::topk::{baseline_topk, topk_query, TopKEntry, TopKIter, TopKResult};
}

/// Compile-time thread-safety proof: instantiated in a `const _` next to
/// each shared type, so the build fails the moment a field change makes the
/// type lose `Send` (the `missing-send-sync-assert` lint requires one such
/// assertion per concurrency-facing type, outside `cfg(test)`).
pub(crate) const fn assert_send<T: Send>() {}
