//! # mcn-obs — observability for the serving stack
//!
//! A self-contained layer (no dependencies beyond the vendored workspace
//! shims) with four pieces:
//!
//! - [`registry::MetricsRegistry`] — named counters, gauges, and
//!   deterministic log2 latency [`hist::Histogram`]s (p50/p95/p99),
//!   labelled by worker/region/tier. Registration is lock-striped;
//!   recording goes through `Arc`-shared atomics, so hot loops add no
//!   shared-lock traffic.
//! - [`span::Tracer`] — query-lifecycle spans
//!   (`schedule → prep-lookup/build → search → unpack → fingerprint`)
//!   in bounded per-worker ring buffers, one relaxed atomic load when
//!   disabled, exportable as chrome://tracing JSON via
//!   [`export::chrome_trace_json`].
//! - [`export`] — deterministic JSON snapshots plus a Prometheus-style
//!   text exposition.
//! - [`clock::Clock`] — the workspace timing source:
//!   [`clock::MonotonicClock`] in production, [`clock::ManualClock`] in
//!   tests so timing assertions are exact.
//!
//! [`Obs`] bundles one of each for threading through the engine.

pub mod clock;
pub mod export;
pub mod hist;
pub mod registry;
pub mod span;

use std::sync::Arc;

pub use clock::{default_clock, Clock, ManualClock, MonotonicClock};
pub use export::{chrome_trace_json, parse_chrome_trace, prometheus_text, TraceArgs, TraceEvent};
pub use hist::{bucket_index, bucket_upper, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{
    Counter, CounterSnapshot, Gauge, GaugeSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use span::{Span, SpanEvent, Tracer};

/// One observability context: a metrics registry, a span tracer, and the
/// clock both are timed against. Cheap to share (`Arc<Obs>`); tracing
/// starts disabled.
pub struct Obs {
    registry: MetricsRegistry,
    tracer: Tracer,
    clock: Arc<dyn Clock>,
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

impl Obs {
    /// Production context: monotonic clock, tracing off.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// Context over an explicit clock (tests pass a [`ManualClock`]).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self {
            registry: MetricsRegistry::new(),
            tracer: Tracer::new(),
            clock,
        }
    }

    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    pub fn clock(&self) -> &dyn Clock {
        &*self.clock
    }

    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Turn span collection on or off (metrics are always on).
    pub fn set_tracing(&self, on: bool) {
        self.tracer.set_enabled(on);
    }

    pub fn tracing(&self) -> bool {
        self.tracer.enabled()
    }

    /// Start a lifecycle span against this context's clock.
    pub fn span<'a>(&'a self, name: &'static str, tier: &'a str, query: u64) -> Span<'a> {
        self.tracer.span(self.clock(), name, tier, query)
    }
}

pub(crate) const fn assert_send_sync<T: Send + Sync>() {}

const _: () = assert_send_sync::<Obs>();
const _: () = assert_send_sync::<MetricsRegistry>();
const _: () = assert_send_sync::<Tracer>();
const _: () = assert_send_sync::<Histogram>();
const _: () = assert_send_sync::<Counter>();
const _: () = assert_send_sync::<Gauge>();
const _: () = assert_send_sync::<MonotonicClock>();
const _: () = assert_send_sync::<ManualClock>();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_bundle_wires_clock_into_spans() {
        let clock = Arc::new(ManualClock::new(5_000));
        let obs = Obs::with_clock(clock.clone());
        assert!(!obs.tracing());
        obs.set_tracing(true);
        {
            let span = obs.span("search", "skyline", 1);
            clock.advance(111);
            span.finish();
        }
        let events = obs.tracer().drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].start_ns, 5_000);
        assert_eq!(events[0].dur_ns, 111);
        assert_eq!(obs.now_ns(), 5_111);
    }

    #[test]
    fn default_obs_uses_monotonic_clock() {
        let obs = Obs::new();
        let a = obs.now_ns();
        let b = obs.now_ns();
        assert!(b >= a);
        obs.registry().counter("c", &[]).inc();
        assert_eq!(obs.registry().snapshot().counter_value("c", &[]), Some(1));
    }
}
