//! Path-skyline queries with ParetoPrep precomputation.
//!
//! A courier service repeatedly quotes multi-criteria routes — distance,
//! time, toll — towards a handful of depots. Every quote is a *path
//! skyline*: all Pareto-optimal paths from the pickup point to the depot.
//! This example shows the three tiers of the subsystem:
//!
//! 1. the raw [`PrepTable`] backward scan and what it buys over the
//!    exhaustive label-correcting baseline (identical skylines, a fraction
//!    of the labels);
//! 2. the restricted scan variant for queries confined to a node subset;
//! 3. the [`QueryEngine`] serving a batch of `PathSkyline` requests
//!    through a shared [`PathContext`] — one scan per depot, cached, cold
//!    vs warm.
//!
//! Run with: `cargo run --release --example path_skyline`

use mcn::engine::{PathContext, QueryEngine, QueryRequest};
use mcn::gen::{generate_workload, WorkloadSpec};
use mcn::graph::NodeId;
use mcn::mcpp::{pareto_paths_exhaustive, pareto_paths_prepped};
use mcn::prep::PrepTable;
use mcn::storage::{BufferConfig, MCNStore};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn main() {
    // A seeded mid-size network with three cost types.
    let workload = generate_workload(&WorkloadSpec {
        nodes: 400,
        facilities: 80,
        cost_types: 3,
        queries: 4,
        ..WorkloadSpec::tiny(2026)
    });
    let graph = Arc::new(workload.graph);
    println!(
        "network: {} nodes, {} edges, d = {}\n",
        graph.num_nodes(),
        graph.num_edges(),
        graph.num_cost_types()
    );

    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let depot = NodeId::from(rng.gen_range(0..graph.num_nodes()));
    let pickup = NodeId::from(rng.gen_range(0..graph.num_nodes()));

    // 1. One backward scan from the depot, then the pruned search.
    let prep = PrepTable::build(&graph, depot);
    println!(
        "prep scan towards {depot}: {} of {} nodes reach it, {} relaxations",
        prep.reachable_nodes(),
        graph.num_nodes(),
        prep.relaxations()
    );

    let exhaustive = pareto_paths_exhaustive(&graph, pickup, depot);
    let prepped = pareto_paths_prepped(&graph, pickup, depot, &prep);
    assert_eq!(
        exhaustive.paths, prepped.paths,
        "pruning never changes results"
    );
    println!(
        "{pickup} → {depot}: {} Pareto-optimal paths",
        prepped.paths.len()
    );
    for label in prepped.paths.iter().take(4) {
        println!("  cost {} via {} edges", label.costs, label.edges.len());
    }
    println!(
        "labels created: exhaustive {}, prepped {} ({:.1}x fewer, {:.0}% bound-pruned)\n",
        exhaustive.stats.labels_created,
        prepped.stats.labels_created,
        exhaustive.stats.labels_created as f64 / prepped.stats.labels_created.max(1) as f64,
        prepped.stats.prune_fraction() * 100.0
    );

    // 2. Restricted variant: bounds for queries confined to a node subset
    // (say, one service region) — nodes outside keep infinite bounds.
    let region: Vec<NodeId> = (0..graph.num_nodes())
        .map(NodeId::from)
        .filter(|n| n.index() % 2 == depot.index() % 2 || *n == depot)
        .collect();
    let restricted = PrepTable::build_restricted(&graph, depot, &region);
    println!(
        "restricted scan over {} nodes: {} reach the depot inside the region\n",
        region.len(),
        restricted.reachable_nodes()
    );

    // 3. The engine: a batch of quotes towards three depots, twice — cold
    // cache (one scan per depot) and warm (all scans reused).
    let store = Arc::new(MCNStore::build_in_memory(&graph, BufferConfig::Pages(64)).unwrap());
    let ctx = Arc::new(PathContext::new(graph.clone(), 8));
    let engine = QueryEngine::new(store, 4).with_path_context(ctx.clone());
    let depots: Vec<NodeId> = (0..3)
        .map(|_| NodeId::from(rng.gen_range(0..graph.num_nodes())))
        .collect();
    let batch: Vec<QueryRequest> = (0..24)
        .map(|i| QueryRequest::PathSkyline {
            source: NodeId::from(rng.gen_range(0..graph.num_nodes())),
            target: depots[i % depots.len()],
        })
        .collect();

    let cold = engine.run_batch(&batch);
    let warm = engine.run_batch(&batch);
    let same = cold
        .outcomes
        .iter()
        .zip(&warm.outcomes)
        .all(|(a, b)| a.output.fingerprint() == b.output.fingerprint());
    assert!(same, "warm cache never changes results");
    let stats = ctx.cache_stats();
    println!(
        "engine: {} path quotes × 2 runs over {} depots ({} workers)",
        batch.len(),
        depots.len(),
        engine.workers()
    );
    println!(
        "cold {:.0} QPS → warm {:.0} QPS; cache: {} hits / {} scans, hit ratio {:.2}",
        cold.stats.qps,
        warm.stats.qps,
        stats.hits,
        stats.misses,
        stats.hit_ratio()
    );
}
