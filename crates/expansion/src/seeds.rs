//! Seeding expansions from a query location on the disk-resident network.

use crate::access::NetworkAccess;
use mcn_graph::{CostVec, FacilityId, NetworkLocation, NodeId};

/// The entry points of a query location into the network, expressed with full
/// cost vectors so that all `d` expansions can be seeded from one structure.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Seeds {
    /// Nodes directly reachable from the query location and the partial cost
    /// of reaching them.
    pub node_seeds: Vec<(NodeId, CostVec)>,
    /// Facilities on the query's own edge reachable without traversing any
    /// node, and the partial cost of reaching them.
    pub facility_seeds: Vec<(FacilityId, CostVec)>,
}

/// Computes the [`Seeds`] of `location` by reading the edge index, the
/// adjacency file and (if the edge carries facilities) the facility file.
///
/// For a query at a node this costs no I/O; for a query inside an edge it
/// costs one edge-index lookup, one adjacency access and at most one facility
/// run — mirroring how the paper treats query points that "fall between the
/// end-nodes of an edge" (partial weights proportional to the position).
///
/// # Panics
/// Panics if the location references an edge that is not in the store.
pub fn seeds_for_location<A: NetworkAccess>(access: &A, location: NetworkLocation) -> Seeds {
    let d = access.num_cost_types();
    match location {
        NetworkLocation::Node(node) => Seeds {
            node_seeds: vec![(node, CostVec::zeros(d))],
            facility_seeds: Vec::new(),
        },
        NetworkLocation::OnEdge { edge, position } => {
            assert!(
                (0.0..=1.0).contains(&position),
                "query position must lie within [0, 1]"
            );
            let endpoints = access
                .edge_endpoints(edge)
                .unwrap_or_else(|| panic!("query references unknown edge {edge}"));
            // The adjacency record of the source end-node carries the edge's
            // cost vector and its facility pointer.
            let adjacency = access.adjacency(endpoints.source);
            let entry = adjacency
                .entries
                .iter()
                .find(|e| e.edge == edge)
                .unwrap_or_else(|| panic!("edge {edge} missing from its source adjacency record"));

            let mut node_seeds = Vec::with_capacity(2);
            if !endpoints.directed {
                node_seeds.push((endpoints.source, entry.costs.scale(position)));
            }
            node_seeds.push((endpoints.target, entry.costs.scale(1.0 - position)));

            let mut facility_seeds = Vec::new();
            if let Some(run) = entry.facilities {
                for (fid, pos) in access.facilities_in_run(&run).iter() {
                    let reachable = if endpoints.directed {
                        *pos >= position
                    } else {
                        true
                    };
                    if reachable {
                        facility_seeds.push((*fid, entry.costs.scale((pos - position).abs())));
                    }
                }
            }
            Seeds {
                node_seeds,
                facility_seeds,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::DirectAccess;
    use mcn_graph::{CostVec, EdgeId, GraphBuilder};
    use mcn_storage::{BufferConfig, MCNStore};
    use std::sync::Arc;

    fn access() -> DirectAccess {
        let mut b = GraphBuilder::new(2);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        let d = b.add_node(2.0, 0.0);
        let e0 = b.add_edge(a, c, CostVec::from_slice(&[8.0, 4.0])).unwrap();
        b.add_edge(c, d, CostVec::from_slice(&[2.0, 2.0])).unwrap();
        b.add_facility(e0, 0.75).unwrap();
        let g = b.build().unwrap();
        DirectAccess::new(Arc::new(
            MCNStore::build_in_memory(&g, BufferConfig::Pages(8)).unwrap(),
        ))
    }

    #[test]
    fn node_query_has_single_zero_seed() {
        let access = access();
        let s = seeds_for_location(&access, NetworkLocation::Node(NodeId::new(1)));
        assert_eq!(s.node_seeds.len(), 1);
        assert_eq!(s.node_seeds[0].0, NodeId::new(1));
        assert_eq!(s.node_seeds[0].1.as_slice(), &[0.0, 0.0]);
        assert!(s.facility_seeds.is_empty());
    }

    #[test]
    fn edge_query_seeds_both_ends_and_local_facilities() {
        let access = access();
        let s = seeds_for_location(&access, NetworkLocation::on_edge(EdgeId::new(0), 0.25));
        assert_eq!(s.node_seeds.len(), 2);
        // Source (v0) at 0.25 of (8,4) = (2,1); target (v1) at 0.75 = (6,3).
        assert_eq!(s.node_seeds[0].0, NodeId::new(0));
        assert_eq!(s.node_seeds[0].1.as_slice(), &[2.0, 1.0]);
        assert_eq!(s.node_seeds[1].0, NodeId::new(1));
        assert_eq!(s.node_seeds[1].1.as_slice(), &[6.0, 3.0]);
        // Facility at 0.75, query at 0.25 → half the edge away = (4, 2).
        assert_eq!(s.facility_seeds.len(), 1);
        assert_eq!(s.facility_seeds[0].1.as_slice(), &[4.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn unknown_edge_panics() {
        let access = access();
        let _ = seeds_for_location(&access, NetworkLocation::on_edge(EdgeId::new(99), 0.5));
    }
}
