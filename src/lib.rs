//! # mcn — Preference queries in large multi-cost transportation networks
//!
//! Facade crate re-exporting the whole workspace: a reproduction of
//! Mouratidis, Lin & Yiu, *"Preference Queries in Large Multi-Cost
//! Transportation Networks"*, ICDE 2010.
//!
//! See the individual crates for details:
//!
//! * [`graph`] — the multi-cost network model (nodes, edges, cost vectors,
//!   facilities, network locations).
//! * [`storage`] — the disk-resident storage scheme of the paper's Figure 2
//!   (paged adjacency/facility files, B+-tree indexes, LRU buffer pool).
//! * [`expansion`] — incremental network expansion (Dijkstra-based nearest
//!   facility search) over the paged store.
//! * [`core`] — the paper's contribution: LSA and CEA skyline algorithms,
//!   the baseline, and batch/incremental top-k processing.
//! * [`engine`] — the concurrent multi-query engine: a bounded worker pool
//!   scheduling batches of skyline/top-k queries over one shared store.
//! * [`skyline`] — classic main-memory skyline algorithms (BNL, SFS, D&C).
//! * [`topk`] — the threshold-algorithm family (TA / NRA) over sorted lists.
//! * [`mcpp`] — multi-criteria Pareto (skyline) path computation, with a
//!   ParetoPrep-pruned variant.
//! * [`prep`] — ParetoPrep precomputation: backward per-cost lower-bound
//!   scans and the prep-table cache behind the engine's path queries.
//! * [`alpha`] — the scalarized preference serving tier: per-user α
//!   weight vectors, prep-backed A* fastest paths, preference estimation.
//! * [`index`] — the hierarchical partial-path route index: multi-cost
//!   contraction hierarchy with Pareto shortcut bundles, bidirectional
//!   upward queries byte-identical to the prep-backed tier.
//! * [`obs`] — observability: the metrics registry (counters, gauges,
//!   log2 latency histograms), query-lifecycle span tracing with
//!   chrome://tracing export, Prometheus text exposition, and the
//!   `Clock` abstraction used by every timing path.
//! * [`gen`] — synthetic workload generation matching the paper's Section VI.
//! * [`io`] — loaders/writers for common road-network file formats.

#![warn(missing_docs)]

pub use mcn_alpha as alpha;
pub use mcn_core as core;
pub use mcn_engine as engine;
pub use mcn_expansion as expansion;
pub use mcn_gen as gen;
pub use mcn_graph as graph;
pub use mcn_index as index;
pub use mcn_io as io;
pub use mcn_mcpp as mcpp;
pub use mcn_obs as obs;
pub use mcn_prep as prep;
pub use mcn_skyline as skyline;
pub use mcn_storage as storage;
pub use mcn_topk as topk;

pub use mcn_core::prelude::*;
