//! The read API of a disk-resident multi-cost network.

use crate::btree::{unpack_u32_f64, unpack_u32_u16, unpack_u32_u32_u8};
use crate::buffer::BufferPool;
use crate::builder::build_store;
use crate::disk::{DiskManager, InMemoryDisk};
use crate::error::StorageError;
use crate::meta::StorageMeta;
use crate::page::{Page, PageId, PAGE_SIZE};
use crate::records::{
    decode_adjacency_record, decode_facility_entry, AdjacencyList, FacilityRun, FACILITY_ENTRY_SIZE,
};
use crate::stats::IoStats;
use mcn_graph::{EdgeId, FacilityId, MultiCostGraph, NodeId};
use std::sync::Arc;

/// How large the LRU buffer pool should be.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BufferConfig {
    /// A fixed number of pages.
    Pages(usize),
    /// A fraction of the store's data pages — the paper's 0 %–2 % parameter.
    Fraction(f64),
}

impl BufferConfig {
    /// Resolves the configuration into a page count for a store with
    /// `data_pages` data pages.
    pub fn resolve(&self, data_pages: usize) -> usize {
        match *self {
            BufferConfig::Pages(n) => n,
            BufferConfig::Fraction(f) => {
                assert!(
                    (0.0..=1.0).contains(&f),
                    "buffer fraction must be in [0, 1]"
                );
                (data_pages as f64 * f).round() as usize
            }
        }
    }
}

/// Handle to a disk-resident MCN: the buffer pool plus the header metadata.
///
/// All read methods go through the LRU buffer pool, so every access is
/// reflected in [`MCNStore::io_stats`]. The store is read-only once built;
/// it is `Send + Sync` and can be shared across threads behind an `Arc`.
pub struct MCNStore {
    pool: BufferPool,
    meta: StorageMeta,
}

const _: () = crate::assert_send_sync::<MCNStore>();

/// Basic information about a facility obtained from the facility tree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FacilityInfo {
    /// The edge the facility lies on.
    pub edge: EdgeId,
    /// Fraction of the way from the edge's source to its target.
    pub position: f64,
}

/// End-point information about an edge obtained from the edge index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeEndpoints {
    /// First end-node.
    pub source: NodeId,
    /// Second end-node.
    pub target: NodeId,
    /// Whether the edge is directed (source → target only).
    pub directed: bool,
}

impl MCNStore {
    /// Builds a store for `graph` on the given disk and wraps it with a buffer
    /// pool of the requested size.
    pub fn build_on(
        graph: &MultiCostGraph,
        disk: Arc<dyn DiskManager>,
        buffer: BufferConfig,
    ) -> Result<Self, StorageError> {
        let meta = build_store(graph, disk.as_ref())?;
        let capacity = buffer.resolve(meta.data_pages as usize);
        Ok(Self {
            pool: BufferPool::new(disk, capacity),
            meta,
        })
    }

    /// Like [`MCNStore::build_on`], but pins the buffer pool's shard count
    /// (see [`BufferPool::with_shards`]). The pinned count survives every
    /// later [`MCNStore::set_buffer`] call; `shards == 1` gives the strict
    /// global-LRU order of an unsharded pool.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn build_on_with_shards(
        graph: &MultiCostGraph,
        disk: Arc<dyn DiskManager>,
        buffer: BufferConfig,
        shards: usize,
    ) -> Result<Self, StorageError> {
        let meta = build_store(graph, disk.as_ref())?;
        let capacity = buffer.resolve(meta.data_pages as usize);
        Ok(Self {
            pool: BufferPool::with_shards(disk, capacity, shards),
            meta,
        })
    }

    /// Builds a store for `graph` on a fresh in-memory disk — the default
    /// substrate for experiments.
    pub fn build_in_memory(
        graph: &MultiCostGraph,
        buffer: BufferConfig,
    ) -> Result<Self, StorageError> {
        Self::build_on(graph, Arc::new(InMemoryDisk::new()), buffer)
    }

    /// [`MCNStore::build_in_memory`] with a pinned buffer shard count.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn build_in_memory_with_shards(
        graph: &MultiCostGraph,
        buffer: BufferConfig,
        shards: usize,
    ) -> Result<Self, StorageError> {
        Self::build_on_with_shards(graph, Arc::new(InMemoryDisk::new()), buffer, shards)
    }

    /// Opens an already-built store by reading the header from page 0.
    pub fn open(disk: Arc<dyn DiskManager>, buffer: BufferConfig) -> Result<Self, StorageError> {
        let mut page = Page::zeroed();
        disk.read_page(PageId::new(0), &mut page);
        let meta = StorageMeta::decode(&page)?;
        let capacity = buffer.resolve(meta.data_pages as usize);
        Ok(Self {
            pool: BufferPool::new(disk, capacity),
            meta,
        })
    }

    /// [`MCNStore::open`] with a pinned buffer shard count.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn open_with_shards(
        disk: Arc<dyn DiskManager>,
        buffer: BufferConfig,
        shards: usize,
    ) -> Result<Self, StorageError> {
        let mut page = Page::zeroed();
        disk.read_page(PageId::new(0), &mut page);
        let meta = StorageMeta::decode(&page)?;
        let capacity = buffer.resolve(meta.data_pages as usize);
        Ok(Self {
            pool: BufferPool::with_shards(disk, capacity, shards),
            meta,
        })
    }

    /// The store header.
    pub fn meta(&self) -> &StorageMeta {
        &self.meta
    }

    /// The store header as indented JSON: a human-readable sidecar for the
    /// binary page-0 encoding, e.g. written next to a [`FileDisk`] store for
    /// debugging (`StorageMeta::from_json` parses it back).
    pub fn meta_json(&self) -> String {
        self.meta.to_json()
    }

    /// Writes the JSON header sidecar to `path` (conventionally the store
    /// path with a `.meta.json` suffix).
    ///
    /// # Errors
    /// Propagates the underlying filesystem error.
    pub fn export_meta_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.meta_json())
    }

    /// Number of cost types `d`.
    pub fn num_cost_types(&self) -> usize {
        self.meta.num_cost_types as usize
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.meta.num_nodes as usize
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.meta.num_edges as usize
    }

    /// Number of facilities.
    pub fn num_facilities(&self) -> usize {
        self.meta.num_facilities as usize
    }

    /// Number of pages occupied by MCN data (the basis for percentage-sized
    /// buffers).
    pub fn data_pages(&self) -> usize {
        self.meta.data_pages as usize
    }

    /// The buffer pool (e.g. to clear it between queries).
    pub fn buffer(&self) -> &BufferPool {
        &self.pool
    }

    /// Changes the buffer capacity (clears the cache, carries the hit/miss
    /// counters over). A shard count pinned at construction (the
    /// `*_with_shards` constructors) is preserved across the rebuild — it is
    /// **not** silently reset to the capacity-derived default; an unpinned
    /// pool re-derives its count from the new capacity as it always has.
    pub fn set_buffer(&self, buffer: BufferConfig) {
        self.pool
            .set_capacity(buffer.resolve(self.meta.data_pages as usize));
    }

    /// Snapshot of the I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.pool.stats()
    }

    /// Reads the adjacency record of `node`: one lookup in the adjacency tree
    /// followed by one data-page access.
    ///
    /// # Panics
    /// Panics if the node does not exist in the store.
    pub fn adjacency(&self, node: NodeId) -> AdjacencyList {
        let value = self
            .meta
            .adjacency_tree
            .lookup(&self.pool, node.raw())
            .unwrap_or_else(|| panic!("node {node} not present in the adjacency tree"));
        let (page, offset) = unpack_u32_u16(&value);
        let d = self.num_cost_types();
        self.pool.with_page(PageId::new(page), |bytes| {
            decode_adjacency_record(bytes, offset as usize, node, d)
        })
    }

    /// Reads the facilities of a [`FacilityRun`] (as referenced from an
    /// adjacency entry), returning `(facility, position)` pairs.
    pub fn facilities_in_run(&self, run: &FacilityRun) -> Vec<(FacilityId, f64)> {
        let mut out = Vec::with_capacity(run.count as usize);
        let mut page = run.start.page;
        let mut offset = run.start.offset as usize;
        let mut remaining = run.count as usize;
        while remaining > 0 {
            let fit = (PAGE_SIZE - offset) / FACILITY_ENTRY_SIZE;
            let take = fit.min(remaining);
            if take > 0 {
                self.pool.with_page(page, |bytes| {
                    for i in 0..take {
                        out.push(decode_facility_entry(
                            bytes,
                            offset + i * FACILITY_ENTRY_SIZE,
                        ));
                    }
                });
                remaining -= take;
            }
            // Runs continue on the next physically consecutive facility page.
            page = PageId::new(page.raw() + 1);
            offset = 0;
        }
        out
    }

    /// Looks up a facility in the facility tree.
    pub fn facility_info(&self, facility: FacilityId) -> Option<FacilityInfo> {
        if self.meta.facility_tree.num_entries == 0 {
            return None;
        }
        let value = self.meta.facility_tree.lookup(&self.pool, facility.raw())?;
        let (edge, position) = unpack_u32_f64(&value);
        Some(FacilityInfo {
            edge: EdgeId::new(edge),
            position,
        })
    }

    /// Looks up an edge's end-nodes in the edge index.
    pub fn edge_endpoints(&self, edge: EdgeId) -> Option<EdgeEndpoints> {
        if self.meta.edge_index.num_entries == 0 {
            return None;
        }
        let value = self.meta.edge_index.lookup(&self.pool, edge.raw())?;
        let (source, target, flags) = unpack_u32_u32_u8(&value);
        Some(EdgeEndpoints {
            source: NodeId::new(source),
            target: NodeId::new(target),
            directed: flags != 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcn_graph::{CostVec, GraphBuilder};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Builds a random connected graph with facilities for round-trip testing.
    fn random_graph(
        seed: u64,
        nodes: usize,
        extra_edges: usize,
        facilities: usize,
    ) -> MultiCostGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let d = 4;
        let mut b = GraphBuilder::new(d);
        let ids: Vec<_> = (0..nodes)
            .map(|i| b.add_node(i as f64, rng.gen_range(0.0..100.0)))
            .collect();
        let mut edges = Vec::new();
        // Spanning chain keeps the graph connected.
        for w in ids.windows(2) {
            let costs: Vec<f64> = (0..d).map(|_| rng.gen_range(0.1..10.0)).collect();
            edges.push(b.add_edge(w[0], w[1], CostVec::from_slice(&costs)).unwrap());
        }
        for _ in 0..extra_edges {
            let a = ids[rng.gen_range(0..nodes)];
            let c = ids[rng.gen_range(0..nodes)];
            if a == c {
                continue;
            }
            let costs: Vec<f64> = (0..d).map(|_| rng.gen_range(0.1..10.0)).collect();
            edges.push(b.add_edge(a, c, CostVec::from_slice(&costs)).unwrap());
        }
        for _ in 0..facilities {
            let e = edges[rng.gen_range(0..edges.len())];
            b.add_facility(e, rng.gen_range(0.0..=1.0)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn adjacency_round_trips_through_disk() {
        let g = random_graph(1, 300, 200, 150);
        let store = MCNStore::build_in_memory(&g, BufferConfig::Pages(64)).unwrap();
        for node in g.nodes() {
            let adj = store.adjacency(node.id);
            assert_eq!(adj.node, node.id);
            assert_eq!(adj.entries.len(), g.incident_edges(node.id).len());
            for entry in &adj.entries {
                let e = g.edge(entry.edge);
                assert_eq!(entry.neighbor, e.opposite(node.id));
                assert_eq!(entry.costs.as_slice(), e.costs.as_slice());
                assert_eq!(entry.traversable, e.traversable_from(node.id));
                let on_edge = g.facilities_on_edge(entry.edge);
                match entry.facilities {
                    Some(run) => assert_eq!(run.count as usize, on_edge.len()),
                    None => assert!(on_edge.is_empty()),
                }
            }
        }
    }

    #[test]
    fn facility_runs_round_trip() {
        let g = random_graph(2, 100, 80, 400);
        let store = MCNStore::build_in_memory(&g, BufferConfig::Pages(32)).unwrap();
        for node in g.nodes() {
            for entry in store.adjacency(node.id).entries {
                if let Some(run) = entry.facilities {
                    let got = store.facilities_in_run(&run);
                    let expected = g.facilities_on_edge(entry.edge);
                    assert_eq!(got.len(), expected.len());
                    for ((fid, pos), &exp) in got.iter().zip(expected) {
                        assert_eq!(*fid, exp);
                        assert!((pos - g.facility(exp).position).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn facility_tree_and_edge_index_lookups() {
        let g = random_graph(3, 120, 60, 200);
        let store = MCNStore::build_in_memory(&g, BufferConfig::Pages(32)).unwrap();
        for f in g.facilities() {
            let info = store.facility_info(f.id).unwrap();
            assert_eq!(info.edge, f.edge);
            assert!((info.position - f.position).abs() < 1e-12);
        }
        for e in g.edges() {
            let ends = store.edge_endpoints(e.id).unwrap();
            assert_eq!(ends.source, e.source);
            assert_eq!(ends.target, e.target);
            assert_eq!(ends.directed, e.directed);
        }
        assert!(store.facility_info(FacilityId::new(99_999)).is_none());
        assert!(store.edge_endpoints(EdgeId::new(99_999)).is_none());
    }

    #[test]
    fn io_stats_reflect_buffer_behaviour() {
        let g = random_graph(4, 500, 300, 100);
        let store = MCNStore::build_in_memory(&g, BufferConfig::Pages(256)).unwrap();
        store.buffer().clear();
        let before = store.io_stats();
        let _ = store.adjacency(NodeId::new(0));
        let after = store.io_stats();
        assert!(after.logical_reads > before.logical_reads);
        // Repeating the same access should be pure buffer hits.
        let _ = store.adjacency(NodeId::new(0));
        let again = store.io_stats();
        assert_eq!(again.buffer_misses, after.buffer_misses);
        assert!(again.buffer_hits > after.buffer_hits);
    }

    #[test]
    fn open_reads_header_from_disk() {
        let g = random_graph(5, 50, 20, 30);
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new());
        let built = MCNStore::build_on(&g, disk.clone(), BufferConfig::Pages(8)).unwrap();
        let reopened = MCNStore::open(disk, BufferConfig::Fraction(0.01)).unwrap();
        assert_eq!(reopened.meta(), built.meta());
        assert_eq!(reopened.num_nodes(), 50);
        // A 1 % buffer over a small store resolves to at least zero pages and
        // still answers queries correctly.
        let adj = reopened.adjacency(NodeId::new(10));
        assert_eq!(adj.entries.len(), g.incident_edges(NodeId::new(10)).len());
    }

    #[test]
    fn pinned_shards_survive_set_buffer() {
        // The satellite contract: reconfiguring the buffer through the store
        // must not silently drop a shard count pinned at construction.
        let g = random_graph(6, 200, 100, 80);
        let store = MCNStore::build_in_memory_with_shards(&g, BufferConfig::Pages(64), 1).unwrap();
        assert_eq!(store.buffer().shard_count(), 1);
        // The capacity-derived default for 64 pages would be 8 shards …
        store.set_buffer(BufferConfig::Pages(64));
        assert_eq!(store.buffer().shard_count(), 1);
        // … and stays pinned across fractional reconfigurations too.
        store.set_buffer(BufferConfig::Fraction(0.5));
        assert_eq!(store.buffer().shard_count(), 1);
        assert!(store.buffer().capacity() > 0);
        // An unpinned store re-derives the count from the new capacity.
        let unpinned = MCNStore::build_in_memory(&g, BufferConfig::Pages(4)).unwrap();
        assert_eq!(unpinned.buffer().shard_count(), 1);
        unpinned.set_buffer(BufferConfig::Pages(64));
        assert_eq!(unpinned.buffer().shard_count(), 8);
        // Queries still answer correctly after the rebuilds.
        let adj = store.adjacency(NodeId::new(5));
        assert_eq!(adj.entries.len(), g.incident_edges(NodeId::new(5)).len());
    }

    #[test]
    fn open_with_shards_pins_like_build() {
        let g = random_graph(7, 60, 30, 20);
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new());
        let _ = MCNStore::build_on(&g, disk.clone(), BufferConfig::Pages(8)).unwrap();
        let reopened = MCNStore::open_with_shards(disk, BufferConfig::Pages(32), 2).unwrap();
        assert_eq!(reopened.buffer().shard_count(), 2);
        reopened.set_buffer(BufferConfig::Pages(64));
        assert_eq!(reopened.buffer().shard_count(), 2);
    }

    #[test]
    fn buffer_config_resolution() {
        assert_eq!(BufferConfig::Pages(7).resolve(1000), 7);
        assert_eq!(BufferConfig::Fraction(0.01).resolve(1000), 10);
        assert_eq!(BufferConfig::Fraction(0.0).resolve(1000), 0);
        assert_eq!(BufferConfig::Fraction(0.02).resolve(12345), 247);
    }

    #[test]
    fn graph_without_facilities_has_empty_lookups() {
        let mut b = GraphBuilder::new(2);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        b.add_edge(a, c, CostVec::from_slice(&[1.0, 2.0])).unwrap();
        let g = b.build().unwrap();
        let store = MCNStore::build_in_memory(&g, BufferConfig::Pages(4)).unwrap();
        assert!(store.facility_info(FacilityId::new(0)).is_none());
        let adj = store.adjacency(a);
        assert_eq!(adj.entries.len(), 1);
        assert!(adj.entries[0].facilities.is_none());
    }
}
