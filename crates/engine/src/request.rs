//! Query requests and their outcomes.

use crate::context::PathContext;
use mcn_alpha::{scalarized_path_astar, Preference, ScalarPath};
use mcn_core::{
    skyline_query, topk_query, Algorithm, QueryStats, SkylineFacility, TopKEntry, TopKIter,
    WeightedSum,
};
use mcn_graph::{NetworkLocation, NodeId};
use mcn_mcpp::{pareto_paths_prepped, ParetoLabel};
use mcn_obs::{default_clock, Clock, Obs};
use mcn_storage::StoreView;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// One self-contained preference query, ready to be scheduled.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryRequest {
    /// A complete MCN skyline query.
    Skyline {
        /// The query location.
        location: NetworkLocation,
        /// LSA or CEA.
        algorithm: Algorithm,
    },
    /// A batch top-k query with a weighted-sum aggregate.
    TopK {
        /// The query location.
        location: NetworkLocation,
        /// Weighted-sum coefficients; the length must equal the store's `d`.
        weights: Vec<f64>,
        /// Number of results.
        k: usize,
        /// LSA or CEA.
        algorithm: Algorithm,
    },
    /// An incremental top-k query: drive a [`TopKIter`] for the first `take`
    /// results without fixing `k` up front.
    TopKIncremental {
        /// The query location.
        location: NetworkLocation,
        /// Weighted-sum coefficients; the length must equal the store's `d`.
        weights: Vec<f64>,
        /// How many results to draw from the iterator.
        take: usize,
        /// LSA or CEA.
        algorithm: Algorithm,
    },
    /// A multi-criteria path-skyline query (MCPP, Section II-D): every
    /// Pareto-optimal path from `source` to `target`, served by the
    /// ParetoPrep-pruned search over a [`PathContext`]'s cached prep
    /// tables. Requires [`crate::QueryEngine::with_path_context`].
    PathSkyline {
        /// The path's start node.
        source: NodeId,
        /// The path's destination node — the prep-table cache key.
        target: NodeId,
    },
    /// A scalarized fastest-path query — the preference *serving* tier: the
    /// single α-optimal route for one user's preference vector, answered by
    /// prep-backed A* (`mcn-alpha`) over the same [`PathContext`] prep
    /// tables the skyline tier uses. Requires
    /// [`crate::QueryEngine::with_path_context`].
    AlphaPath {
        /// The path's start node.
        source: NodeId,
        /// The path's destination node — the prep-table cache key.
        target: NodeId,
        /// The user's preference over the d cost types.
        alpha: Preference,
    },
}

impl QueryRequest {
    /// Short kind label for logs and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            QueryRequest::Skyline { .. } => "skyline",
            QueryRequest::TopK { .. } => "topk",
            QueryRequest::TopKIncremental { .. } => "topk-inc",
            QueryRequest::PathSkyline { .. } => "path-skyline",
            QueryRequest::AlphaPath { .. } => "alpha-path",
        }
    }

    /// The query location — what region-affine scheduling tags a request by
    /// (via `PartitionMap::region_of_location`). Path-skyline queries are
    /// tagged by their source node: that is where the forward search starts
    /// expanding.
    pub fn location(&self) -> NetworkLocation {
        match self {
            QueryRequest::Skyline { location, .. }
            | QueryRequest::TopK { location, .. }
            | QueryRequest::TopKIncremental { location, .. } => *location,
            QueryRequest::PathSkyline { source, .. } | QueryRequest::AlphaPath { source, .. } => {
                NetworkLocation::Node(*source)
            }
        }
    }

    /// Executes the request against `store` (any [`StoreView`] — monolithic
    /// or region-partitioned) on the calling thread.
    ///
    /// # Panics
    /// Panics on a [`QueryRequest::PathSkyline`] request: path queries need
    /// a [`PathContext`]; use [`QueryRequest::execute_with`] (or an engine
    /// built with [`crate::QueryEngine::with_path_context`]).
    pub fn execute<S: StoreView + ?Sized>(&self, store: &Arc<S>) -> QueryOutcome {
        self.execute_with(store, None)
    }

    /// Executes the request against `store`, serving path-skyline requests
    /// from `paths` (the graph + prep-table cache).
    ///
    /// # Panics
    /// Panics on a [`QueryRequest::PathSkyline`] request when `paths` is
    /// `None`.
    pub fn execute_with<S: StoreView + ?Sized>(
        &self,
        store: &Arc<S>,
        paths: Option<&PathContext>,
    ) -> QueryOutcome {
        self.execute_observed(store, paths, None, 0)
    }

    /// [`QueryRequest::execute_with`] under an observability context: wall
    /// time comes from the context's [`Clock`] (the process-wide monotonic
    /// clock when `obs` is `None`), and — when tracing is enabled — each
    /// phase of the query lifecycle (`prep-lookup`/`prep-build`, `search`,
    /// `unpack`) is recorded as a span tagged with `query` (the request's
    /// batch index). Observation never changes results: outputs are
    /// byte-identical with any `obs` value.
    ///
    /// # Panics
    /// Panics on path-flavored requests when `paths` is `None`.
    pub fn execute_observed<S: StoreView + ?Sized>(
        &self,
        store: &Arc<S>,
        paths: Option<&PathContext>,
        obs: Option<&Obs>,
        query: u64,
    ) -> QueryOutcome {
        let clock: &dyn Clock = match obs {
            Some(o) => o.clock(),
            None => default_clock(),
        };
        let tier = self.kind();
        // `Option<Span>`: `None` when unobserved, dropped (= recorded) at
        // the end of the enclosing block otherwise.
        let span = |name: &'static str| obs.map(|o| o.span(name, tier, query));
        let started_ns = clock.now_ns();
        let (output, stats) = match self {
            QueryRequest::Skyline {
                location,
                algorithm,
            } => {
                let r = {
                    let _s = span("search");
                    skyline_query(store, *location, *algorithm)
                };
                let _s = span("unpack");
                (QueryOutput::Skyline(r.facilities), r.stats)
            }
            QueryRequest::TopK {
                location,
                weights,
                k,
                algorithm,
            } => {
                let r = {
                    let _s = span("search");
                    topk_query(
                        store,
                        *location,
                        WeightedSum::new(weights.clone()),
                        *k,
                        *algorithm,
                    )
                };
                let _s = span("unpack");
                (QueryOutput::TopK(r.entries), r.stats)
            }
            QueryRequest::TopKIncremental {
                location,
                weights,
                take,
                algorithm,
            } => {
                let _s = span("search");
                let aggregate = WeightedSum::new(weights.clone());
                match algorithm {
                    Algorithm::Lsa => {
                        let mut it = TopKIter::lsa(store.clone(), *location, aggregate);
                        let entries: Vec<TopKEntry> = it.by_ref().take(*take).collect();
                        let stats = it.stats();
                        (QueryOutput::TopK(entries), stats)
                    }
                    Algorithm::Cea => {
                        let mut it = TopKIter::cea(store.clone(), *location, aggregate);
                        let entries: Vec<TopKEntry> = it.by_ref().take(*take).collect();
                        let stats = it.stats();
                        (QueryOutput::TopK(entries), stats)
                    }
                }
            }
            QueryRequest::PathSkyline { source, target } => {
                let ctx = paths.expect(
                    "PathSkyline requests need a PathContext — build the engine with \
                     QueryEngine::with_path_context",
                );
                if let Some(index) = ctx.serving_index() {
                    let run = {
                        let _s = span("search");
                        index.skyline_paths(ctx.graph(), *source, *target)
                    };
                    let _s = span("unpack");
                    let stats = QueryStats {
                        algorithm: "MCPP-index".to_string(),
                        nodes_settled: run.stats.settled as usize,
                        candidates: run.stats.pushed as usize,
                        dominance_checks: run.stats.pruned as usize,
                        result_size: run.paths.len(),
                        ..QueryStats::default()
                    };
                    (QueryOutput::Paths(run.paths), stats)
                } else {
                    let prep = ctx.table_for_observed(*target, obs, tier, query);
                    let run = {
                        let _s = span("search");
                        pareto_paths_prepped(ctx.graph(), *source, *target, &prep)
                    };
                    let _s = span("unpack");
                    // Path queries never touch the paged store; map the label
                    // accounting onto the query-stats fields the reports read:
                    // candidates = labels created, dominance checks = labels
                    // discarded by pruning or node-level dominance.
                    let stats = QueryStats {
                        algorithm: "MCPP-prep".to_string(),
                        nodes_settled: run.stats.nodes_settled as usize,
                        candidates: run.stats.labels_created as usize,
                        dominance_checks: (run.stats.labels_pruned + run.stats.labels_dominated)
                            as usize,
                        result_size: run.paths.len(),
                        ..QueryStats::default()
                    };
                    (QueryOutput::Paths(run.paths), stats)
                }
            }
            QueryRequest::AlphaPath {
                source,
                target,
                alpha,
            } => {
                let ctx = paths.expect(
                    "AlphaPath requests need a PathContext — build the engine with \
                     QueryEngine::with_path_context",
                );
                if let Some(index) = ctx.serving_index() {
                    let run = {
                        let _s = span("search");
                        index.alpha_path(ctx.graph(), *source, *target, alpha)
                    };
                    let _s = span("unpack");
                    let stats = QueryStats {
                        algorithm: "alpha-index".to_string(),
                        nodes_settled: run.stats.settled as usize,
                        candidates: run.stats.pushed as usize,
                        dominance_checks: run.stats.pruned as usize,
                        result_size: usize::from(run.path.is_some()),
                        ..QueryStats::default()
                    };
                    (QueryOutput::AlphaPath(run.path), stats)
                } else {
                    let prep = ctx.table_for_observed(*target, obs, tier, query);
                    let run = {
                        let _s = span("search");
                        scalarized_path_astar(ctx.graph(), *source, *target, alpha, &prep)
                    };
                    let _s = span("unpack");
                    // Same stats mapping idea as PathSkyline: candidates =
                    // heap pushes, dominance checks = candidates pruned.
                    let stats = QueryStats {
                        algorithm: "alpha-astar".to_string(),
                        nodes_settled: run.stats.settled as usize,
                        candidates: run.stats.pushed as usize,
                        dominance_checks: run.stats.pruned as usize,
                        result_size: usize::from(run.path.is_some()),
                        ..QueryStats::default()
                    };
                    (QueryOutput::AlphaPath(run.path), stats)
                }
            }
        };
        QueryOutcome {
            output,
            stats,
            wall: clock.elapsed(started_ns),
        }
    }
}

/// The payload a query produced.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOutput {
    /// Skyline facilities in pinning order.
    Skyline(Vec<SkylineFacility>),
    /// Top-k entries in ascending aggregate-cost order.
    TopK(Vec<TopKEntry>),
    /// Pareto-optimal paths in lexicographic cost order.
    Paths(Vec<ParetoLabel>),
    /// The α-optimal route of a scalarized query (`None` iff the target is
    /// unreachable).
    AlphaPath(Option<ScalarPath>),
}

impl QueryOutput {
    /// Number of result members.
    pub fn len(&self) -> usize {
        match self {
            QueryOutput::Skyline(v) => v.len(),
            QueryOutput::TopK(v) => v.len(),
            QueryOutput::Paths(v) => v.len(),
            QueryOutput::AlphaPath(p) => usize::from(p.is_some()),
        }
    }

    /// True iff the query returned nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A canonical, bit-exact textual form of the result: facility ids with
    /// the raw IEEE-754 bits of every cost. Two outputs are byte-identical
    /// results iff their fingerprints are equal — the determinism check used
    /// by the concurrency tests and the throughput bench.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        match self {
            QueryOutput::Skyline(v) => {
                out.push_str("skyline:");
                for f in v {
                    let _ = write!(out, "{}@", f.facility.raw());
                    for c in f.costs.iter() {
                        let _ = write!(out, "{:016x},", c.to_bits());
                    }
                    out.push(';');
                }
            }
            QueryOutput::TopK(v) => {
                out.push_str("topk:");
                for e in v {
                    let _ = write!(out, "{}@{:016x}@", e.facility.raw(), e.score.to_bits());
                    for c in e.costs.iter() {
                        let _ = write!(out, "{:016x},", c.to_bits());
                    }
                    out.push(';');
                }
            }
            QueryOutput::Paths(v) => {
                out.push_str("paths:");
                for p in v {
                    for c in p.costs.iter() {
                        let _ = write!(out, "{:016x},", c.to_bits());
                    }
                    out.push('@');
                    for e in &p.edges {
                        let _ = write!(out, "{},", e.raw());
                    }
                    out.push(';');
                }
            }
            QueryOutput::AlphaPath(p) => {
                out.push_str("alpha:");
                if let Some(p) = p {
                    let _ = write!(out, "{:016x}@", p.total.to_bits());
                    for c in p.costs.iter() {
                        let _ = write!(out, "{:016x},", c.to_bits());
                    }
                    out.push('@');
                    for e in &p.edges {
                        let _ = write!(out, "{},", e.raw());
                    }
                    out.push(';');
                } else {
                    out.push_str("none;");
                }
            }
        }
        out
    }
}

/// The result of one scheduled query.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// What the query returned.
    pub output: QueryOutput,
    /// Single-query execution statistics. `stats.io` is a store-wide counter
    /// delta and is polluted by overlapping queries — meaningful only when
    /// the engine runs one worker (see the crate docs).
    pub stats: QueryStats,
    /// Wall-clock time from scheduling on a worker to completion.
    pub wall: Duration,
}
