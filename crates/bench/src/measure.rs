//! Running and measuring one experiment data point.

use mcn_core::prelude::*;
use mcn_gen::{generate_workload, WorkloadSpec};
use mcn_obs::{default_clock, Clock};
use mcn_storage::{BufferConfig, MCNStore};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which preference query an experiment measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryKind {
    /// MCN skyline queries (paper Section VI-A).
    Skyline,
    /// MCN top-k queries with the given `k` (paper Section VI-B).
    TopK(usize),
}

/// Aggregated measurements of one algorithm at one data point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AlgoMeasurement {
    /// Mean CPU (wall-clock) seconds per query.
    pub cpu_seconds: f64,
    /// Mean physical page reads per query.
    pub physical_reads: f64,
    /// Mean logical page requests per query.
    pub logical_reads: f64,
    /// Mean buffer hit ratio.
    pub hit_ratio: f64,
    /// Mean number of candidate facilities.
    pub candidates: f64,
    /// Mean number of pinned facilities.
    pub pinned: f64,
    /// Mean result size (skyline cardinality or `k`).
    pub result_size: f64,
    /// Mean nodes settled across the `d` expansions.
    pub nodes_settled: f64,
}

impl AlgoMeasurement {
    /// Charged time per query: CPU + physical reads × `latency` seconds.
    pub fn charged_seconds(&self, latency: f64) -> f64 {
        self.cpu_seconds + self.physical_reads * latency
    }

    fn accumulate(&mut self, stats: &QueryStats) {
        self.cpu_seconds += stats.elapsed.as_secs_f64();
        self.physical_reads += stats.io.buffer_misses as f64;
        self.logical_reads += stats.io.logical_reads as f64;
        self.hit_ratio += stats.io.hit_ratio();
        self.candidates += stats.candidates as f64;
        self.pinned += stats.pinned as f64;
        self.result_size += stats.result_size as f64;
        self.nodes_settled += stats.nodes_settled as f64;
    }

    fn finish(&mut self, queries: usize) {
        let n = queries.max(1) as f64;
        self.cpu_seconds /= n;
        self.physical_reads /= n;
        self.logical_reads /= n;
        self.hit_ratio /= n;
        self.candidates /= n;
        self.pinned /= n;
        self.result_size /= n;
        self.nodes_settled /= n;
    }
}

/// Measurements of all algorithms at one data point of a figure.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PointMeasurement {
    /// Label of the x-axis value (e.g. `"|P| = 2000"` or `"d = 3"`).
    pub label: String,
    /// LSA measurements.
    pub lsa: AlgoMeasurement,
    /// CEA measurements.
    pub cea: AlgoMeasurement,
    /// Number of queries averaged over.
    pub queries: usize,
}

impl PointMeasurement {
    /// Largest speedup ever reported: the ratio is capped here so that
    /// degenerate measurements (CEA charged time of zero) stay finite and
    /// JSON-safe instead of propagating `inf` into persisted reports.
    pub const MAX_SPEEDUP: f64 = 1e9;

    /// The LSA / CEA improvement factor on charged time (the paper's headline
    /// comparison, e.g. "CEA is 2.3 times faster").
    ///
    /// Always finite: two zero measurements compare as `1.0` (no advantage
    /// either way), and a zero CEA time against a non-zero LSA time reports
    /// [`PointMeasurement::MAX_SPEEDUP`].
    pub fn speedup(&self, latency: f64) -> f64 {
        let cea = self.cea.charged_seconds(latency);
        let lsa = self.lsa.charged_seconds(latency);
        // mcn-lint: allow(float-eq, reason = "charged_seconds returns an exact 0.0 sentinel for unmeasured points; the guard is intentional")
        if cea == 0.0 {
            // mcn-lint: allow(float-eq, reason = "same exact-zero sentinel as the cea guard above")
            if lsa == 0.0 {
                1.0
            } else {
                Self::MAX_SPEEDUP
            }
        } else {
            (lsa / cea).min(Self::MAX_SPEEDUP)
        }
    }
}

/// Builds the workload described by `spec`, wraps it in a store with the given
/// buffer fraction, runs every query location with both LSA and CEA, and
/// returns the averaged measurements.
///
/// The buffer is cleared before every query so that queries are independent
/// (as in the paper, where each data point averages 100 independent queries).
pub fn measure_point(
    label: impl Into<String>,
    spec: &WorkloadSpec,
    buffer_fraction: f64,
    kind: QueryKind,
) -> PointMeasurement {
    let workload = generate_workload(spec);
    let store = Arc::new(
        MCNStore::build_in_memory(&workload.graph, BufferConfig::Fraction(buffer_fraction))
            .expect("workload store builds"),
    );
    let d = spec.cost_types;
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ 0x00C0_FFEE);

    let mut lsa = AlgoMeasurement::default();
    let mut cea = AlgoMeasurement::default();
    for &q in &workload.queries {
        // Fresh, independent aggregate per query (random coefficients in [0,1]
        // as in the paper).
        let weights: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..1.0)).collect();
        for (algo, acc) in [(Algorithm::Lsa, &mut lsa), (Algorithm::Cea, &mut cea)] {
            store.buffer().clear();
            let stats = match kind {
                QueryKind::Skyline => skyline_query(&store, q, algo).stats,
                QueryKind::TopK(k) => {
                    topk_query(&store, q, WeightedSum::new(weights.clone()), k, algo).stats
                }
            };
            acc.accumulate(&stats);
        }
    }
    lsa.finish(workload.queries.len());
    cea.finish(workload.queries.len());
    PointMeasurement {
        label: label.into(),
        lsa,
        cea,
        queries: workload.queries.len(),
    }
}

/// Convenience used by the Criterion benches: builds a store once and returns
/// it together with its query locations and dimensionality.
pub fn bench_fixture(
    spec: &WorkloadSpec,
    buffer_fraction: f64,
) -> (Arc<MCNStore>, Vec<mcn_graph::NetworkLocation>, usize) {
    let workload = generate_workload(spec);
    let store = Arc::new(
        MCNStore::build_in_memory(&workload.graph, BufferConfig::Fraction(buffer_fraction))
            .expect("workload store builds"),
    );
    (store, workload.queries, spec.cost_types)
}

/// Runs one query of the requested kind and algorithm, used by the Criterion
/// benches. Returns the result size so the optimiser cannot discard the work.
pub fn run_single(
    store: &Arc<MCNStore>,
    q: mcn_graph::NetworkLocation,
    d: usize,
    kind: QueryKind,
    algo: Algorithm,
) -> usize {
    store.buffer().clear();
    match kind {
        QueryKind::Skyline => skyline_query(store, q, algo).facilities.len(),
        QueryKind::TopK(k) => topk_query(store, q, WeightedSum::uniform(d), k, algo)
            .entries
            .len(),
    }
}

/// Measures wall-clock seconds of a closure (used by the experiments binary to
/// report workload build times) against the process-wide [`default_clock`].
pub fn time_it<R>(f: impl FnOnce() -> R) -> (R, f64) {
    time_it_with(default_clock(), f)
}

/// [`time_it`] against an explicit [`Clock`] — tests pass a
/// [`mcn_obs::ManualClock`] so the reported seconds are exact.
pub fn time_it_with<R>(clock: &dyn Clock, f: impl FnOnce() -> R) -> (R, f64) {
    let start_ns = clock.now_ns();
    let r = f();
    (r, clock.elapsed(start_ns).as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcn_gen::CostDistribution;

    fn tiny_spec() -> WorkloadSpec {
        WorkloadSpec {
            nodes: 400,
            facilities: 120,
            cost_types: 2,
            distribution: CostDistribution::AntiCorrelated,
            clusters: 3,
            queries: 3,
            seed: 4,
        }
    }

    #[test]
    fn measure_point_produces_sane_numbers() {
        let m = measure_point("tiny", &tiny_spec(), 0.01, QueryKind::Skyline);
        assert_eq!(m.queries, 3);
        assert!(m.lsa.physical_reads > 0.0);
        assert!(m.cea.physical_reads > 0.0);
        assert!(m.lsa.result_size >= 1.0);
        // Same query, same answer: result sizes agree between algorithms.
        assert!((m.lsa.result_size - m.cea.result_size).abs() < 1e-9);
        // CEA never reads more than LSA.
        assert!(m.cea.physical_reads <= m.lsa.physical_reads + 1e-9);
        assert!(m.speedup(0.005) >= 1.0);
    }

    #[test]
    fn zero_charged_time_keeps_speedup_finite_and_json_safe() {
        // A degenerate point where CEA was charged nothing must not emit inf
        // (regression test: speedup used to return f64::INFINITY here).
        let mut m = PointMeasurement {
            label: "degenerate".to_string(),
            lsa: AlgoMeasurement {
                physical_reads: 10.0,
                ..Default::default()
            },
            cea: AlgoMeasurement::default(),
            queries: 1,
        };
        assert_eq!(m.speedup(0.005), PointMeasurement::MAX_SPEEDUP);
        assert!(m.speedup(0.005).is_finite());
        // Both sides zero: no advantage either way.
        m.lsa = AlgoMeasurement::default();
        assert_eq!(m.speedup(0.005), 1.0);
    }

    #[test]
    fn topk_measurement_respects_k() {
        let m = measure_point("tiny-topk", &tiny_spec(), 0.01, QueryKind::TopK(4));
        assert!((m.lsa.result_size - 4.0).abs() < 1e-9);
        assert!((m.cea.result_size - 4.0).abs() < 1e-9);
    }

    #[test]
    fn time_it_with_reports_exact_seconds_on_a_fake_clock() {
        let clock = mcn_obs::ManualClock::new(0);
        let (value, secs) = time_it_with(&clock, || {
            clock.advance(1_500_000_000);
            42
        });
        assert_eq!(value, 42);
        assert_eq!(secs, 1.5);
        // Two reads: one before the closure, one after.
        assert_eq!(clock.reads(), 2);
    }

    #[test]
    fn run_single_executes_both_kinds() {
        let (store, queries, d) = bench_fixture(&tiny_spec(), 0.01);
        let s = run_single(&store, queries[0], d, QueryKind::Skyline, Algorithm::Cea);
        assert!(s >= 1);
        let t = run_single(&store, queries[0], d, QueryKind::TopK(2), Algorithm::Lsa);
        assert_eq!(t, 2);
    }
}
