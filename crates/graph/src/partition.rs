//! Deterministic graph partitioning into connected regions.
//!
//! The disk-resident store can be sharded by graph region (`mcn-storage`'s
//! `PartitionedStore`): each region holds the adjacency records of its own
//! nodes, so a query expanding locally touches mostly one shard. This module
//! produces the [`PartitionMap`] that drives the sharding and the
//! region-affine scheduling on top of it.
//!
//! Partitioning is a **BFS growing** scheme: `regions` seed nodes are chosen
//! spread over the id space (jittered deterministically from the spec's
//! seed), then all regions grow breadth-first in round-robin, one settled
//! node per region per round, claiming unassigned neighbours. Round-robin
//! growth keeps the regions balanced; BFS keeps them connected and compact,
//! which is what bounds the cross-region edge fraction. Components that no
//! seed can reach are flooded into the currently smallest region.
//!
//! Everything is deterministic in `(spec, graph)`: same seed and spec on the
//! same graph yields an identical map, run after run.

use crate::graph::MultiCostGraph;
use crate::ids::{NodeId, RegionId};
use crate::location::NetworkLocation;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Parameters of the BFS-growing partitioner.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionSpec {
    /// Number of regions to grow (clamped to the node count).
    pub regions: usize,
    /// Seed jittering the region seed nodes.
    pub seed: u64,
}

impl PartitionSpec {
    /// A spec with the given region count and the default seed.
    pub fn new(regions: usize) -> Self {
        Self {
            regions,
            seed: 2010,
        }
    }
}

/// The result of partitioning a graph: one region per node, plus the
/// boundary-edge accounting the partitioned store and the experiments report.
///
/// The fields are public for (de)serialization; use the accessors, which
/// uphold the documented invariants (`assignment[v] < num_regions` for every
/// node, `region_sizes` summing to the node count, and per-region boundary
/// counts summing to `2 × boundary_edges`).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionMap {
    /// Number of regions (≥ 1).
    pub num_regions: u32,
    /// Region of each node, indexed by `NodeId::index()`.
    pub assignment: Vec<u32>,
    /// Number of nodes per region.
    pub region_sizes: Vec<u32>,
    /// Edges whose end-nodes lie in different regions.
    pub boundary_edges: u64,
    /// Boundary edges incident to each region (each boundary edge is counted
    /// once from each side, so these sum to `2 × boundary_edges`).
    pub region_boundary: Vec<u64>,
    /// The seed the map was grown from (provenance only).
    pub seed: u64,
}

impl PartitionMap {
    /// The trivial map: every node in region 0 (the monolithic layout).
    pub fn single(num_nodes: usize) -> Self {
        Self {
            num_regions: 1,
            assignment: vec![0; num_nodes],
            region_sizes: vec![num_nodes as u32],
            boundary_edges: 0,
            region_boundary: vec![0],
            seed: 0,
        }
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.num_regions as usize
    }

    /// Number of nodes the map covers.
    pub fn num_nodes(&self) -> usize {
        self.assignment.len()
    }

    /// The region of `node`.
    ///
    /// # Panics
    /// Panics if the node is not covered by the map.
    pub fn region_of(&self, node: NodeId) -> RegionId {
        RegionId::new(self.assignment[node.index()])
    }

    /// Nodes per region.
    pub fn region_sizes(&self) -> &[u32] {
        &self.region_sizes
    }

    /// Number of edges crossing a region boundary.
    pub fn boundary_edges(&self) -> u64 {
        self.boundary_edges
    }

    /// Boundary edges incident to each region.
    pub fn region_boundary(&self) -> &[u64] {
        &self.region_boundary
    }

    /// The region a query location is seeded in: the node's region, or the
    /// region of the edge's source node for a location in an edge interior.
    pub fn region_of_location(
        &self,
        graph: &MultiCostGraph,
        location: NetworkLocation,
    ) -> RegionId {
        match location {
            NetworkLocation::Node(node) => self.region_of(node),
            NetworkLocation::OnEdge { edge, .. } => self.region_of(graph.edge(edge).source),
        }
    }

    /// Serializes the map as indented JSON (the partition-manifest format).
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a map from its JSON representation and checks its invariants.
    ///
    /// # Errors
    /// Returns a message when the text is not valid JSON for this type or
    /// the decoded map is internally inconsistent.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let map: Self = serde::json::from_str(text).map_err(|e| e.to_string())?;
        map.validate()?;
        Ok(map)
    }

    /// Checks the documented invariants.
    ///
    /// # Errors
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_regions == 0 {
            return Err("a partition needs at least one region".into());
        }
        if self.region_sizes.len() != self.num_regions as usize
            || self.region_boundary.len() != self.num_regions as usize
        {
            return Err(format!(
                "per-region vectors ({} sizes, {} boundary counts) do not match {} regions",
                self.region_sizes.len(),
                self.region_boundary.len(),
                self.num_regions
            ));
        }
        if let Some(bad) = self.assignment.iter().find(|&&r| r >= self.num_regions) {
            return Err(format!(
                "node assigned to region {bad} outside the {} regions",
                self.num_regions
            ));
        }
        let total: u64 = self.region_sizes.iter().map(|&s| s as u64).sum();
        if total != self.assignment.len() as u64 {
            return Err(format!(
                "region sizes sum to {total}, but {} nodes are assigned",
                self.assignment.len()
            ));
        }
        let sides: u64 = self.region_boundary.iter().sum();
        if sides != 2 * self.boundary_edges {
            return Err(format!(
                "per-region boundary counts sum to {sides}, expected 2 × {}",
                self.boundary_edges
            ));
        }
        Ok(())
    }
}

/// `splitmix64`: a tiny deterministic mixer, enough to jitter seed choices
/// without pulling a full RNG into the graph crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Partitions `graph` into `spec.regions` BFS-grown regions.
///
/// Every node is assigned exactly one region; the returned map always passes
/// [`PartitionMap::validate`]. The region count is clamped to the number of
/// nodes (an empty graph yields a single empty region).
pub fn partition_graph(graph: &MultiCostGraph, spec: &PartitionSpec) -> PartitionMap {
    let n = graph.num_nodes();
    if n == 0 {
        let mut map = PartitionMap::single(0);
        map.seed = spec.seed;
        return map;
    }
    let regions = spec.regions.clamp(1, n.max(1));
    const UNASSIGNED: u32 = u32::MAX;
    let mut assignment = vec![UNASSIGNED; n];
    let mut queues: Vec<VecDeque<NodeId>> = vec![VecDeque::new(); regions];
    let mut sizes = vec![0u32; regions];

    // Seed nodes: evenly spaced over the id space, jittered within their
    // stride so different seeds explore different layouts. Collisions (tiny
    // graphs) fall forward to the next unassigned id.
    let mut mix = spec.seed ^ 0xC0FF_EE00_2010_1CDE;
    for r in 0..regions {
        let stride = n / regions;
        let base = r * stride;
        let jitter = if stride > 1 {
            (splitmix64(&mut mix) % stride as u64) as usize
        } else {
            0
        };
        let mut idx = (base + jitter) % n;
        while assignment[idx] != UNASSIGNED {
            idx = (idx + 1) % n;
        }
        assignment[idx] = r as u32;
        sizes[r] += 1;
        queues[r].push_back(NodeId::from(idx));
    }

    // Round-robin BFS growth: one settled node per region per round, so
    // regions expand at the same rate regardless of where their seed sits.
    let mut remaining: usize = queues.iter().map(|q| q.len()).sum();
    while remaining > 0 {
        for r in 0..regions {
            let Some(v) = queues[r].pop_front() else {
                continue;
            };
            remaining -= 1;
            for &eid in graph.incident_edges(v) {
                let u = graph.edge(eid).opposite(v);
                if assignment[u.index()] == UNASSIGNED {
                    assignment[u.index()] = r as u32;
                    sizes[r] += 1;
                    queues[r].push_back(u);
                    remaining += 1;
                }
            }
        }
    }

    // Disconnected leftovers: flood each remaining component into the
    // currently smallest region (deterministic: nodes visited in id order,
    // ties broken by the lowest region id).
    for start in 0..n {
        if assignment[start] != UNASSIGNED {
            continue;
        }
        let r = (0..regions).min_by_key(|&r| (sizes[r], r)).unwrap_or(0);
        let mut queue = VecDeque::from([NodeId::from(start)]);
        assignment[start] = r as u32;
        sizes[r] += 1;
        while let Some(v) = queue.pop_front() {
            for &eid in graph.incident_edges(v) {
                let u = graph.edge(eid).opposite(v);
                if assignment[u.index()] == UNASSIGNED {
                    assignment[u.index()] = r as u32;
                    sizes[r] += 1;
                    queue.push_back(u);
                }
            }
        }
    }

    // Boundary accounting, counted once per edge and once per incident side.
    let mut boundary_edges = 0u64;
    let mut region_boundary = vec![0u64; regions];
    for e in graph.edges() {
        let a = assignment[e.source.index()];
        let b = assignment[e.target.index()];
        if a != b {
            boundary_edges += 1;
            region_boundary[a as usize] += 1;
            region_boundary[b as usize] += 1;
        }
    }

    let map = PartitionMap {
        num_regions: regions as u32,
        assignment,
        region_sizes: sizes,
        boundary_edges,
        region_boundary,
        seed: spec.seed,
    };
    debug_assert!(map.validate().is_ok());
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::cost::CostVec;
    use crate::ids::EdgeId;

    /// A `width × height` grid with unit costs (d = 2).
    fn grid(width: usize, height: usize) -> MultiCostGraph {
        let mut b = GraphBuilder::new(2);
        let ids: Vec<_> = (0..width * height)
            .map(|i| b.add_node((i % width) as f64, (i / width) as f64))
            .collect();
        for y in 0..height {
            for x in 0..width {
                let v = ids[y * width + x];
                if x + 1 < width {
                    b.add_edge(v, ids[y * width + x + 1], CostVec::from_slice(&[1.0, 2.0]))
                        .unwrap();
                }
                if y + 1 < height {
                    b.add_edge(
                        v,
                        ids[(y + 1) * width + x],
                        CostVec::from_slice(&[1.0, 2.0]),
                    )
                    .unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn every_node_gets_exactly_one_region() {
        let g = grid(12, 9);
        for regions in [1, 2, 4, 8] {
            let map = partition_graph(&g, &PartitionSpec::new(regions));
            assert_eq!(map.num_regions(), regions);
            assert_eq!(map.num_nodes(), g.num_nodes());
            map.validate().expect("map is consistent");
            let total: u32 = map.region_sizes().iter().sum();
            assert_eq!(total as usize, g.num_nodes());
        }
    }

    #[test]
    fn same_seed_and_spec_is_deterministic() {
        let g = grid(15, 10);
        let spec = PartitionSpec {
            regions: 4,
            seed: 77,
        };
        let a = partition_graph(&g, &spec);
        let b = partition_graph(&g, &spec);
        assert_eq!(a, b);
        // A different seed is allowed to (and here does) move the layout.
        let c = partition_graph(
            &g,
            &PartitionSpec {
                regions: 4,
                seed: 78,
            },
        );
        assert_ne!(a.assignment, c.assignment);
    }

    #[test]
    fn boundary_counts_are_consistent_from_both_sides() {
        let g = grid(10, 10);
        let map = partition_graph(&g, &PartitionSpec::new(4));
        // Recount from scratch and compare with the stored accounting.
        let mut expected = 0u64;
        let mut sides = vec![0u64; map.num_regions()];
        for e in g.edges() {
            let a = map.region_of(e.source);
            let b = map.region_of(e.target);
            if a != b {
                expected += 1;
                sides[a.index()] += 1;
                sides[b.index()] += 1;
            }
        }
        assert_eq!(map.boundary_edges(), expected);
        assert_eq!(map.region_boundary(), sides.as_slice());
        assert!(expected > 0, "4 regions on a grid must cut some edges");
    }

    #[test]
    fn one_region_has_no_boundary() {
        let g = grid(6, 6);
        let map = partition_graph(&g, &PartitionSpec::new(1));
        assert_eq!(map.boundary_edges(), 0);
        assert_eq!(map.region_sizes(), &[36]);
        assert_eq!(map, {
            let mut single = PartitionMap::single(36);
            single.seed = map.seed;
            single
        });
    }

    #[test]
    fn regions_grow_balanced_on_a_grid() {
        let g = grid(20, 20);
        let map = partition_graph(&g, &PartitionSpec::new(4));
        let min = *map.region_sizes().iter().min().unwrap() as f64;
        let max = *map.region_sizes().iter().max().unwrap() as f64;
        // Round-robin BFS keeps regions within a reasonable factor.
        assert!(
            max / min <= 2.5,
            "unbalanced regions: {:?}",
            map.region_sizes()
        );
    }

    #[test]
    fn more_regions_than_nodes_is_clamped() {
        let g = grid(2, 2);
        let map = partition_graph(&g, &PartitionSpec::new(64));
        assert_eq!(map.num_regions(), 4);
        map.validate().unwrap();
    }

    #[test]
    fn disconnected_components_are_assigned() {
        // Two disjoint paths: BFS from seeds in one component must still
        // cover the other.
        let mut b = GraphBuilder::new(1);
        let ids: Vec<_> = (0..8).map(|i| b.add_node(i as f64, 0.0)).collect();
        b.add_edge(ids[0], ids[1], CostVec::from_slice(&[1.0]))
            .unwrap();
        b.add_edge(ids[1], ids[2], CostVec::from_slice(&[1.0]))
            .unwrap();
        b.add_edge(ids[4], ids[5], CostVec::from_slice(&[1.0]))
            .unwrap();
        b.add_edge(ids[6], ids[7], CostVec::from_slice(&[1.0]))
            .unwrap();
        let g = b.build().unwrap();
        let map = partition_graph(&g, &PartitionSpec::new(2));
        map.validate().unwrap();
        assert!(map.assignment.iter().all(|&r| r < 2));
    }

    #[test]
    fn location_regions_follow_nodes_and_edge_sources() {
        let g = grid(6, 6);
        let map = partition_graph(&g, &PartitionSpec::new(3));
        let node = NodeId::new(7);
        assert_eq!(
            map.region_of_location(&g, NetworkLocation::Node(node)),
            map.region_of(node)
        );
        let edge = EdgeId::new(5);
        assert_eq!(
            map.region_of_location(&g, NetworkLocation::on_edge(edge, 0.4)),
            map.region_of(g.edge(edge).source)
        );
    }

    #[test]
    fn json_roundtrip_and_validation() {
        let g = grid(8, 8);
        let map = partition_graph(&g, &PartitionSpec::new(4));
        let json = map.to_json();
        let parsed = PartitionMap::from_json(&json).unwrap();
        assert_eq!(parsed, map);
        assert_eq!(parsed.to_json(), json);
        // Corrupted maps are rejected with the invariant that failed.
        let mut broken = map.clone();
        broken.region_sizes[0] += 1;
        assert!(PartitionMap::from_json(&broken.to_json())
            .unwrap_err()
            .contains("sum"));
        let mut broken = map.clone();
        broken.assignment[0] = 99;
        assert!(PartitionMap::from_json(&broken.to_json())
            .unwrap_err()
            .contains("region 99"));
    }
}
