//! The paper's introductory scenario (Figure 1): goods leave a port `q` and
//! must be stored in one of several candidate warehouses. Sensitive goods
//! (dairy) want the *fastest* route; non-sensitive goods want the *cheapest*
//! route (toll fees). The skyline lists every warehouse worth considering;
//! a top-k query with the sensitive/non-sensitive traffic split as weights
//! picks the single best one.
//!
//! ```text
//! cargo run --example logistics_warehouse
//! ```

use mcn::core::prelude::*;
use mcn::graph::{CostVec, GraphBuilder, NetworkLocation};
use mcn::storage::{BufferConfig, MCNStore};
use std::sync::Arc;

fn main() {
    // Cost types: (driving time in minutes, toll fee in dollars).
    let mut b = GraphBuilder::new(2);
    let port = b.add_node(0.0, 0.0);

    // A toll highway ring and a slower toll-free arterial grid.
    let h1 = b.add_node(4.0, 1.0);
    let h2 = b.add_node(8.0, 1.0);
    let a1 = b.add_node(3.0, -2.0);
    let a2 = b.add_node(6.0, -3.0);
    let a3 = b.add_node(9.0, -2.0);

    b.add_edge(port, h1, CostVec::from_slice(&[4.0, 1.0]))
        .unwrap(); // highway, tolled
    b.add_edge(h1, h2, CostVec::from_slice(&[4.0, 1.0]))
        .unwrap();
    b.add_edge(port, a1, CostVec::from_slice(&[8.0, 0.0]))
        .unwrap(); // arterial, free
    b.add_edge(a1, a2, CostVec::from_slice(&[7.0, 0.0]))
        .unwrap();
    b.add_edge(a2, a3, CostVec::from_slice(&[7.0, 0.0]))
        .unwrap();
    b.add_edge(h2, a3, CostVec::from_slice(&[3.0, 0.0]))
        .unwrap();

    // Candidate warehouse sites sit on three different edges.
    let s1 = b.add_node(10.0, 2.0);
    let s2 = b.add_node(6.0, -5.0);
    let s3 = b.add_node(3.0, -4.0);
    let w_highway = b
        .add_edge(h2, s1, CostVec::from_slice(&[2.0, 0.0]))
        .unwrap();
    let w_arterial = b
        .add_edge(a2, s2, CostVec::from_slice(&[2.0, 0.0]))
        .unwrap();
    let w_mixed = b
        .add_edge(a1, s3, CostVec::from_slice(&[2.0, 0.0]))
        .unwrap();
    let p_highway = b.add_facility(w_highway, 0.5).unwrap();
    let p_arterial = b.add_facility(w_arterial, 0.5).unwrap();
    let p_mixed = b.add_facility(w_mixed, 0.5).unwrap();

    let graph = b.build().unwrap();
    let store = Arc::new(MCNStore::build_in_memory(&graph, BufferConfig::Fraction(0.01)).unwrap());
    let q = NetworkLocation::Node(port);

    println!("Candidate warehouses: {p_highway} (via highway), {p_arterial} (deep arterial), {p_mixed} (near port)");
    println!();

    // 1. Decision support: the skyline of warehouses (progressively).
    println!("Skyline (reported progressively, in pinning order):");
    for member in mcn::core::SkylineSearch::cea(store.clone(), q) {
        println!(
            "  {}  (time {:.1} min, tolls {:.1} $)",
            member.facility, member.costs[0], member.costs[1]
        );
    }
    println!();

    // 2. With a known traffic mix, a top-k query ranks them. 90 % of the loads
    //    are sensitive (time matters), 10 % are not (money matters).
    let sensitive_mix = WeightedSum::new(vec![0.9, 0.1]);
    let top = topk_query(&store, q, sensitive_mix, 3, Algorithm::Cea);
    println!("Ranking for a 90/10 sensitive/non-sensitive mix:");
    for (rank, entry) in top.entries.iter().enumerate() {
        println!(
            "  #{} {}  score {:.2}  (time {:.1} min, tolls {:.1} $)",
            rank + 1,
            entry.facility,
            entry.score,
            entry.costs[0],
            entry.costs[1]
        );
    }

    // 3. If the mix flips, so may the winner — no need to know k in advance:
    //    the incremental iterator hands out the next-best site on demand.
    let cheap_mix = WeightedSum::new(vec![0.1, 0.9]);
    let mut incremental = TopKIter::cea(store.clone(), q, cheap_mix);
    let best = incremental.next().expect("at least one warehouse");
    println!();
    println!(
        "Best site for a 10/90 mix (incremental top-1): {} with score {:.2}",
        best.facility, best.score
    );
}
