//! Building the disk-resident store from an in-memory graph.

use crate::btree::{pack_u32_f64, pack_u32_u16, pack_u32_u32_u8, StaticBTree, Value};
use crate::disk::DiskManager;
use crate::error::StorageError;
use crate::meta::StorageMeta;
use crate::page::{Page, PageId, PAGE_SIZE};
use crate::records::{
    adjacency_record_size, encode_adjacency_record, encode_facility_entry, AdjacencyEntry,
    FacilityRun, RecordPtr, FACILITY_ENTRY_SIZE,
};
use mcn_graph::{MultiCostGraph, NodeId};

/// A sequential page writer used while laying out the data files.
struct PageCursor {
    id: PageId,
    page: Page,
    offset: usize,
    pages_written: u32,
}

impl PageCursor {
    fn new(disk: &dyn DiskManager) -> Self {
        Self {
            id: disk.allocate_page(),
            page: Page::zeroed(),
            offset: 0,
            pages_written: 0,
        }
    }

    /// Flushes the current page and starts a new one.
    fn advance(&mut self, disk: &dyn DiskManager) {
        disk.write_page(self.id, &self.page);
        self.pages_written += 1;
        self.id = disk.allocate_page();
        self.page = Page::zeroed();
        self.offset = 0;
    }

    /// Makes sure at least `size` contiguous bytes are available on the current
    /// page, advancing to a fresh page if necessary.
    fn ensure_space(&mut self, disk: &dyn DiskManager, size: usize) {
        debug_assert!(size <= PAGE_SIZE);
        if PAGE_SIZE - self.offset < size {
            self.advance(disk);
        }
    }

    /// Current write position.
    fn ptr(&self) -> RecordPtr {
        RecordPtr {
            page: self.id,
            offset: self.offset as u16,
        }
    }

    /// Flushes the final, partially filled page.
    fn finish(mut self, disk: &dyn DiskManager) -> u32 {
        disk.write_page(self.id, &self.page);
        self.pages_written += 1;
        self.pages_written
    }
}

/// Lays out `graph` on `disk` following the paper's storage scheme (Figure 2)
/// and returns the resulting header, which is also persisted to page 0.
///
/// Layout order: header page, facility file, adjacency file, adjacency tree,
/// facility tree, edge index. Facility runs of a single edge may span
/// consecutive facility-file pages; adjacency records never span pages.
///
/// # Errors
/// Fails if a node's adjacency record exceeds one page
/// ([`StorageError::RecordTooLarge`]).
pub fn build_store(
    graph: &MultiCostGraph,
    disk: &dyn DiskManager,
) -> Result<StorageMeta, StorageError> {
    build_region_store(graph, disk, &|_| true)
}

/// Lays out the region of `graph` selected by `owned` on `disk`: the same
/// scheme as [`build_store`], restricted to the adjacency records of the
/// owned nodes (this is what one shard of a
/// [`crate::partitioned::PartitionedStore`] holds).
///
/// * The **facility file** covers every edge incident to at least one owned
///   node, so each region resolves the facility runs its own adjacency
///   records reference without leaving the shard. Facilities of boundary
///   edges are therefore replicated in both incident regions.
/// * The **adjacency tree** is keyed by global node ids but holds entries
///   only for owned nodes ([`StaticBTree`] supports sparse sorted keys).
/// * The **facility tree** and **edge index** are replicated in full: they
///   are global id → metadata maps, small next to the data files, and
///   replication lets every lookup stay in the querying region's shard.
/// * The header counts (`num_nodes`, `num_edges`, `num_facilities`) describe
///   the **whole network**, not the shard; per-shard entry counts live in
///   the tree handles.
///
/// `build_store` is exactly this function with every node owned.
///
/// # Errors
/// Fails if an owned node's adjacency record exceeds one page
/// ([`StorageError::RecordTooLarge`]).
pub fn build_region_store(
    graph: &MultiCostGraph,
    disk: &dyn DiskManager,
    owned: &dyn Fn(NodeId) -> bool,
) -> Result<StorageMeta, StorageError> {
    let d = graph.num_cost_types();
    let header_id = disk.allocate_page();
    debug_assert_eq!(header_id, PageId::new(0), "header must be the first page");

    // ---- Facility file -----------------------------------------------------
    let mut edge_runs: Vec<Option<FacilityRun>> = vec![None; graph.num_edges()];
    let mut facility_file_pages = 0u32;
    if graph.num_facilities() > 0 {
        let mut cursor = PageCursor::new(disk);
        for edge in graph.edges() {
            if !owned(edge.source) && !owned(edge.target) {
                continue;
            }
            let fids = graph.facilities_on_edge(edge.id);
            if fids.is_empty() {
                continue;
            }
            cursor.ensure_space(disk, FACILITY_ENTRY_SIZE);
            let start = cursor.ptr();
            for &fid in fids {
                cursor.ensure_space(disk, FACILITY_ENTRY_SIZE);
                let fac = graph.facility(fid);
                encode_facility_entry(
                    &mut cursor.page.bytes_mut()[cursor.offset..],
                    fid,
                    fac.position,
                );
                cursor.offset += FACILITY_ENTRY_SIZE;
            }
            edge_runs[edge.id.index()] = Some(FacilityRun {
                start,
                count: fids.len() as u16,
            });
        }
        facility_file_pages = cursor.finish(disk);
    }

    // ---- Adjacency file ----------------------------------------------------
    let mut node_ptrs: Vec<(u32, RecordPtr)> = Vec::with_capacity(graph.num_nodes());
    let mut cursor = PageCursor::new(disk);
    for node in graph.nodes() {
        if !owned(node.id) {
            continue;
        }
        let incident = graph.incident_edges(node.id);
        let size = adjacency_record_size(incident.len(), d);
        if size > PAGE_SIZE {
            return Err(StorageError::RecordTooLarge {
                node: node.id,
                required: size,
                maximum: PAGE_SIZE,
            });
        }
        cursor.ensure_space(disk, size);
        let entries: Vec<AdjacencyEntry> = incident
            .iter()
            .map(|&eid| {
                let e = graph.edge(eid);
                AdjacencyEntry {
                    neighbor: e.opposite(node.id),
                    edge: eid,
                    traversable: e.traversable_from(node.id),
                    costs: e.costs,
                    facilities: edge_runs[eid.index()],
                }
            })
            .collect();
        node_ptrs.push((node.id.raw(), cursor.ptr()));
        encode_adjacency_record(&mut cursor.page.bytes_mut()[cursor.offset..], &entries);
        cursor.offset += size;
    }
    let adjacency_file_pages = cursor.finish(disk);

    // ---- Index trees -------------------------------------------------------
    // `graph.nodes()` iterates in id order, so the (possibly sparse) keys are
    // already strictly sorted as bulk loading requires.
    let adjacency_entries: Vec<(u32, Value)> = node_ptrs
        .iter()
        .map(|(id, ptr)| (*id, pack_u32_u16(ptr.page.raw(), ptr.offset)))
        .collect();
    let adjacency_tree = bulk_load_or_empty(disk, &adjacency_entries);

    let facility_entries: Vec<(u32, Value)> = graph
        .facilities()
        .map(|f| (f.id.raw(), pack_u32_f64(f.edge.raw(), f.position)))
        .collect();
    let facility_tree = bulk_load_or_empty(disk, &facility_entries);

    let edge_entries: Vec<(u32, Value)> = graph
        .edges()
        .map(|e| {
            (
                e.id.raw(),
                pack_u32_u32_u8(e.source.raw(), e.target.raw(), e.directed as u8),
            )
        })
        .collect();
    let edge_index = bulk_load_or_empty(disk, &edge_entries);

    if disk.num_pages() > u32::MAX as usize {
        return Err(StorageError::TooManyPages);
    }

    // ---- Header ------------------------------------------------------------
    let meta = StorageMeta {
        num_cost_types: d as u32,
        num_nodes: graph.num_nodes() as u32,
        num_edges: graph.num_edges() as u32,
        num_facilities: graph.num_facilities() as u32,
        adjacency_tree,
        facility_tree,
        edge_index,
        adjacency_file_pages,
        facility_file_pages,
        data_pages: (disk.num_pages() - 1) as u32,
    };
    disk.write_page(header_id, &meta.encode());
    Ok(meta)
}

/// Bulk loads a tree, or returns an empty handle if there are no entries.
fn bulk_load_or_empty(disk: &dyn DiskManager, entries: &[(u32, Value)]) -> StaticBTree {
    if entries.is_empty() {
        StaticBTree {
            root: PageId::new(0),
            num_pages: 0,
            num_entries: 0,
        }
    } else {
        StaticBTree::bulk_load(disk, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;
    use mcn_graph::{CostVec, GraphBuilder};

    fn small_graph() -> MultiCostGraph {
        let mut b = GraphBuilder::new(3);
        let nodes: Vec<_> = (0..5).map(|i| b.add_node(i as f64, 0.0)).collect();
        for w in nodes.windows(2) {
            b.add_edge(w[0], w[1], CostVec::from_slice(&[1.0, 2.0, 3.0]))
                .unwrap();
        }
        let e = b
            .add_edge(nodes[0], nodes[4], CostVec::from_slice(&[9.0, 9.0, 9.0]))
            .unwrap();
        b.add_facility(e, 0.25).unwrap();
        b.add_facility(e, 0.75).unwrap();
        b.add_facility(mcn_graph::EdgeId::new(0), 0.5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn build_produces_consistent_header() {
        let g = small_graph();
        let disk = InMemoryDisk::new();
        let meta = build_store(&g, &disk).unwrap();
        assert_eq!(meta.num_cost_types, 3);
        assert_eq!(meta.num_nodes, 5);
        assert_eq!(meta.num_edges, 5);
        assert_eq!(meta.num_facilities, 3);
        assert_eq!(meta.data_pages as usize, disk.num_pages() - 1);
        assert!(meta.adjacency_file_pages >= 1);
        assert!(meta.facility_file_pages >= 1);
        // The header round-trips through page 0.
        let mut page = Page::zeroed();
        disk.read_page(PageId::new(0), &mut page);
        assert_eq!(StorageMeta::decode(&page).unwrap(), meta);
    }

    #[test]
    fn graph_without_facilities_builds() {
        let mut b = GraphBuilder::new(2);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        b.add_edge(a, c, CostVec::from_slice(&[1.0, 1.0])).unwrap();
        let g = b.build().unwrap();
        let disk = InMemoryDisk::new();
        let meta = build_store(&g, &disk).unwrap();
        assert_eq!(meta.num_facilities, 0);
        assert_eq!(meta.facility_tree.num_entries, 0);
        assert_eq!(meta.facility_file_pages, 0);
    }

    #[test]
    fn many_nodes_span_multiple_pages() {
        // A long chain: 2000 nodes → adjacency records spill over several pages.
        let mut b = GraphBuilder::new(4);
        let nodes: Vec<_> = (0..2000).map(|i| b.add_node(i as f64, 0.0)).collect();
        for w in nodes.windows(2) {
            b.add_edge(w[0], w[1], CostVec::from_slice(&[1.0, 1.0, 1.0, 1.0]))
                .unwrap();
        }
        let g = b.build().unwrap();
        let disk = InMemoryDisk::new();
        let meta = build_store(&g, &disk).unwrap();
        assert!(meta.adjacency_file_pages > 1);
        assert!(meta.adjacency_tree.num_pages >= 1);
        assert_eq!(meta.adjacency_tree.num_entries, 2000);
    }
}
