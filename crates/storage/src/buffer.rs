//! An LRU buffer pool over a [`DiskManager`].
//!
//! The paper's experiments vary the buffer size between 0 % and 2 % of the
//! pages occupied by the MCN (1 % by default) and show that LSA — which may
//! request the same adjacency or facility page up to `d` times — benefits from
//! the buffer much more than CEA, which touches each page at most once. The
//! pool therefore keeps precise hit/miss counters (see [`IoStats`]).

use crate::disk::DiskManager;
use crate::page::{Page, PageId};
use crate::stats::IoStats;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fixed-capacity page cache with least-recently-used eviction.
///
/// * `capacity == 0` models the paper's "no buffer" configuration: every
///   logical read becomes a physical read.
/// * The pool is read-oriented (the MCN store is write-once/read-many);
///   [`BufferPool::write_through`] updates both the cache and the disk.
pub struct BufferPool {
    disk: Arc<dyn DiskManager>,
    inner: Mutex<Lru>,
    logical_reads: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Doubly-linked-list LRU over page frames. `usize::MAX` acts as the null link.
struct Lru {
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    free: Vec<usize>,
}

struct Frame {
    id: PageId,
    page: Page,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl Lru {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            frames: Vec::with_capacity(capacity.min(1024)),
            map: HashMap::with_capacity(capacity.min(1024)),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.frames[idx].prev, self.frames[idx].next);
        if prev != NIL {
            self.frames[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.frames[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.frames[idx].prev = NIL;
        self.frames[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.frames[idx].prev = NIL;
        self.frames[idx].next = self.head;
        if self.head != NIL {
            self.frames[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.detach(idx);
        self.push_front(idx);
    }

    /// Looks up a page, marking it most recently used.
    fn get(&mut self, id: PageId) -> Option<usize> {
        let idx = *self.map.get(&id)?;
        self.touch(idx);
        Some(idx)
    }

    /// Inserts a page, evicting the LRU entry if at capacity. Returns the frame
    /// index, or `None` if the capacity is zero.
    fn insert(&mut self, id: PageId, page: Page) -> Option<usize> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&idx) = self.map.get(&id) {
            self.frames[idx].page = page;
            self.touch(idx);
            return Some(idx);
        }
        let idx = if self.map.len() < self.capacity {
            if let Some(idx) = self.free.pop() {
                idx
            } else {
                self.frames.push(Frame {
                    id,
                    page: Page::zeroed(),
                    prev: NIL,
                    next: NIL,
                });
                self.frames.len() - 1
            }
        } else {
            // Evict the least recently used frame.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "capacity > 0 but no victim");
            self.detach(victim);
            let old_id = self.frames[victim].id;
            self.map.remove(&old_id);
            victim
        };
        self.frames[idx].id = id;
        self.frames[idx].page = page;
        self.map.insert(id, idx);
        self.push_front(idx);
        Some(idx)
    }

    fn clear(&mut self) {
        self.map.clear();
        self.frames.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

impl BufferPool {
    /// Creates a pool over `disk` holding at most `capacity` pages.
    pub fn new(disk: Arc<dyn DiskManager>, capacity: usize) -> Self {
        Self {
            disk,
            inner: Mutex::new(Lru::new(capacity)),
            logical_reads: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The underlying disk manager.
    pub fn disk(&self) -> &Arc<dyn DiskManager> {
        &self.disk
    }

    /// Maximum number of cached pages.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// Number of pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.inner.lock().len()
    }

    /// Empties the cache and resets the hit/miss counters (the underlying
    /// disk's physical counters are not touched).
    pub fn clear(&self) {
        self.inner.lock().clear();
        self.logical_reads.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Changes the capacity, clearing the cache.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.inner.lock();
        inner.clear();
        inner.capacity = capacity;
    }

    /// Reads page `id` (from the cache if possible) and passes its bytes to
    /// `f`, returning `f`'s result.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> R {
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if let Some(idx) = inner.get(id) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return f(inner.frames[idx].page.bytes());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut page = Page::zeroed();
        self.disk.read_page(id, &mut page);
        if inner.capacity == 0 {
            // Zero-capacity pool (the paper's "no buffer" setting): serve the
            // closure from the transient copy without caching it.
            drop(inner);
            return f(page.bytes());
        }
        let idx = inner
            .insert(id, page)
            .expect("insert cannot fail with non-zero capacity");
        f(inner.frames[idx].page.bytes())
    }

    /// Writes `page` to the disk and refreshes any cached copy.
    pub fn write_through(&self, id: PageId, page: &Page) {
        self.disk.write_page(id, page);
        let mut inner = self.inner.lock();
        if inner.map.contains_key(&id) {
            inner.insert(id, page.clone());
        }
    }

    /// Snapshot of the I/O counters (pool + underlying disk).
    pub fn stats(&self) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            buffer_hits: self.hits.load(Ordering::Relaxed),
            buffer_misses: self.misses.load(Ordering::Relaxed),
            physical_reads: self.disk.physical_reads(),
            physical_writes: self.disk.physical_writes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;

    fn make_disk(pages: usize) -> Arc<InMemoryDisk> {
        let disk = Arc::new(InMemoryDisk::new());
        for i in 0..pages {
            let id = disk.allocate_page();
            let mut p = Page::zeroed();
            p.bytes_mut()[0] = i as u8;
            disk.write_page(id, &p);
        }
        disk
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let disk = make_disk(4);
        let pool = BufferPool::new(disk, 2);
        assert_eq!(pool.with_page(PageId::new(0), |b| b[0]), 0);
        assert_eq!(pool.with_page(PageId::new(0), |b| b[0]), 0);
        assert_eq!(pool.with_page(PageId::new(1), |b| b[0]), 1);
        let s = pool.stats();
        assert_eq!(s.logical_reads, 3);
        assert_eq!(s.buffer_hits, 1);
        assert_eq!(s.buffer_misses, 2);
        assert_eq!(s.physical_reads, 2); // the writes in make_disk are not reads
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let disk = make_disk(3);
        let pool = BufferPool::new(disk, 2);
        pool.with_page(PageId::new(0), |_| ());
        pool.with_page(PageId::new(1), |_| ());
        // Touch page 0 so page 1 becomes the LRU victim.
        pool.with_page(PageId::new(0), |_| ());
        pool.with_page(PageId::new(2), |_| ()); // evicts page 1
        let before = pool.stats();
        pool.with_page(PageId::new(0), |_| ()); // still cached → hit
        let after = pool.stats();
        assert_eq!(after.buffer_hits, before.buffer_hits + 1);
        pool.with_page(PageId::new(1), |_| ()); // evicted → miss
        assert_eq!(pool.stats().buffer_misses, after.buffer_misses + 1);
        assert_eq!(pool.cached_pages(), 2);
    }

    #[test]
    fn write_through_updates_cache_and_disk() {
        let disk = make_disk(1);
        let pool = BufferPool::new(disk.clone(), 2);
        pool.with_page(PageId::new(0), |_| ());
        let mut p = Page::zeroed();
        p.bytes_mut()[0] = 200;
        pool.write_through(PageId::new(0), &p);
        // Cached copy refreshed → read returns the new value without a miss.
        let misses_before = pool.stats().buffer_misses;
        assert_eq!(pool.with_page(PageId::new(0), |b| b[0]), 200);
        assert_eq!(pool.stats().buffer_misses, misses_before);
        // Disk also has the new value.
        let mut out = Page::zeroed();
        disk.read_page(PageId::new(0), &mut out);
        assert_eq!(out.bytes()[0], 200);
    }

    #[test]
    fn zero_capacity_pool_never_caches() {
        let disk = make_disk(2);
        let pool = BufferPool::new(disk, 0);
        for _ in 0..3 {
            assert_eq!(pool.with_page(PageId::new(1), |b| b[0]), 1);
        }
        let s = pool.stats();
        assert_eq!(s.buffer_hits, 0);
        assert_eq!(s.buffer_misses, 3);
        assert_eq!(pool.cached_pages(), 0);
    }

    #[test]
    fn capacity_can_be_reconfigured() {
        let disk = make_disk(2);
        let pool = BufferPool::new(disk, 1);
        pool.with_page(PageId::new(0), |_| ());
        assert_eq!(pool.cached_pages(), 1);
        pool.set_capacity(0);
        assert_eq!(pool.cached_pages(), 0);
        assert_eq!(pool.capacity(), 0);
    }

    #[test]
    fn many_pages_cycle_through_small_pool() {
        let disk = make_disk(64);
        let pool = BufferPool::new(disk, 8);
        for round in 0..3 {
            for i in 0..64u32 {
                let v = pool.with_page(PageId::new(i), |b| b[0]);
                assert_eq!(v, i as u8, "round {round}");
            }
        }
        assert_eq!(pool.cached_pages(), 8);
        let s = pool.stats();
        assert_eq!(s.logical_reads, 3 * 64);
        // Sequential scans over 64 pages with an 8-page LRU never hit.
        assert_eq!(s.buffer_hits, 0);
    }
}
