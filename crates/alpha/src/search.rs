//! Deterministic scalarized shortest-path search (Dijkstra and prep-backed
//! A*).

use crate::preference::Preference;
use mcn_graph::{CostVec, EdgeId, MultiCostGraph, NodeId};
use mcn_prep::PrepTable;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Relative deflation applied to the A* heuristic α·L(v).
///
/// Same constant and rationale as `mcn-mcpp`: the prep scan accumulates the
/// bounds backward (target → v) while the search accumulates forward
/// (v → target), and float addition is not associative, so a mathematically
/// exact bound can exceed the forward sum by a few ulps. Scaling the
/// heuristic down by 1e-9 relative keeps it admissible *and* consistent
/// (δ·h still satisfies the triangle inequality) without giving up any
/// measurable pruning power.
const HEURISTIC_DEFLATION: f64 = 1.0 - 1e-9;

/// Counters describing one scalarized search, mirroring `mcn-mcpp`'s
/// `PathStats` for the skyline tier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScalarStats {
    /// Heap entries pushed (duplicates stand in for decrease-key).
    pub pushed: u64,
    /// Nodes settled — popped with their final distance. The headline
    /// number: A* vs Dijkstra settled counts is exactly the work the
    /// heuristic saves.
    pub settled: u64,
    /// Edge relaxations attempted from settled nodes.
    pub relaxed: u64,
    /// Candidates discarded: stale heap entries, relaxations that did not
    /// improve the tentative distance, and neighbors the prep table proves
    /// cannot reach the target.
    pub pruned: u64,
}

impl ScalarStats {
    /// Fraction of relaxations that failed to improve a label (0 when no
    /// relaxation happened).
    pub fn prune_fraction(&self) -> f64 {
        let total = self.relaxed + self.pushed;
        if total == 0 {
            0.0
        } else {
            self.pruned as f64 / total as f64
        }
    }
}

/// One α-optimal route: the scalarized distance, the underlying multi-cost
/// vector, and the edge sequence source → target.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalarPath {
    /// Scalarized distance α·cost accumulated along the path in path order
    /// (bit-identical between the Dijkstra and A* variants).
    pub total: f64,
    /// Component-wise cost of the path, accumulated source → target.
    pub costs: CostVec,
    /// Edges in path order, source first.
    pub edges: Vec<EdgeId>,
}

/// Outcome of one scalarized query: the α-optimal path (None iff the target
/// is unreachable) plus the search counters.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalarResult {
    /// The α-optimal route, if one exists.
    pub path: Option<ScalarPath>,
    /// Search-effort counters.
    pub stats: ScalarStats,
}

/// Max-heap entry ordered so the *smallest* key pops first, tie-broken on
/// the smaller node id — the tie-break makes the pop order (and therefore
/// every counter) a pure function of the input.
#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    /// Priority: g(v) for Dijkstra, g(v) + h(v) for A*.
    key: f64,
    node: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest key.
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// α-optimal path by plain binary-heap Dijkstra over the scalarized edge
/// costs. Deterministic: identical inputs give identical paths and stats.
///
/// Panics if `pref.cost_types()` differs from the graph's.
pub fn scalarized_path(
    graph: &MultiCostGraph,
    source: NodeId,
    target: NodeId,
    pref: &Preference,
) -> ScalarResult {
    search(graph, source, target, pref, None)
}

/// α-optimal path by A* with the consistent heuristic h(v) = α·L(v), where
/// L(v) is the per-cost lower-bound vector of `prep` (a backward scan
/// towards `target`). Returns the exact same path as [`scalarized_path`]
/// while settling only the nodes whose f-value does not exceed the optimum
/// — the serving-tier fast path.
///
/// Panics if the table was built for a different target, graph size or
/// cost-type count (same contract as `pareto_paths_prepped`).
pub fn scalarized_path_astar(
    graph: &MultiCostGraph,
    source: NodeId,
    target: NodeId,
    pref: &Preference,
    prep: &PrepTable,
) -> ScalarResult {
    assert_eq!(prep.target(), target, "prep table built for another target");
    assert_eq!(
        prep.num_nodes(),
        graph.num_nodes(),
        "prep table built for another graph"
    );
    assert_eq!(
        prep.cost_types(),
        graph.num_cost_types(),
        "prep table built for another cost dimensionality"
    );
    search(graph, source, target, pref, Some(prep))
}

/// Shared engine of both variants; `prep = None` degenerates the heuristic
/// to 0 and A* to Dijkstra.
fn search(
    graph: &MultiCostGraph,
    source: NodeId,
    target: NodeId,
    pref: &Preference,
    prep: Option<&PrepTable>,
) -> ScalarResult {
    assert_eq!(
        pref.cost_types(),
        graph.num_cost_types(),
        "preference dimensionality must match the graph"
    );
    let n = graph.num_nodes();
    assert!(
        source.index() < n && target.index() < n,
        "node out of range"
    );

    let mut stats = ScalarStats::default();

    // With a prep table, an unreachable source is known before any search.
    if let Some(table) = prep {
        if !table.reaches(source) {
            return ScalarResult { path: None, stats };
        }
    }

    let h = |v: NodeId| -> Option<f64> {
        match prep {
            Some(table) => {
                if table.reaches(v) {
                    Some(pref.cost_of(table.bound(v)) * HEURISTIC_DEFLATION)
                } else {
                    None
                }
            }
            None => Some(0.0),
        }
    };

    const NO_PARENT: u32 = u32::MAX;
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![NO_PARENT; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();

    dist[source.index()] = 0.0;
    let h0 = h(source).expect("source reachability checked above");
    heap.push(HeapEntry {
        key: h0,
        node: source.raw(),
    });
    stats.pushed += 1;

    let mut found = false;
    while let Some(entry) = heap.pop() {
        let u = NodeId::from(entry.node);
        // Duplicate pushes stand in for decrease-key; every improvement
        // strictly lowers the key, so the first pop of a node carries its
        // final distance and later pops are stale.
        if settled[u.index()] {
            stats.pruned += 1;
            continue;
        }
        settled[u.index()] = true;
        stats.settled += 1;
        if u == target {
            found = true;
            break;
        }
        let du = dist[u.index()];
        for nb in graph.neighbors(u) {
            stats.relaxed += 1;
            if settled[nb.node.index()] {
                stats.pruned += 1;
                continue;
            }
            let hn = match h(nb.node) {
                Some(v) => v,
                None => {
                    // The prep table proves this neighbor cannot reach the
                    // target: the whole subtree is dead.
                    stats.pruned += 1;
                    continue;
                }
            };
            let cand = du + pref.cost_of(&nb.costs);
            if cand < dist[nb.node.index()] {
                dist[nb.node.index()] = cand;
                parent[nb.node.index()] = nb.edge.raw();
                heap.push(HeapEntry {
                    key: cand + hn,
                    node: nb.node.raw(),
                });
                stats.pushed += 1;
            } else {
                stats.pruned += 1;
            }
        }
    }

    if !found {
        return ScalarResult { path: None, stats };
    }

    // Walk the parent edges target → source, then accumulate the multi-cost
    // vector in path order so `costs` is deterministic in summation order.
    let mut edges = Vec::new();
    let mut v = target;
    while v != source {
        let eid = EdgeId::from(parent[v.index()]);
        edges.push(eid);
        v = graph.edge(eid).opposite(v);
    }
    edges.reverse();
    let mut costs = CostVec::zeros(graph.num_cost_types());
    for &eid in &edges {
        costs += graph.edge(eid).costs;
    }

    ScalarResult {
        path: Some(ScalarPath {
            total: dist[target.index()],
            costs,
            edges,
        }),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcn_graph::GraphBuilder;

    /// Diamond: s → t via top (cheap in cost 0) or bottom (cheap in cost 1).
    fn diamond() -> (MultiCostGraph, NodeId, NodeId) {
        let mut b = GraphBuilder::new(2);
        let s = b.add_node(0.0, 0.0);
        let top = b.add_node(1.0, 1.0);
        let bot = b.add_node(1.0, -1.0);
        let t = b.add_node(2.0, 0.0);
        b.add_edge(s, top, CostVec::from_slice(&[1.0, 10.0]))
            .unwrap();
        b.add_edge(top, t, CostVec::from_slice(&[1.0, 10.0]))
            .unwrap();
        b.add_edge(s, bot, CostVec::from_slice(&[10.0, 1.0]))
            .unwrap();
        b.add_edge(bot, t, CostVec::from_slice(&[10.0, 1.0]))
            .unwrap();
        (b.build().unwrap(), s, t)
    }

    #[test]
    fn preference_steers_the_route() {
        let (g, s, t) = diamond();
        let fast = scalarized_path(&g, s, t, &Preference::new(&[1.0, 0.0]).unwrap());
        let cheap = scalarized_path(&g, s, t, &Preference::new(&[0.0, 1.0]).unwrap());
        let fast_path = fast.path.unwrap();
        let cheap_path = cheap.path.unwrap();
        assert_ne!(fast_path.edges, cheap_path.edges);
        assert_eq!(fast_path.costs.as_slice(), &[2.0, 20.0]);
        assert_eq!(cheap_path.costs.as_slice(), &[20.0, 2.0]);
        assert_eq!(fast_path.total, 2.0);
    }

    #[test]
    fn astar_matches_dijkstra_bit_for_bit() {
        let (g, s, t) = diamond();
        let pref = Preference::new(&[0.3, 0.7]).unwrap();
        let prep = PrepTable::build(&g, t);
        let plain = scalarized_path(&g, s, t, &pref);
        let astar = scalarized_path_astar(&g, s, t, &pref, &prep);
        let p = plain.path.unwrap();
        let a = astar.path.unwrap();
        assert_eq!(p.edges, a.edges);
        assert_eq!(p.total.to_bits(), a.total.to_bits());
        assert_eq!(p.costs, a.costs);
        assert!(astar.stats.settled <= plain.stats.settled);
    }

    #[test]
    fn source_equals_target_is_the_empty_path() {
        let (g, s, _) = diamond();
        let pref = Preference::uniform(2);
        let r = scalarized_path(&g, s, s, &pref);
        let p = r.path.unwrap();
        assert!(p.edges.is_empty());
        assert_eq!(p.total, 0.0);
        assert_eq!(r.stats.settled, 1);
    }

    #[test]
    fn unreachable_target_returns_none() {
        let mut b = GraphBuilder::new(2);
        let a = b.add_node(0.0, 0.0);
        let bnode = b.add_node(1.0, 0.0);
        let c = b.add_node(2.0, 0.0);
        let d = b.add_node(3.0, 0.0);
        b.add_edge(a, bnode, CostVec::from_slice(&[1.0, 1.0]))
            .unwrap();
        b.add_edge(c, d, CostVec::from_slice(&[1.0, 1.0])).unwrap();
        let g = b.build().unwrap();
        let pref = Preference::uniform(2);
        assert!(scalarized_path(&g, a, c, &pref).path.is_none());
        let prep = PrepTable::build(&g, c);
        let astar = scalarized_path_astar(&g, a, c, &pref, &prep);
        assert!(astar.path.is_none());
        // The prep table already knows the source is dead: zero work done.
        assert_eq!(astar.stats.settled, 0);
        assert_eq!(astar.stats.pushed, 0);
    }

    #[test]
    fn heuristic_cuts_settled_nodes_on_a_line() {
        // Long line with the target near the source: Dijkstra floods both
        // directions, A* walks straight to the target.
        let mut b = GraphBuilder::new(2);
        let ids: Vec<NodeId> = (0..50).map(|i| b.add_node(i as f64, 0.0)).collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], CostVec::from_slice(&[1.0, 2.0]))
                .unwrap();
        }
        let g = b.build().unwrap();
        let (s, t) = (ids[25], ids[30]);
        let pref = Preference::new(&[0.5, 0.5]).unwrap();
        let prep = PrepTable::build(&g, t);
        let plain = scalarized_path(&g, s, t, &pref);
        let astar = scalarized_path_astar(&g, s, t, &pref, &prep);
        assert_eq!(plain.path, astar.path);
        assert!(
            astar.stats.settled < plain.stats.settled,
            "astar {} vs dijkstra {}",
            astar.stats.settled,
            plain.stats.settled
        );
    }

    #[test]
    #[should_panic(expected = "another target")]
    fn astar_rejects_mismatched_table() {
        let (g, s, t) = diamond();
        let prep = PrepTable::build(&g, s);
        scalarized_path_astar(&g, s, t, &Preference::uniform(2), &prep);
    }
}
