//! Quickstart: build a tiny multi-cost network, store it on the paged disk
//! layout, and run a skyline and a top-k query.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mcn::core::prelude::*;
use mcn::graph::{CostVec, GraphBuilder, NetworkLocation};
use mcn::storage::{BufferConfig, MCNStore};
use std::sync::Arc;

fn main() {
    // A small network with two cost types per edge: (driving minutes, toll $).
    //
    //   q ----(5, 0)---- a ----(5, 0)---- b      p0 in the middle of a—b
    //   |                                        p1 in the middle of q—c
    //   +----(2, 2)---- c
    let mut builder = GraphBuilder::new(2);
    let q = builder.add_node(0.0, 0.0);
    let a = builder.add_node(1.0, 0.0);
    let b = builder.add_node(2.0, 0.0);
    let c = builder.add_node(0.0, -1.0);
    builder
        .add_edge(q, a, CostVec::from_slice(&[5.0, 0.0]))
        .unwrap();
    let e_ab = builder
        .add_edge(a, b, CostVec::from_slice(&[5.0, 0.0]))
        .unwrap();
    let e_qc = builder
        .add_edge(q, c, CostVec::from_slice(&[2.0, 2.0]))
        .unwrap();
    builder.add_facility(e_ab, 0.5).unwrap(); // p0: 7.5 min, 0 $
    builder.add_facility(e_qc, 0.5).unwrap(); // p1: 1 min, 1 $
    let graph = builder.build().unwrap();

    // Lay the network out on the paged store (Figure 2 of the paper) with a
    // 1 % LRU buffer, exactly like the evaluation's default setting.
    let store = Arc::new(MCNStore::build_in_memory(&graph, BufferConfig::Fraction(0.01)).unwrap());
    let query = NetworkLocation::Node(q);

    // Skyline: every facility not dominated in (time, toll).
    let skyline = skyline_query(&store, query, Algorithm::Cea);
    println!("Skyline of q ({} facilities):", skyline.facilities.len());
    for member in &skyline.facilities {
        println!("  {}  costs = {}", member.facility, member.costs);
    }

    // Top-1 under a 70/30 weighting of time vs money.
    let weights = WeightedSum::new(vec![0.7, 0.3]);
    let top = topk_query(&store, query, weights, 1, Algorithm::Cea);
    let best = &top.entries[0];
    println!(
        "Top-1 with f = 0.7·time + 0.3·toll: {} (score {:.2})",
        best.facility, best.score
    );

    // The query statistics expose the I/O behaviour the paper measures.
    println!(
        "CEA stats: {} logical page reads, {} buffer misses, {} nodes settled",
        top.stats.io.logical_reads, top.stats.io.buffer_misses, top.stats.nodes_settled
    );
}
