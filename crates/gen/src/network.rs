//! Synthetic road-network generation.
//!
//! The paper evaluates on the San Francisco road network (174,956 nodes,
//! 223,001 edges, average degree ≈ 2.5) produced by the Brinkhoff generator.
//! That dataset is not redistributable here, so this module generates
//! structurally similar networks: a planar grid with per-node jitter, a
//! configurable fraction of removed edges (dead ends, irregular blocks) and a
//! sprinkling of diagonal shortcuts. Degree distribution and locality match
//! what the expansion algorithms care about; see DESIGN.md §3 for the
//! substitution argument. Real datasets can still be loaded through `mcn-io`.

use mcn_graph::{EdgeId, GraphBuilder, MultiCostGraph, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Parameters of the synthetic road network.
#[derive(Clone, Debug, PartialEq)]
pub struct NetworkSpec {
    /// Grid columns.
    pub width: usize,
    /// Grid rows.
    pub height: usize,
    /// Distance between neighbouring intersections (arbitrary length unit).
    pub spacing: f64,
    /// Random jitter applied to node coordinates, as a fraction of `spacing`.
    pub jitter: f64,
    /// Fraction of grid edges removed (dead ends / irregular blocks), in
    /// `[0, 0.4]`. Removal never disconnects the network.
    pub removal_rate: f64,
    /// Fraction of cells that receive a diagonal shortcut edge.
    pub diagonal_rate: f64,
    /// Seed of the deterministic generator.
    pub seed: u64,
}

impl NetworkSpec {
    /// A spec with roughly `target_nodes` nodes and default shape parameters.
    pub fn with_target_nodes(target_nodes: usize, seed: u64) -> Self {
        let side = (target_nodes as f64).sqrt().ceil().max(2.0) as usize;
        Self {
            width: side,
            height: side,
            spacing: 100.0,
            jitter: 0.25,
            removal_rate: 0.12,
            diagonal_rate: 0.05,
            seed,
        }
    }

    /// Number of nodes the spec will produce.
    pub fn num_nodes(&self) -> usize {
        self.width * self.height
    }
}

impl Default for NetworkSpec {
    fn default() -> Self {
        Self::with_target_nodes(10_000, 42)
    }
}

/// The generated topology: node positions, edges and their Euclidean lengths.
/// Costs are assigned separately (see [`crate::costs`]).
#[derive(Clone, Debug)]
pub struct Topology {
    /// Node coordinates, indexed by node.
    pub positions: Vec<(f64, f64)>,
    /// Edges as `(source, target, euclidean_length)`.
    pub edges: Vec<(NodeId, NodeId, f64)>,
}

impl Topology {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.positions.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

/// Generates the road-network topology described by `spec`.
///
/// The result is always connected: edge removal is performed on a shuffled
/// candidate list and skipped whenever it would disconnect the graph (checked
/// with a union-find structure built over the retained edges).
pub fn generate_topology(spec: &NetworkSpec) -> Topology {
    assert!(
        spec.width >= 2 && spec.height >= 2,
        "grid must be at least 2×2"
    );
    assert!(
        (0.0..=0.4).contains(&spec.removal_rate),
        "removal rate must be within [0, 0.4]"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let n = spec.width * spec.height;
    let node = |x: usize, y: usize| NodeId::from(y * spec.width + x);

    let mut positions = Vec::with_capacity(n);
    for y in 0..spec.height {
        for x in 0..spec.width {
            let jx = rng.gen_range(-spec.jitter..=spec.jitter) * spec.spacing;
            let jy = rng.gen_range(-spec.jitter..=spec.jitter) * spec.spacing;
            positions.push((x as f64 * spec.spacing + jx, y as f64 * spec.spacing + jy));
        }
    }
    let length = |a: NodeId, b: NodeId| -> f64 {
        let (ax, ay) = positions[a.index()];
        let (bx, by) = positions[b.index()];
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt().max(1e-6)
    };

    // Candidate grid edges.
    let mut candidates: Vec<(NodeId, NodeId)> = Vec::new();
    for y in 0..spec.height {
        for x in 0..spec.width {
            if x + 1 < spec.width {
                candidates.push((node(x, y), node(x + 1, y)));
            }
            if y + 1 < spec.height {
                candidates.push((node(x, y), node(x, y + 1)));
            }
        }
    }

    // Decide which edges to drop without disconnecting the graph: keep a
    // spanning structure first, then drop from the rest.
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let mut uf = UnionFind::new(n);
    let mut keep = vec![false; candidates.len()];
    let mut kept_extra: Vec<usize> = Vec::new();
    for &i in &order {
        let (a, b) = candidates[i];
        if uf.union(a.index(), b.index()) {
            keep[i] = true; // spanning edge: must stay
        } else {
            kept_extra.push(i);
        }
    }
    // Drop `removal_rate` of *all* candidate edges, taken from the redundant ones.
    let to_drop = ((candidates.len() as f64) * spec.removal_rate).round() as usize;
    for &i in kept_extra.iter().skip(to_drop) {
        keep[i] = true;
    }

    let mut edges: Vec<(NodeId, NodeId, f64)> = candidates
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(&(a, b), _)| (a, b, length(a, b)))
        .collect();

    // Diagonal shortcuts.
    for y in 0..spec.height.saturating_sub(1) {
        for x in 0..spec.width.saturating_sub(1) {
            if rng.gen_bool(spec.diagonal_rate) {
                let (a, b) = (node(x, y), node(x + 1, y + 1));
                edges.push((a, b, length(a, b)));
            }
        }
    }

    Topology { positions, edges }
}

/// Assembles a [`MultiCostGraph`] from a topology and per-edge cost vectors
/// produced by [`crate::costs::assign_costs`].
pub fn build_graph(
    topology: &Topology,
    costs: &[mcn_graph::CostVec],
) -> (MultiCostGraph, Vec<EdgeId>) {
    assert_eq!(
        topology.edges.len(),
        costs.len(),
        "one cost vector per edge"
    );
    let d = costs.first().map(|c| c.len()).unwrap_or(2);
    let mut b = GraphBuilder::with_capacity(d, topology.num_nodes(), topology.num_edges(), 0);
    for &(x, y) in &topology.positions {
        b.add_node(x, y);
    }
    let mut edge_ids = Vec::with_capacity(topology.edges.len());
    for ((a, c, _), w) in topology.edges.iter().zip(costs) {
        edge_ids.push(b.add_edge(*a, *c, *w).expect("generated edge is valid"));
    }
    (b.build().expect("generated graph is valid"), edge_ids)
}

/// Minimal union-find used to keep the generated network connected.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        // Iterative find with full path compression (avoids deep recursion on
        // the long chains that arise before compression kicks in).
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Returns true if the two elements were in different components.
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            false
        } else {
            self.parent[ra] = rb;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::{assign_costs, CostDistribution};

    #[test]
    fn generated_topology_has_expected_size_and_connectivity() {
        let spec = NetworkSpec::with_target_nodes(2500, 7);
        let topo = generate_topology(&spec);
        assert_eq!(topo.num_nodes(), spec.num_nodes());
        // Grid edges ≈ 2·n minus borders, minus removals, plus diagonals.
        assert!(topo.num_edges() > topo.num_nodes());
        let costs = assign_costs(&topo, 2, CostDistribution::Independent, 1);
        let (graph, _) = build_graph(&topo, &costs);
        assert!(graph.is_connected(), "generated network must be connected");
        let avg = graph.average_degree();
        assert!(avg > 2.0 && avg < 5.0, "average degree {avg} unrealistic");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = NetworkSpec::with_target_nodes(400, 99);
        let a = generate_topology(&spec);
        let b = generate_topology(&spec);
        assert_eq!(a.edges, b.edges);
        let c = generate_topology(&NetworkSpec {
            seed: 100,
            ..spec.clone()
        });
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn edge_lengths_are_positive_and_local() {
        let spec = NetworkSpec::with_target_nodes(900, 3);
        let topo = generate_topology(&spec);
        for &(_, _, len) in &topo.edges {
            assert!(len > 0.0);
            assert!(len < 4.0 * spec.spacing, "edge length {len} is not local");
        }
    }

    #[test]
    #[should_panic]
    fn degenerate_grid_is_rejected() {
        let spec = NetworkSpec {
            width: 1,
            height: 5,
            ..NetworkSpec::default()
        };
        let _ = generate_topology(&spec);
    }
}
