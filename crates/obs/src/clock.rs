//! Timing source abstraction.
//!
//! Everything in the workspace that measures wall time goes through a
//! [`Clock`] so tests can substitute a [`ManualClock`] and assert exact
//! durations. Production code uses [`MonotonicClock`] (an `Instant`
//! anchored at construction) or the process-wide [`default_clock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A monotonic nanosecond timestamp source.
///
/// Timestamps are only meaningful relative to other timestamps from the
/// same clock; `0` is the clock's own origin, not the Unix epoch.
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed since the clock's origin.
    fn now_ns(&self) -> u64;

    /// Duration between a previously sampled `start_ns` and now
    /// (saturating, so a stale or foreign timestamp yields zero rather
    /// than a panic).
    fn elapsed(&self, start_ns: u64) -> Duration {
        Duration::from_nanos(self.now_ns().saturating_sub(start_ns))
    }
}

/// Production clock: a monotonic `Instant` anchored at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // ~584 years of range; the cast cannot truncate in practice.
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Deterministic test clock.
///
/// Time only moves when the test says so: either explicitly via
/// [`ManualClock::advance`] / [`ManualClock::set`], or — when built with
/// [`ManualClock::with_step`] — by a fixed increment on every `now_ns`
/// call, which makes single-threaded timing paths produce exact,
/// repeatable durations.
#[derive(Debug)]
pub struct ManualClock {
    now: AtomicU64,
    step: u64,
    reads: AtomicU64,
}

impl ManualClock {
    /// A frozen clock: `now_ns` returns `start_ns` until advanced.
    pub fn new(start_ns: u64) -> Self {
        Self {
            now: AtomicU64::new(start_ns),
            step: 0,
            reads: AtomicU64::new(0),
        }
    }

    /// A stepping clock: every `now_ns` call advances time by `step_ns`
    /// and returns the post-step value.
    pub fn with_step(start_ns: u64, step_ns: u64) -> Self {
        Self {
            now: AtomicU64::new(start_ns),
            step: step_ns,
            reads: AtomicU64::new(0),
        }
    }

    /// Move time forward; returns the new now.
    pub fn advance(&self, delta_ns: u64) -> u64 {
        self.now.fetch_add(delta_ns, Ordering::SeqCst) + delta_ns
    }

    /// Jump to an absolute timestamp.
    pub fn set(&self, now_ns: u64) {
        self.now.store(now_ns, Ordering::SeqCst);
    }

    /// Number of `now_ns` calls observed so far (for asserting how many
    /// times a code path sampled the clock).
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::SeqCst)
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.reads.fetch_add(1, Ordering::SeqCst);
        if self.step == 0 {
            self.now.load(Ordering::SeqCst)
        } else {
            self.now.fetch_add(self.step, Ordering::SeqCst) + self.step
        }
    }
}

/// The process-wide production clock, anchored the first time any caller
/// asks for it. Shared so every QPS / wall-time figure in a run is
/// measured against one origin.
pub fn default_clock() -> &'static dyn Clock {
    static CLOCK: OnceLock<MonotonicClock> = OnceLock::new();
    CLOCK.get_or_init(MonotonicClock::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances() {
        let clock = MonotonicClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_frozen_until_advanced() {
        let clock = ManualClock::new(100);
        assert_eq!(clock.now_ns(), 100);
        assert_eq!(clock.now_ns(), 100);
        assert_eq!(clock.advance(50), 150);
        assert_eq!(clock.now_ns(), 150);
        clock.set(7);
        assert_eq!(clock.now_ns(), 7);
        assert_eq!(clock.reads(), 4);
    }

    #[test]
    fn stepping_clock_advances_per_read() {
        let clock = ManualClock::with_step(0, 1_000);
        assert_eq!(clock.now_ns(), 1_000);
        assert_eq!(clock.now_ns(), 2_000);
        assert_eq!(clock.elapsed(1_000), Duration::from_nanos(2_000));
        assert_eq!(clock.reads(), 3);
    }

    #[test]
    fn elapsed_saturates_on_stale_start() {
        let clock = ManualClock::new(10);
        assert_eq!(clock.elapsed(500), Duration::ZERO);
    }

    #[test]
    fn default_clock_is_shared() {
        let a = default_clock().now_ns();
        let b = default_clock().now_ns();
        assert!(b >= a);
    }
}
