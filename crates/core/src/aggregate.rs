//! Monotone aggregate cost functions for top-k queries.

use mcn_graph::CostVec;

/// An increasingly monotone aggregate cost function `f` over the `d`
/// per-cost-type network distances of a facility (paper Section III).
///
/// Monotonicity (`cᵢ(p) ≤ cᵢ(p′) ∀i ⇒ f(p) ≤ f(p′)`) is what allows the
/// growing stage to stop after pinning `k` facilities and what makes the
/// frontier-based lower bound of the shrinking stage valid.
pub trait AggregateCost {
    /// Number of cost types the function expects.
    fn arity(&self) -> usize;

    /// The aggregate score of a fully known cost vector (lower is better).
    fn score(&self, costs: &CostVec) -> f64;

    /// A lower bound on the score of a facility whose costs are only partially
    /// known: unknown components are replaced by the current expansion
    /// frontiers `tᵢ` (which, by the incremental nature of network expansion,
    /// lower-bound the true unknown costs).
    fn lower_bound(&self, known: &[Option<f64>], frontiers: &[f64]) -> f64 {
        debug_assert_eq!(known.len(), self.arity());
        debug_assert_eq!(frontiers.len(), self.arity());
        let mut cv = CostVec::zeros(self.arity());
        for i in 0..self.arity() {
            cv[i] = known[i].unwrap_or(frontiers[i]);
        }
        self.score(&cv)
    }
}

/// The weighted sum `f(p) = Σ αᵢ·cᵢ(p)` with non-negative coefficients — the
/// aggregate used throughout the paper's evaluation (coefficients drawn
/// uniformly from `[0, 1]`).
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedSum {
    weights: Vec<f64>,
}

impl WeightedSum {
    /// Creates a weighted sum with the given non-negative, finite weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty or contains a negative / non-finite value.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "at least one weight is required");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be non-negative and finite"
        );
        Self { weights }
    }

    /// Equal weights `1/d`.
    pub fn uniform(d: usize) -> Self {
        Self::new(vec![1.0 / d as f64; d])
    }

    /// The coefficients.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl AggregateCost for WeightedSum {
    fn arity(&self) -> usize {
        self.weights.len()
    }

    fn score(&self, costs: &CostVec) -> f64 {
        assert_eq!(costs.len(), self.weights.len(), "arity mismatch");
        self.weights
            .iter()
            .zip(costs.as_slice())
            .map(|(w, c)| w * c)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_sum_scores() {
        let f = WeightedSum::new(vec![0.9, 0.1]);
        assert!((f.score(&CostVec::from_slice(&[10.0, 20.0])) - 11.0).abs() < 1e-12);
        assert_eq!(f.arity(), 2);
        assert_eq!(WeightedSum::uniform(4).weights(), &[0.25; 4]);
    }

    #[test]
    fn lower_bound_uses_frontiers_for_unknowns() {
        let f = WeightedSum::new(vec![1.0, 1.0, 1.0]);
        let lb = f.lower_bound(&[Some(2.0), None, Some(4.0)], &[9.0, 3.0, 9.0]);
        assert!((lb - (2.0 + 3.0 + 4.0)).abs() < 1e-12);
        // Fully known ⇒ lower bound equals the exact score.
        let lb = f.lower_bound(&[Some(1.0), Some(2.0), Some(3.0)], &[0.0, 0.0, 0.0]);
        assert!((lb - 6.0).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_never_exceeds_true_score() {
        let f = WeightedSum::new(vec![0.3, 0.7]);
        // True costs (5, 8); frontier (4, 6) lower-bounds the unknown cost.
        let truth = f.score(&CostVec::from_slice(&[5.0, 8.0]));
        let lb = f.lower_bound(&[Some(5.0), None], &[4.0, 6.0]);
        assert!(lb <= truth + 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_weights_rejected() {
        let _ = WeightedSum::new(vec![]);
    }

    #[test]
    #[should_panic]
    fn negative_weights_rejected() {
        let _ = WeightedSum::new(vec![0.2, -0.4]);
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let f = WeightedSum::uniform(3);
        let _ = f.score(&CostVec::from_slice(&[1.0, 2.0]));
    }
}
