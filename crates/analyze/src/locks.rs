//! Static lock-order analysis: the deadlock-precondition gate.
//!
//! Every `Mutex`/`RwLock` site gets a stable **lock class** id:
//!
//! * struct fields — `crate::Type.field` (`storage::BufferPool.shards`);
//!   a `Vec<Mutex<_>>` field is one class, as every element shares the
//!   acquisition discipline;
//! * lock-typed locals — `crate::fn.var` (`engine::run.slots`).
//!
//! The analysis finds every guard acquisition (`.lock()`, `.read()`,
//! `.write()`, `try_*` — always the no-arg guard form), computes its live
//! range (let-bound guards live to their block's end or an explicit
//! `drop(guard)`; temporary guards to the end of their statement), and
//! records an **acquisition edge** `A → B` whenever class B is acquired —
//! directly, or anywhere inside a callee resolved through the call graph —
//! while a guard of class A is live. Runtime registration strings in
//! `mcn-witness` use the same ids, so observed edges cross-check the static
//! graph verbatim.
//!
//! A cycle in the edge graph is the deadlock precondition; every edge on a
//! cycle becomes a `lock-order` finding at its acquisition site. An edge
//! can be exempted with `// mcn-lint: allow(lock-order, reason = "…")` on
//! its site line — the developer's assertion that the two locks are never
//! contended together — which removes it from the graph. The surviving
//! edges diff against the checked-in `crates/analyze/lock-order.json`
//! exactly like the findings baseline: new and stale edges both fail.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::callgraph::Model;
use crate::lexer::Token;
use crate::resolver::is_lock_type;
use crate::rules::{GUARD_METHODS, RULE_LOCK_ORDER};
use crate::Finding;

/// One lock class: a stable id plus where it is declared.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LockClass {
    /// `crate::Type.field` or `crate::fn.var`.
    pub id: String,
    /// Declaring file.
    pub file: String,
    /// Declaration line.
    pub line: u32,
}

/// One acquisition-order edge: class `to` acquired while `from` is held.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LockEdge {
    /// Held class.
    pub from: String,
    /// Acquired class.
    pub to: String,
    /// File of the acquiring site (or the call that reaches it).
    pub file: String,
    /// Line of that site.
    pub line: u32,
    /// For edges through the call graph, the callee carrying the
    /// acquisition.
    pub via: Option<String>,
}

/// The checked-in static edge list (`crates/analyze/lock-order.json`).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LockOrderFile {
    /// Accepted edges, sorted by (from, to).
    pub edges: Vec<LockEdge>,
}

impl LockOrderFile {
    /// Serializes in the workspace's pretty-JSON baseline style.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses the checked-in file.
    pub fn from_json(text: &str) -> Result<LockOrderFile, String> {
        serde::json::from_str(text).map_err(|e| e.to_string())
    }

    /// Diffs current edges against this file on `(from, to)` pairs —
    /// file/line are informational and drift-tolerant, like the findings
    /// baseline.
    pub fn diff(&self, edges: &[LockEdge]) -> (Vec<LockEdge>, Vec<LockEdge>) {
        let accepted: BTreeSet<(&str, &str)> = self
            .edges
            .iter()
            .map(|e| (e.from.as_str(), e.to.as_str()))
            .collect();
        let current: BTreeSet<(&str, &str)> = edges
            .iter()
            .map(|e| (e.from.as_str(), e.to.as_str()))
            .collect();
        let new = edges
            .iter()
            .filter(|e| !accepted.contains(&(e.from.as_str(), e.to.as_str())))
            .cloned()
            .collect();
        let stale = self
            .edges
            .iter()
            .filter(|e| !current.contains(&(e.from.as_str(), e.to.as_str())))
            .cloned()
            .collect();
        (new, stale)
    }
}

/// The result of the lock-order pass.
pub struct LockAnalysis {
    /// Every lock class in non-test code.
    pub classes: Vec<LockClass>,
    /// Deduplicated acquisition edges (allow-exempted edges removed),
    /// sorted by (from, to).
    pub edges: Vec<LockEdge>,
    /// `lock-order` findings: one per edge participating in a cycle.
    pub findings: Vec<Finding>,
}

/// One live guard acquisition inside a function.
struct Event {
    class: String,
    /// Token index of the guard-method identifier.
    tok: usize,
    line: u32,
    /// Live token range `[start, end)`.
    range: (usize, usize),
}

/// Runs the lock-order analysis over the resolved model.
pub fn run(model: &Model<'_>) -> LockAnalysis {
    let (classes, local_classes) = collect_classes(model);

    // Acquisition events per function (non-test code only: product lock
    // discipline is what's gated; tests build ad-hoc locks freely).
    let mut events: Vec<Vec<Event>> = Vec::with_capacity(model.resolver.fns.len());
    for fn_id in 0..model.resolver.fns.len() {
        if model.resolver.fns[fn_id].is_test {
            events.push(Vec::new());
            continue;
        }
        events.push(collect_events(model, fn_id, &local_classes));
    }

    // Lock closure per function: every class acquired inside it or any
    // resolved callee. Fixpoint over candidate edges.
    let mut closure: Vec<BTreeSet<String>> = events
        .iter()
        .map(|evs| evs.iter().map(|e| e.class.clone()).collect())
        .collect();
    loop {
        let mut grew = false;
        for fn_id in 0..model.resolver.fns.len() {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for site in &model.graph.sites[fn_id] {
                for &c in &site.candidates {
                    for id in &closure[c] {
                        if !closure[fn_id].contains(id) {
                            add.insert(id.clone());
                        }
                    }
                }
            }
            if !add.is_empty() {
                closure[fn_id].extend(add);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    // Edges: for each live guard, every direct nested acquisition plus
    // every class reachable through a call inside the live range.
    let mut raw_edges: Vec<LockEdge> = Vec::new();
    for fn_id in 0..model.resolver.fns.len() {
        let f = &model.resolver.fns[fn_id];
        let file = &model.ws.files[f.file];
        for a in &events[fn_id] {
            for b in &events[fn_id] {
                if b.tok > a.range.0 && b.tok < a.range.1 {
                    raw_edges.push(LockEdge {
                        from: a.class.clone(),
                        to: b.class.clone(),
                        file: file.path.clone(),
                        line: b.line,
                        via: None,
                    });
                }
            }
            for site in &model.graph.sites[fn_id] {
                if site.tok <= a.range.0 || site.tok >= a.range.1 {
                    continue;
                }
                for &c in &site.candidates {
                    for id in &closure[c] {
                        raw_edges.push(LockEdge {
                            from: a.class.clone(),
                            to: id.clone(),
                            file: file.path.clone(),
                            line: site.line,
                            via: Some(model.resolver.fns[c].qualified()),
                        });
                    }
                }
            }
        }
    }

    // Allow-exempted edges leave the graph entirely.
    raw_edges.retain(|e| {
        let allowed = model
            .ws
            .files
            .iter()
            .find(|s| s.path == e.file)
            .is_some_and(|s| s.allowed(RULE_LOCK_ORDER, e.line));
        !allowed
    });

    // Dedup by (from, to), keeping the first site in (file, line) order.
    raw_edges
        .sort_by(|a, b| (&a.from, &a.to, &a.file, a.line).cmp(&(&b.from, &b.to, &b.file, b.line)));
    raw_edges.dedup_by(|a, b| a.from == b.from && a.to == b.to);
    let edges = raw_edges;

    // Cycle detection: an edge whose target can reach its source closes a
    // cycle — the deadlock precondition.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        adj.entry(e.from.as_str())
            .or_default()
            .insert(e.to.as_str());
    }
    let mut findings = Vec::new();
    for e in &edges {
        if reaches(&adj, &e.to, &e.from) {
            let via = e
                .via
                .as_ref()
                .map(|v| format!(" (via `{v}`)"))
                .unwrap_or_default();
            findings.push(Finding {
                file: e.file.clone(),
                rule: RULE_LOCK_ORDER.to_string(),
                line: e.line,
                excerpt: model
                    .ws
                    .files
                    .iter()
                    .find(|s| s.path == e.file)
                    .map(|s| s.excerpt(e.line))
                    .unwrap_or_default(),
                message: format!(
                    "acquisition edge `{}` → `{}`{via} closes a lock-order \
                     cycle (a deadlock precondition); acquire locks in one \
                     global order or drop the held guard first",
                    e.from, e.to
                ),
            });
        }
    }

    LockAnalysis {
        classes,
        edges,
        findings,
    }
}

/// BFS: can `from` reach `to` in the edge relation?
fn reaches(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n) {
            continue;
        }
        if let Some(next) = adj.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// Collects lock classes: struct fields with lock types plus lock-typed
/// locals, non-test code only. Returns the classes and a per-(fn, var)
/// class map for locals.
fn collect_classes(model: &Model<'_>) -> (Vec<LockClass>, BTreeMap<(usize, String), String>) {
    let mut classes = Vec::new();
    for s in &model.resolver.structs {
        let file = &model.ws.files[s.file];
        if file.in_test_code(s.tok) {
            continue;
        }
        for fd in &s.fields {
            if is_lock_type(&fd.ty) {
                classes.push(LockClass {
                    id: format!("{}::{}.{}", s.crate_name, s.name, fd.name),
                    file: file.path.clone(),
                    line: s.line,
                });
            }
        }
    }

    let mut local_classes: BTreeMap<(usize, String), String> = BTreeMap::new();
    for (fn_id, f) in model.resolver.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let file = &model.ws.files[f.file];
        let span = &file.fns[f.span];
        let toks = &file.tokens;
        let mut k = span.body_start;
        while k < span.end.min(toks.len()) {
            if !toks[k].is_ident("let") || !model.owns_token(fn_id, k) {
                k += 1;
                continue;
            }
            let mut j = k + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j).and_then(|t| t.ident()).map(str::to_string) else {
                k += 1;
                continue;
            };
            if is_lock_binding(toks, j + 1, span.end) {
                let id = format!("{}::{}.{}", f.crate_name, f.name, name);
                local_classes.insert((fn_id, name), id.clone());
                classes.push(LockClass {
                    id,
                    file: file.path.clone(),
                    line: toks[k].line,
                });
            }
            k = j + 1;
        }
    }
    classes.sort_by(|a, b| a.id.cmp(&b.id));
    classes.dedup_by(|a, b| a.id == b.id);
    (classes, local_classes)
}

/// True when the `let` statement starting after the bound name declares or
/// constructs a lock (`: Vec<Mutex<_>>`, `= Mutex::new(…)`, …) — as opposed
/// to merely binding a guard or a lock-holding struct.
fn is_lock_binding(toks: &[Token], from: usize, limit: usize) -> bool {
    // Scan the rest of the statement (type annotation + initializer).
    let mut depth = 0i32;
    let mut k = from;
    let mut has_lock_ctor = false;
    let mut has_lock_ty = false;
    let mut in_ty = false;
    while k < limit.min(toks.len()) {
        let t = &toks[k];
        if t.is_op("(") || t.is_op("[") {
            depth += 1;
        } else if t.is_op(")") || t.is_op("]") {
            depth -= 1;
        } else if depth <= 0 && t.is_op(";") {
            break;
        } else if t.is_op(":") && depth <= 0 {
            in_ty = true;
        } else if t.is_op("=") && depth <= 0 {
            in_ty = false;
        } else if (t.is_ident("Mutex") || t.is_ident("RwLock")) && in_ty {
            has_lock_ty = true;
        } else if (t.is_ident("Mutex") || t.is_ident("RwLock"))
            && toks.get(k + 1).is_some_and(|n| n.is_op("::"))
            && toks
                .get(k + 2)
                .is_some_and(|n| n.is_ident("new") || n.is_ident("const_new"))
        {
            has_lock_ctor = true;
        }
        k += 1;
    }
    has_lock_ty || has_lock_ctor
}

/// Finds every guard acquisition in `fn_id` and computes its live range.
fn collect_events(
    model: &Model<'_>,
    fn_id: usize,
    local_classes: &BTreeMap<(usize, String), String>,
) -> Vec<Event> {
    let f = &model.resolver.fns[fn_id];
    let file = &model.ws.files[f.file];
    let span = &file.fns[f.span];
    let toks = &file.tokens;
    let mut out = Vec::new();
    for k in span.body_start..span.end.min(toks.len()) {
        if !model.owns_token(fn_id, k) {
            continue;
        }
        // The guard form: `. m ( )` with no arguments.
        let is_guard_call = toks[k].ident().is_some_and(|m| GUARD_METHODS.contains(&m))
            && k > 0
            && toks[k - 1].is_op(".")
            && toks.get(k + 1).is_some_and(|t| t.is_op("("))
            && toks.get(k + 2).is_some_and(|t| t.is_op(")"));
        if !is_guard_call {
            continue;
        }
        let Some(class) = classify_receiver(model, fn_id, k - 2, local_classes) else {
            continue;
        };
        let close = k + 2;
        let range = live_range(toks, span, k, close);
        out.push(Event {
            class,
            tok: k,
            line: toks[k].line,
            range,
        });
    }
    out
}

/// Maps the receiver ending at token `end` to a lock class, handling
/// `self.field`, lock-typed locals, indexing (`slots[i]`), field chains and
/// lock-returning workspace calls (`set.shard_of(id).lock()`).
fn classify_receiver(
    model: &Model<'_>,
    fn_id: usize,
    end: usize,
    local_classes: &BTreeMap<(usize, String), String>,
) -> Option<String> {
    let f = &model.resolver.fns[fn_id];
    let toks = &model.ws.files[f.file].tokens;
    let t = toks.get(end)?;

    if t.is_op("]") {
        // Indexing into a lock collection: classify the base.
        let open = matching_open_bracket(toks, end)?;
        return classify_receiver(model, fn_id, open.checked_sub(1)?, local_classes);
    }
    if t.is_op(")") {
        // A call returning a lock reference: find which field the callee
        // hands out.
        let open = matching_open_paren(toks, end)?;
        let callee = open.checked_sub(1)?;
        toks.get(callee)?.ident()?;
        let candidates = model.resolver.resolve_call(model.ws, fn_id, callee, 0);
        for c in candidates {
            if let Some(id) = returned_lock_class(model, c) {
                return Some(id);
            }
        }
        return None;
    }
    let name = t.ident()?;
    match toks.get(end.wrapping_sub(1)) {
        Some(prev) if end > 0 && prev.is_op(".") => {
            // Field access: `self.field` or a chained `base.field`.
            let base_ty = if toks.get(end - 2).is_some_and(|t| t.is_ident("self")) {
                f.self_type.clone().map(|t| vec![t])
            } else {
                model.resolver.postfix_type(model.ws, fn_id, end - 2)
            }?;
            let base_name = model.resolver.primary_type(fn_id, &base_ty)?;
            let s = model.resolver.struct_def(&base_name, &f.crate_name)?;
            let fd = s.fields.iter().find(|fd| fd.name == name)?;
            is_lock_type(&fd.ty).then(|| format!("{}::{}.{}", s.crate_name, s.name, name))
        }
        _ => local_classes.get(&(fn_id, name.to_string())).cloned(),
    }
}

/// For a workspace function returning `&Mutex<_>`/`&RwLock<_>`, the class
/// of the lock field its body hands out.
fn returned_lock_class(model: &Model<'_>, fn_id: usize) -> Option<String> {
    let f = &model.resolver.fns[fn_id];
    if !is_lock_type(&f.ret) {
        return None;
    }
    let self_type = f.self_type.as_deref()?;
    let s = model.resolver.struct_def(self_type, &f.crate_name)?;
    let file = &model.ws.files[f.file];
    let span = &file.fns[f.span];
    let toks = &file.tokens;
    for k in span.body_start..span.end.min(toks.len()) {
        if toks[k].is_ident("self") && toks.get(k + 1).is_some_and(|t| t.is_op(".")) {
            if let Some(field) = toks.get(k + 2).and_then(|t| t.ident()) {
                if let Some(fd) = s.fields.iter().find(|fd| fd.name == field) {
                    if is_lock_type(&fd.ty) {
                        return Some(format!("{}::{}.{}", s.crate_name, s.name, field));
                    }
                }
            }
        }
    }
    None
}

/// The live token range of the guard acquired by the call at `site` (guard
/// method ident) closing at `close`. Let-bound guards (`let g = ….lock();`)
/// live to their block's `}` or an explicit `drop(g)`; temporaries live to
/// the end of their statement.
fn live_range(
    toks: &[Token],
    span: &crate::source::FnSpan,
    site: usize,
    close: usize,
) -> (usize, usize) {
    // Statement start: the token after the previous `;`, `{` or `}`.
    let mut start = site;
    while start > span.body_start
        && !(toks[start - 1].is_op(";") || toks[start - 1].is_op("{") || toks[start - 1].is_op("}"))
    {
        start -= 1;
    }
    let limit = span.end.min(toks.len());
    let let_bound =
        toks[start].is_ident("let") && toks.get(close + 1).is_some_and(|t| t.is_op(";"));
    if let_bound {
        let mut n = start + 1;
        if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
            n += 1;
        }
        let name = toks.get(n).and_then(|t| t.ident()).unwrap_or_default();
        let mut depth = 0i32;
        let mut m = close + 2;
        while m < limit {
            let t = &toks[m];
            if t.is_op("{") {
                depth += 1;
            } else if t.is_op("}") {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            } else if t.is_ident("drop")
                && toks.get(m + 1).is_some_and(|t| t.is_op("("))
                && toks.get(m + 2).is_some_and(|t| t.is_ident(name))
                && toks.get(m + 3).is_some_and(|t| t.is_op(")"))
            {
                break;
            }
            m += 1;
        }
        (close, m)
    } else {
        // Temporary: live to the statement's `;` (or enclosing `}`).
        let mut depth = 0i32;
        let mut m = close + 1;
        while m < limit {
            let t = &toks[m];
            if t.is_op("(") || t.is_op("[") {
                depth += 1;
            } else if t.is_op(")") || t.is_op("]") {
                depth -= 1;
            } else if depth <= 0 && t.is_op(";") {
                break;
            } else if t.is_op("}") && depth <= 0 {
                break;
            }
            m += 1;
        }
        (close, m)
    }
}

/// The `[` matching the `]` at `close`.
fn matching_open_bracket(toks: &[Token], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = close;
    loop {
        let t = toks.get(k)?;
        if t.is_op("]") {
            depth += 1;
        } else if t.is_op("[") {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
        k = k.checked_sub(1)?;
    }
}

/// The `(` matching the `)` at `close`.
fn matching_open_paren(toks: &[Token], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = close;
    loop {
        let t = toks.get(k)?;
        if t.is_op(")") {
            depth += 1;
        } else if t.is_op("(") {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
        k = k.checked_sub(1)?;
    }
}
