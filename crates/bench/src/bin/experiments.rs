//! Command-line experiment runner.
//!
//! Reproduces the paper's Section VI figures as text tables:
//!
//! ```text
//! experiments all                    # every figure at the default 1/50 scale
//! experiments sky-p topk-k           # selected figures
//! experiments all --scale 10         # closer to the paper's full size
//! experiments all --queries 50       # more query locations per data point
//! experiments all --latency-ms 10    # charge 10 ms per physical page read
//! ```

use mcn_bench::{render_table, Experiment, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        print_usage();
        return;
    }

    let mut config = ExperimentConfig::default();
    let mut selected: Vec<Experiment> = Vec::new();
    let mut run_all = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "all" => run_all = true,
            "--scale" => {
                config.scale = expect_value(&args, &mut i, "--scale");
            }
            "--queries" => {
                config.queries = Some(expect_value(&args, &mut i, "--queries"));
            }
            "--latency-ms" => {
                let ms: f64 = expect_value(&args, &mut i, "--latency-ms");
                config.latency = ms / 1000.0;
            }
            "--seed" => {
                config.seed = expect_value(&args, &mut i, "--seed");
            }
            other => match Experiment::from_id(other) {
                Some(e) => selected.push(e),
                None => {
                    eprintln!("unknown experiment or flag: {other}");
                    print_usage();
                    std::process::exit(2);
                }
            },
        }
        i += 1;
    }
    if run_all {
        selected = Experiment::all().to_vec();
    }
    if selected.is_empty() {
        eprintln!("nothing to run");
        print_usage();
        std::process::exit(2);
    }

    println!(
        "# MCN preference-query experiments (scale 1/{}, {} ms per physical read, seed {})",
        config.scale,
        config.latency * 1000.0,
        config.seed
    );
    println!(
        "# Paper defaults scaled: {} nodes, {} facilities, d = {}, anti-correlated, {} queries/point\n",
        config.base_spec().nodes,
        config.base_spec().facilities,
        config.base_spec().cost_types,
        config.base_spec().queries
    );
    for experiment in selected {
        let table = experiment.run(&config);
        println!("{}", render_table(&table));
    }
}

fn expect_value<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str) -> T {
    *i += 1;
    args.get(*i)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
}

fn print_usage() {
    eprintln!(
        "usage: experiments [all | <ids>...] [--scale N] [--queries N] [--latency-ms MS] [--seed S]\n\
         experiment ids: {}",
        Experiment::all()
            .iter()
            .map(|e| e.id())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
