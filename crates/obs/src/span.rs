//! Query-lifecycle spans.
//!
//! A [`Tracer`] collects [`SpanEvent`]s (one per completed phase of a
//! query: `schedule`, `prep-lookup`/`prep-build`, `search`, `unpack`,
//! `fingerprint`) into bounded per-worker ring buffers. The fast path is
//! one relaxed atomic load when tracing is disabled — no clock reads, no
//! allocation, no locks. When enabled, each thread writes to its own
//! stripe (a small mutex-guarded ring), so worker threads never contend
//! on a shared buffer; full rings drop the oldest events and count them.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::clock::Clock;

/// Default number of ring stripes (effectively "workers" in the export).
pub const DEFAULT_STRIPES: usize = 8;
/// Default bound per stripe before old events are dropped.
pub const DEFAULT_CAPACITY: usize = 4096;

/// One completed span: phase `name` of query `query` on worker `worker`,
/// covering `[start_ns, start_ns + dur_ns]` on the tracer's clock.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanEvent {
    pub name: String,
    pub tier: String,
    pub query: u64,
    pub worker: u32,
    pub start_ns: u64,
    pub dur_ns: u64,
}

#[derive(Default)]
struct Ring {
    events: VecDeque<SpanEvent>,
    dropped: u64,
}

/// Bounded, striped span collector. Disabled by default.
pub struct Tracer {
    enabled: AtomicBool,
    capacity: usize,
    stripes: Vec<Mutex<Ring>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

/// Process-wide monotone id per thread, used to pick a stripe without a
/// per-tracer registration step.
fn thread_slot() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    SLOT.with(|s| *s)
}

impl Tracer {
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_STRIPES, DEFAULT_CAPACITY)
    }

    pub fn with_capacity(stripes: usize, capacity: usize) -> Self {
        let stripes = stripes.max(1);
        Self {
            enabled: AtomicBool::new(false),
            capacity: capacity.max(1),
            stripes: (0..stripes).map(|_| Mutex::new(Ring::default())).collect(),
        }
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    /// The one load on the disabled fast path.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record a completed span. No-op when disabled.
    pub fn record(&self, name: &str, tier: &str, query: u64, start_ns: u64, end_ns: u64) {
        if !self.enabled() {
            return;
        }
        let stripe = thread_slot() % self.stripes.len();
        let event = SpanEvent {
            name: name.to_string(),
            tier: tier.to_string(),
            query,
            worker: stripe as u32,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
        };
        let _t = mcn_witness::acquire("obs::Tracer.stripes");
        let mut ring = self.stripes[stripe].lock();
        if ring.events.len() >= self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// RAII span: samples the clock now and records on drop. When the
    /// tracer is disabled the guard is inert and never reads the clock.
    pub fn span<'a>(
        &'a self,
        clock: &'a dyn Clock,
        name: &'static str,
        tier: &'a str,
        query: u64,
    ) -> Span<'a> {
        let start_ns = if self.enabled() {
            Some(clock.now_ns())
        } else {
            None
        };
        Span {
            tracer: self,
            clock,
            name,
            tier,
            query,
            start_ns,
        }
    }

    /// Take every buffered event, sorted by `(start_ns, worker, name)` so
    /// the export is deterministic for a given event set. Stripes are
    /// locked one at a time.
    pub fn drain(&self) -> Vec<SpanEvent> {
        let mut events = Vec::new();
        for stripe in &self.stripes {
            let _t = mcn_witness::acquire("obs::Tracer.stripes");
            let mut ring = stripe.lock();
            events.extend(ring.events.drain(..));
        }
        events.sort_by(|a, b| {
            (a.start_ns, a.worker, &a.name, a.query).cmp(&(b.start_ns, b.worker, &b.name, b.query))
        });
        events
    }

    /// Events dropped so far because a ring was full.
    pub fn dropped(&self) -> u64 {
        let mut total = 0;
        for stripe in &self.stripes {
            let _t = mcn_witness::acquire("obs::Tracer.stripes");
            total += stripe.lock().dropped;
        }
        total
    }

    /// Buffered (undrained) event count.
    pub fn len(&self) -> usize {
        let mut total = 0;
        for stripe in &self.stripes {
            let _t = mcn_witness::acquire("obs::Tracer.stripes");
            total += stripe.lock().events.len();
        }
        total
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Guard returned by [`Tracer::span`]; records the span when dropped.
pub struct Span<'a> {
    tracer: &'a Tracer,
    clock: &'a dyn Clock,
    name: &'static str,
    tier: &'a str,
    query: u64,
    start_ns: Option<u64>,
}

impl Span<'_> {
    /// End the span explicitly (identical to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start_ns) = self.start_ns {
            let end_ns = self.clock.now_ns();
            self.tracer
                .record(self.name, self.tier, self.query, start_ns, end_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn disabled_tracer_records_nothing_and_reads_no_clock() {
        let tracer = Tracer::new();
        let clock = ManualClock::new(0);
        tracer.record("search", "skyline", 0, 0, 10);
        {
            let _span = tracer.span(&clock, "search", "skyline", 1);
        }
        assert!(tracer.is_empty());
        assert_eq!(clock.reads(), 0);
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn enabled_span_records_duration_from_clock() {
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        let clock = ManualClock::new(1_000);
        {
            let span = tracer.span(&clock, "search", "topk", 7);
            clock.advance(250);
            span.finish();
        }
        let events = tracer.drain();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(
            (e.name.as_str(), e.tier.as_str(), e.query),
            ("search", "topk", 7)
        );
        assert_eq!((e.start_ns, e.dur_ns), (1_000, 250));
        assert!(tracer.is_empty());
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let tracer = Tracer::with_capacity(1, 2);
        tracer.set_enabled(true);
        for q in 0..5u64 {
            tracer.record("search", "skyline", q, q, q + 1);
        }
        assert_eq!(tracer.len(), 2);
        assert_eq!(tracer.dropped(), 3);
        let events = tracer.drain();
        assert_eq!(events[0].query, 3);
        assert_eq!(events[1].query, 4);
    }

    #[test]
    fn drain_sorts_by_start_time() {
        let tracer = Tracer::with_capacity(1, 16);
        tracer.set_enabled(true);
        tracer.record("b", "t", 1, 500, 600);
        tracer.record("a", "t", 0, 100, 400);
        let events = tracer.drain();
        assert_eq!(events[0].name, "a");
        assert_eq!(events[1].name, "b");
    }

    #[test]
    fn events_round_trip_json() {
        let e = SpanEvent {
            name: "prep-build".into(),
            tier: "path-skyline".into(),
            query: 3,
            worker: 2,
            start_ns: 10,
            dur_ns: 90,
        };
        let text = serde::json::to_string_pretty(&vec![e.clone()]);
        let back: Vec<SpanEvent> = serde::json::from_str(&text).unwrap();
        assert_eq!(back, vec![e]);
    }
}
