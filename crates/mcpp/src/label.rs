//! Label-correcting multi-criteria Pareto path search.

use crate::stats::PathStats;
use mcn_graph::{dominates, dominates_weak, CostVec, EdgeId, Front2, MultiCostGraph, NodeId};
use mcn_prep::PrepTable;
use std::collections::VecDeque;

/// One Pareto-optimal label: a non-dominated way of reaching a node.
#[derive(Clone, Debug, PartialEq)]
pub struct ParetoLabel {
    /// The node the label belongs to.
    pub node: NodeId,
    /// Accumulated cost vector from the source.
    pub costs: CostVec,
    /// The edges of the path from the source, in order.
    pub edges: Vec<EdgeId>,
}

/// The result of one Pareto path search: the target's path skyline plus the
/// label accounting that produced it.
#[derive(Clone, Debug, PartialEq)]
pub struct PathSkylineResult {
    /// The Pareto-optimal labels at the target, sorted lexicographically by
    /// cost vector.
    pub paths: Vec<ParetoLabel>,
    /// Deterministic label counters of the run.
    pub stats: PathStats,
}

/// Computes the Pareto-optimal (skyline) paths from `source` to `target` with
/// a label-correcting algorithm (Section II-D of the paper).
///
/// Every node keeps a set of mutually non-dominated labels; labels are
/// propagated over outgoing edges and inserted only if not (weakly) dominated
/// by an existing label at the head node, evicting labels they dominate. In
/// addition, a candidate that is already weakly dominated by the **current
/// target skyline** is discarded wherever it surfaces: edge costs are
/// non-negative, so every completion of such a path is weakly dominated at
/// the target too (target-dominance early termination — same output, far
/// fewer labels; see [`pareto_paths_exhaustive`] for the unpruned baseline).
/// The returned labels at `target` are sorted lexicographically by cost
/// vector.
///
/// **Exact ties caveat** (applies to every pruned variant in this module):
/// the returned *cost-vector* skyline always equals the exhaustive
/// baseline's. When two **distinct** paths share an exactly equal cost
/// vector, however, only one representative survives, and which one depends
/// on label arrival order — which pruning can change. On such graphs
/// (integer or otherwise discrete costs) the representative's *edge
/// sequence* may differ from the exhaustive run's. Workloads with
/// continuous float costs — everything seeded in this repository — have no
/// exact ties, which is what the byte-identical fingerprint assertions in
/// `tests/prep.rs` and the `prep` experiment rely on.
///
/// Complexity is output-sensitive and exponential in the worst case (the
/// Pareto set itself can be exponential); it is intended for moderate-size
/// networks and for validating the per-cost shortest paths of `mcn-expansion`.
pub fn pareto_paths(graph: &MultiCostGraph, source: NodeId, target: NodeId) -> Vec<ParetoLabel> {
    pareto_paths_with_stats(graph, source, target).paths
}

/// [`pareto_paths`] (target-dominance early termination on, no
/// precomputation) with its [`PathStats`].
pub fn pareto_paths_with_stats(
    graph: &MultiCostGraph,
    source: NodeId,
    target: NodeId,
) -> PathSkylineResult {
    search(graph, source, target, None, true)
}

/// The original exhaustive label-correcting baseline: **no** pruning beyond
/// node-level dominance, so labels for every node are kept until
/// termination. Identical output to [`pareto_paths`]; exists as the
/// measurement baseline the `prep` experiment (and the early-termination
/// fix) quantify label reductions against.
pub fn pareto_paths_exhaustive(
    graph: &MultiCostGraph,
    source: NodeId,
    target: NodeId,
) -> PathSkylineResult {
    search(graph, source, target, None, false)
}

/// ParetoPrep-pruned path-skyline search: [`pareto_paths`] plus the
/// lower-bound machinery of a precomputed [`PrepTable`] for the same
/// `target`.
///
/// Three additional cuts apply to every candidate label with accumulated
/// cost `a` at node `v`:
///
/// * **Reachability** — if the target is unreachable from `v` (infinite
///   bound), the label can never complete and is dropped.
/// * **Bound dominance** — the *bound vector* `a + L(v)` (the best cost any
///   completion can achieve, since `L` is admissible) is checked against
///   the current target skyline; weak dominance kills the whole subtree,
///   not just the finished path.
/// * **Global upper-bound cuts** — before the search starts, the table
///   reconstructs up to `d` concrete `source → target` paths
///   ([`PrepTable::upper_bound_cuts`]); a bound vector *strictly* dominated
///   by one of those real path costs is cut even while the target skyline
///   is still empty. (Strict dominance keeps the cut paths' own prefixes —
///   and every eventual skyline member — alive, which is what makes the
///   output byte-identical to the exhaustive baseline — up to
///   representatives of exactly tied cost vectors; see the ties caveat on
///   [`pareto_paths`].)
///
/// # Panics
/// Panics if `prep` was built for a different target or a different graph
/// shape (node count / cost types).
pub fn pareto_paths_prepped(
    graph: &MultiCostGraph,
    source: NodeId,
    target: NodeId,
    prep: &PrepTable,
) -> PathSkylineResult {
    assert_eq!(
        prep.target(),
        target,
        "prep table was built for target {}, query targets {target}",
        prep.target()
    );
    assert_eq!(
        prep.num_nodes(),
        graph.num_nodes(),
        "prep table covers {} nodes, graph has {}",
        prep.num_nodes(),
        graph.num_nodes()
    );
    assert_eq!(
        prep.cost_types(),
        graph.num_cost_types(),
        "prep table has d = {}, graph has d = {}",
        prep.cost_types(),
        graph.num_cost_types()
    );
    search(graph, source, target, Some(prep), true)
}

/// Relative deflation applied to prep lower bounds before pruning.
///
/// `PrepTable` distances are accumulated **backwards** (target → node)
/// while search labels accumulate **forwards**, and float addition is not
/// associative: the same physical path can sum to values an ulp apart, so
/// the mathematically admissible bound can overshoot a label's real
/// completion cost by a few ulps — enough for a path's own upper-bound cut
/// to "dominate" its prefix and silently drop a skyline member. Shrinking
/// the lower bound by 1e-9 relative keeps it admissible for any summation
/// order (accumulated float error is ~1e-13 relative even across millions
/// of hops) while giving up a vanishing sliver of pruning power.
const BOUND_DEFLATION: f64 = 1.0 - 1e-9;

/// The shared label-correcting search. `prep` enables lower-bound pruning
/// and upper-bound cuts; `target_prune` enables target-dominance early
/// termination (subsumed by bound pruning when `prep` is given, since
/// `L ≥ 0`). With both off this is the exhaustive baseline.
fn search(
    graph: &MultiCostGraph,
    source: NodeId,
    target: NodeId,
    prep: Option<&PrepTable>,
    target_prune: bool,
) -> PathSkylineResult {
    let d = graph.num_cost_types();
    let mut stats = PathStats::default();
    let mut labels: Vec<Vec<ParetoLabel>> = vec![Vec::new(); graph.num_nodes()];
    stats.labels_created += 1;
    stats.labels_inserted += 1;
    labels[source.index()].push(ParetoLabel {
        node: source,
        costs: CostVec::zeros(d),
        edges: Vec::new(),
    });

    // Bicriterion fast path: a sorted-sweep mirror of the target skyline
    // answers the hot weak-dominance check in O(log k) instead of a scan.
    // The mirror's booleans are identical to the pairwise test over the
    // same points, so every label counter (and the labels gate) is
    // unchanged by construction.
    let mut target_front = (d == 2 && (target_prune || prep.is_some())).then(Front2::new);
    if source == target {
        if let Some(front) = target_front.as_mut() {
            front.insert(0.0, 0.0);
        }
    }

    // Real source → target path costs reconstructed from the prep scan: cut
    // lines available before the first label reaches the target.
    let cuts: Vec<CostVec> = match prep {
        Some(prep) => prep.upper_bound_cuts(graph, source),
        None => Vec::new(),
    };

    let mut queue: VecDeque<NodeId> = VecDeque::new();
    let mut queued = vec![false; graph.num_nodes()];
    queue.push_back(source);
    queued[source.index()] = true;

    while let Some(node) = queue.pop_front() {
        queued[node.index()] = false;
        stats.nodes_settled += 1;
        // mcn-lint: allow(hot-path-alloc, reason = "snapshot of the settled node's labels — the inner loop mutates labels[] at head nodes, so iterating a borrow would alias; one clone per settle, not per label")
        let current: Vec<ParetoLabel> = labels[node.index()].clone();
        for neighbor in graph.neighbors(node) {
            for label in &current {
                let mut costs = label.costs;
                costs += neighbor.costs;
                stats.labels_created += 1;

                // ParetoPrep cuts: reachability, then the bound vector
                // against the target skyline and the upper-bound cuts.
                let mut bound = costs;
                if let Some(prep) = prep {
                    if !prep.reaches(neighbor.node) {
                        stats.labels_pruned += 1;
                        continue;
                    }
                    let lower = prep.bound(neighbor.node);
                    for i in 0..d {
                        bound[i] += lower[i] * BOUND_DEFLATION;
                    }
                }
                if target_prune || prep.is_some() {
                    let dominated_at_target = match &target_front {
                        Some(front) => front.dominates_weak(bound[0], bound[1]),
                        None => labels[target.index()]
                            .iter()
                            .any(|l| dominates_weak(&l.costs, &bound)),
                    };
                    if dominated_at_target {
                        stats.labels_pruned += 1;
                        continue;
                    }
                }
                if cuts.iter().any(|cut| dominates(cut, &bound)) {
                    stats.labels_pruned += 1;
                    continue;
                }

                // Classic node-level dominance at the head node.
                let existing = &mut labels[neighbor.node.index()];
                if existing.iter().any(|l| dominates_weak(&l.costs, &costs)) {
                    stats.labels_dominated += 1;
                    continue;
                }
                let before = existing.len();
                existing.retain(|l| !dominates(&costs, &l.costs));
                stats.labels_evicted += (before - existing.len()) as u64;
                // mcn-lint: allow(hot-path-alloc, reason = "label-correcting is path-explicit: every surviving label owns its edge sequence; the clone happens only after dominance pruning admits the label")
                let mut edges = label.edges.clone();
                edges.push(neighbor.edge);
                existing.push(ParetoLabel {
                    node: neighbor.node,
                    costs,
                    edges,
                });
                stats.labels_inserted += 1;
                if neighbor.node == target {
                    if let Some(front) = target_front.as_mut() {
                        // Keeps the mirror exact: the pairwise checks above
                        // admitted the label, so the mirror's (identical)
                        // insert protocol admits it too, evicting the same
                        // strictly dominated points `retain` just dropped.
                        front.insert(costs[0], costs[1]);
                    }
                }
                if !queued[neighbor.node.index()] {
                    queued[neighbor.node.index()] = true;
                    queue.push_back(neighbor.node);
                }
            }
        }
    }

    let mut paths = labels[target.index()].clone();
    paths.sort_by(|a, b| a.costs.lex_cmp(&b.costs));
    PathSkylineResult { paths, stats }
}

/// The component-wise minimum over the Pareto path set, i.e. the vector of
/// single-criterion shortest-path distances from `source` to `target`.
/// Returns `None` if the target is unreachable.
pub fn componentwise_minimum(paths: &[ParetoLabel]) -> Option<CostVec> {
    let first = paths.first()?;
    Some(
        paths
            .iter()
            .skip(1)
            .fold(first.costs, |acc, l| acc.element_min(&l.costs)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcn_graph::GraphBuilder;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Diamond network with a cheap-slow and an expensive-fast side.
    fn diamond() -> (MultiCostGraph, NodeId, NodeId) {
        let mut b = GraphBuilder::new(2);
        let s = b.add_node(0.0, 0.0);
        let up = b.add_node(1.0, 1.0);
        let down = b.add_node(1.0, -1.0);
        let t = b.add_node(2.0, 0.0);
        b.add_edge(s, up, CostVec::from_slice(&[1.0, 10.0]))
            .unwrap();
        b.add_edge(up, t, CostVec::from_slice(&[1.0, 10.0]))
            .unwrap();
        b.add_edge(s, down, CostVec::from_slice(&[10.0, 1.0]))
            .unwrap();
        b.add_edge(down, t, CostVec::from_slice(&[10.0, 1.0]))
            .unwrap();
        (b.build().unwrap(), s, t)
    }

    /// A seeded random network of `n` nodes: a connected line plus random
    /// extra edges, `d` cost types drawn from `1.0..5.0`.
    fn seeded_network(n: usize, d: usize, seed: u64) -> (MultiCostGraph, Vec<NodeId>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(d);
        let nodes: Vec<NodeId> = (0..n).map(|i| b.add_node(i as f64, 0.0)).collect();
        for w in nodes.windows(2) {
            let c: Vec<f64> = (0..d).map(|_| rng.gen_range(1.0..5.0)).collect();
            b.add_edge(w[0], w[1], CostVec::from_slice(&c)).unwrap();
        }
        for _ in 0..n {
            let a = nodes[rng.gen_range(0..n)];
            let c = nodes[rng.gen_range(0..n)];
            if a == c {
                continue;
            }
            let cv: Vec<f64> = (0..d).map(|_| rng.gen_range(1.0..5.0)).collect();
            b.add_edge(a, c, CostVec::from_slice(&cv)).unwrap();
        }
        (b.build().unwrap(), nodes)
    }

    #[test]
    fn diamond_has_two_pareto_paths() {
        let (g, s, t) = diamond();
        let paths = pareto_paths(&g, s, t);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].costs.as_slice(), &[2.0, 20.0]);
        assert_eq!(paths[1].costs.as_slice(), &[20.0, 2.0]);
        assert_eq!(paths[0].edges.len(), 2);
        assert_eq!(
            componentwise_minimum(&paths).unwrap().as_slice(),
            &[2.0, 2.0]
        );
    }

    #[test]
    fn source_equals_target_gives_trivial_label() {
        let (g, s, _) = diamond();
        let paths = pareto_paths(&g, s, s);
        assert_eq!(paths.len(), 1);
        assert!(paths[0].edges.is_empty());
        assert_eq!(paths[0].costs.as_slice(), &[0.0, 0.0]);
        // The exhaustive baseline agrees even in this degenerate case.
        assert_eq!(pareto_paths_exhaustive(&g, s, s).paths, paths);
    }

    #[test]
    fn unreachable_target_has_no_paths() {
        let mut b = GraphBuilder::new(1);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        b.add_node(5.0, 5.0); // isolated
        b.add_edge(a, c, CostVec::from_slice(&[1.0])).unwrap();
        let g = b.build().unwrap();
        let paths = pareto_paths(&g, a, NodeId::new(2));
        assert!(paths.is_empty());
        assert!(componentwise_minimum(&paths).is_none());
    }

    #[test]
    fn labels_are_mutually_non_dominated() {
        let (g, nodes) = seeded_network(30, 3, 17);
        let paths = pareto_paths(&g, nodes[0], nodes[29]);
        assert!(!paths.is_empty());
        for a in &paths {
            assert!(a.costs.len() == 3);
            for b2 in &paths {
                if a.edges != b2.edges {
                    assert!(!dominates(&a.costs, &b2.costs) || !dominates(&b2.costs, &a.costs));
                }
            }
        }
    }

    #[test]
    fn componentwise_minimum_matches_single_cost_dijkstra() {
        let (g, s, t) = diamond();
        let paths = pareto_paths(&g, s, t);
        let mins = componentwise_minimum(&paths).unwrap();
        // Single-criterion shortest paths: cost0 via the upper branch = 2,
        // cost1 via the lower branch = 2.
        assert_eq!(mins.as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn early_termination_creates_fewer_labels_and_identical_output() {
        // The satellite fix: target-dominance early termination must shrink
        // the label count on seeded networks without changing a single path.
        for seed in [3u64, 17, 99] {
            let (g, nodes) = seeded_network(60, 3, seed);
            let (s, t) = (nodes[0], nodes[59]);
            let exhaustive = pareto_paths_exhaustive(&g, s, t);
            let pruned = pareto_paths_with_stats(&g, s, t);
            assert_eq!(exhaustive.paths, pruned.paths, "seed {seed} diverged");
            assert!(
                pruned.stats.labels_created < exhaustive.stats.labels_created,
                "seed {seed}: early termination created {} labels, \
                 exhaustive {}",
                pruned.stats.labels_created,
                exhaustive.stats.labels_created
            );
            assert!(pruned.stats.labels_pruned > 0);
            assert_eq!(exhaustive.stats.labels_pruned, 0);
        }
    }

    #[test]
    fn prepped_search_matches_exhaustive_with_fewer_labels() {
        for seed in [5u64, 23] {
            let (g, nodes) = seeded_network(60, 3, seed);
            let (s, t) = (nodes[3], nodes[50]);
            let exhaustive = pareto_paths_exhaustive(&g, s, t);
            let prep = PrepTable::build(&g, t);
            let prepped = pareto_paths_prepped(&g, s, t, &prep);
            assert_eq!(exhaustive.paths, prepped.paths, "seed {seed} diverged");
            assert!(prepped.stats.labels_created < exhaustive.stats.labels_created);
            assert!(prepped.stats.prune_fraction() > 0.0);
        }
    }

    #[test]
    fn prepped_search_handles_unreachable_targets() {
        let mut b = GraphBuilder::new(2);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        let isolated = b.add_node(5.0, 5.0);
        b.add_edge(a, c, CostVec::from_slice(&[1.0, 2.0])).unwrap();
        let g = b.build().unwrap();
        let prep = PrepTable::build(&g, isolated);
        let result = pareto_paths_prepped(&g, a, isolated, &prep);
        assert!(result.paths.is_empty());
        // Every candidate out of the source dies on the reachability cut.
        assert_eq!(result.stats.labels_pruned + 1, result.stats.labels_created);
    }

    #[test]
    #[should_panic]
    fn prepped_search_rejects_mismatched_tables() {
        let (g, s, t) = diamond();
        let wrong = PrepTable::build(&g, s);
        let _ = pareto_paths_prepped(&g, s, t, &wrong);
    }

    #[test]
    fn bicriterion_fast_path_matches_exhaustive_output() {
        // d == 2 engages the Front2 mirror of the target skyline; the
        // output (and, because the mirror's booleans equal the pairwise
        // test, every counter) must match the exhaustive baseline exactly.
        for seed in [7u64, 21, 63] {
            let (g, nodes) = seeded_network(60, 2, seed);
            let (s, t) = (nodes[1], nodes[55]);
            let exhaustive = pareto_paths_exhaustive(&g, s, t);
            let pruned = pareto_paths_with_stats(&g, s, t);
            assert_eq!(exhaustive.paths, pruned.paths, "seed {seed} diverged");
            assert!(pruned.stats.labels_created <= exhaustive.stats.labels_created);
            let prep = PrepTable::build(&g, t);
            let prepped = pareto_paths_prepped(&g, s, t, &prep);
            assert_eq!(
                exhaustive.paths, prepped.paths,
                "seed {seed} prepped diverged"
            );
        }
    }

    #[test]
    fn stats_are_internally_consistent() {
        let (g, nodes) = seeded_network(40, 2, 7);
        let run = pareto_paths_with_stats(&g, nodes[0], nodes[39]);
        let s = run.stats;
        assert_eq!(
            s.labels_created,
            s.labels_inserted + s.labels_pruned + s.labels_dominated
        );
        assert!(s.nodes_settled > 0);
        assert!(s.labels_inserted >= run.paths.len() as u64);
    }
}
